/**
 * @file
 * Quickstart: encrypt a vector with BGV, compute on it homomorphically
 * (add, multiply, rotate), decrypt, and then compile the same
 * computation for the F1 accelerator and report its simulated runtime.
 */
#include <cstdio>

#include "compiler/compiler.h"
#include "fhe/bgv.h"
#include "sim/checker.h"

using namespace f1;

int
main()
{
    // 1. Parameters: degree-4096 polynomials, 4 RNS primes (~112-bit
    //    Q), plaintext slots mod 65537.
    FheParams params;
    params.n = 4096;
    params.maxLevel = 4;
    FheContext ctx(params);
    BgvScheme bgv(&ctx);

    // 2. Encrypt a vector of 4096 integers.
    std::vector<uint64_t> data(4096);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = i % 100;
    Ciphertext ct = bgv.encryptSlots(data, params.maxLevel);
    printf("encrypted %zu slots; noise budget %.0f bits\n", data.size(),
           bgv.noiseBudgetBits(ct));

    // 3. Compute (x + x) * x homomorphically, then rotate by 3.
    Ciphertext sum = bgv.add(ct, ct);
    Ciphertext prod = bgv.mul(sum, ct);
    Ciphertext rot = bgv.rotate(prod, 3);
    auto out = bgv.decryptSlots(rot);
    bool ok = true;
    for (size_t i = 0; i < 2048; ++i) {
        uint64_t j = (i + 3) % 2048;
        uint64_t expect = 2 * (j % 100) * (j % 100) % 65537;
        ok &= out[i] == expect;
    }
    printf("homomorphic (2x * x) rotated by 3: %s\n",
           ok ? "correct" : "WRONG");

    // 4. The same computation as an F1 program, compiled and
    //    cycle-scheduled for the accelerator.
    Program p(params.n, params.maxLevel, "quickstart");
    int x = p.input();
    int s = p.add(x, x);
    int m = p.mul(s, x);
    p.output(p.rotate(m, 3));

    F1Config cfg; // the paper's 16-cluster configuration
    CompileOptions opt;
    opt.recordEvents = true;
    auto res = compileProgram(p, cfg, opt);
    auto check = checkSchedule(res.schedule, cfg);
    printf("F1: %zu instructions, %llu cycles = %.2f us at 1 GHz "
           "(schedule %s)\n",
           res.translation.dfg.instrs.size(),
           (unsigned long long)res.schedule.cycles,
           res.schedule.timeMs(cfg) * 1e3,
           check.ok ? "valid" : "INVALID");
    printf("off-chip traffic: %.2f MB (%.1f%% key-switch hints)\n",
           res.schedule.traffic.total() / 1e6,
           100.0 * (res.schedule.traffic.kshCompulsory +
                    res.schedule.traffic.kshNonCompulsory) /
               res.schedule.traffic.total());
    return ok && check.ok ? 0 : 1;
}
