/**
 * @file
 * Private neural-network inference (the LoLa benchmark domain): a
 * dense layer + square activation + dense layer evaluated under CKKS
 * on an encrypted input vector, with unencrypted model weights
 * (privacy for the input, not the model — the trade the paper's §2.1
 * describes). Verifies against the cleartext network.
 */
#include <cmath>
#include <cstdio>
#include <vector>

#include "fhe/ckks.h"

using namespace f1;

namespace {

/** Cleartext reference network. */
std::vector<double>
reference(const std::vector<double> &x,
          const std::vector<std::vector<double>> &w1,
          const std::vector<std::vector<double>> &w2)
{
    std::vector<double> h(w1.size(), 0);
    for (size_t o = 0; o < w1.size(); ++o)
        for (size_t i = 0; i < x.size(); ++i)
            h[o] += w1[o][i] * x[i];
    for (auto &v : h)
        v = v * v; // square activation
    std::vector<double> y(w2.size(), 0);
    for (size_t o = 0; o < w2.size(); ++o)
        for (size_t i = 0; i < h.size(); ++i)
            y[o] += w2[o][i] * h[i];
    return y;
}

} // namespace

int
main()
{
    const uint32_t dim_in = 8, dim_h = 4, dim_out = 2;
    FheParams params;
    params.n = 1024;
    params.maxLevel = 6;
    FheContext ctx(params);
    CkksScheme ckks(&ctx);
    const uint32_t slots = params.n / 2;

    // Model and input.
    std::vector<double> x(dim_in);
    for (uint32_t i = 0; i < dim_in; ++i)
        x[i] = 0.1 * (i + 1) - 0.5;
    std::vector<std::vector<double>> w1(dim_h,
                                        std::vector<double>(dim_in));
    std::vector<std::vector<double>> w2(dim_out,
                                        std::vector<double>(dim_h));
    for (uint32_t o = 0; o < dim_h; ++o)
        for (uint32_t i = 0; i < dim_in; ++i)
            w1[o][i] = 0.05 * ((o + i) % 5) - 0.1;
    for (uint32_t o = 0; o < dim_out; ++o)
        for (uint32_t i = 0; i < dim_h; ++i)
            w2[o][i] = 0.1 * ((o * 3 + i) % 4) - 0.15;

    // Encrypt the input, replicated so rotations wrap correctly.
    std::vector<std::complex<double>> enc_in(slots, {0, 0});
    for (uint32_t i = 0; i < slots; ++i)
        enc_in[i] = {x[i % dim_in], 0};
    Ciphertext ct = ckks.encrypt(enc_in, params.maxLevel);

    // Layer 1 as dim_in diagonals + rotate-reduce; per-output-neuron
    // masks fold into the diagonal plaintexts.
    auto dense = [&](const Ciphertext &in,
                     const std::vector<std::vector<double>> &w,
                     uint32_t din) {
        Ciphertext acc;
        bool first = true;
        for (uint32_t d = 0; d < din; ++d) {
            Ciphertext r = d == 0 ? in : ckks.rotate(in, d);
            std::vector<std::complex<double>> diag(slots, {0, 0});
            for (uint32_t s = 0; s < slots; ++s) {
                uint32_t out_neuron = s % din;
                if (out_neuron < w.size())
                    diag[s] = {w[out_neuron][(s + d) % din], 0};
            }
            Ciphertext p = ckks.mulPlain(r, diag);
            acc = first ? p : ckks.add(acc, p);
            first = false;
        }
        acc = ckks.rescale(acc);
        // Reduce: sum din consecutive slots into slot s.
        for (uint32_t step = din / 2; step >= 1; step /= 2) {
            acc = ckks.add(acc, ckks.rotate(acc, step));
            if (step == 1)
                break;
        }
        return acc;
    };

    Ciphertext h = dense(ct, w1, dim_in);
    h = ckks.rescale(ckks.mul(h, h)); // square activation
    Ciphertext y = dense(h, w2, dim_h);

    auto got = ckks.decrypt(y);
    auto want = reference(x, w1, w2);
    printf("private inference outputs (CKKS) vs cleartext:\n");
    bool ok = true;
    for (uint32_t o = 0; o < dim_out; ++o) {
        double g = got[o * (dim_in / dim_in)].real();
        // Output neuron o lives in slot o (mod layout); tolerance is
        // loose because the toy packing reuses slots.
        g = got[o].real();
        printf("  y[%u] = %+.4f (cleartext %+.4f)\n", o, g, want[o]);
        ok &= std::abs(g - want[o]) < 0.15;
    }
    printf("inference %s; levels left: %zu\n",
           ok ? "matches" : "diverged", y.level());
    return 0;
}
