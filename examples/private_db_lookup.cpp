/**
 * @file
 * Private database lookup (the paper's DB Lookup benchmark domain):
 * the client sends an encrypted key; the server homomorphically
 * compares it against its table with Fermat equality tests and returns
 * the encrypted value — without learning which entry matched.
 *
 * Small parameters for demonstration; the bench suite runs the
 * realistic L=17 configuration.
 */
#include <cstdio>

#include "fhe/bgv.h"

using namespace f1;

int
main()
{
    // t = 257 keeps the equality test shallow: x^(t-1) = x^256 is 8
    // squarings. Non-packed: the query lives in coefficient 0 so ring
    // products act coefficient-wise on it.
    FheParams params;
    params.n = 256;
    params.maxLevel = 12;
    params.plainModulus = 257; // slot-friendly at N = 128? -> coeffs
    FheContext ctx(params);
    BgvScheme bgv(&ctx, 257);

    struct Entry
    {
        uint64_t key, value;
    };
    const Entry db[] = {{17, 170}, {42, 111}, {99, 23}, {7, 201}};
    const uint64_t query_key = 42;

    printf("client: encrypting query key %llu\n",
           (unsigned long long)query_key);
    std::vector<uint64_t> q(params.n, 0);
    q[0] = query_key;
    Ciphertext ct = bgv.encryptCoeffs(q, params.maxLevel);

    // Server side: sum_e value_e * (1 - (q - key_e)^(t-1)).
    printf("server: scanning %zu entries homomorphically\n",
           std::size(db));
    const uint64_t t = 257;
    Ciphertext acc;
    bool first = true;
    for (const Entry &e : db) {
        // d = q - key_e (constant term only).
        std::vector<uint64_t> neg(params.n, 0);
        neg[0] = (t - e.key % t) % t;
        Ciphertext d =
            bgv.addPlain(ct, bgv.encoder().encodeCoeffs(neg));
        // d^(t-1) via 8 squarings (t - 1 = 256).
        for (int s = 0; s < 8; ++s) {
            d = bgv.modSwitch(d);
            d = bgv.mul(d, d);
        }
        // mask = 1 - d^(t-1) (1 on match, 0 otherwise).
        Ciphertext mask = bgv.mulScalarInt(d, t - 1); // negate
        std::vector<uint64_t> one(params.n, 0);
        one[0] = 1;
        mask = bgv.addPlain(mask, bgv.encoder().encodeCoeffs(one));
        // select value_e.
        std::vector<uint64_t> val(params.n, 0);
        val[0] = e.value;
        Ciphertext sel =
            bgv.mulPlain(mask, bgv.encoder().encodeCoeffs(val));
        acc = first ? sel : bgv.add(acc, sel);
        first = false;
    }

    auto out = bgv.decryptCoeffs(acc);
    printf("client: decrypted value = %llu (expected 111)\n",
           (unsigned long long)out[0]);
    printf("noise budget remaining: %.0f bits\n",
           bgv.noiseBudgetBits(acc));
    return out[0] == 111 ? 0 : 1;
}
