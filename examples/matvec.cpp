/**
 * @file
 * The paper's running example (Listing 2): a 4 x 16K matrix-vector
 * multiply using homomorphic rotations for the inner sums, written in
 * the DSL, verified against plaintext math via the reference executor,
 * and compiled for F1.
 */
#include <cstdio>

#include "compiler/compiler.h"
#include "sim/reference_executor.h"

using namespace f1;

int
main()
{
    // A smaller instance (N = 2048, L = 4) so the software reference
    // runs instantly; the bench suite exercises the full 16K/L=16.
    const uint32_t n = 2048, level = 4, rows = 4;
    Program p(n, level, "matvec");
    int v = p.input();
    std::vector<int> outputs;
    std::vector<int> weight_handles;
    for (uint32_t r = 0; r < rows; ++r) {
        int w = p.inputPlain();
        weight_handles.push_back(w);
        int prod = p.mulPlain(v, w);
        for (uint32_t s = 0; (1u << s) < n / 2; ++s)
            prod = p.add(prod, p.rotate(prod, 1u << s));
        outputs.push_back(p.output(prod));
    }

    // Reference execution on real encrypted data (BGV).
    FheParams params;
    params.n = n;
    params.maxLevel = level;
    FheContext ctx(params);
    BgvScheme bgv(&ctx);
    ReferenceExecutor exec(p, &bgv);

    const uint64_t t = bgv.plainModulus();
    std::vector<uint64_t> vec(n);
    for (uint32_t i = 0; i < n; ++i)
        vec[i] = (i * 37 + 11) % 1000;
    exec.setInputSlots(0, vec);
    std::vector<std::vector<uint64_t>> matrix;
    for (uint32_t r = 0; r < rows; ++r) {
        std::vector<uint64_t> row(n);
        for (uint32_t i = 0; i < n; ++i)
            row[i] = (r + 1) * (i % 17 + 1) % t;
        exec.setPlainSlots(weight_handles[r], row);
        matrix.push_back(std::move(row));
    }

    auto res = exec.run();
    printf("software execution: %.1f ms\n", res.wallMs);

    bool ok = true;
    for (uint32_t r = 0; r < rows; ++r) {
        auto slots = bgv.decryptSlots(res.outputs.at(outputs[r]));
        // Expected: sum over the first row-half of vec[i]*row[i].
        uint64_t expect = 0;
        for (uint32_t i = 0; i < n / 2; ++i)
            expect = (expect + vec[i] * matrix[r][i]) % t;
        ok &= slots[0] == expect;
        printf("row %u dot-product: got %llu, expect %llu %s\n", r,
               (unsigned long long)slots[0],
               (unsigned long long)expect,
               slots[0] == expect ? "[ok]" : "[MISMATCH]");
    }

    // Compile for F1.
    F1Config cfg;
    auto compiled = compileProgram(p, cfg);
    printf("F1 simulated time: %.3f ms (vs %.1f ms in software: "
           "%.0fx)\n",
           compiled.schedule.timeMs(cfg), res.wallMs,
           res.wallMs / compiled.schedule.timeMs(cfg));
    return ok ? 0 : 1;
}
