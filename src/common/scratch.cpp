#include "common/scratch.h"

#include <algorithm>
#include <memory>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace f1 {

namespace {

/**
 * Per-thread block cache. Blocks are held by unique_ptr so their
 * addresses stay stable while the vector grows; handles keep raw
 * ScratchBlock pointers across checkout/release.
 */
struct ThreadCache
{
    std::vector<std::unique_ptr<detail::ScratchBlock>> blocks;
};

thread_local ThreadCache t_cache;

/**
 * The arena's process-wide counters now live in the metrics registry
 * ("scratch.*" — see README's metrics catalog); ScratchArena::stats()
 * is a thin shim reading them back. Resolved once: an increment is
 * the same relaxed fetch_add the old bespoke atomics cost.
 */
struct ScratchCounters
{
    obs::Counter &checkouts;
    obs::Counter &heapAllocs;
    obs::Counter &heapWords;
    obs::Counter &live;

    static ScratchCounters &
    get()
    {
        static ScratchCounters c{
            obs::MetricsRegistry::global().counter("scratch.checkouts"),
            obs::MetricsRegistry::global().counter(
                "scratch.heap_allocs"),
            obs::MetricsRegistry::global().counter("scratch.heap_words"),
            obs::MetricsRegistry::global().counter("scratch.live"),
        };
        return c;
    }
};

/** Capacities are rounded to powers of two so the handful of distinct
 *  request sizes per workload (n, limb×n, l) converge on a small set
 *  of reusable blocks. */
size_t
roundCapacity(size_t words)
{
    size_t cap = 8;
    while (cap < words)
        cap <<= 1;
    return cap;
}

} // namespace

namespace detail {

ScratchBlock *
scratchAcquire(size_t words)
{
    ScratchCounters &ctr = ScratchCounters::get();
    ctr.checkouts.inc();
    ctr.live.inc();

    // Best fit among free blocks: smallest capacity that still holds
    // the request, so an n-sized checkout does not pin a limb×n block.
    ScratchBlock *best = nullptr;
    for (auto &b : t_cache.blocks) {
        if (!b->inUse && b->words.size() >= words &&
            (!best || b->words.size() < best->words.size()))
            best = b.get();
    }
    if (!best) {
        const size_t cap = roundCapacity(words);
        auto fresh = std::make_unique<ScratchBlock>();
        fresh->words.resize(cap);
        best = fresh.get();
        t_cache.blocks.push_back(std::move(fresh));
        ctr.heapAllocs.inc();
        ctr.heapWords.inc(cap);
    }
    best->inUse = true;
    // Per-job scratch high-water: attributed to the active profile
    // collector (if any) by block capacity, the footprint that
    // actually bounds memory.
    obs::profileScratchAcquire(
        static_cast<int64_t>(best->words.size()));
    return best;
}

void
scratchRelease(ScratchBlock *block)
{
    block->inUse = false;
    obs::profileScratchRelease(
        static_cast<int64_t>(block->words.size()));
    ScratchCounters::get().live.dec();
}

} // namespace detail

ScratchArena::Handle<uint32_t>
ScratchArena::u32(size_t count, bool zeroed)
{
    auto *block = detail::scratchAcquire((count + 1) / 2);
    Handle<uint32_t> h(block, count);
    if (zeroed)
        std::fill_n(h.data(), count, 0u);
    return h;
}

ScratchArena::Handle<int64_t>
ScratchArena::i64(size_t count, bool zeroed)
{
    auto *block = detail::scratchAcquire(count);
    Handle<int64_t> h(block, count);
    if (zeroed)
        std::fill_n(h.data(), count, int64_t{0});
    return h;
}

ScratchArena::Stats
ScratchArena::stats()
{
    ScratchCounters &ctr = ScratchCounters::get();
    return {ctr.checkouts.value(), ctr.heapAllocs.value(),
            ctr.heapWords.value(), ctr.live.value()};
}

void
ScratchArena::resetStats()
{
    ScratchCounters &ctr = ScratchCounters::get();
    ctr.checkouts.store(0);
    ctr.heapAllocs.store(0);
    ctr.heapWords.store(0);
}

void
ScratchArena::releaseThreadCache()
{
    for (const auto &b : t_cache.blocks)
        F1_CHECK(!b->inUse,
                 "releaseThreadCache with a handle still outstanding");
    t_cache.blocks.clear();
}

} // namespace f1
