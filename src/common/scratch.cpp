#include "common/scratch.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/error.h"

namespace f1 {

namespace {

/**
 * Per-thread block cache. Blocks are held by unique_ptr so their
 * addresses stay stable while the vector grows; handles keep raw
 * ScratchBlock pointers across checkout/release.
 */
struct ThreadCache
{
    std::vector<std::unique_ptr<detail::ScratchBlock>> blocks;
};

thread_local ThreadCache t_cache;

std::atomic<uint64_t> g_checkouts{0};
std::atomic<uint64_t> g_heapAllocs{0};
std::atomic<uint64_t> g_heapWords{0};
std::atomic<uint64_t> g_live{0};

/** Capacities are rounded to powers of two so the handful of distinct
 *  request sizes per workload (n, limb×n, l) converge on a small set
 *  of reusable blocks. */
size_t
roundCapacity(size_t words)
{
    size_t cap = 8;
    while (cap < words)
        cap <<= 1;
    return cap;
}

} // namespace

namespace detail {

ScratchBlock *
scratchAcquire(size_t words)
{
    g_checkouts.fetch_add(1, std::memory_order_relaxed);
    g_live.fetch_add(1, std::memory_order_relaxed);

    // Best fit among free blocks: smallest capacity that still holds
    // the request, so an n-sized checkout does not pin a limb×n block.
    ScratchBlock *best = nullptr;
    for (auto &b : t_cache.blocks) {
        if (!b->inUse && b->words.size() >= words &&
            (!best || b->words.size() < best->words.size()))
            best = b.get();
    }
    if (!best) {
        const size_t cap = roundCapacity(words);
        auto fresh = std::make_unique<ScratchBlock>();
        fresh->words.resize(cap);
        best = fresh.get();
        t_cache.blocks.push_back(std::move(fresh));
        g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
        g_heapWords.fetch_add(cap, std::memory_order_relaxed);
    }
    best->inUse = true;
    return best;
}

void
scratchRelease(ScratchBlock *block)
{
    block->inUse = false;
    g_live.fetch_sub(1, std::memory_order_relaxed);
}

} // namespace detail

ScratchArena::Handle<uint32_t>
ScratchArena::u32(size_t count, bool zeroed)
{
    auto *block = detail::scratchAcquire((count + 1) / 2);
    Handle<uint32_t> h(block, count);
    if (zeroed)
        std::fill_n(h.data(), count, 0u);
    return h;
}

ScratchArena::Handle<int64_t>
ScratchArena::i64(size_t count, bool zeroed)
{
    auto *block = detail::scratchAcquire(count);
    Handle<int64_t> h(block, count);
    if (zeroed)
        std::fill_n(h.data(), count, int64_t{0});
    return h;
}

ScratchArena::Stats
ScratchArena::stats()
{
    return {g_checkouts.load(std::memory_order_relaxed),
            g_heapAllocs.load(std::memory_order_relaxed),
            g_heapWords.load(std::memory_order_relaxed),
            g_live.load(std::memory_order_relaxed)};
}

void
ScratchArena::resetStats()
{
    g_checkouts.store(0, std::memory_order_relaxed);
    g_heapAllocs.store(0, std::memory_order_relaxed);
    g_heapWords.store(0, std::memory_order_relaxed);
}

void
ScratchArena::releaseThreadCache()
{
    for (const auto &b : t_cache.blocks)
        F1_CHECK(!b->inUse,
                 "releaseThreadCache with a handle still outstanding");
    t_cache.blocks.clear();
}

} // namespace f1
