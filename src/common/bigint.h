/**
 * @file
 * Minimal arbitrary-precision unsigned integer. The FHE layer keeps all
 * ciphertext arithmetic in RNS form (32-bit residues), so BigInt is only
 * needed at the edges: CRT recombination during decryption/decoding and
 * exact correctness checks in tests. Only the operations those paths
 * need are provided.
 */
#ifndef F1_COMMON_BIGINT_H
#define F1_COMMON_BIGINT_H

#include <cstdint>
#include <string>
#include <vector>

namespace f1 {

/** Unsigned big integer, little-endian base-2^64 limbs. */
class BigInt
{
  public:
    BigInt() : limbs_{0} {}
    explicit BigInt(uint64_t v) : limbs_{v} {}

    /** Comparison: negative / zero / positive like memcmp. */
    int compare(const BigInt &o) const;
    bool operator==(const BigInt &o) const { return compare(o) == 0; }
    bool operator!=(const BigInt &o) const { return compare(o) != 0; }
    bool operator<(const BigInt &o) const { return compare(o) < 0; }
    bool operator<=(const BigInt &o) const { return compare(o) <= 0; }
    bool operator>(const BigInt &o) const { return compare(o) > 0; }
    bool operator>=(const BigInt &o) const { return compare(o) >= 0; }

    BigInt &operator+=(const BigInt &o);
    BigInt operator+(const BigInt &o) const;

    /** Subtraction; requires *this >= o. */
    BigInt &operator-=(const BigInt &o);
    BigInt operator-(const BigInt &o) const;

    /** Multiply by a 64-bit word. */
    BigInt &mulSmall(uint64_t m);
    BigInt timesSmall(uint64_t m) const;

    /** Add a 64-bit word. */
    BigInt &addSmall(uint64_t a);

    /** Remainder modulo a 64-bit word; requires m > 0. */
    uint64_t modSmall(uint64_t m) const;

    /** Full product (used by tests and modulus-chain setup). */
    BigInt operator*(const BigInt &o) const;

    /** Reduce modulo q by repeated subtraction; *this must be < k*q for
     *  small k (true for CRT recombination, where the sum is < L*Q). */
    void reduceBySubtraction(const BigInt &q);

    /** Value as double (may lose precision; used for CKKS decode). */
    double toDouble() const;

    /** Low 64 bits. */
    uint64_t toU64() const { return limbs_[0]; }

    bool isZero() const;

    /** Number of significant bits. */
    size_t bitLength() const;

    /** Hex string, most-significant digit first (for debugging). */
    std::string toHex() const;

  private:
    void trim();

    std::vector<uint64_t> limbs_;
};

} // namespace f1

#endif // F1_COMMON_BIGINT_H
