/**
 * @file
 * Thread-local pooled scratch arena.
 *
 * The RNS hot paths (key-switching, basis extension, GSW products)
 * need short-lived n- and limb×n-sized working buffers on every call.
 * Allocating them with std::vector puts the allocator on the critical
 * path of every key-switch digit — exactly the software overhead that
 * statically managed accelerator scratchpads (F1 §4, FAB, BASALISC)
 * avoid. This arena caches buffers per thread and hands them out via
 * RAII handles, so a warmed-up steady state performs zero heap
 * allocations: the arena's heapAllocs counter stops growing while
 * checkouts keeps counting.
 *
 * Checkout discipline:
 *  - ScratchArena::u32(count) / ::i64(count) return a Handle<T> whose
 *    span() is a count-element buffer. The handle returns the buffer
 *    to the owning thread's pool on destruction (scope exit).
 *  - A handle must be released on the thread that checked it out.
 *    RAII scoping inside a parallelFor body satisfies this: pool
 *    worker threads each grow their own cache, which persists across
 *    batches (the software analogue of a vector cluster's register
 *    file and scratchpad staying resident).
 *  - Buffer contents are unspecified at checkout unless zeroed=true.
 *  - Handles may be moved (e.g. returned from a helper) but not
 *    copied; moving does not change the owning thread.
 *
 * Stats live in the process-wide metrics registry ("scratch.*"
 * counters, obs/metrics.h) so benchmarks and the serving layer read
 * them alongside every other metric; ScratchArena::stats() remains as
 * a thin shim (see bench_ntt_lazy and tests/test_scratch). When a
 * profile collector is installed (obs/profile.h), checkouts also feed
 * the per-job scratch high-water mark.
 */
#ifndef F1_COMMON_SCRATCH_H
#define F1_COMMON_SCRATCH_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace f1 {

namespace detail {

/** One pooled buffer; 8-byte-aligned storage tagged with a free bit. */
struct ScratchBlock
{
    std::vector<uint64_t> words;
    bool inUse = false;
};

ScratchBlock *scratchAcquire(size_t words);
void scratchRelease(ScratchBlock *block);

} // namespace detail

class ScratchArena
{
  public:
    /** Process-wide counters, aggregated over all threads. */
    struct Stats
    {
        uint64_t checkouts;   //!< total u32()/i64() calls
        uint64_t heapAllocs;  //!< blocks that hit the heap (cold path)
        uint64_t heapWords;   //!< total uint64 words heap-allocated
        uint64_t live;        //!< handles currently outstanding
    };

    /** RAII checkout of a count-element T buffer. */
    template <typename T> class Handle
    {
        static_assert(sizeof(T) <= sizeof(uint64_t) &&
                          alignof(T) <= alignof(uint64_t),
                      "scratch blocks are uint64-backed");

      public:
        Handle() = default;
        Handle(Handle &&o) noexcept
            : block_(o.block_), count_(o.count_)
        {
            o.block_ = nullptr;
            o.count_ = 0;
        }
        Handle &
        operator=(Handle &&o) noexcept
        {
            if (this != &o) {
                reset();
                block_ = o.block_;
                count_ = o.count_;
                o.block_ = nullptr;
                o.count_ = 0;
            }
            return *this;
        }
        Handle(const Handle &) = delete;
        Handle &operator=(const Handle &) = delete;
        ~Handle() { reset(); }

        T *
        data()
        {
            return reinterpret_cast<T *>(block_->words.data());
        }
        const T *
        data() const
        {
            return reinterpret_cast<const T *>(block_->words.data());
        }
        size_t size() const { return count_; }
        std::span<T> span() { return {data(), count_}; }
        std::span<const T> span() const { return {data(), count_}; }
        T &operator[](size_t i) { return data()[i]; }
        const T &operator[](size_t i) const { return data()[i]; }

        /** Returns the buffer to the pool early (idempotent). */
        void
        reset()
        {
            if (block_) {
                detail::scratchRelease(block_);
                block_ = nullptr;
                count_ = 0;
            }
        }

      private:
        friend class ScratchArena;
        Handle(detail::ScratchBlock *block, size_t count)
            : block_(block), count_(count)
        {
        }

        detail::ScratchBlock *block_ = nullptr;
        size_t count_ = 0;
    };

    static Handle<uint32_t> u32(size_t count, bool zeroed = false);
    static Handle<int64_t> i64(size_t count, bool zeroed = false);

    /** Deprecated shim over the metrics registry's "scratch.*"
     *  counters; prefer MetricsRegistry::global().snapshot(). */
    static Stats stats();
    static void resetStats(); //!< zeroes counters except live

    /**
     * Frees the calling thread's cached blocks (all must be checked
     * in). For tests that measure cold-path behaviour.
     */
    static void releaseThreadCache();
};

} // namespace f1

#endif // F1_COMMON_SCRATCH_H
