/**
 * @file
 * Shared wall-clock helper for the runtime and benches: milliseconds
 * on the steady (monotonic) clock.
 */
#ifndef F1_COMMON_TIME_UTIL_H
#define F1_COMMON_TIME_UTIL_H

#include <chrono>

namespace f1 {

inline double
steadyNowMs()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double, std::milli>(
               clock::now().time_since_epoch())
        .count();
}

} // namespace f1

#endif // F1_COMMON_TIME_UTIL_H
