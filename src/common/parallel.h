/**
 * @file
 * Limb-parallel execution engine.
 *
 * F1 exploits the embarrassing parallelism of RNS: every residue
 * polynomial (limb) of a ciphertext is processed by an independent
 * vector unit (paper §2.3, §4). The software functional layer mirrors
 * that mapping with a process-wide thread pool: parallelForLimbs
 * dispatches one work unit per residue, parallelFor handles generic
 * index ranges (e.g. coefficient blocks in basis extension).
 *
 * Determinism contract: every work unit writes a disjoint output slice
 * and performs exact modular arithmetic, so results are bit-identical
 * to the serial path regardless of thread count or scheduling. The
 * reference executor cross-validates this; tests/test_parallel.cpp
 * asserts it directly.
 *
 * Thread count resolution (see configuredThreadCount):
 *   1. explicit setGlobalThreadCount() call (bench sweeps, tests),
 *   2. F1_THREADS environment variable,
 *   3. std::thread::hardware_concurrency().
 * A count of 1 is the serial fallback: bodies run inline on the
 * calling thread with no pool hand-off, for deterministic debugging
 * under gdb/valgrind.
 */
#ifndef F1_COMMON_PARALLEL_H
#define F1_COMMON_PARALLEL_H

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace f1 {

/**
 * Fixed-size pool of worker threads executing counted loops. The
 * calling thread participates in every loop, so a pool of T threads
 * uses T-1 workers. Nested calls (a body invoking run() again) execute
 * inline serially — per-limb bodies stay coarse and never deadlock.
 */
class ThreadPool
{
  public:
    /** @param threads total concurrency, including the caller (>= 1) */
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();
    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /**
     * Runs body(i) for every i in [begin, end) and blocks until all
     * iterations complete. Iterations are claimed dynamically from a
     * shared counter. The first exception thrown by any iteration is
     * rethrown on the calling thread after the loop drains.
     */
    void run(size_t begin, size_t end,
             const std::function<void(size_t)> &body);

  private:
    struct State;
    void workerLoop();

    std::unique_ptr<State> state_;
    std::vector<std::thread> workers_;
};

/**
 * Strict F1_THREADS parser: optional leading whitespace, optional '+',
 * decimal digits, full-string consumption, value >= 1. Throws
 * FatalError on anything else — a malformed override must not
 * silently fall back to hardware concurrency on a benchmark run.
 * Exposed for tests.
 */
unsigned parseThreadCountEnv(const char *text);

/**
 * Resolved default: F1_THREADS override (validated by
 * parseThreadCountEnv; throws on malformed values), else hardware
 * concurrency.
 */
unsigned configuredThreadCount();

/** Total threads the global pool currently uses. */
unsigned globalThreadCount();

/**
 * Resizes the global pool. n = 0 restores the configured default;
 * n = 1 selects the serial fallback. Safe concurrently with in-flight
 * parallelFor calls: each call holds a shared snapshot of the pool it
 * started on, and a retired pool is destroyed only after its last
 * in-flight batch drains.
 */
void setGlobalThreadCount(unsigned n);

/**
 * Runs body(i) for every i in [begin, end) on the global pool.
 * Serial (inline, in index order) when the pool has one thread, the
 * range has one element, or the caller is itself a pool worker.
 */
void parallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)> &body);

/**
 * RAII guard that forces parallelFor calls issued from the current
 * thread (and anything it calls) to run inline, in index order, for
 * the guard's lifetime. The serving engine's throughput mode puts one
 * guard on each job worker: with W workers each executing one job
 * single-threaded, concurrency comes entirely from job-level
 * parallelism and jobs never contend for the shared pool. Inline
 * execution is the serial path, so outputs are unchanged.
 */
class InlineParallelScope
{
  public:
    InlineParallelScope();
    ~InlineParallelScope();
    InlineParallelScope(const InlineParallelScope &) = delete;
    InlineParallelScope &operator=(const InlineParallelScope &) = delete;

  private:
    bool prev_;
};

/**
 * Per-limb dispatch over the residues of an RNS polynomial: body(limb)
 * for limb in [0, levels) — the software analogue of assigning residue
 * polynomials to F1's vector clusters.
 */
inline void
parallelForLimbs(size_t levels, const std::function<void(size_t)> &body)
{
    parallelFor(0, levels, body);
}

} // namespace f1

#endif // F1_COMMON_PARALLEL_H
