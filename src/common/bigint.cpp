#include "common/bigint.h"

#include <algorithm>

#include "common/error.h"

namespace f1 {

void
BigInt::trim()
{
    while (limbs_.size() > 1 && limbs_.back() == 0)
        limbs_.pop_back();
}

int
BigInt::compare(const BigInt &o) const
{
    if (limbs_.size() != o.limbs_.size())
        return limbs_.size() < o.limbs_.size() ? -1 : 1;
    for (size_t i = limbs_.size(); i-- > 0;) {
        if (limbs_[i] != o.limbs_[i])
            return limbs_[i] < o.limbs_[i] ? -1 : 1;
    }
    return 0;
}

BigInt &
BigInt::operator+=(const BigInt &o)
{
    if (o.limbs_.size() > limbs_.size())
        limbs_.resize(o.limbs_.size(), 0);
    unsigned __int128 carry = 0;
    for (size_t i = 0; i < limbs_.size(); ++i) {
        unsigned __int128 s = carry + limbs_[i];
        if (i < o.limbs_.size())
            s += o.limbs_[i];
        limbs_[i] = static_cast<uint64_t>(s);
        carry = s >> 64;
    }
    if (carry)
        limbs_.push_back(static_cast<uint64_t>(carry));
    return *this;
}

BigInt
BigInt::operator+(const BigInt &o) const
{
    BigInt r = *this;
    r += o;
    return r;
}

BigInt &
BigInt::operator-=(const BigInt &o)
{
    F1_CHECK(*this >= o, "BigInt subtraction underflow");
    unsigned __int128 borrow = 0;
    for (size_t i = 0; i < limbs_.size(); ++i) {
        unsigned __int128 sub = borrow;
        if (i < o.limbs_.size())
            sub += o.limbs_[i];
        if (limbs_[i] >= sub) {
            limbs_[i] = static_cast<uint64_t>(limbs_[i] - sub);
            borrow = 0;
        } else {
            limbs_[i] = static_cast<uint64_t>(
                ((unsigned __int128)1 << 64) + limbs_[i] - sub);
            borrow = 1;
        }
    }
    trim();
    return *this;
}

BigInt
BigInt::operator-(const BigInt &o) const
{
    BigInt r = *this;
    r -= o;
    return r;
}

BigInt &
BigInt::mulSmall(uint64_t m)
{
    unsigned __int128 carry = 0;
    for (auto &limb : limbs_) {
        unsigned __int128 p = (unsigned __int128)limb * m + carry;
        limb = static_cast<uint64_t>(p);
        carry = p >> 64;
    }
    if (carry)
        limbs_.push_back(static_cast<uint64_t>(carry));
    trim();
    return *this;
}

BigInt
BigInt::timesSmall(uint64_t m) const
{
    BigInt r = *this;
    r.mulSmall(m);
    return r;
}

BigInt &
BigInt::addSmall(uint64_t a)
{
    return *this += BigInt(a);
}

uint64_t
BigInt::modSmall(uint64_t m) const
{
    F1_REQUIRE(m > 0, "modSmall modulus must be positive");
    unsigned __int128 rem = 0;
    for (size_t i = limbs_.size(); i-- > 0;) {
        rem = (rem << 64) | limbs_[i];
        rem %= m;
    }
    return static_cast<uint64_t>(rem);
}

BigInt
BigInt::operator*(const BigInt &o) const
{
    BigInt r;
    r.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
    for (size_t i = 0; i < limbs_.size(); ++i) {
        unsigned __int128 carry = 0;
        for (size_t j = 0; j < o.limbs_.size(); ++j) {
            unsigned __int128 cur = r.limbs_[i + j] + carry +
                (unsigned __int128)limbs_[i] * o.limbs_[j];
            r.limbs_[i + j] = static_cast<uint64_t>(cur);
            carry = cur >> 64;
        }
        size_t k = i + o.limbs_.size();
        while (carry) {
            unsigned __int128 cur = r.limbs_[k] + carry;
            r.limbs_[k] = static_cast<uint64_t>(cur);
            carry = cur >> 64;
            ++k;
        }
    }
    r.trim();
    return r;
}

void
BigInt::reduceBySubtraction(const BigInt &q)
{
    F1_CHECK(!q.isZero(), "reduce by zero modulus");
    while (*this >= q)
        *this -= q;
}

double
BigInt::toDouble() const
{
    double r = 0;
    for (size_t i = limbs_.size(); i-- > 0;)
        r = r * 0x1.0p64 + static_cast<double>(limbs_[i]);
    return r;
}

bool
BigInt::isZero() const
{
    for (auto limb : limbs_)
        if (limb != 0)
            return false;
    return true;
}

size_t
BigInt::bitLength() const
{
    size_t top = limbs_.size() - 1;
    uint64_t hi = limbs_[top];
    if (hi == 0)
        return top == 0 ? 0 : 0; // trimmed: only possible for value 0
    size_t bits = 0;
    while (hi) {
        hi >>= 1;
        ++bits;
    }
    return top * 64 + bits;
}

std::string
BigInt::toHex() const
{
    static const char *digits = "0123456789abcdef";
    std::string s;
    for (size_t i = limbs_.size(); i-- > 0;) {
        for (int shift = 60; shift >= 0; shift -= 4)
            s.push_back(digits[(limbs_[i] >> shift) & 0xf]);
    }
    size_t first = s.find_first_not_of('0');
    if (first == std::string::npos)
        return "0";
    return s.substr(first);
}

} // namespace f1
