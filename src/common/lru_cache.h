/**
 * @file
 * Thread-safe LRU cache shared by the FHE key-switch hint caches and
 * the serving runtime's plaintext-encoding cache.
 *
 * Values are held as shared_ptr<const V>: an entry handed to a caller
 * stays valid after a concurrent eviction (the caller's shared_ptr
 * keeps it alive), so hot-path users never hold the cache lock while
 * consuming a value. Capacity 0 means unbounded — the scheme-level
 * hint caches default to that, preserving the pre-runtime behavior of
 * the std::map caches they replace.
 *
 * getOrCreate() runs the factory OUTSIDE the cache lock: factories in
 * this codebase reach into the shared thread pool (hint generation
 * parallelizes over limbs), and holding the cache lock across a pool
 * dispatch while a pool batch body queries the same cache is a
 * lock-order inversion — two application threads can deadlock.
 * Concurrent misses on the same key may therefore compute it more
 * than once; the first insert wins (put() semantics), which is safe
 * because every factory here is deterministic per key, so the racing
 * values are identical.
 *
 * Observability: a cache constructed with a name registers its
 * hit/miss/eviction counters as gauges in the metrics registry
 * ("cache.<name>.hits" etc.); same-name instances are SUMMED at
 * snapshot, so per-instance stats() stays exact (tests rely on that)
 * while the registry aggregates fleet-wide. Hits and misses also feed
 * the active profile collector for per-job attribution.
 */
#ifndef F1_COMMON_LRU_CACHE_H
#define F1_COMMON_LRU_CACHE_H

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/profile.h"

namespace f1 {

struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;

    double
    hitRate() const
    {
        const uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache
{
  public:
    /**
     * @param capacity max entries; 0 = unbounded (never evicts).
     * @param name     non-empty registers this instance's counters as
     *                 "cache.<name>.{hits,misses,evictions,size}"
     *                 gauges in the global metrics registry.
     */
    explicit LruCache(size_t capacity = 0, const std::string &name = {})
        : capacity_(capacity)
    {
        if (!name.empty()) {
            auto &reg = obs::MetricsRegistry::global();
            gauges_[0] = reg.gauge("cache." + name + ".hits",
                                   [this] { return stats().hits; });
            gauges_[1] = reg.gauge("cache." + name + ".misses",
                                   [this] { return stats().misses; });
            gauges_[2] =
                reg.gauge("cache." + name + ".evictions",
                          [this] { return stats().evictions; });
            gauges_[3] = reg.gauge("cache." + name + ".size", [this] {
                return static_cast<uint64_t>(size());
            });
        }
    }

    LruCache(const LruCache &) = delete;
    LruCache &operator=(const LruCache &) = delete;

    /** Looks up `key`; returns nullptr on miss. Counts a hit/miss. */
    std::shared_ptr<const V>
    get(const K &key)
    {
        std::lock_guard<std::mutex> lock(m_);
        auto it = map_.find(key);
        if (it == map_.end()) {
            ++stats_.misses;
            obs::profileAdd(obs::ProfileCounter::kCacheMiss);
            return nullptr;
        }
        ++stats_.hits;
        obs::profileAdd(obs::ProfileCounter::kCacheHit);
        touch(it);
        return it->second.value;
    }

    /**
     * Inserts or refreshes `key`. Returns the cached pointer (the
     * existing one if another thread raced the insert first — the
     * first value wins, keeping all readers consistent).
     */
    std::shared_ptr<const V>
    put(const K &key, V value)
    {
        return putShared(key,
                         std::make_shared<const V>(std::move(value)));
    }

    std::shared_ptr<const V>
    putShared(const K &key, std::shared_ptr<const V> value)
    {
        std::lock_guard<std::mutex> lock(m_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            touch(it);
            return it->second.value;
        }
        lru_.push_front(key);
        map_.emplace(key, Entry{std::move(value), lru_.begin()});
        evictOverflow();
        return map_.find(key)->second.value;
    }

    /**
     * Returns the entry for `key`, running `make()` to create it on a
     * miss. The factory executes outside the cache lock (see file
     * comment): racing misses on one key may each run it, and the
     * first completed insert wins — the factory must be deterministic
     * per key.
     */
    template <typename F>
    std::shared_ptr<const V>
    getOrCreate(const K &key, F &&make)
    {
        {
            std::lock_guard<std::mutex> lock(m_);
            auto it = map_.find(key);
            if (it != map_.end()) {
                ++stats_.hits;
                obs::profileAdd(obs::ProfileCounter::kCacheHit);
                touch(it);
                return it->second.value;
            }
            ++stats_.misses;
            obs::profileAdd(obs::ProfileCounter::kCacheMiss);
        }
        return putShared(key, std::make_shared<const V>(make()));
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return map_.size();
    }

    size_t capacity() const { return capacity_; }

    /** Changes the capacity, evicting LRU entries if now over. */
    void
    setCapacity(size_t capacity)
    {
        std::lock_guard<std::mutex> lock(m_);
        capacity_ = capacity;
        evictOverflow();
    }

    /** Deprecated as an aggregation point: per-instance shim; prefer
     *  the registry's "cache.<name>.*" gauges for fleet-wide totals. */
    CacheStats
    stats() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return stats_;
    }

    /** Drops all entries (outstanding shared_ptrs stay valid). */
    void
    clear()
    {
        std::lock_guard<std::mutex> lock(m_);
        map_.clear();
        lru_.clear();
    }

  private:
    struct Entry
    {
        std::shared_ptr<const V> value;
        typename std::list<K>::iterator pos;
    };
    using Map = std::unordered_map<K, Entry, Hash>;

    /** Moves the entry to the front of the recency list. */
    void
    touch(typename Map::iterator it)
    {
        lru_.splice(lru_.begin(), lru_, it->second.pos);
    }

    void
    evictOverflow()
    {
        while (capacity_ != 0 && map_.size() > capacity_) {
            map_.erase(lru_.back());
            lru_.pop_back();
            ++stats_.evictions;
        }
    }

    mutable std::mutex m_;
    size_t capacity_;
    std::list<K> lru_; //!< front = most recently used
    Map map_;
    CacheStats stats_;

    // Declared LAST so they unregister FIRST during destruction:
    // snapshot() holds the registry lock while evaluating gauges, and
    // ~GaugeHandle takes that lock, so after these members are gone
    // no snapshot can reach the dying cache.
    obs::GaugeHandle gauges_[4];
};

} // namespace f1

#endif // F1_COMMON_LRU_CACHE_H
