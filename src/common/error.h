/**
 * @file
 * Error-reporting macros, following the gem5 fatal()/panic() split:
 * F1_FATAL is for user errors (bad parameters), F1_PANIC for internal
 * invariant violations, F1_CHECK for cheap always-on assertions.
 */
#ifndef F1_COMMON_ERROR_H
#define F1_COMMON_ERROR_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace f1 {

/** Exception thrown on unrecoverable user-facing errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown on internal invariant violations (bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail {

[[noreturn]] inline void
throwFatal(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "fatal: " << file << ":" << line << ": " << msg;
    throw FatalError(os.str());
}

[[noreturn]] inline void
throwPanic(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "panic: " << file << ":" << line << ": " << msg;
    throw PanicError(os.str());
}

} // namespace detail
} // namespace f1

/** Abort with a user-error message; condition is the user's fault. */
#define F1_FATAL(msg)                                                       \
    do {                                                                    \
        std::ostringstream f1_os_;                                          \
        f1_os_ << msg;                                                      \
        ::f1::detail::throwFatal(__FILE__, __LINE__, f1_os_.str());         \
    } while (0)

/** Abort with an internal-error message; condition is a bug. */
#define F1_PANIC(msg)                                                       \
    do {                                                                    \
        std::ostringstream f1_os_;                                          \
        f1_os_ << msg;                                                      \
        ::f1::detail::throwPanic(__FILE__, __LINE__, f1_os_.str());         \
    } while (0)

/** Always-on assertion for internal invariants. */
#define F1_CHECK(cond, msg)                                                 \
    do {                                                                    \
        if (!(cond)) {                                                      \
            F1_PANIC("check failed: " #cond ": " << msg);                   \
        }                                                                   \
    } while (0)

/** Always-on validation of user-provided parameters. */
#define F1_REQUIRE(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            F1_FATAL("requirement failed: " #cond ": " << msg);             \
        }                                                                   \
    } while (0)

#endif // F1_COMMON_ERROR_H
