/**
 * @file
 * Deterministic non-cryptographic hashing for cache keys and derived
 * PRNG seeds. Based on the splitmix64 finalizer (the same mixer Rng
 * uses for seeding), so values are stable across platforms and runs —
 * a requirement for the runtime's determinism contract: key-switch
 * hints and cache keys derived from these hashes must not depend on
 * execution order or std::hash implementation details.
 */
#ifndef F1_COMMON_HASH_H
#define F1_COMMON_HASH_H

#include <cstddef>
#include <cstdint>
#include <span>

namespace f1 {

/** splitmix64 finalizer: bijective 64-bit mixing. */
inline uint64_t
hashMix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Order-sensitive combine: fold `v` into running hash `h`. */
inline uint64_t
hashCombine(uint64_t h, uint64_t v)
{
    return hashMix(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) +
                        (h >> 2)));
}

/** Hash of a span of 64-bit words (length-prefixed). */
inline uint64_t
hashU64Span(std::span<const uint64_t> words)
{
    uint64_t h = hashMix(words.size());
    for (uint64_t w : words)
        h = hashCombine(h, w);
    return h;
}

} // namespace f1

#endif // F1_COMMON_HASH_H
