#include "common/parallel.h"

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <limits>
#include <mutex>

#include "common/error.h"
#include "obs/profile.h"

namespace f1 {

namespace {

/** Set while a thread executes loop bodies; nested runs go inline. */
thread_local bool t_inPool = false;

} // namespace

/**
 * Shared pool state. A loop is published by bumping `generation`;
 * workers claim indices from the atomic `next` counter and report
 * completion through `active`. One batch is in flight at a time (run()
 * holds the loop until it drains), matching the bulk-synchronous
 * per-limb dispatch pattern of the callers.
 */
struct ThreadPool::State
{
    std::mutex callers; //!< serializes concurrent external run() calls
    std::mutex m;
    std::condition_variable cvStart;
    std::condition_variable cvDone;
    uint64_t generation = 0;
    bool stop = false;

    const std::function<void(size_t)> *body = nullptr;
    std::atomic<size_t> next{0};
    size_t end = 0;
    unsigned active = 0; //!< workers still draining the current batch
    std::exception_ptr error;

    /**
     * The dispatching thread's profile collector, inherited by every
     * worker for the batch's duration so per-limb work nested inside
     * a profiled job is attributed to that job even on pool threads
     * (see obs/profile.h). One TLS store per batch when profiling is
     * off — not per iteration.
     */
    obs::ProfileCollector *collector = nullptr;

    /** Claims indices until the range drains; records one exception. */
    void
    drain()
    {
        obs::ProfileScope profScope(collector);
        const auto &fn = *body;
        for (;;) {
            const size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= end)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(m);
                if (!error)
                    error = std::current_exception();
            }
        }
    }
};

ThreadPool::ThreadPool(unsigned threads) : state_(new State)
{
    F1_REQUIRE(threads >= 1, "thread pool needs at least one thread");
    workers_.reserve(threads - 1);
    for (unsigned i = 0; i + 1 < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(state_->m);
        state_->stop = true;
    }
    state_->cvStart.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    t_inPool = true;
    State &st = *state_;
    uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(st.m);
            st.cvStart.wait(lock, [&] {
                return st.stop || st.generation != seen;
            });
            if (st.stop)
                return;
            seen = st.generation;
        }
        st.drain();
        {
            std::lock_guard<std::mutex> lock(st.m);
            if (--st.active == 0)
                st.cvDone.notify_all();
        }
    }
}

void
ThreadPool::run(size_t begin, size_t end,
                const std::function<void(size_t)> &body)
{
    if (end <= begin)
        return;
    // Serial fallback: no workers, a single iteration, or a nested
    // call from inside a pool thread all run inline, in index order.
    if (workers_.empty() || end - begin == 1 || t_inPool) {
        for (size_t i = begin; i < end; ++i)
            body(i);
        return;
    }

    State &st = *state_;
    // One external batch at a time: a second application thread
    // calling in while workers drain would otherwise clobber the
    // shared batch state. Held until the batch fully drains.
    std::lock_guard<std::mutex> callerLock(st.callers);
    {
        std::lock_guard<std::mutex> lock(st.m);
        st.body = &body;
        st.next.store(begin, std::memory_order_relaxed);
        st.end = end;
        st.active = static_cast<unsigned>(workers_.size());
        st.error = nullptr;
        st.collector = obs::profileCollector();
        ++st.generation;
    }
    st.cvStart.notify_all();

    // The calling thread participates; mark it as in-pool so bodies
    // that recurse into parallelFor stay serial.
    t_inPool = true;
    st.drain();
    t_inPool = false;

    // st.body points at the caller's stack frame; it must be nulled
    // before run() returns on EVERY path — including an exception out
    // of cvDone.wait and the body-exception rethrow below — or a
    // later batch could chase a pointer into a dead frame.
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lock(st.m);
        try {
            st.cvDone.wait(lock, [&] { return st.active == 0; });
        } catch (...) {
            st.body = nullptr;
            throw;
        }
        st.body = nullptr;
        err = st.error;
        st.error = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

unsigned
parseThreadCountEnv(const char *text)
{
    // Accepted grammar (documented in README.md): optional leading
    // whitespace, an optional '+', then decimal digits; the whole
    // string must be consumed and the value must be >= 1. Anything
    // else ("", "0", "-3", "8x", "2 4") is an operator typo that must
    // not silently fall back to hardware concurrency.
    F1_REQUIRE(text != nullptr, "F1_THREADS: null value");
    char *end = nullptr;
    errno = 0;
    const long long v = std::strtoll(text, &end, 10);
    const bool consumed = end != text && *end == '\0';
    F1_REQUIRE(consumed && errno != ERANGE && v >= 1 &&
                   v <= std::numeric_limits<unsigned>::max(),
               "F1_THREADS must be a positive decimal integer, got \""
               << text << "\"");
    return static_cast<unsigned>(v);
}

unsigned
configuredThreadCount()
{
    if (const char *env = std::getenv("F1_THREADS"))
        return parseThreadCountEnv(env);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

namespace {

std::mutex g_poolMutex;
std::shared_ptr<ThreadPool> g_pool;

/**
 * Snapshot of the global pool. Callers hold the shared_ptr across
 * run(), so a concurrent setGlobalThreadCount() cannot destroy a pool
 * with batches in flight: the replacement only swaps the global slot,
 * and the retired pool is destroyed (joining its workers) when the
 * last in-flight caller drops its snapshot.
 */
std::shared_ptr<ThreadPool>
globalPool()
{
    std::lock_guard<std::mutex> lock(g_poolMutex);
    if (!g_pool)
        g_pool = std::make_shared<ThreadPool>(configuredThreadCount());
    return g_pool;
}

} // namespace

unsigned
globalThreadCount()
{
    return globalPool()->threads();
}

void
setGlobalThreadCount(unsigned n)
{
    const unsigned want = n == 0 ? configuredThreadCount() : n;
    std::shared_ptr<ThreadPool> retired;
    {
        std::lock_guard<std::mutex> lock(g_poolMutex);
        if (g_pool && g_pool->threads() == want)
            return;
        retired = std::move(g_pool);
        g_pool = std::make_shared<ThreadPool>(want);
    }
    // `retired` goes out of scope here, outside g_poolMutex. If other
    // threads are mid-parallelFor on the old pool they share ownership
    // and the destructor (which joins the workers) runs only after the
    // last of them finishes its batch.
}

InlineParallelScope::InlineParallelScope() : prev_(t_inPool)
{
    // Reuses the pool's own nested-call mechanism: a thread flagged as
    // in-pool always takes the inline path in ThreadPool::run.
    t_inPool = true;
}

InlineParallelScope::~InlineParallelScope()
{
    t_inPool = prev_;
}

void
parallelFor(size_t begin, size_t end,
            const std::function<void(size_t)> &body)
{
    globalPool()->run(begin, end, body);
}

} // namespace f1
