#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>

#include "common/error.h"

namespace f1 {

namespace {

/** Set while a thread executes loop bodies; nested runs go inline. */
thread_local bool t_inPool = false;

} // namespace

/**
 * Shared pool state. A loop is published by bumping `generation`;
 * workers claim indices from the atomic `next` counter and report
 * completion through `active`. One batch is in flight at a time (run()
 * holds the loop until it drains), matching the bulk-synchronous
 * per-limb dispatch pattern of the callers.
 */
struct ThreadPool::State
{
    std::mutex callers; //!< serializes concurrent external run() calls
    std::mutex m;
    std::condition_variable cvStart;
    std::condition_variable cvDone;
    uint64_t generation = 0;
    bool stop = false;

    const std::function<void(size_t)> *body = nullptr;
    std::atomic<size_t> next{0};
    size_t end = 0;
    unsigned active = 0; //!< workers still draining the current batch
    std::exception_ptr error;

    /** Claims indices until the range drains; records one exception. */
    void
    drain()
    {
        const auto &fn = *body;
        for (;;) {
            const size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= end)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(m);
                if (!error)
                    error = std::current_exception();
            }
        }
    }
};

ThreadPool::ThreadPool(unsigned threads) : state_(new State)
{
    F1_REQUIRE(threads >= 1, "thread pool needs at least one thread");
    workers_.reserve(threads - 1);
    for (unsigned i = 0; i + 1 < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(state_->m);
        state_->stop = true;
    }
    state_->cvStart.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    t_inPool = true;
    State &st = *state_;
    uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(st.m);
            st.cvStart.wait(lock, [&] {
                return st.stop || st.generation != seen;
            });
            if (st.stop)
                return;
            seen = st.generation;
        }
        st.drain();
        {
            std::lock_guard<std::mutex> lock(st.m);
            if (--st.active == 0)
                st.cvDone.notify_all();
        }
    }
}

void
ThreadPool::run(size_t begin, size_t end,
                const std::function<void(size_t)> &body)
{
    if (end <= begin)
        return;
    // Serial fallback: no workers, a single iteration, or a nested
    // call from inside a pool thread all run inline, in index order.
    if (workers_.empty() || end - begin == 1 || t_inPool) {
        for (size_t i = begin; i < end; ++i)
            body(i);
        return;
    }

    State &st = *state_;
    // One external batch at a time: a second application thread
    // calling in while workers drain would otherwise clobber the
    // shared batch state. Held until the batch fully drains.
    std::lock_guard<std::mutex> callerLock(st.callers);
    {
        std::lock_guard<std::mutex> lock(st.m);
        st.body = &body;
        st.next.store(begin, std::memory_order_relaxed);
        st.end = end;
        st.active = static_cast<unsigned>(workers_.size());
        st.error = nullptr;
        ++st.generation;
    }
    st.cvStart.notify_all();

    // The calling thread participates; mark it as in-pool so bodies
    // that recurse into parallelFor stay serial.
    t_inPool = true;
    st.drain();
    t_inPool = false;

    std::unique_lock<std::mutex> lock(st.m);
    st.cvDone.wait(lock, [&] { return st.active == 0; });
    st.body = nullptr;
    if (st.error)
        std::rethrow_exception(st.error);
}

unsigned
configuredThreadCount()
{
    if (const char *env = std::getenv("F1_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

namespace {

std::mutex g_poolMutex;
std::unique_ptr<ThreadPool> g_pool;

ThreadPool &
globalPool()
{
    std::lock_guard<std::mutex> lock(g_poolMutex);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(configuredThreadCount());
    return *g_pool;
}

} // namespace

unsigned
globalThreadCount()
{
    return globalPool().threads();
}

void
setGlobalThreadCount(unsigned n)
{
    const unsigned want = n == 0 ? configuredThreadCount() : n;
    std::lock_guard<std::mutex> lock(g_poolMutex);
    if (g_pool && g_pool->threads() == want)
        return;
    g_pool = std::make_unique<ThreadPool>(want);
}

void
parallelFor(size_t begin, size_t end,
            const std::function<void(size_t)> &body)
{
    globalPool().run(begin, end, body);
}

} // namespace f1
