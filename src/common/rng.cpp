#include "common/rng.h"

#include "common/error.h"

namespace f1 {

namespace {

/** splitmix64, used to expand the user seed into xoshiro state. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::uniform(uint64_t bound)
{
    F1_REQUIRE(bound > 0, "uniform() bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % bound;
}

double
Rng::uniformReal()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * uniformReal();
}

int64_t
Rng::sampleCenteredBinomial(int hamming_weight)
{
    // Sum of hw fair coin differences: variance hw/2.
    int64_t acc = 0;
    int remaining = hamming_weight;
    while (remaining > 0) {
        int take = remaining > 32 ? 32 : remaining;
        uint64_t bits = next();
        uint64_t a = bits & ((1ULL << take) - 1);
        uint64_t b = (bits >> 32) & ((1ULL << take) - 1);
        acc += __builtin_popcountll(a) - __builtin_popcountll(b);
        remaining -= take;
    }
    return acc;
}

int64_t
Rng::sampleTernary()
{
    return static_cast<int64_t>(uniform(3)) - 1;
}

std::vector<uint64_t>
Rng::uniformVector(size_t n, uint64_t bound)
{
    std::vector<uint64_t> v(n);
    for (auto &x : v)
        x = uniform(bound);
    return v;
}

} // namespace f1
