/**
 * @file
 * Small bit-manipulation helpers used across the polynomial and
 * hardware-model layers.
 */
#ifndef F1_COMMON_BITS_H
#define F1_COMMON_BITS_H

#include <cstdint>

#include "common/error.h"

namespace f1 {

/** Returns true iff x is a (nonzero) power of two. */
constexpr bool
isPowerOfTwo(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Floor of log2(x); requires x > 0. */
constexpr uint32_t
log2Floor(uint64_t x)
{
    uint32_t r = 0;
    while (x >>= 1)
        ++r;
    return r;
}

/** log2 of a power of two. */
inline uint32_t
log2Exact(uint64_t x)
{
    F1_CHECK(isPowerOfTwo(x), "log2Exact on non-power-of-two " << x);
    return log2Floor(x);
}

/** Reverses the low `bits` bits of x (used for NTT bit-reversal order). */
constexpr uint32_t
bitReverse(uint32_t x, uint32_t bits)
{
    uint32_t r = 0;
    for (uint32_t i = 0; i < bits; ++i) {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    return r;
}

/** Ceiling division for nonnegative integers. */
constexpr uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace f1

#endif // F1_COMMON_BITS_H
