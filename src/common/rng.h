/**
 * @file
 * Deterministic random number generation for key material, noise
 * sampling, and workload data. All randomness in the library flows
 * through Rng so that tests and benchmarks are reproducible.
 */
#ifndef F1_COMMON_RNG_H
#define F1_COMMON_RNG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace f1 {

/**
 * xoshiro256** PRNG. Small, fast, and with a well-defined seeding
 * procedure (splitmix64), so streams are stable across platforms;
 * std::mt19937 distributions are not portable across standard
 * libraries, which would make golden tests fragile.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eedf1f1ULL);

    /** Uniform 64-bit word. */
    uint64_t next();

    /** Uniform value in [0, bound). Requires bound > 0. */
    uint64_t uniform(uint64_t bound);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Uniform double in [lo, hi). */
    double uniformReal(double lo, double hi);

    /**
     * Centered binomial sample with standard deviation ~sigma
     * (approximates a discrete Gaussian; standard practice in RLWE
     * implementations). Returned as a signed value.
     */
    int64_t sampleCenteredBinomial(int hammingWeight = 21);

    /** Ternary sample from {-1, 0, 1}, uniform. */
    int64_t sampleTernary();

    /** Vector of n uniform values in [0, bound). */
    std::vector<uint64_t> uniformVector(size_t n, uint64_t bound);

  private:
    uint64_t s_[4];
};

} // namespace f1

#endif // F1_COMMON_RNG_H
