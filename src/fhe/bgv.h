/**
 * @file
 * The BGV leveled FHE scheme (paper §2.2) over the RNS substrate:
 * symmetric encryption, homomorphic add/multiply/rotate, modulus
 * switching, and conservative noise tracking.
 *
 * Decryption invariant: c0 + c1*s = m + t*e (mod Q_level), with m the
 * centered encoded plaintext and |m + t*e| < Q/2 required for correct
 * decryption. noiseBits tracks log2|m + t*e| conservatively.
 *
 * Thread safety: after construction, homomorphic operations
 * (add/sub/mul/rotate/...) on distinct ciphertexts may run
 * concurrently — the hint cache is internally synchronized and hint
 * randomness is derived per identity (see hintSeed), so results do
 * not depend on which thread generates a hint first. The encryption
 * paths that draw from the scheme's internal PRNG are NOT thread-safe;
 * concurrent encryptors must use the overloads taking an explicit Rng.
 */
#ifndef F1_FHE_BGV_H
#define F1_FHE_BGV_H

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "fhe/ciphertext.h"
#include "fhe/encoder.h"
#include "fhe/fhe_context.h"
#include "fhe/keyswitch.h"

namespace f1 {

class BgvScheme
{
  public:
    /**
     * @param ctx       parameter context (moduli, degree)
     * @param t         plaintext modulus (defaults to ctx param)
     * @param variant   key-switching implementation
     * @param seed      encryption-randomness seed
     */
    BgvScheme(const FheContext *ctx, uint64_t t = 0,
              KeySwitchVariant variant = KeySwitchVariant::kDigitLxL,
              uint64_t seed = 7);

    /** Shares an existing secret key (bootstrapping helper schemes). */
    void adoptKey(const SecretKey &sk);

    const FheContext *context() const { return ctx_; }
    const BgvEncoder &encoder() const { return encoder_; }
    uint64_t plainModulus() const { return t_; }
    const SecretKey &secretKey() const { return sk_; }
    KeySwitchVariant variant() const { return variant_; }

    //
    // Encryption / decryption
    //

    /** Encrypts slot values (rotation order; requires slot support). */
    Ciphertext encryptSlots(std::span<const uint64_t> slots,
                            size_t level);

    /**
     * As encryptSlots, but drawing encryption randomness from `rng`
     * instead of the scheme's internal stream. Safe to call
     * concurrently with distinct Rngs; the serving runtime uses one
     * per job so ciphertext bits are a function of the job alone.
     */
    Ciphertext encryptSlots(std::span<const uint64_t> slots,
                            size_t level, Rng &rng);

    /** Encrypts values placed directly in coefficients. */
    Ciphertext encryptCoeffs(std::span<const uint64_t> values,
                             size_t level);

    /** Encrypts an already-encoded plaintext polynomial (NTT domain). */
    Ciphertext encryptPoly(const RnsPoly &m);

    std::vector<uint64_t> decryptSlots(const Ciphertext &ct) const;
    std::vector<uint64_t> decryptCoeffs(const Ciphertext &ct) const;

    /** Raw decryption phase c0 + c1*s (NTT domain). */
    RnsPoly decryptPhase(const Ciphertext &ct) const;

    /** log2 of the largest centered phase coefficient (true noise). */
    double measuredNoiseBits(const Ciphertext &ct) const;

    /** Remaining noise budget in bits (logQ - noiseBits - 1). */
    double noiseBudgetBits(const Ciphertext &ct) const;

    //
    // Homomorphic operations
    //

    Ciphertext add(const Ciphertext &a, const Ciphertext &b) const;
    Ciphertext sub(const Ciphertext &a, const Ciphertext &b) const;
    Ciphertext addPlain(const Ciphertext &a,
                        std::span<const int64_t> coeffs) const;
    Ciphertext mulPlain(const Ciphertext &a,
                        std::span<const int64_t> coeffs) const;

    /** Full homomorphic multiply: tensor + relinearization. */
    Ciphertext mul(const Ciphertext &a, const Ciphertext &b);

    /** Homomorphic slot rotation by r (σ_(5^r) + key switch). */
    Ciphertext rotate(const Ciphertext &a, int64_t r);

    /** Row swap (σ_(2N-1) + key switch). */
    Ciphertext conjugate(const Ciphertext &a);

    /** Applies σ_g for a raw Galois element (advanced callers). */
    Ciphertext applyGalois(const Ciphertext &a, uint64_t g);

    /** Modulus switch: drop one prime, reducing noise (paper §2.2.2). */
    Ciphertext modSwitch(const Ciphertext &a) const;

    /** Multiplies the ciphertext by an exact integer scalar mod Q
     *  (used by bootstrapping's inverse-power-of-two trick). */
    Ciphertext mulScalarInt(const Ciphertext &a, uint64_t scalar) const;

    //
    // Key-switch hint access (shared with the compiler layer, which
    // accounts for hint loads).
    //

    /**
     * Reference accessors. The reference is owned by the hint cache
     * and stays valid only while the entry is cached — with the
     * default unbounded capacity, forever. Callers that cap the cache
     * must use the shared accessors instead.
     */
    const KeySwitchHint &relinHint(size_t level);
    const KeySwitchHint &galoisHint(uint64_t g, size_t level);

    /** Pinning accessors: safe under concurrent eviction. */
    std::shared_ptr<const KeySwitchHint> relinHintShared(size_t level);
    std::shared_ptr<const KeySwitchHint> galoisHintShared(uint64_t g,
                                                          size_t level);

    /** Hit/miss/eviction counters of the hint cache. */
    CacheStats hintCacheStats() const { return hints_.stats(); }

    /** Caps the hint cache (0 = unbounded, the default). */
    void setHintCacheCapacity(size_t cap) { hints_.setCapacity(cap); }

  private:
    Ciphertext freshCiphertext(const RnsPoly &m, size_t level);
    Ciphertext freshCiphertext(const RnsPoly &m, size_t level,
                               Rng &rng);

    const FheContext *ctx_;
    uint64_t t_;
    KeySwitchVariant variant_;
    uint64_t seed_; //!< root of the per-hint randomness derivation
    BgvEncoder encoder_;
    KeySwitcher switcher_;
    mutable Rng rng_;
    SecretKey sk_;
    RnsPoly sSquared_; //!< s^2 over the full chain (relin source key)
    HintCache hints_;
};

} // namespace f1

#endif // F1_FHE_BGV_H
