/**
 * @file
 * The CKKS approximate FHE scheme (paper §2.5): fixed-point arithmetic
 * on N/2 complex slots with explicit rescaling. Shares the ciphertext
 * layout and key-switching machinery with BGV; errors enter unscaled
 * (errorScale = 1) and accuracy is managed through the scale Δ.
 *
 * Thread safety matches BgvScheme: homomorphic operations on distinct
 * ciphertexts may run concurrently (synchronized hint cache with
 * order-independent hint randomness); concurrent encryptors must use
 * the overload taking an explicit Rng.
 */
#ifndef F1_FHE_CKKS_H
#define F1_FHE_CKKS_H

#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

#include "fhe/ciphertext.h"
#include "fhe/encoder.h"
#include "fhe/fhe_context.h"
#include "fhe/keyswitch.h"

namespace f1 {

class CkksScheme
{
  public:
    CkksScheme(const FheContext *ctx,
               KeySwitchVariant variant = KeySwitchVariant::kDigitLxL,
               uint64_t seed = 9);

    void adoptKey(const SecretKey &sk);

    const FheContext *context() const { return ctx_; }
    const CkksEncoder &encoder() const { return encoder_; }
    double defaultScale() const { return ctx_->ckksScale(); }
    const SecretKey &secretKey() const { return sk_; }
    KeySwitchVariant variant() const { return variant_; }

    /** Encrypts N/2 complex slots at the default scale. */
    Ciphertext encrypt(std::span<const std::complex<double>> slots,
                       size_t level);

    /** As encrypt, drawing encryption randomness from `rng` (the
     *  thread-safe path; one Rng per concurrent job). */
    Ciphertext encrypt(std::span<const std::complex<double>> slots,
                       size_t level, Rng &rng);

    /** Encrypts real slot values (convenience). */
    Ciphertext encryptReal(std::span<const double> slots, size_t level);

    /** Encrypts an already-encoded polynomial with explicit scale. */
    Ciphertext encryptPoly(const RnsPoly &m, double scale);

    std::vector<std::complex<double>> decrypt(const Ciphertext &ct) const;

    //
    // Homomorphic operations
    //

    Ciphertext add(const Ciphertext &a, const Ciphertext &b) const;
    Ciphertext sub(const Ciphertext &a, const Ciphertext &b) const;

    /** Tensor + relinearize; output scale = scale_a * scale_b. */
    Ciphertext mul(const Ciphertext &a, const Ciphertext &b);

    /** Multiply by encoded plaintext slots (scale multiplies). */
    Ciphertext mulPlain(const Ciphertext &a,
                        std::span<const std::complex<double>> slots) const;

    /**
     * As mulPlain, but taking an ALREADY-ENCODED plaintext polynomial
     * at (defaultScale(), a.level()) — the executor's encoding-cache
     * path, where one encoded constant serves many jobs. Bit-identical
     * to mulPlain over the slots `pt` was encoded from.
     */
    Ciphertext mulPlainEncoded(const Ciphertext &a,
                               const RnsPoly &pt) const;

    /** Multiply every slot by a real constant (scale multiplies). */
    Ciphertext mulConst(const Ciphertext &a, double c) const;

    /**
     * Multiply by a constant encoded at an explicit scale. Deep
     * circuits use this for exact scale alignment before additions:
     * choosing encodeScale = target * q_dropped / a.scale makes the
     * post-rescale result land exactly on `target`.
     */
    Ciphertext mulConstAtScale(const Ciphertext &a, double c,
                               double encodeScale) const;

    /** Add a real constant to every slot (encoded at a's scale). */
    Ciphertext addConst(const Ciphertext &a, double c) const;

    /** Add plaintext slots (encoded at a's scale). */
    Ciphertext addPlain(const Ciphertext &a,
                        std::span<const std::complex<double>> slots)
        const;

    /**
     * As addPlain, but taking an ALREADY-ENCODED plaintext polynomial
     * at (a.scale, a.level()) — the executor's encoding-cache path.
     * Bit-identical to addPlain over the slots `pt` was encoded from.
     */
    Ciphertext addPlainEncoded(const Ciphertext &a,
                               const RnsPoly &pt) const;

    /** Drop one prime, dividing the scale by it (paper §2.2.2). */
    Ciphertext rescale(const Ciphertext &a) const;

    /** Negate all slots. */
    Ciphertext negate(const Ciphertext &a) const;

    /**
     * Drops residues without scaling (plain modulus reduction) so two
     * operands reach a common level before add/mul. Scale unchanged.
     */
    Ciphertext modDownTo(const Ciphertext &a, size_t level) const;

    /** Slot rotation by r. */
    Ciphertext rotate(const Ciphertext &a, int64_t r);

    /** Complex conjugation of every slot. */
    Ciphertext conjugate(const Ciphertext &a);

    /** Applies σ_g for a raw Galois element (trace computations). */
    Ciphertext applyGalois(const Ciphertext &a, uint64_t g);

    /** See BgvScheme::relinHint for the reference-lifetime caveat. */
    const KeySwitchHint &relinHint(size_t level);
    const KeySwitchHint &galoisHint(uint64_t g, size_t level);

    /** Pinning accessors: safe under concurrent eviction. */
    std::shared_ptr<const KeySwitchHint> relinHintShared(size_t level);
    std::shared_ptr<const KeySwitchHint> galoisHintShared(uint64_t g,
                                                          size_t level);

    CacheStats hintCacheStats() const { return hints_.stats(); }
    void setHintCacheCapacity(size_t cap) { hints_.setCapacity(cap); }

  private:
    Ciphertext freshCiphertext(const RnsPoly &m, double scale);
    Ciphertext freshCiphertext(const RnsPoly &m, double scale,
                               Rng &rng);

    const FheContext *ctx_;
    KeySwitchVariant variant_;
    uint64_t seed_;
    CkksEncoder encoder_;
    KeySwitcher switcher_;
    mutable Rng rng_;
    SecretKey sk_;
    RnsPoly sSquared_;
    HintCache hints_;
};

} // namespace f1

#endif // F1_FHE_CKKS_H
