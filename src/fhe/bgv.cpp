#include "fhe/bgv.h"

#include <cmath>

#include "common/error.h"
#include "modular/modarith.h"

namespace f1 {

namespace {

/** Additive noise (bits) contributed by one key switch at `level`. */
double
keySwitchNoiseBits(const FheContext *ctx, uint64_t t, size_t level)
{
    // Hybrid digit variant: the raw digit term t*sum_i x~_i*e_i
    // (~ t * sqrt(level*N) * q/2 * sigma) is divided by the special
    // prime, leaving ~ t * sigma * sqrt(level*N) plus the rounding
    // term t * sqrt(N)/2. GHS lands in the same range.
    return std::log2(static_cast<double>(t)) +
           0.5 * std::log2(static_cast<double>(level) * ctx->n()) + 6.0;
}

} // namespace

BgvScheme::BgvScheme(const FheContext *ctx, uint64_t t,
                     KeySwitchVariant variant, uint64_t seed)
    : ctx_(ctx), t_(t == 0 ? ctx->plainModulus() : t), variant_(variant),
      seed_(seed), encoder_(ctx, t_ == 0 ? ctx->plainModulus() : t_),
      switcher_(ctx), rng_(seed), sk_(switcher_.keyGen(rng_)),
      sSquared_(sk_.s.mul(sk_.s)), hints_(0, "bgv_hints")
{
}

void
BgvScheme::adoptKey(const SecretKey &sk)
{
    sk_ = sk;
    sSquared_ = sk_.s.mul(sk_.s);
    hints_.clear();
}

Ciphertext
BgvScheme::freshCiphertext(const RnsPoly &m, size_t level)
{
    return freshCiphertext(m, level, rng_);
}

Ciphertext
BgvScheme::freshCiphertext(const RnsPoly &m, size_t level, Rng &rng)
{
    RnsPoly c1 = RnsPoly::uniform(ctx_->polyContext(), level, rng);
    RnsPoly e = ctx_->sampleError(level, rng);
    e.mulScalar(t_);
    RnsPoly c0 = m + e;
    c0 -= c1.mul(sk_.s.restricted(level));

    Ciphertext ct;
    ct.polys.push_back(std::move(c0));
    ct.polys.push_back(std::move(c1));
    ct.noiseBits = std::log2(static_cast<double>(t_)) +
                   0.5 * std::log2(static_cast<double>(ctx_->n())) + 4.0;
    return ct;
}

Ciphertext
BgvScheme::encryptSlots(std::span<const uint64_t> slots, size_t level)
{
    return encryptSlots(slots, level, rng_);
}

Ciphertext
BgvScheme::encryptSlots(std::span<const uint64_t> slots, size_t level,
                        Rng &rng)
{
    auto coeffs = encoder_.encodeSlots(slots);
    return freshCiphertext(encoder_.toPoly(coeffs, level), level, rng);
}

Ciphertext
BgvScheme::encryptCoeffs(std::span<const uint64_t> values, size_t level)
{
    auto coeffs = encoder_.encodeCoeffs(values);
    return freshCiphertext(encoder_.toPoly(coeffs, level), level);
}

Ciphertext
BgvScheme::encryptPoly(const RnsPoly &m)
{
    return freshCiphertext(m, m.levels());
}

RnsPoly
BgvScheme::decryptPhase(const Ciphertext &ct) const
{
    F1_CHECK(ct.polys.size() == 2, "decrypting non-relinearized ct");
    const size_t level = ct.level();
    RnsPoly phase = ct.polys[0];
    phase += ct.polys[1].mul(sk_.s.restricted(level));
    return phase;
}

namespace {

/** Centered phase coefficient -> plaintext value mod t. */
uint64_t
phaseToPlain(const std::pair<BigInt, bool> &centered, uint64_t t)
{
    uint64_t mag = centered.first.modSmall(t);
    if (centered.second && mag != 0)
        return t - mag;
    return mag;
}

} // namespace

std::vector<uint64_t>
BgvScheme::decryptCoeffs(const Ciphertext &ct) const
{
    RnsPoly phase = decryptPhase(ct);
    phase.toCoeff();
    const uint32_t n = ctx_->n();
    std::vector<uint64_t> out(n);
    for (uint32_t i = 0; i < n; ++i) {
        uint64_t m = phaseToPlain(phase.coeffCentered(i), t_);
        out[i] = m * (ct.ptCorrection % t_) % t_;
    }
    return out;
}

std::vector<uint64_t>
BgvScheme::decryptSlots(const Ciphertext &ct) const
{
    return encoder_.decodeSlots(decryptCoeffs(ct));
}

double
BgvScheme::measuredNoiseBits(const Ciphertext &ct) const
{
    RnsPoly phase = decryptPhase(ct);
    phase.toCoeff();
    size_t max_bits = 0;
    for (uint32_t i = 0; i < ctx_->n(); ++i) {
        auto [mag, neg] = phase.coeffCentered(i);
        max_bits = std::max(max_bits, mag.bitLength());
    }
    return static_cast<double>(max_bits);
}

double
BgvScheme::noiseBudgetBits(const Ciphertext &ct) const
{
    return ctx_->logQ(ct.level()) - ct.noiseBits - 1.0;
}

Ciphertext
BgvScheme::add(const Ciphertext &a, const Ciphertext &b) const
{
    F1_CHECK(a.level() == b.level(), "level mismatch in add");
    F1_CHECK(a.ptCorrection == b.ptCorrection,
             "plaintext-correction mismatch in add; modulus-switch "
             "operands in lockstep");
    Ciphertext out = a;
    for (size_t i = 0; i < out.polys.size(); ++i)
        out.polys[i] += b.polys[i];
    out.noiseBits = std::max(a.noiseBits, b.noiseBits) + 1.0;
    return out;
}

Ciphertext
BgvScheme::sub(const Ciphertext &a, const Ciphertext &b) const
{
    F1_CHECK(a.level() == b.level(), "level mismatch in sub");
    F1_CHECK(a.ptCorrection == b.ptCorrection,
             "plaintext-correction mismatch in sub");
    Ciphertext out = a;
    for (size_t i = 0; i < out.polys.size(); ++i)
        out.polys[i] -= b.polys[i];
    out.noiseBits = std::max(a.noiseBits, b.noiseBits) + 1.0;
    return out;
}

Ciphertext
BgvScheme::addPlain(const Ciphertext &a,
                    std::span<const int64_t> coeffs) const
{
    Ciphertext out = a;
    // Plaintext correction must be undone on the constant: the stored
    // ciphertext decrypts to m * corr; add c * corr^-1 so that the sum
    // decrypts to (m + c) * corr... corr is tracked multiplicatively at
    // decryption, so add corr^-1 * c.
    RnsPoly pt = encoder_.toPoly(coeffs, a.level());
    if (a.ptCorrection != 1) {
        uint64_t inv = 1, corr = a.ptCorrection % t_, e = t_ - 2;
        // corr^(t-2) mod t only valid for prime t; for power-of-two t
        // use odd-inverse. Both cases: use invOdd via extended scheme.
        if (t_ % 2 == 1) {
            uint64_t base = corr;
            while (e) {
                if (e & 1)
                    inv = inv * base % t_;
                base = base * base % t_;
                e >>= 1;
            }
        } else {
            // t power of two: correction is a product of odd primes,
            // invertible mod 2^k by Newton iteration.
            uint64_t x = corr;
            for (int i = 0; i < 6; ++i)
                x = x * (2 - corr * x) % t_;
            inv = x % t_;
        }
        pt.mulScalar(inv);
    }
    out.polys[0] += pt;
    out.noiseBits = a.noiseBits + 0.5;
    return out;
}

Ciphertext
BgvScheme::mulPlain(const Ciphertext &a,
                    std::span<const int64_t> coeffs) const
{
    Ciphertext out = a;
    RnsPoly pt = encoder_.toPoly(coeffs, a.level());
    for (auto &p : out.polys)
        p.mulEq(pt);
    out.noiseBits = a.noiseBits + std::log2(static_cast<double>(t_)) +
                    0.5 * std::log2(static_cast<double>(ctx_->n())) + 1.0;
    return out;
}

std::shared_ptr<const KeySwitchHint>
BgvScheme::relinHintShared(size_t level)
{
    return hints_.getOrCreate(HintKey{0, level}, [&] {
        Rng rng(hintSeed(seed_, 0, level));
        return switcher_.makeHint(sSquared_, sk_, level, t_, variant_,
                                  rng);
    });
}

std::shared_ptr<const KeySwitchHint>
BgvScheme::galoisHintShared(uint64_t g, size_t level)
{
    return hints_.getOrCreate(HintKey{g, level}, [&] {
        Rng rng(hintSeed(seed_, g, level));
        RnsPoly sg = sk_.s.automorphism(g);
        return switcher_.makeHint(sg, sk_, level, t_, variant_, rng);
    });
}

const KeySwitchHint &
BgvScheme::relinHint(size_t level)
{
    return *relinHintShared(level);
}

const KeySwitchHint &
BgvScheme::galoisHint(uint64_t g, size_t level)
{
    return *galoisHintShared(g, level);
}

Ciphertext
BgvScheme::mul(const Ciphertext &a, const Ciphertext &b)
{
    F1_CHECK(a.polys.size() == 2 && b.polys.size() == 2,
             "mul expects relinearized inputs");
    F1_CHECK(a.level() == b.level(), "level mismatch in mul");
    const size_t level = a.level();

    // Tensor: (l0, l1, l2) = (a0*b0, a0*b1 + a1*b0, a1*b1) (§2.2.1).
    RnsPoly l0 = a.polys[0].mul(b.polys[0]);
    RnsPoly l1 = a.polys[0].mul(b.polys[1]);
    l1 += a.polys[1].mul(b.polys[0]);
    RnsPoly l2 = a.polys[1].mul(b.polys[1]);

    // Pin the hint so a capped cache evicting it mid-apply is safe.
    auto hint = relinHintShared(level);
    auto [u0, u1] = switcher_.apply(l2, *hint, t_);

    Ciphertext out;
    out.polys.push_back(l0 + u0);
    out.polys.push_back(l1 + u1);
    double tensor = a.noiseBits + b.noiseBits +
                    0.5 * std::log2(static_cast<double>(ctx_->n())) + 2.0;
    out.noiseBits =
        std::max(tensor, keySwitchNoiseBits(ctx_, t_, level)) + 1.0;
    out.ptCorrection =
        a.ptCorrection * b.ptCorrection % t_;
    return out;
}

Ciphertext
BgvScheme::applyGalois(const Ciphertext &a, uint64_t g)
{
    F1_CHECK(a.polys.size() == 2, "galois expects relinearized input");
    const size_t level = a.level();
    RnsPoly c0 = a.polys[0].automorphism(g);
    RnsPoly c1 = a.polys[1].automorphism(g);

    auto hint = galoisHintShared(g, level);
    auto [u0, u1] = switcher_.apply(c1, *hint, t_);

    Ciphertext out;
    out.polys.push_back(c0 + u0);
    out.polys.push_back(std::move(u1));
    out.noiseBits =
        std::max(a.noiseBits, keySwitchNoiseBits(ctx_, t_, level)) + 1.0;
    out.ptCorrection = a.ptCorrection;
    return out;
}

Ciphertext
BgvScheme::rotate(const Ciphertext &a, int64_t r)
{
    return applyGalois(a, encoder_.slotOrder().rotationGalois(r));
}

Ciphertext
BgvScheme::conjugate(const Ciphertext &a)
{
    return applyGalois(a, encoder_.slotOrder().conjugationGalois());
}

Ciphertext
BgvScheme::modSwitch(const Ciphertext &a) const
{
    F1_CHECK(a.level() >= 2, "cannot modulus-switch below level 1");
    Ciphertext out = a;
    const uint32_t dropped = ctx_->ciphertextPrime(a.level() - 1);
    for (auto &p : out.polys)
        dropLastModulusRounded(p, t_);
    const double floor_bits =
        std::log2(static_cast<double>(t_)) +
        0.5 * std::log2(static_cast<double>(ctx_->n())) + 3.0;
    out.noiseBits =
        std::max(a.noiseBits - std::log2((double)dropped), floor_bits) +
        1.0;
    out.ptCorrection =
        a.ptCorrection * (dropped % t_) % t_;
    return out;
}

Ciphertext
BgvScheme::mulScalarInt(const Ciphertext &a, uint64_t scalar) const
{
    Ciphertext out = a;
    for (auto &p : out.polys)
        p.mulScalar(scalar);
    out.noiseBits =
        a.noiseBits + std::log2(static_cast<double>(scalar) + 1.0);
    return out;
}

} // namespace f1
