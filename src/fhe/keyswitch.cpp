#include "fhe/keyswitch.h"

#include "common/error.h"
#include "common/parallel.h"
#include "common/scratch.h"
#include "fhe/basis_extend.h"
#include "modular/modarith.h"
#include "obs/profile.h"

namespace f1 {

SecretKey
KeySwitcher::keyGen(Rng &rng) const
{
    return SecretKey{
        ctx_->sampleTernary(ctx_->polyContext()->chainLength(), rng)};
}

namespace {

/**
 * Centered lift of a single coefficient-domain residue (values mod
 * from_q) into signed integers, written into caller-provided scratch.
 */
void
centeredLiftInto(std::span<const uint32_t> res, uint32_t from_q,
                 std::span<int64_t> out)
{
    const uint32_t half = from_q / 2;
    for (size_t j = 0; j < res.size(); ++j) {
        out[j] = res[j] > half ? (int64_t)res[j] - from_q
                               : (int64_t)res[j];
    }
}

/**
 * Digit i of x in coefficient form, center-lifted: the shared scratch
 * pattern of both key-switch variants and the digit decomposition.
 */
ScratchArena::Handle<int64_t>
liftedDigit(const RnsPoly &x, size_t i)
{
    const PolyContext *pc = x.context();
    const uint32_t n = pc->n();
    auto yi = ScratchArena::u32(n);
    std::copy(x.residue(i).begin(), x.residue(i).end(), yi.data());
    pc->tables(i).inverse(yi.span());
    auto lifted = ScratchArena::i64(n);
    centeredLiftInto(yi.span(), pc->modulus(i), lifted.span());
    return lifted;
}

} // namespace

KeySwitchHint
KeySwitcher::makeHint(const RnsPoly &w, const SecretKey &sk, size_t level,
                      uint64_t errorScale, KeySwitchVariant variant,
                      Rng &rng) const
{
    const PolyContext *pc = ctx_->polyContext();
    KeySwitchHint hint;
    hint.variant = variant;
    hint.level = level;

    if (variant == KeySwitchVariant::kDigitLxL) {
        // Hybrid digit hints: digit i encrypts p_sp * P_i * w, where
        // P_i is the CRT selector (P_i ≡ δ_ij mod q_j) and p_sp is the
        // special prime divided out after accumulation. Hints span the
        // full chain; apply() touches residues {0..level-1, special}.
        const uint32_t p_sp = ctx_->specialPrime();
        const size_t chain_len = pc->chainLength();
        for (size_t i = 0; i < level; ++i) {
            RnsPoly ai = RnsPoly::uniform(pc, chain_len, rng);
            RnsPoly bi = ai.mul(sk.s);
            bi.negate();
            RnsPoly e = ctx_->sampleError(chain_len, rng);
            e.mulScalar(errorScale);
            bi += e;
            // += p_sp * P_i * w on every residue. With
            // w_i = [(Q/q_i)^-1 mod q_i] as an integer,
            // P_i mod m = (Q/q_i mod m) * (w_i mod m).
            const uint32_t qi = pc->modulus(i);
            uint64_t qhat_mod_qi = 1;
            for (size_t j = 0; j < level; ++j)
                if (j != i)
                    qhat_mod_qi =
                        qhat_mod_qi * (pc->modulus(j) % qi) % qi;
            const uint32_t wi =
                invMod(static_cast<uint32_t>(qhat_mod_qi), qi);
            parallelForLimbs(chain_len, [&](size_t r) {
                const uint32_t m = pc->modulus(r);
                uint64_t qhat = 1;
                for (size_t j = 0; j < level; ++j)
                    if (j != i)
                        qhat = qhat * (pc->modulus(j) % m) % m;
                uint64_t scalar =
                    qhat * (wi % m) % m * (p_sp % m) % m;
                const uint32_t sc = static_cast<uint32_t>(scalar);
                const uint32_t pre = shoupPrecompute(sc, m);
                auto bres = bi.residue(r);
                auto wres = w.residue(r);
                for (size_t idx = 0; idx < bres.size(); ++idx)
                    bres[idx] = addMod(
                        bres[idx],
                        mulModShoup(wres[idx], sc, pre, m), m);
            });
            hint.a.push_back(std::move(ai));
            hint.b.push_back(std::move(bi));
        }
        hint.usedRVecs = 2 * level * (level + 1);
        return hint;
    }

    // Variant B: single pair over the extended basis Q*P encrypting
    // P * w (P = product of aux primes, so P ≡ 0 mod every aux prime).
    const size_t aux = ctx_->auxCount();
    F1_REQUIRE(aux >= level,
               "GHS key-switching needs P >= Q: auxCount ("
               << aux << ") must cover the hint level (" << level
               << ")");
    const size_t chain_len = pc->chainLength();
    F1_CHECK(level <= ctx_->maxLevel(), "level beyond chain");

    // Build an RnsPoly view over residues {0..level-1} ∪ aux block by
    // using a full-chain poly and zeroing the unused middle: to keep
    // the data layout simple, hints always span the full chain; apply()
    // reads the residues it needs.
    RnsPoly a = RnsPoly::uniform(pc, chain_len, rng);
    RnsPoly b = a.mul(sk.s);
    b.negate();
    RnsPoly e = ctx_->sampleError(chain_len, rng);
    e.mulScalar(errorScale);
    b += e;
    // += P * w on ciphertext residues (P ≡ 0 on aux residues).
    parallelForLimbs(ctx_->maxLevel(), [&](size_t j) {
        const uint32_t qj = pc->modulus(j);
        uint64_t pmod = 1;
        for (size_t k = 0; k < aux; ++k)
            pmod = pmod * (ctx_->auxPrime(k) % qj) % qj;
        auto bres = b.residue(j);
        auto wres = w.residue(j);
        const uint32_t scalar = static_cast<uint32_t>(pmod);
        const uint32_t pre = shoupPrecompute(scalar, qj);
        for (size_t idx = 0; idx < bres.size(); ++idx)
            bres[idx] = addMod(bres[idx],
                               mulModShoup(wres[idx], scalar, pre, qj),
                               qj);
    });
    hint.a.push_back(std::move(a));
    hint.b.push_back(std::move(b));
    hint.usedRVecs = 2 * (level + aux);
    return hint;
}

std::pair<RnsPoly, RnsPoly>
KeySwitcher::apply(const RnsPoly &x, const KeySwitchHint &hint,
                   uint64_t errorScale) const
{
    F1_CHECK(x.domain() == Domain::kNtt, "key-switch input must be NTT");
    F1_CHECK(x.levels() == hint.level, "hint level mismatch: x has "
             << x.levels() << ", hint serves " << hint.level);
    obs::profileAdd(obs::ProfileCounter::kKeySwitchApply);
    if (hint.variant == KeySwitchVariant::kDigitLxL)
        return applyDigitScaled(x, hint, errorScale);
    return applyGhs(x, hint, errorScale);
}

std::vector<RnsPoly>
digitDecomposeLift(const RnsPoly &x)
{
    F1_CHECK(x.domain() == Domain::kNtt, "decomposition expects NTT");
    const PolyContext *pc = x.context();
    const size_t level = x.levels();
    const uint32_t n = pc->n();

    std::vector<RnsPoly> out;
    out.reserve(level);
    for (size_t i = 0; i < level; ++i) {
        // Digit i: residue i of x, taken to coefficient form and
        // center-lifted into every modulus (Listing 1 lines 3 and 8).
        auto lifted = liftedDigit(x, i);

        // One limb per work unit: each target residue reduces the
        // shared lift and transforms into its own NTT domain.
        RnsPoly xt(pc, level, Domain::kNtt);
        std::span<const int64_t> lift = lifted.span();
        parallelForLimbs(level, [&](size_t j) {
            auto dst = xt.residue(j);
            if (j == i) {
                // Already have this residue in NTT form.
                std::copy(x.residue(i).begin(), x.residue(i).end(),
                          dst.begin());
                return;
            }
            const uint32_t qj = pc->modulus(j);
            for (size_t idx = 0; idx < n; ++idx) {
                int64_t v = lift[idx] % (int64_t)qj;
                if (v < 0)
                    v += qj;
                dst[idx] = static_cast<uint32_t>(v);
            }
            pc->tables(j).forward(dst);
        });
        out.push_back(std::move(xt));
    }
    return out;
}

std::pair<RnsPoly, RnsPoly>
KeySwitcher::applyDigitScaled(const RnsPoly &x, const KeySwitchHint &hint,
                              uint64_t errorScale) const
{
    const PolyContext *pc = ctx_->polyContext();
    const size_t level = hint.level;
    const size_t sp = ctx_->specialIndex();
    const uint32_t p_sp = ctx_->specialPrime();
    const uint32_t n = pc->n();

    // Accumulators over level cipher residues + the special residue.
    auto acc0 = ScratchArena::u32((level + 1) * n, /*zeroed=*/true);
    auto acc1 = ScratchArena::u32((level + 1) * n, /*zeroed=*/true);

    for (size_t i = 0; i < level; ++i) {
        // Digit i in coefficient form, center-lifted.
        auto lifted = liftedDigit(x, i);
        std::span<const int64_t> lift = lifted.span();

        // Multiply-accumulate against hint digit i over each track.
        // Tracks write disjoint accumulator slices and read the shared
        // lift, so they map one-per-limb onto the pool. The per-track
        // NTT input comes from the worker's own scratch cache.
        parallelFor(0, level + 1, [&](size_t track) {
            const size_t ridx = track < level ? track : sp;
            const uint32_t m = pc->modulus(ridx);
            const uint32_t *xt;
            ScratchArena::Handle<uint32_t> tmp;
            if (track == i) {
                xt = x.residue(i).data();
            } else {
                tmp = ScratchArena::u32(n);
                for (size_t idx = 0; idx < n; ++idx) {
                    int64_t v = lift[idx] % (int64_t)m;
                    if (v < 0)
                        v += m;
                    tmp[idx] = static_cast<uint32_t>(v);
                }
                pc->tables(ridx).forward(tmp.span());
                xt = tmp.data();
            }
            auto ha = hint.a[i].residue(ridx);
            auto hb = hint.b[i].residue(ridx);
            uint32_t *o0 = acc0.data() + track * n;
            uint32_t *o1 = acc1.data() + track * n;
            for (size_t idx = 0; idx < n; ++idx) {
                o1[idx] = addMod(o1[idx],
                                 mulMod(xt[idx], ha[idx], m), m);
                o0[idx] = addMod(o0[idx],
                                 mulMod(xt[idx], hb[idx], m), m);
            }
        });
    }

    // Divide both accumulators by p_sp with errorScale-adjusted
    // rounding (δ ≡ acc mod p_sp, δ ≡ 0 mod errorScale), the hybrid
    // step that shrinks key-switch noise by ~log2(p_sp) bits.
    auto scaleDown = [&](std::span<uint32_t> acc) {
        std::span<uint32_t> spTrack(acc.data() + level * n, n);
        pc->tables(sp).inverse(spTrack);
        if (errorScale != 1) {
            const uint32_t tinv = invMod(
                static_cast<uint32_t>(errorScale % p_sp), p_sp);
            const uint32_t pre = shoupPrecompute(tinv, p_sp);
            for (auto &v : spTrack)
                v = mulModShoup(v, tinv, pre, p_sp);
        }
        auto delta = ScratchArena::i64(n);
        const uint32_t half = p_sp / 2;
        for (size_t idx = 0; idx < n; ++idx) {
            int64_t d = spTrack[idx] > half
                            ? (int64_t)spTrack[idx] - p_sp
                            : (int64_t)spTrack[idx];
            delta[idx] = d * static_cast<int64_t>(errorScale);
        }
        RnsPoly result(pc, level, Domain::kNtt);
        RnsPoly dpoly =
            RnsPoly::fromSigned(pc, level, delta.span(), Domain::kNtt);
        parallelForLimbs(level, [&](size_t j) {
            const uint32_t q = pc->modulus(j);
            const uint32_t pinv = invMod(p_sp % q, q);
            const uint32_t pre = shoupPrecompute(pinv, q);
            auto out = result.residue(j);
            auto dres = dpoly.residue(j);
            const uint32_t *in = acc.data() + j * n;
            for (size_t idx = 0; idx < n; ++idx) {
                uint32_t diff = subMod(in[idx], dres[idx], q);
                out[idx] = mulModShoup(diff, pinv, pre, q);
            }
        });
        return result;
    };

    RnsPoly u0 = scaleDown(acc0.span());
    RnsPoly u1 = scaleDown(acc1.span());
    return {std::move(u0), std::move(u1)};
}

std::pair<RnsPoly, RnsPoly>
KeySwitcher::applyGhs(const RnsPoly &x, const KeySwitchHint &hint,
                      uint64_t errorScale) const
{
    const PolyContext *pc = ctx_->polyContext();
    const size_t level = hint.level;
    const size_t aux = ctx_->auxCount();
    const size_t aux_base = ctx_->maxLevel();
    const uint32_t n = pc->n();

    // 1. Extend x from {q_0..q_{level-1}} to the aux basis.
    std::vector<size_t> src(level), dst(aux);
    for (size_t i = 0; i < level; ++i)
        src[i] = i;
    for (size_t k = 0; k < aux; ++k)
        dst[k] = aux_base + k;
    BasisExtender up(pc, src, dst);

    auto coeff = ScratchArena::u32(level * n);
    parallelForLimbs(level, [&](size_t i) {
        std::copy(x.residue(i).begin(), x.residue(i).end(),
                  coeff.data() + i * n);
        std::span<uint32_t> row(coeff.data() + i * n, n);
        pc->tables(i).inverse(row);
    });
    auto ext = ScratchArena::u32(aux * n);
    up.extend(coeff.span(), n, ext.span());
    coeff.reset();

    // 2. Pointwise multiply by the hint over level + aux residues.
    //    Work on two tracks: ciphertext residues (from x, NTT) and aux
    //    residues (extended, NTT after transform). All level + aux
    //    limbs are independent work units.
    auto mulTrack = [&](const RnsPoly &h) {
        // Returns {cipherResidues(level), auxResidues(aux)} both NTT,
        // as movable arena checkouts consumed by scaleDown below.
        auto cres = ScratchArena::u32(level * n);
        auto ares = ScratchArena::u32(aux * n);
        uint32_t *const cresp = cres.data();
        uint32_t *const aresp = ares.data();
        parallelForLimbs(level + aux, [&](size_t u) {
            if (u < level) {
                const size_t i = u;
                const uint32_t q = pc->modulus(i);
                auto hx = h.residue(i);
                auto xr = x.residue(i);
                for (size_t idx = 0; idx < n; ++idx)
                    cresp[i * n + idx] = mulMod(xr[idx], hx[idx], q);
            } else {
                const size_t k = u - level;
                const uint32_t p = pc->modulus(aux_base + k);
                auto t = ScratchArena::u32(n);
                std::copy(ext.data() + k * n, ext.data() + (k + 1) * n,
                          t.data());
                pc->tables(aux_base + k).forward(t.span());
                auto hx = h.residue(aux_base + k);
                for (size_t idx = 0; idx < n; ++idx)
                    aresp[k * n + idx] = mulMod(t[idx], hx[idx], p);
            }
        });
        return std::make_pair(std::move(cres), std::move(ares));
    };

    auto [c1, a1] = mulTrack(hint.a[0]);
    auto [c0, a0] = mulTrack(hint.b[0]);

    // 3. Divide by P with rounding: c' = (c - δ)/P where δ ≡ c (mod P)
    //    and δ ≡ 0 (mod errorScale).
    BasisExtender down(pc, dst, src);
    const uint64_t t_adj = errorScale;

    auto scaleDown = [&](ScratchArena::Handle<uint32_t> &cres,
                         ScratchArena::Handle<uint32_t> &ares) {
        // Aux residues to coefficient form.
        parallelForLimbs(aux, [&](size_t k) {
            std::span<uint32_t> row(ares.data() + k * n, n);
            pc->tables(aux_base + k).inverse(row);
            if (t_adj != 1) {
                // u = δ0 * t^-1 (mod P), residue-wise.
                const uint32_t p = pc->modulus(aux_base + k);
                const uint32_t tinv =
                    invMod(static_cast<uint32_t>(t_adj % p), p);
                const uint32_t pre = shoupPrecompute(tinv, p);
                for (auto &v : row)
                    v = mulModShoup(v, tinv, pre, p);
            }
        });
        // Extend u to the ciphertext basis; δ = t * u.
        auto delta = ScratchArena::u32(level * n);
        down.extend(ares.span(), n, delta.span());
        ares.reset();

        RnsPoly result(pc, level, Domain::kNtt);
        parallelForLimbs(level, [&](size_t i) {
            const uint32_t q = pc->modulus(i);
            std::span<uint32_t> d(delta.data() + i * n, n);
            if (t_adj != 1) {
                const uint32_t ts = static_cast<uint32_t>(t_adj % q);
                const uint32_t pre = shoupPrecompute(ts, q);
                for (auto &v : d)
                    v = mulModShoup(v, ts, pre, q);
            }
            pc->tables(i).forward(d);
            // (c - δ) * P^-1 mod q.
            uint64_t pmod = 1;
            for (size_t k = 0; k < aux; ++k)
                pmod = pmod * (pc->modulus(aux_base + k) % q) % q;
            const uint32_t pinv =
                invMod(static_cast<uint32_t>(pmod), q);
            const uint32_t pre = shoupPrecompute(pinv, q);
            auto out = result.residue(i);
            for (size_t idx = 0; idx < n; ++idx) {
                uint32_t diff = subMod(cres[i * n + idx], d[idx], q);
                out[idx] = mulModShoup(diff, pinv, pre, q);
            }
        });
        return result;
    };

    RnsPoly u0 = scaleDown(c0, a0);
    RnsPoly u1 = scaleDown(c1, a1);
    return {std::move(u0), std::move(u1)};
}

void
dropLastModulusRounded(RnsPoly &p, uint64_t tAdjust)
{
    F1_CHECK(p.domain() == Domain::kNtt, "expected NTT domain");
    F1_CHECK(p.levels() >= 2, "cannot drop below one residue");
    const PolyContext *pc = p.context();
    const size_t last = p.levels() - 1;
    const uint32_t q_last = pc->modulus(last);
    const uint32_t n = pc->n();

    // Last residue to coefficient form.
    auto y = ScratchArena::u32(n);
    std::copy(p.residue(last).begin(), p.residue(last).end(), y.data());
    pc->tables(last).inverse(y.span());

    // d = y * t^-1 mod q_last (t-adjusted rounding), centered; δ = t*d.
    if (tAdjust != 1) {
        const uint32_t tinv = invMod(
            static_cast<uint32_t>(tAdjust % q_last), q_last);
        const uint32_t pre = shoupPrecompute(tinv, q_last);
        for (auto &v : y.span())
            v = mulModShoup(v, tinv, pre, q_last);
    }
    auto delta = ScratchArena::i64(n);
    const uint32_t half = q_last / 2;
    for (size_t j = 0; j < n; ++j) {
        int64_t d = y[j] > half ? (int64_t)y[j] - q_last : (int64_t)y[j];
        delta[j] = d * static_cast<int64_t>(tAdjust);
    }

    RnsPoly dpoly =
        RnsPoly::fromSigned(pc, last, delta.span(), Domain::kNtt);
    p.dropLastResidue();
    p -= dpoly;
    auto scal = ScratchArena::u32(last);
    for (size_t i = 0; i < last; ++i)
        scal[i] = invMod(q_last % pc->modulus(i), pc->modulus(i));
    p.mulScalarPerResidue(scal.span());
}

} // namespace f1
