#include "fhe/basis_extend.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/parallel.h"
#include "common/scratch.h"
#include "modular/modarith.h"
#include "obs/profile.h"

namespace f1 {

BasisExtender::BasisExtender(const PolyContext *ctx,
                             std::vector<size_t> source,
                             std::vector<size_t> target)
    : ctx_(ctx), source_(std::move(source)), target_(std::move(target))
{
    F1_REQUIRE(!source_.empty() && !target_.empty(),
               "basis extension needs nonempty bases");
    const size_t l = source_.size();
    qHatInv_.resize(l);
    qInvReal_.resize(l);
    for (size_t i = 0; i < l; ++i) {
        const uint32_t qi = ctx_->modulus(source_[i]);
        uint64_t hat = 1;
        for (size_t j = 0; j < l; ++j) {
            if (j != i)
                hat = hat * (ctx_->modulus(source_[j]) % qi) % qi;
        }
        qHatInv_[i] = invMod(static_cast<uint32_t>(hat), qi);
        qInvReal_[i] = 1.0 / static_cast<double>(qi);
    }
    qHatModTarget_.resize(target_.size());
    qModTarget_.resize(target_.size());
    for (size_t k = 0; k < target_.size(); ++k) {
        const uint32_t pk = ctx_->modulus(target_[k]);
        qHatModTarget_[k].resize(l);
        uint64_t qmod = 1;
        for (size_t i = 0; i < l; ++i)
            qmod = qmod * (ctx_->modulus(source_[i]) % pk) % pk;
        qModTarget_[k] = static_cast<uint32_t>(qmod);
        for (size_t i = 0; i < l; ++i) {
            uint64_t hat = 1;
            for (size_t j = 0; j < l; ++j) {
                if (j != i) {
                    hat = hat * (ctx_->modulus(source_[j]) % pk) % pk;
                }
            }
            qHatModTarget_[k][i] = static_cast<uint32_t>(hat);
        }
    }
}

void
BasisExtender::extend(std::span<const uint32_t> in, size_t n,
                      std::span<uint32_t> out) const
{
    const size_t l = source_.size();
    const size_t tcount = target_.size();
    F1_CHECK(in.size() == l * n, "bad input size");
    F1_CHECK(out.size() == tcount * n, "bad output size");
    obs::profileAdd(obs::ProfileCounter::kBasisExtend);

    // Every coefficient column is independent, so the conversion
    // parallelizes over contiguous coefficient blocks (the per-limb
    // grain is wrong here: the loop is over columns, not residues).
    // Block results are position-determined, so the output is
    // bit-identical to the serial path for any thread count.
    constexpr size_t kBlock = 512;
    const size_t nblocks = (n + kBlock - 1) / kBlock;
    parallelFor(0, nblocks, [&](size_t b) {
        auto w = ScratchArena::u32(l);
        const size_t jEnd = std::min(n, (b + 1) * kBlock);
        for (size_t j = b * kBlock; j < jEnd; ++j) {
            double frac = 0;
            for (size_t i = 0; i < l; ++i) {
                const uint32_t qi = ctx_->modulus(source_[i]);
                w[i] = mulMod(in[i * n + j], qHatInv_[i], qi);
                frac += static_cast<double>(w[i]) * qInvReal_[i];
            }
            const uint64_t alpha = static_cast<uint64_t>(frac + 0.5);
            for (size_t k = 0; k < tcount; ++k) {
                const uint32_t pk = ctx_->modulus(target_[k]);
                uint64_t acc = 0;
                for (size_t i = 0; i < l; ++i) {
                    acc +=
                        (uint64_t)(w[i] % pk) * qHatModTarget_[k][i] % pk;
                }
                acc %= pk;
                uint64_t corr = alpha % pk * qModTarget_[k] % pk;
                out[k * n + j] = static_cast<uint32_t>(
                    (acc + pk - corr % pk) % pk);
            }
        }
    });
}

} // namespace f1
