#include "fhe/ckks.h"

#include <cmath>

#include "common/error.h"

namespace f1 {

CkksScheme::CkksScheme(const FheContext *ctx, KeySwitchVariant variant,
                       uint64_t seed)
    : ctx_(ctx), variant_(variant), seed_(seed), encoder_(ctx),
      switcher_(ctx), rng_(seed), sk_(switcher_.keyGen(rng_)),
      sSquared_(sk_.s.mul(sk_.s)), hints_(0, "ckks_hints")
{
}

void
CkksScheme::adoptKey(const SecretKey &sk)
{
    sk_ = sk;
    sSquared_ = sk_.s.mul(sk_.s);
    hints_.clear();
}

Ciphertext
CkksScheme::freshCiphertext(const RnsPoly &m, double scale)
{
    return freshCiphertext(m, scale, rng_);
}

Ciphertext
CkksScheme::freshCiphertext(const RnsPoly &m, double scale, Rng &rng)
{
    const size_t level = m.levels();
    RnsPoly c1 = RnsPoly::uniform(ctx_->polyContext(), level, rng);
    RnsPoly c0 = m + ctx_->sampleError(level, rng);
    c0 -= c1.mul(sk_.s.restricted(level));

    Ciphertext ct;
    ct.polys.push_back(std::move(c0));
    ct.polys.push_back(std::move(c1));
    ct.scale = scale;
    ct.noiseBits = 0.5 * std::log2((double)ctx_->n()) + 4.0;
    return ct;
}

Ciphertext
CkksScheme::encrypt(std::span<const std::complex<double>> slots,
                    size_t level)
{
    return encrypt(slots, level, rng_);
}

Ciphertext
CkksScheme::encrypt(std::span<const std::complex<double>> slots,
                    size_t level, Rng &rng)
{
    return freshCiphertext(encoder_.encode(slots, defaultScale(), level),
                           defaultScale(), rng);
}

Ciphertext
CkksScheme::encryptReal(std::span<const double> slots, size_t level)
{
    std::vector<std::complex<double>> c(slots.size());
    for (size_t i = 0; i < slots.size(); ++i)
        c[i] = {slots[i], 0.0};
    return encrypt(c, level);
}

Ciphertext
CkksScheme::encryptPoly(const RnsPoly &m, double scale)
{
    return freshCiphertext(m, scale);
}

std::vector<std::complex<double>>
CkksScheme::decrypt(const Ciphertext &ct) const
{
    F1_CHECK(ct.polys.size() == 2, "decrypting non-relinearized ct");
    RnsPoly phase = ct.polys[0];
    phase += ct.polys[1].mul(sk_.s.restricted(ct.level()));
    return encoder_.decode(phase, ct.scale);
}

Ciphertext
CkksScheme::add(const Ciphertext &a, const Ciphertext &b) const
{
    F1_CHECK(a.level() == b.level(), "level mismatch in add");
    // Primes are only approximately equal to the scale, so rescaled
    // operands drift; deep circuits (bootstrapping) compound it to a
    // few percent. The mismatch perturbs the smaller addend by the
    // drift fraction, which stays below our precision targets; reject
    // only gross mismatches (wrong-scale operands).
    F1_CHECK(std::abs(a.scale - b.scale) <=
                 0.15 * std::max(a.scale, b.scale),
             "scale mismatch in CKKS add: " << a.scale << " vs "
             << b.scale);
    Ciphertext out = a;
    for (size_t i = 0; i < out.polys.size(); ++i)
        out.polys[i] += b.polys[i];
    out.noiseBits = std::max(a.noiseBits, b.noiseBits) + 1.0;
    return out;
}

Ciphertext
CkksScheme::sub(const Ciphertext &a, const Ciphertext &b) const
{
    F1_CHECK(a.level() == b.level(), "level mismatch in sub");
    Ciphertext out = a;
    for (size_t i = 0; i < out.polys.size(); ++i)
        out.polys[i] -= b.polys[i];
    out.noiseBits = std::max(a.noiseBits, b.noiseBits) + 1.0;
    return out;
}

std::shared_ptr<const KeySwitchHint>
CkksScheme::relinHintShared(size_t level)
{
    return hints_.getOrCreate(HintKey{0, level}, [&] {
        Rng rng(hintSeed(seed_, 0, level));
        return switcher_.makeHint(sSquared_, sk_, level, 1, variant_,
                                  rng);
    });
}

std::shared_ptr<const KeySwitchHint>
CkksScheme::galoisHintShared(uint64_t g, size_t level)
{
    return hints_.getOrCreate(HintKey{g, level}, [&] {
        Rng rng(hintSeed(seed_, g, level));
        RnsPoly sg = sk_.s.automorphism(g);
        return switcher_.makeHint(sg, sk_, level, 1, variant_, rng);
    });
}

const KeySwitchHint &
CkksScheme::relinHint(size_t level)
{
    return *relinHintShared(level);
}

const KeySwitchHint &
CkksScheme::galoisHint(uint64_t g, size_t level)
{
    return *galoisHintShared(g, level);
}

Ciphertext
CkksScheme::mul(const Ciphertext &a, const Ciphertext &b)
{
    F1_CHECK(a.level() == b.level(), "level mismatch in mul");
    const size_t level = a.level();

    RnsPoly l0 = a.polys[0].mul(b.polys[0]);
    RnsPoly l1 = a.polys[0].mul(b.polys[1]);
    l1 += a.polys[1].mul(b.polys[0]);
    RnsPoly l2 = a.polys[1].mul(b.polys[1]);

    auto hint = relinHintShared(level);
    auto [u0, u1] = switcher_.apply(l2, *hint, 1);

    Ciphertext out;
    out.polys.push_back(l0 + u0);
    out.polys.push_back(l1 + u1);
    out.scale = a.scale * b.scale;
    out.noiseBits = a.noiseBits + b.noiseBits +
                    0.5 * std::log2((double)ctx_->n()) + 2.0;
    return out;
}

Ciphertext
CkksScheme::mulPlain(const Ciphertext &a,
                     std::span<const std::complex<double>> slots) const
{
    RnsPoly pt = encoder_.encode(slots, defaultScale(), a.level());
    Ciphertext out = a;
    for (auto &p : out.polys)
        p.mulEq(pt);
    out.scale = a.scale * defaultScale();
    out.noiseBits = a.noiseBits + std::log2(defaultScale()) + 1.0;
    return out;
}

Ciphertext
CkksScheme::mulPlainEncoded(const Ciphertext &a,
                            const RnsPoly &pt) const
{
    Ciphertext out = a;
    for (auto &p : out.polys)
        p.mulEq(pt);
    out.scale = a.scale * defaultScale();
    out.noiseBits = a.noiseBits + std::log2(defaultScale()) + 1.0;
    return out;
}

Ciphertext
CkksScheme::mulConst(const Ciphertext &a, double c) const
{
    RnsPoly pt =
        encoder_.encodeConstant(c, defaultScale(), a.level());
    Ciphertext out = a;
    for (auto &p : out.polys)
        p.mulEq(pt);
    out.scale = a.scale * defaultScale();
    out.noiseBits = a.noiseBits + std::log2(defaultScale()) + 1.0;
    return out;
}

Ciphertext
CkksScheme::mulConstAtScale(const Ciphertext &a, double c,
                            double encodeScale) const
{
    F1_CHECK(encodeScale > 1.0, "encode scale too small to quantize");
    RnsPoly pt = encoder_.encodeConstant(c, encodeScale, a.level());
    Ciphertext out = a;
    for (auto &p : out.polys)
        p.mulEq(pt);
    out.scale = a.scale * encodeScale;
    out.noiseBits = a.noiseBits + std::log2(encodeScale) + 1.0;
    return out;
}

Ciphertext
CkksScheme::addPlain(const Ciphertext &a,
                     std::span<const std::complex<double>> slots) const
{
    RnsPoly pt = encoder_.encode(slots, a.scale, a.level());
    Ciphertext out = a;
    out.polys[0] += pt;
    out.noiseBits = a.noiseBits + 0.5;
    return out;
}

Ciphertext
CkksScheme::addPlainEncoded(const Ciphertext &a,
                            const RnsPoly &pt) const
{
    Ciphertext out = a;
    out.polys[0] += pt;
    out.noiseBits = a.noiseBits + 0.5;
    return out;
}

Ciphertext
CkksScheme::addConst(const Ciphertext &a, double c) const
{
    RnsPoly pt = encoder_.encodeConstant(c, a.scale, a.level());
    Ciphertext out = a;
    out.polys[0] += pt;
    out.noiseBits = a.noiseBits + 0.5;
    return out;
}

Ciphertext
CkksScheme::rescale(const Ciphertext &a) const
{
    F1_CHECK(a.level() >= 2, "cannot rescale below level 1");
    Ciphertext out = a;
    const uint32_t dropped = ctx_->ciphertextPrime(a.level() - 1);
    for (auto &p : out.polys)
        dropLastModulusRounded(p, 1);
    out.scale = a.scale / static_cast<double>(dropped);
    out.noiseBits =
        std::max(a.noiseBits - std::log2((double)dropped), 4.0) + 1.0;
    return out;
}

Ciphertext
CkksScheme::negate(const Ciphertext &a) const
{
    Ciphertext out = a;
    for (auto &p : out.polys)
        p.negate();
    return out;
}

Ciphertext
CkksScheme::modDownTo(const Ciphertext &a, size_t level) const
{
    F1_CHECK(level >= 1 && level <= a.level(),
             "modDownTo target out of range");
    Ciphertext out = a;
    for (auto &p : out.polys)
        while (p.levels() > level)
            p.dropLastResidue();
    return out;
}

Ciphertext
CkksScheme::applyGalois(const Ciphertext &a, uint64_t g)
{
    const size_t level = a.level();
    RnsPoly c0 = a.polys[0].automorphism(g);
    RnsPoly c1 = a.polys[1].automorphism(g);
    auto hint = galoisHintShared(g, level);
    auto [u0, u1] = switcher_.apply(c1, *hint, 1);

    Ciphertext out;
    out.polys.push_back(c0 + u0);
    out.polys.push_back(std::move(u1));
    out.scale = a.scale;
    out.noiseBits = a.noiseBits + 1.0;
    return out;
}

Ciphertext
CkksScheme::rotate(const Ciphertext &a, int64_t r)
{
    return applyGalois(a, encoder_.slotOrder().rotationGalois(r));
}

Ciphertext
CkksScheme::conjugate(const Ciphertext &a)
{
    return applyGalois(a, encoder_.slotOrder().conjugationGalois());
}

} // namespace f1
