#include "fhe/fhe_context.h"

#include <cmath>

#include "common/error.h"
#include "modular/primes.h"

namespace f1 {

FheContext::FheContext(const FheParams &params) : params_(params)
{
    F1_REQUIRE(params.maxLevel >= 1, "need at least one level");
    auto cipher = generateNttPrimes(params.maxLevel, params.primeBits,
                                    params.n);
    std::vector<uint32_t> all = cipher;
    if (params.auxCount > 0) {
        auto aux = generateNttPrimes(params.auxCount, params.primeBits,
                                     params.n, cipher);
        all.insert(all.end(), aux.begin(), aux.end());
    }
    // One additional special prime for hybrid key-switching.
    all.push_back(generateNttPrimes(1, params.primeBits, params.n,
                                    all)[0]);
    poly_ = std::make_unique<PolyContext>(params.n, all);
    ckksScale_ = params.ckksScale > 0
        ? params.ckksScale
        : static_cast<double>(cipher[0]);
}

uint32_t
FheContext::ciphertextPrime(size_t i) const
{
    F1_CHECK(i < params_.maxLevel, "ciphertext prime index out of range");
    return poly_->modulus(i);
}

uint32_t
FheContext::auxPrime(size_t k) const
{
    F1_CHECK(k < params_.auxCount, "aux prime index out of range");
    return poly_->modulus(params_.maxLevel + k);
}

uint32_t
FheContext::specialPrime() const
{
    return poly_->modulus(specialIndex());
}

double
FheContext::logQ(size_t level) const
{
    double bits = 0;
    for (size_t i = 0; i < level; ++i)
        bits += std::log2(static_cast<double>(poly_->modulus(i)));
    return bits;
}

// keyGen() in keyswitch.cpp samples over the full chain including the
// special prime; see FheContext::specialIndex().

RnsPoly
FheContext::sampleError(size_t levels, Rng &rng) const
{
    std::vector<int64_t> e(params_.n);
    for (auto &x : e)
        x = rng.sampleCenteredBinomial(params_.errorHammingWeight);
    return RnsPoly::fromSigned(poly_.get(), levels, e);
}

RnsPoly
FheContext::sampleTernary(size_t levels, Rng &rng) const
{
    std::vector<int64_t> s(params_.n, 0);
    if (params_.secretHammingWeight == 0) {
        for (auto &x : s)
            x = rng.sampleTernary();
    } else {
        // Sparse ternary secret (HEAAN-style): exactly h nonzeros.
        // Bounds the wrap-around term of CKKS bootstrapping.
        uint32_t placed = 0;
        while (placed < params_.secretHammingWeight) {
            size_t pos = rng.uniform(params_.n);
            if (s[pos] == 0) {
                s[pos] = rng.uniform(2) ? 1 : -1;
                ++placed;
            }
        }
    }
    return RnsPoly::fromSigned(poly_.get(), levels, s);
}

} // namespace f1
