/**
 * @file
 * RGSW (ring-GSW, paper §2.5): asymmetric-noise-growth scheme built on
 * the same primitives as BGV/CKKS. A GSW ciphertext is a pair of
 * gadget-decomposed RLWE rows (RLWE'(m), RLWE'(s*m)); the external
 * product RGSW(m2) ⊡ RLWE(m1) -> RLWE(m1*m2) reuses the RNS digit
 * decomposition of the key-switching unit, which is why F1 supports
 * GSW with the same hardware.
 */
#ifndef F1_FHE_GSW_H
#define F1_FHE_GSW_H

#include <cstdint>
#include <vector>

#include "fhe/bgv.h"
#include "fhe/ciphertext.h"
#include "fhe/fhe_context.h"
#include "fhe/keyswitch.h"

namespace f1 {

/**
 * RLWE'(w): for each digit i < level, an RLWE sample whose phase is
 * errScale*e + P_i*w (P_i the CRT selector constant, §keyswitch).
 */
struct RlwePrime
{
    std::vector<RnsPoly> a, b; //!< one pair per digit
};

struct RgswCiphertext
{
    RlwePrime cm;  //!< RLWE'(m)
    RlwePrime csm; //!< RLWE'(s*m)
    size_t level = 0;

    size_t sizeRVecs() const
    {
        size_t c = 0;
        for (const auto &p : cm.a)
            c += 2 * p.levels();
        for (const auto &p : csm.a)
            c += 2 * p.levels();
        return c;
    }
};

class GswScheme
{
  public:
    /**
     * GSW shares the secret key and plaintext modulus of a BGV scheme
     * so the two can interoperate (external products on BGV
     * ciphertexts).
     */
    explicit GswScheme(BgvScheme *bgv);

    /** Encrypts a small scalar m (typically a bit). */
    RgswCiphertext encryptScalar(uint64_t m, size_t level);

    /**
     * External product: RLWE(m1) x RGSW(m2) -> RLWE(m1*m2) with noise
     * growing only additively in the RGSW noise (the GSW asymmetry).
     */
    Ciphertext externalProduct(const Ciphertext &rlwe,
                               const RgswCiphertext &rgsw) const;

    /**
     * CMux gate: selects ct0 when the RGSW bit is 0, ct1 when 1:
     * ct0 + bit ⊡ (ct1 - ct0).
     */
    Ciphertext cmux(const RgswCiphertext &bit, const Ciphertext &ct0,
                    const Ciphertext &ct1) const;

  private:
    RlwePrime encryptRlwePrime(const RnsPoly &w, size_t level);

    BgvScheme *bgv_;
    const FheContext *ctx_;
};

} // namespace f1

#endif // F1_FHE_GSW_H
