/**
 * @file
 * Approximate RNS basis extension (Halevi-Polyakov-Shoup style): given
 * the residues of x modulo q_0..q_{l-1}, computes x's residues modulo a
 * disjoint set of target primes without leaving RNS form. Used by the
 * GHS-style key-switching variant and by modulus-raising in
 * bootstrapping.
 *
 * The reconstruction x = sum_i w_i * qHat_i - alpha * Q uses a
 * floating-point estimate of alpha = round(sum_i w_i / q_i); with
 * <= 32 residues and 53-bit doubles the estimate is exact except on
 * pathological ties, the standard trade accepted by RNS FHE libraries.
 */
#ifndef F1_FHE_BASIS_EXTEND_H
#define F1_FHE_BASIS_EXTEND_H

#include <cstdint>
#include <span>
#include <vector>

#include "poly/poly_context.h"

namespace f1 {

class BasisExtender
{
  public:
    /**
     * @param ctx      polynomial context holding all primes
     * @param source   indices (into ctx moduli) of the source basis
     * @param target   indices of the target basis (disjoint)
     */
    BasisExtender(const PolyContext *ctx, std::vector<size_t> source,
                  std::vector<size_t> target);

    /**
     * Extends one coefficient vector: in[i][j] = residue of coeff j
     * mod source prime i; out[k][j] = residue mod target prime k.
     * Inputs and outputs are coefficient-domain residue polynomials.
     */
    void extend(std::span<const uint32_t> in, size_t n,
                std::span<uint32_t> out) const;

    size_t sourceCount() const { return source_.size(); }
    size_t targetCount() const { return target_.size(); }

  private:
    const PolyContext *ctx_;
    std::vector<size_t> source_, target_;
    // qHatInv_[i] = (Q/q_i)^-1 mod q_i
    std::vector<uint32_t> qHatInv_;
    // qHatModTarget_[k][i] = (Q/q_i) mod p_k
    std::vector<std::vector<uint32_t>> qHatModTarget_;
    // qModTarget_[k] = Q mod p_k
    std::vector<uint32_t> qModTarget_;
    std::vector<double> qInvReal_; //!< 1.0 / q_i
};

} // namespace f1

#endif // F1_FHE_BASIS_EXTEND_H
