#include "fhe/encoder.h"

#include <cmath>
#include <numbers>

#include "common/bits.h"
#include "common/error.h"
#include "modular/modarith.h"
#include "modular/primes.h"

namespace f1 {

SlotOrder::SlotOrder(uint32_t n) : n_(n)
{
    F1_REQUIRE(isPowerOfTwo(n) && n >= 4, "slot order needs N >= 4");
    evalIndex_.resize(n);
    const uint64_t two_n = 2 * (uint64_t)n;
    uint64_t e = 1; // 5^0
    for (uint32_t col = 0; col < n / 2; ++col) {
        evalIndex_[col] = static_cast<uint32_t>((e - 1) / 2);
        uint64_t e_conj = two_n - e; // exponent -5^col
        evalIndex_[n / 2 + col] = static_cast<uint32_t>((e_conj - 1) / 2);
        e = (e * 5) % two_n;
    }
}

uint64_t
SlotOrder::rotationGalois(int64_t r) const
{
    const uint64_t two_n = 2 * (uint64_t)n_;
    const uint64_t row = rowSize();
    uint64_t steps = static_cast<uint64_t>(((r % (int64_t)row) +
                                            (int64_t)row) % (int64_t)row);
    uint64_t g = 1;
    for (uint64_t i = 0; i < steps; ++i)
        g = (g * 5) % two_n;
    return g;
}

uint32_t
SlotOrder::evalIndex(uint32_t row, uint32_t col) const
{
    F1_CHECK(row < 2 && col < rowSize(), "slot index out of range");
    return evalIndex_[row * rowSize() + col];
}

//
// BgvEncoder
//

BgvEncoder::BgvEncoder(const FheContext *ctx, uint64_t t)
    : ctx_(ctx), t_(t), order_(ctx->n())
{
    const uint64_t two_n = 2 * (uint64_t)ctx->n();
    if (t > 2 && isPrime(t) && (t - 1) % two_n == 0 &&
        t <= (uint64_t)UINT32_MAX) {
        tables_ = std::make_unique<NttTables>(
            ctx->n(), static_cast<uint32_t>(t));
    }
}

std::vector<int64_t>
BgvEncoder::encodeSlots(std::span<const uint64_t> slots) const
{
    F1_REQUIRE(supportsSlots(),
               "t=" << t_ << " does not support slot packing for N="
               << ctx_->n());
    const uint32_t n = ctx_->n();
    F1_REQUIRE(slots.size() == n, "expected " << n << " slot values");
    // Scatter logical slots into evaluation order, then inverse-NTT.
    std::vector<uint32_t> evals(n);
    for (uint32_t row = 0; row < 2; ++row)
        for (uint32_t col = 0; col < n / 2; ++col)
            evals[order_.evalIndex(row, col)] = static_cast<uint32_t>(
                slots[row * (n / 2) + col] % t_);
    tables_->inverse(evals);
    std::vector<int64_t> coeffs(n);
    const uint64_t half = t_ / 2;
    for (uint32_t i = 0; i < n; ++i) {
        coeffs[i] = evals[i] > half ? (int64_t)evals[i] - (int64_t)t_
                                    : (int64_t)evals[i];
    }
    return coeffs;
}

std::vector<uint64_t>
BgvEncoder::decodeSlots(std::span<const uint64_t> coeffs) const
{
    F1_REQUIRE(supportsSlots(), "slot decode without slot support");
    const uint32_t n = ctx_->n();
    F1_REQUIRE(coeffs.size() == n, "bad coefficient count");
    std::vector<uint32_t> evals(n);
    for (uint32_t i = 0; i < n; ++i)
        evals[i] = static_cast<uint32_t>(coeffs[i] % t_);
    tables_->forward(evals);
    std::vector<uint64_t> slots(n);
    for (uint32_t row = 0; row < 2; ++row)
        for (uint32_t col = 0; col < n / 2; ++col)
            slots[row * (n / 2) + col] =
                evals[order_.evalIndex(row, col)];
    return slots;
}

std::vector<int64_t>
BgvEncoder::encodeCoeffs(std::span<const uint64_t> values) const
{
    const uint32_t n = ctx_->n();
    F1_REQUIRE(values.size() <= n, "too many coefficients");
    std::vector<int64_t> coeffs(n, 0);
    const uint64_t half = t_ / 2;
    for (size_t i = 0; i < values.size(); ++i) {
        uint64_t v = values[i] % t_;
        coeffs[i] = v > half ? (int64_t)v - (int64_t)t_ : (int64_t)v;
    }
    return coeffs;
}

RnsPoly
BgvEncoder::toPoly(std::span<const int64_t> coeffs, size_t levels,
                   Domain domain) const
{
    return RnsPoly::fromSigned(ctx_->polyContext(), levels, coeffs,
                               domain);
}

//
// CkksEncoder
//

CkksEncoder::CkksEncoder(const FheContext *ctx)
    : ctx_(ctx), order_(ctx->n())
{
    const uint32_t n = ctx->n();
    psi_.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
        double ang = std::numbers::pi * i / n;
        psi_[i] = {std::cos(ang), std::sin(ang)};
    }
}

void
CkksEncoder::fft(std::vector<std::complex<double>> &a, bool inverse) const
{
    const uint32_t n = static_cast<uint32_t>(a.size());
    const uint32_t bits = log2Exact(n);
    for (uint32_t i = 0; i < n; ++i) {
        uint32_t j = bitReverse(i, bits);
        if (i < j)
            std::swap(a[i], a[j]);
    }
    for (uint32_t half = 1; half < n; half <<= 1) {
        double ang = std::numbers::pi / half * (inverse ? -1.0 : 1.0);
        std::complex<double> wlen{std::cos(ang), std::sin(ang)};
        for (uint32_t base = 0; base < n; base += 2 * half) {
            std::complex<double> w{1.0, 0.0};
            for (uint32_t j = 0; j < half; ++j) {
                auto u = a[base + j];
                auto v = a[base + half + j] * w;
                a[base + j] = u + v;
                a[base + half + j] = u - v;
                w *= wlen;
            }
        }
    }
    if (inverse) {
        for (auto &x : a)
            x /= static_cast<double>(n);
    }
}

RnsPoly
CkksEncoder::encode(std::span<const std::complex<double>> slots,
                    double scale, size_t levels) const
{
    const uint32_t n = ctx_->n();
    F1_REQUIRE(slots.size() == n / 2,
               "expected " << n / 2 << " CKKS slots");
    // Fill the evaluation vector with conjugate symmetry (row 1 holds
    // the conjugates so the coefficients come out real).
    std::vector<std::complex<double>> w(n);
    for (uint32_t col = 0; col < n / 2; ++col) {
        w[order_.evalIndex(0, col)] = slots[col];
        w[order_.evalIndex(1, col)] = std::conj(slots[col]);
    }
    // m_i = Re(ζ^-i * IFFT(W)[i]) * scale.
    fft(w, /*inverse=*/true);
    std::vector<int64_t> coeffs(n);
    for (uint32_t i = 0; i < n; ++i) {
        std::complex<double> v = w[i] * std::conj(psi_[i]);
        coeffs[i] = llround(v.real() * scale);
    }
    return RnsPoly::fromSigned(ctx_->polyContext(), levels, coeffs);
}

RnsPoly
CkksEncoder::encodeConstant(double value, double scale,
                            size_t levels) const
{
    // A constant is the polynomial value*scale + 0*x + ...: encode
    // directly without the FFT.
    std::vector<int64_t> coeffs(ctx_->n(), 0);
    coeffs[0] = llround(value * scale);
    return RnsPoly::fromSigned(ctx_->polyContext(), levels, coeffs);
}

std::vector<std::complex<double>>
CkksEncoder::decode(const RnsPoly &poly, double scale) const
{
    const uint32_t n = ctx_->n();
    RnsPoly p = poly;
    p.toCoeff();
    std::vector<std::complex<double>> w(n);
    for (uint32_t i = 0; i < n; ++i) {
        auto [mag, neg] = p.coeffCentered(i);
        double v = mag.toDouble() * (neg ? -1.0 : 1.0);
        w[i] = v * psi_[i];
    }
    fft(w, /*inverse=*/false);
    std::vector<std::complex<double>> slots(n / 2);
    for (uint32_t col = 0; col < n / 2; ++col)
        slots[col] = w[order_.evalIndex(0, col)] / scale;
    return slots;
}

} // namespace f1
