/**
 * @file
 * Non-packed bootstrapping for BGV and CKKS, following the paper's
 * benchmarks (§7): Alperin-Sheriff–Peikert-style BGV bootstrapping and
 * HEAAN-style CKKS bootstrapping, both non-packed, with L_max = 24 in
 * the evaluation.
 *
 * BGV (t = 2): the exhausted input ciphertext is modulus-switched (on
 * known data) to q̃ = 2^d; a bootstrapping key Enc(s) under plaintext
 * modulus 2^d evaluates the decryption phase u = c̃0 + c̃1*s
 * homomorphically (one plaintext multiply); d-2 homomorphic squarings
 * map u to its least significant bit (u^(2^k) ≡ u mod 2 (mod 2^(k+2))),
 * which *is* the plaintext; the result is reinterpreted under t = 2.
 * This is exact: tests verify end-to-end recryption.
 *
 * CKKS: the input is modulus-raised via RNS basis extension (the
 * ciphertext then decrypts to m + q0*I for a small integer polynomial
 * I), and m is recovered approximately by evaluating
 * (q0/2π)·sin(2πx/q0) with a Taylor polynomial.
 */
#ifndef F1_FHE_BOOTSTRAP_H
#define F1_FHE_BOOTSTRAP_H

#include <cstdint>

#include "fhe/bgv.h"
#include "fhe/ckks.h"

namespace f1 {

/** BGV bootstrapping context (t = 2 non-packed). */
class BgvBootstrapper
{
  public:
    /**
     * @param scheme   BGV scheme with t = 2
     * @param digits   d: precision of the intermediate modulus 2^d;
     *                 depth used is (d - 2) squarings + 1
     */
    BgvBootstrapper(BgvScheme *scheme, uint32_t digits = 8);

    /**
     * Refreshes an exhausted ciphertext: takes ct at any (low) level
     * and returns an equivalent encryption at a higher level with
     * fresh-ish noise. ct must be a 2-poly t=2 ciphertext.
     */
    Ciphertext bootstrap(const Ciphertext &ct);

    /** Level at which bootstrapped ciphertexts emerge. */
    size_t outputLevel() const;

    /** The auxiliary scheme (plaintext modulus 2^d) used internally;
     *  exposed so instrumentation can count its operations. */
    BgvScheme &innerScheme() { return inner_; }

  private:
    BgvScheme *scheme_;
    uint32_t digits_;
    BgvScheme inner_; //!< same key, plaintext modulus 2^d
    Ciphertext bootKey_; //!< Enc_{2^d}(s), the bootstrapping key
};

/** CKKS bootstrapping context (non-packed, HEAAN-style). */
class CkksBootstrapper
{
  public:
    /**
     * @param scheme      CKKS scheme
     * @param taylorDeg   degree of the sine Taylor expansion (odd)
     */
    CkksBootstrapper(CkksScheme *scheme, uint32_t taylorDeg = 7);

    /**
     * Raises an exhausted level-1 ciphertext to the top of the chain
     * and evaluates the sine approximation to remove the q0*I
     * wrap-around term. The result approximates the original plaintext
     * at a higher level (values must satisfy |m| << q0).
     */
    Ciphertext bootstrap(const Ciphertext &ct);

  private:
    /** Angle-halving rounds: the sine argument is divided by 2^r
     *  before the Taylor expansion and recovered with r double-angle
     *  steps. Bounds the argument when the modulus-raise wrap term I
     *  is small (sparse secret keys keep it so, as in HEAAN). */
    static constexpr int kDoublings = 6;

    Ciphertext evalSinePoly(const Ciphertext &y);

    CkksScheme *scheme_;
    uint32_t taylorDeg_;
};

} // namespace f1

#endif // F1_FHE_BOOTSTRAP_H
