/**
 * @file
 * Ciphertext representation shared by BGV and CKKS: a pair of RNS
 * polynomials (c0, c1) with Dec(ct) = c0 + c1*s, plus bookkeeping the
 * schemes need (level, noise estimate, CKKS scale, BGV plaintext
 * correction factor accumulated by modulus switching).
 */
#ifndef F1_FHE_CIPHERTEXT_H
#define F1_FHE_CIPHERTEXT_H

#include <cstdint>
#include <vector>

#include "poly/rns_poly.h"

namespace f1 {

struct Ciphertext
{
    std::vector<RnsPoly> polys; //!< usually {c0, c1}; 3 mid-multiply

    /** Number of RNS residues currently carried. */
    size_t level() const { return polys.empty() ? 0 : polys[0].levels(); }

    /**
     * Conservative estimate of log2 of the noise magnitude. Decryption
     * is expected to succeed while noiseBits < logQ(level) - 1; the
     * noise-tracker tests validate conservativeness.
     */
    double noiseBits = 0;

    /** CKKS: current scale Δ of the encoded plaintext. */
    double scale = 0;

    /**
     * BGV: multiplicative plaintext correction mod t. Modulus switching
     * by q divides the plaintext by q (mod t); decryption multiplies by
     * this factor to undo it. Starts at 1.
     */
    uint64_t ptCorrection = 1;
};

} // namespace f1

#endif // F1_FHE_CIPHERTEXT_H
