/**
 * @file
 * Key-switching (paper §2.2.1, §2.4, Listing 1), the dominant cost of
 * homomorphic multiplication and permutation. Two implementations with
 * different compute/data tradeoffs, matching the algorithmic choice the
 * F1 compiler exploits (§4.2):
 *
 *  - kDigitLxL ("Listing 1"): RNS-digit decomposition. The hint is an
 *    L×L matrix pair (2*L*L residue vectors, ~32 MB at L=16, N=16K);
 *    applying it takes L INTTs and L*(L-1) NTTs plus 2L^2 multiply-adds.
 *
 *  - kGhsExtension: GHS-style with an auxiliary prime basis P. The hint
 *    is a single pair over the extended basis (2*(L+K) residue vectors,
 *    O(L)); applying it costs basis extensions (heavy element-wise
 *    compute) but only ~3(L+K) NTT-class operations.
 *
 * Hints are generated per (source key, level); the scheme layer caches
 * them (they are exactly the values whose reuse the F1 scheduler
 * maximizes).
 */
#ifndef F1_FHE_KEYSWITCH_H
#define F1_FHE_KEYSWITCH_H

#include <cstdint>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/lru_cache.h"
#include "fhe/fhe_context.h"
#include "poly/rns_poly.h"

namespace f1 {

enum class KeySwitchVariant { kDigitLxL, kGhsExtension };

struct SecretKey
{
    RnsPoly s; //!< ternary key over the full chain, NTT domain
};

struct KeySwitchHint
{
    KeySwitchVariant variant;
    size_t level; //!< ciphertext level this hint serves

    /**
     * Variant A: a[i], b[i] for each digit i < level; apply() touches
     * residues {0..level-1} plus the special prime of each.
     * Variant B: a[0], b[0] over the extended basis.
     * Polys are stored over the full chain for layout uniformity.
     */
    std::vector<RnsPoly> a, b;

    /** Residue vectors actually read by apply(): the hint's working
     *  set for traffic accounting. A: 2*L*(L+1); B: 2*(L+K). */
    size_t usedRVecs = 0;
    size_t sizeRVecs() const { return usedRVecs; }

    /** Size in bytes at degree n. */
    size_t sizeBytes(uint32_t n) const { return sizeRVecs() * n * 4; }
};

/**
 * Identity of a cached key-switch hint: the Galois element (0 for the
 * relinearization hint — Galois elements are odd, so 0 is free) and
 * the ciphertext level it serves.
 */
struct HintKey
{
    uint64_t galois = 0;
    uint64_t level = 0;
    bool operator==(const HintKey &) const = default;
};

struct HintKeyHash
{
    size_t
    operator()(const HintKey &k) const
    {
        return static_cast<size_t>(
            hashCombine(hashMix(k.galois), k.level));
    }
};

/**
 * Thread-safe cache of generated hints, shared by every consumer of a
 * scheme instance (reference executor, serving engine, benches).
 * Unbounded by default; the serving layer may cap it, in which case
 * entries are pinned by the shared_ptr accessors while in use.
 */
using HintCache = LruCache<HintKey, KeySwitchHint, HintKeyHash>;

/**
 * Deterministic seed for the randomness of the hint identified by
 * (galois, level) under a scheme seeded with `schemeSeed`. Deriving
 * the stream from the identity — instead of drawing from the scheme's
 * sequential PRNG — makes hint bits independent of the order in which
 * concurrent jobs first request them, which the runtime's run-to-run
 * determinism contract relies on.
 */
inline uint64_t
hintSeed(uint64_t schemeSeed, uint64_t galois, uint64_t level)
{
    return hashCombine(
        hashCombine(hashCombine(schemeSeed, 0x6b73776869ULL), galois),
        level);
}

class KeySwitcher
{
  public:
    explicit KeySwitcher(const FheContext *ctx) : ctx_(ctx) {}

    /** Generates a fresh secret key over the full chain. */
    SecretKey keyGen(Rng &rng) const;

    /**
     * Builds a hint for re-keying x*w-shaped terms to key s:
     * apply() then returns (u0, u1) with u0 + u1*s ≈ x*w.
     *
     * @param w          source key component (e.g. s^2 or σ_g(s)),
     *                   NTT domain, >= level residues
     * @param errorScale t for BGV (noise enters multiplied by t), 1 for
     *                   CKKS
     */
    KeySwitchHint makeHint(const RnsPoly &w, const SecretKey &sk,
                           size_t level, uint64_t errorScale,
                           KeySwitchVariant variant, Rng &rng) const;

    /**
     * Applies the hint to x (NTT domain, hint->level residues).
     * Returns (u0, u1), both NTT domain at the same level.
     * For variant B, errorScale must match the hint's generation.
     */
    std::pair<RnsPoly, RnsPoly> apply(const RnsPoly &x,
                                      const KeySwitchHint &hint,
                                      uint64_t errorScale) const;

  private:
    std::pair<RnsPoly, RnsPoly> applyDigitScaled(
        const RnsPoly &x, const KeySwitchHint &hint,
        uint64_t errorScale) const;
    std::pair<RnsPoly, RnsPoly> applyGhs(
        const RnsPoly &x, const KeySwitchHint &hint,
        uint64_t errorScale) const;

    const FheContext *ctx_;
};

/**
 * Drops the last residue of a ciphertext polynomial, dividing it by
 * q_last with rounding (modulus switching / CKKS rescaling):
 * p' = (p - δ)/q_last where δ ≡ p (mod q_last) and δ ≡ 0 (mod tAdjust).
 * Use tAdjust = t for BGV, 1 for CKKS. Input and output in NTT domain.
 */
void dropLastModulusRounded(RnsPoly &p, uint64_t tAdjust);

/**
 * RNS digit decomposition with centered lift (Listing 1 lines 3+8):
 * returns, for each residue i of x, the polynomial x̃_i that is
 * congruent to the centered lift of [x]_{q_i} modulo every prime of
 * x's level, in the NTT domain. Shared by the digit key-switch variant
 * and the GSW external product.
 */
std::vector<RnsPoly> digitDecomposeLift(const RnsPoly &x);

} // namespace f1

#endif // F1_FHE_KEYSWITCH_H
