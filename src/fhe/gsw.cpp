#include "fhe/gsw.h"

#include <cmath>

#include "common/error.h"
#include "common/parallel.h"
#include "common/scratch.h"
#include "modular/modarith.h"

namespace f1 {

GswScheme::GswScheme(BgvScheme *bgv) : bgv_(bgv), ctx_(bgv->context()) {}

RlwePrime
GswScheme::encryptRlwePrime(const RnsPoly &w, size_t level)
{
    // Identical structure to the digit key-switch hint: digit i's phase
    // carries P_i * w, with P_i ≡ δ_ij (mod q_j).
    const PolyContext *pc = ctx_->polyContext();
    const uint64_t t = bgv_->plainModulus();
    Rng rng(0x65370000 ^ level); // deterministic per level
    const RnsPoly s = bgv_->secretKey().s.restricted(level);

    RlwePrime out;
    for (size_t i = 0; i < level; ++i) {
        RnsPoly ai = RnsPoly::uniform(pc, level, rng);
        RnsPoly bi = ai.mul(s);
        bi.negate();
        RnsPoly e = ctx_->sampleError(level, rng);
        e.mulScalar(t);
        bi += e;
        auto bres = bi.residue(i);
        auto wres = w.residue(i);
        const uint32_t qi = pc->modulus(i);
        for (size_t j = 0; j < bres.size(); ++j)
            bres[j] = addMod(bres[j], wres[j], qi);
        out.a.push_back(std::move(ai));
        out.b.push_back(std::move(bi));
    }
    return out;
}

RgswCiphertext
GswScheme::encryptScalar(uint64_t m, size_t level)
{
    const PolyContext *pc = ctx_->polyContext();
    // Constant polynomial m.
    auto coeffs = ScratchArena::i64(ctx_->n(), /*zeroed=*/true);
    coeffs[0] = static_cast<int64_t>(m);
    RnsPoly mp = RnsPoly::fromSigned(pc, level, coeffs.span());
    RnsPoly sm = bgv_->secretKey().s.restricted(level).mul(mp);

    RgswCiphertext out;
    out.level = level;
    out.cm = encryptRlwePrime(mp, level);
    out.csm = encryptRlwePrime(sm, level);
    return out;
}

Ciphertext
GswScheme::externalProduct(const Ciphertext &rlwe,
                           const RgswCiphertext &rgsw) const
{
    F1_CHECK(rlwe.level() == rgsw.level,
             "level mismatch in external product");
    const PolyContext *pc = ctx_->polyContext();
    const size_t level = rlwe.level();

    // Decompose both RLWE components; accumulate
    //   out = Σ_i d_i(c0) * RLWE'(m)[i] + Σ_i d_i(c1) * RLWE'(sm)[i].
    auto d0 = digitDecomposeLift(rlwe.polys[0]);
    auto d1 = digitDecomposeLift(rlwe.polys[1]);

    RnsPoly r0(pc, level, Domain::kNtt);
    RnsPoly r1(pc, level, Domain::kNtt);
    // One work unit per limb: each residue runs the full digit MAC
    // chain locally instead of materializing 4*level temporary
    // polynomial products (same exact arithmetic, one pool hand-off).
    parallelForLimbs(level, [&](size_t r) {
        const uint32_t q = pc->modulus(r);
        auto o0 = r0.residue(r);
        auto o1 = r1.residue(r);
        for (size_t i = 0; i < level; ++i) {
            auto x0 = d0[i].residue(r);
            auto x1 = d1[i].residue(r);
            auto cmb = rgsw.cm.b[i].residue(r);
            auto cma = rgsw.cm.a[i].residue(r);
            auto csb = rgsw.csm.b[i].residue(r);
            auto csa = rgsw.csm.a[i].residue(r);
            for (size_t j = 0; j < o0.size(); ++j) {
                o0[j] = addMod(o0[j], mulMod(x0[j], cmb[j], q), q);
                o1[j] = addMod(o1[j], mulMod(x0[j], cma[j], q), q);
                o0[j] = addMod(o0[j], mulMod(x1[j], csb[j], q), q);
                o1[j] = addMod(o1[j], mulMod(x1[j], csa[j], q), q);
            }
        }
    });

    Ciphertext out;
    out.polys.push_back(std::move(r0));
    out.polys.push_back(std::move(r1));
    // GSW asymmetry: the RLWE noise passes through scaled by m (a small
    // scalar), plus an additive digit term independent of the RLWE
    // noise.
    out.noiseBits =
        std::max(rlwe.noiseBits,
                 std::log2((double)bgv_->plainModulus()) +
                     ctx_->params().primeBits +
                     0.5 * std::log2((double)level * ctx_->n()) + 4.0) +
        1.0;
    out.ptCorrection = rlwe.ptCorrection;
    return out;
}

Ciphertext
GswScheme::cmux(const RgswCiphertext &bit, const Ciphertext &ct0,
                const Ciphertext &ct1) const
{
    Ciphertext diff = bgv_->sub(ct1, ct0);
    Ciphertext sel = externalProduct(diff, bit);
    return bgv_->add(ct0, sel);
}

} // namespace f1
