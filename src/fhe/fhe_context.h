/**
 * @file
 * FHE parameter context shared by all schemes. Holds the ciphertext
 * modulus chain (q_0..q_{L-1}), the auxiliary extension primes used by
 * the GHS-style key-switching variant (p_0..p_{K-1}), and the
 * polynomial context spanning both.
 *
 * Residue indices [0, maxLevel) are ciphertext primes; indices
 * [maxLevel, maxLevel + auxCount) are the extension primes; the final
 * index is the key-switching special prime (the hybrid refinement all
 * RNS FHE libraries apply to Listing 1: hints carry a factor p_sp that
 * is divided out after accumulation, shrinking key-switch noise by
 * ~log2(p_sp) bits; see DESIGN.md).
 */
#ifndef F1_FHE_FHE_CONTEXT_H
#define F1_FHE_FHE_CONTEXT_H

#include <cstdint>
#include <memory>
#include <vector>

#include "poly/rns_poly.h"

namespace f1 {

struct FheParams
{
    uint32_t n = 4096;           //!< polynomial degree
    uint32_t maxLevel = 4;       //!< L: ciphertext primes
    uint32_t auxCount = 0;       //!< K: extension primes (variant B)
    uint32_t primeBits = 28;     //!< width of each RNS prime
    uint64_t plainModulus = 65537; //!< t (BGV); ignored by CKKS
    double ckksScale = 0;        //!< Δ; 0 = use q_0 as the scale
    int errorHammingWeight = 16; //!< centered-binomial error parameter
    uint32_t secretHammingWeight = 0; //!< 0 = dense ternary secret
    uint64_t seed = 1;           //!< key/error PRNG seed
};

class FheContext
{
  public:
    explicit FheContext(const FheParams &params);

    const FheParams &params() const { return params_; }
    const PolyContext *polyContext() const { return poly_.get(); }
    uint32_t n() const { return params_.n; }
    uint32_t maxLevel() const { return params_.maxLevel; }
    uint32_t auxCount() const { return params_.auxCount; }
    uint64_t plainModulus() const { return params_.plainModulus; }

    /** Scale used by CKKS (defaults to the magnitude of q_0). */
    double ckksScale() const { return ckksScale_; }

    /** Ciphertext prime i (i < maxLevel). */
    uint32_t ciphertextPrime(size_t i) const;

    /** Extension prime k (k < auxCount). */
    uint32_t auxPrime(size_t k) const;

    /** Chain index of the key-switching special prime (last). */
    size_t specialIndex() const
    {
        return params_.maxLevel + params_.auxCount;
    }
    uint32_t specialPrime() const;

    /** log2 of the ciphertext modulus at `level` primes. */
    double logQ(size_t level) const;

    /**
     * Samples a fresh error polynomial (centered binomial) over the
     * first `levels` residues, in the NTT domain.
     */
    RnsPoly sampleError(size_t levels, Rng &rng) const;

    /** Samples a ternary polynomial over `levels` residues (NTT). */
    RnsPoly sampleTernary(size_t levels, Rng &rng) const;

  private:
    FheParams params_;
    std::unique_ptr<PolyContext> poly_;
    double ckksScale_;
};

} // namespace f1

#endif // F1_FHE_FHE_CONTEXT_H
