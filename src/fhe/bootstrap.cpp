#include "fhe/bootstrap.h"

#include <cmath>
#include <numbers>

#include "common/bits.h"
#include "common/error.h"
#include "fhe/basis_extend.h"
#include "modular/modarith.h"

namespace f1 {

namespace {

/** Reads the centered small coefficients of a ternary key. */
std::vector<int64_t>
ternaryCoeffs(const RnsPoly &s_full)
{
    RnsPoly s1 = s_full.restricted(1);
    s1.toCoeff();
    const uint32_t q = s1.context()->modulus(0);
    auto res = s1.residue(0);
    std::vector<int64_t> out(res.size());
    for (size_t i = 0; i < res.size(); ++i) {
        F1_CHECK(res[i] <= 1 || res[i] >= q - 1,
                 "secret key is not ternary");
        out[i] = res[i] == q - 1 ? -1 : (int64_t)res[i];
    }
    return out;
}

} // namespace

BgvBootstrapper::BgvBootstrapper(BgvScheme *scheme, uint32_t digits)
    : scheme_(scheme), digits_(digits),
      // The inner plaintext modulus carries log2(N) headroom so the
      // trace's N factor can be divided out exactly.
      inner_(scheme->context(),
             1ULL << (digits + log2Exact(scheme->context()->n())),
             scheme->variant(), /*seed=*/0xb007)
{
    F1_REQUIRE(scheme_->plainModulus() == 2,
               "BGV bootstrapping implemented for t = 2 (non-packed)");
    F1_REQUIRE(digits_ >= 4 && digits_ <= 14, "digits out of range");
    F1_REQUIRE(scheme_->context()->maxLevel() > digits_,
               "chain too short for " << digits_ << "-digit recryption");
    inner_.adoptKey(scheme_->secretKey());

    // Bootstrapping key: encryption of s under plaintext modulus 2^d at
    // the top of the chain.
    auto s_coeffs = ternaryCoeffs(scheme_->secretKey().s);
    RnsPoly m = RnsPoly::fromSigned(scheme_->context()->polyContext(),
                                    scheme_->context()->maxLevel(),
                                    s_coeffs);
    bootKey_ = inner_.encryptPoly(m);
}

size_t
BgvBootstrapper::outputLevel() const
{
    return scheme_->context()->maxLevel() - (digits_ - 2);
}

Ciphertext
BgvBootstrapper::bootstrap(const Ciphertext &ct)
{
    F1_REQUIRE(ct.level() == 1,
               "bootstrap expects an exhausted level-1 ciphertext");
    const FheContext *ctx = scheme_->context();
    const uint32_t q0 = ctx->ciphertextPrime(0);
    const uint32_t n = ctx->n();
    const int64_t qtilde = 1LL << (digits_ + log2Exact(n));

    // 1. Modulus-switch the *known* ciphertext data from q0 to 2^d,
    //    preserving parity (BGV switching with t = 2).
    auto switchPoly = [&](const RnsPoly &p) {
        RnsPoly c = p;
        c.toCoeff();
        auto res = c.residue(0);
        std::vector<int64_t> out(n);
        const uint32_t half = q0 / 2;
        for (uint32_t i = 0; i < n; ++i) {
            int64_t v = res[i] > half ? (int64_t)res[i] - q0
                                      : (int64_t)res[i];
            double scaled = static_cast<double>(v) * qtilde / q0;
            int64_t lo = static_cast<int64_t>(std::floor(scaled));
            // Pick the candidate with matching parity.
            int64_t cand = ((lo ^ v) & 1) == 0 ? lo : lo + 1;
            if (std::abs(scaled - (double)cand) >
                std::abs(scaled - (double)(cand + 2)))
                cand += 2;
            out[i] = cand;
        }
        return out;
    };
    auto c0t = switchPoly(ct.polys[0]);
    auto c1t = switchPoly(ct.polys[1]);

    // 2. Homomorphic phase: u = c~0 + c~1 * s under plaintext 2^(d+logN).
    //    The extra log2(N) headroom absorbs the N factor the trace
    //    introduces below.
    Ciphertext u = inner_.mulPlain(bootKey_, c1t);
    u = inner_.addPlain(u, c0t);

    // 3. Homomorphic trace: u's plaintext polynomial has garbage in
    //    coefficients 1..N-1 (the phase is a full ring element); the
    //    trace sum over all automorphisms zeroes them and leaves
    //    N * u_0 in coefficient 0 (AP13's coefficient isolation).
    //    log2(N) Galois steps with g = 2^k + 1.
    const uint32_t logN = log2Exact(n);
    for (uint32_t k = logN; k >= 1; --k)
        u = inner_.add(u, inner_.applyGalois(u, (1ULL << k) + 1));

    // 4. Exact division by N = 2^logN: both the N*u_0 term and the
    //    2^(d+logN)*E noise are divisible, so scaling by N^-1 mod Q is
    //    exact and the plaintext modulus drops back to 2^d.
    {
        const PolyContext *pc = ctx->polyContext();
        std::vector<uint32_t> ninv(u.level());
        for (size_t i = 0; i < u.level(); ++i)
            ninv[i] = invMod(n % pc->modulus(i), pc->modulus(i));
        for (auto &p : u.polys)
            p.mulScalarPerResidue(ninv);
        u.noiseBits -= logN; // exact division shrinks the phase
    }

    // 5. (d-2) squarings: u^(2^(d-2)) ≡ lsb(u) (mod 2^d). The
    //    plaintext is now a constant polynomial, so ring squaring is
    //    coefficient squaring.
    for (uint32_t k = 0; k + 2 < digits_; ++k) {
        u = inner_.modSwitch(u);
        u = inner_.mul(u, u);
    }

    // 6. Reinterpret under t = 2. The accumulated plaintext correction
    //    is odd, so parity is unaffected and can be dropped.
    Ciphertext out;
    out.polys = u.polys;
    out.noiseBits = u.noiseBits;
    out.ptCorrection = 1;
    out.scale = 0;
    return out;
}

CkksBootstrapper::CkksBootstrapper(CkksScheme *scheme, uint32_t taylorDeg)
    : scheme_(scheme), taylorDeg_(taylorDeg)
{
    F1_REQUIRE(taylorDeg_ == 3 || taylorDeg_ == 5 || taylorDeg_ == 7,
               "supported Taylor degrees: 3, 5, 7");
}

Ciphertext
CkksBootstrapper::evalSinePoly(const Ciphertext &y)
{
    // sin/cos Taylor evaluation followed by angle doublings; y holds
    // the reduced angle p = 2*pi*u / (q0 * 2^r). Additions use exact
    // scale alignment (alignTo) so prime/scale drift never compounds.
    auto &S = *scheme_;
    const FheContext *ctx = scheme_->context();
    const int r = kDoublings;

    // Brings `ct` to (level, scale) exactly, spending one level.
    auto alignTo = [&](const Ciphertext &ct, size_t level,
                       double scale) {
        Ciphertext x = S.modDownTo(ct, level + 1);
        const double q = ctx->ciphertextPrime(level);
        x = S.mulConstAtScale(x, 1.0, scale * q / x.scale);
        return S.rescale(x);
    };

    // Powers (levels shrink as we rescale).
    Ciphertext y2 = S.rescale(S.mul(y, y));
    Ciphertext y3 = S.rescale(S.mul(y2, S.modDownTo(y, y2.level())));

    // sin ≈ y - y^3/6 (+ y^5/120 - y^7/5040),
    // cos ≈ 1 - y^2/2 (+ y^4/24 - y^6/720).
    Ciphertext sin_t = S.rescale(S.mulConst(y3, -1.0 / 6.0));
    sin_t = S.add(sin_t,
                  alignTo(y, sin_t.level(), sin_t.scale));
    Ciphertext cos_t = S.rescale(S.mulConst(y2, -0.5));
    cos_t = S.addConst(cos_t, 1.0);

    if (taylorDeg_ >= 5) {
        Ciphertext y4 = S.rescale(S.mul(y2, y2));
        Ciphertext y5 =
            S.rescale(S.mul(y4, S.modDownTo(y, y4.level())));
        Ciphertext s5 = S.rescale(S.mulConst(y5, 1.0 / 120.0));
        sin_t = S.add(alignTo(sin_t, s5.level(), s5.scale), s5);
        Ciphertext c4 = S.rescale(S.mulConst(y4, 1.0 / 24.0));
        cos_t = S.add(alignTo(cos_t, c4.level(), c4.scale), c4);
        if (taylorDeg_ >= 7) {
            Ciphertext y6 =
                S.rescale(S.mul(y4, S.modDownTo(y2, y4.level())));
            Ciphertext y7 =
                S.rescale(S.mul(y6, S.modDownTo(y, y6.level())));
            Ciphertext s7 = S.rescale(S.mulConst(y7, -1.0 / 5040.0));
            sin_t = S.add(alignTo(sin_t, s7.level(), s7.scale), s7);
            Ciphertext c6 = S.rescale(S.mulConst(y6, -1.0 / 720.0));
            cos_t = S.add(alignTo(cos_t, c6.level(), c6.scale), c6);
        }
    }

    // Angle doublings: sin(2a) = 2 sin cos, cos(2a) = 1 - 2 sin^2.
    for (int i = 0; i < r; ++i) {
        size_t lv = std::min(sin_t.level(), cos_t.level());
        Ciphertext s = S.modDownTo(sin_t, lv);
        Ciphertext c = S.modDownTo(cos_t, lv);
        Ciphertext prod = S.rescale(S.mul(s, c));
        Ciphertext s2 = S.rescale(S.mulConst(prod, 2.0));
        Ciphertext ss = S.rescale(S.mul(s, s));
        ss = S.rescale(S.mulConst(ss, -2.0));
        cos_t = S.addConst(ss, 1.0);
        sin_t = std::move(s2);
    }
    return sin_t;
}

Ciphertext
CkksBootstrapper::bootstrap(const Ciphertext &ct)
{
    F1_REQUIRE(ct.level() == 1,
               "bootstrap expects an exhausted level-1 ciphertext");
    const FheContext *ctx = scheme_->context();
    const PolyContext *pc = ctx->polyContext();
    const uint32_t q0 = ctx->ciphertextPrime(0);
    const size_t top = ctx->maxLevel();
    const int r = kDoublings;

    // 1. Modulus raise via exact single-residue basis extension: the
    //    raised ciphertext decrypts to m + e + q0*I.
    std::vector<size_t> src{0}, dst(top - 1);
    for (size_t i = 1; i < top; ++i)
        dst[i - 1] = i;
    BasisExtender up(pc, src, dst);

    Ciphertext raised;
    for (const auto &p : ct.polys) {
        RnsPoly c = p;
        c.toCoeff();
        std::vector<uint32_t> ext((top - 1) * ctx->n());
        up.extend(c.residue(0), ctx->n(), ext);
        RnsPoly full(pc, top, Domain::kCoeff);
        std::copy(c.residue(0).begin(), c.residue(0).end(),
                  full.residue(0).begin());
        for (size_t i = 1; i < top; ++i)
            std::copy(ext.begin() + (i - 1) * ctx->n(),
                      ext.begin() + i * ctx->n(),
                      full.residue(i).begin());
        full.toNtt();
        raised.polys.push_back(std::move(full));
    }
    // The raised ciphertext's phase is u; declaring its scale to be q0
    // makes its *value* u/q0, so the q0 division happens in the scale
    // bookkeeping instead of through a constant too small to encode.
    raised.scale = static_cast<double>(q0);
    raised.noiseBits = ct.noiseBits;

    // 2. Homomorphic trace (non-packed): the wrap term q0*I is an
    //    integer *polynomial*, so its slot values are complex and the
    //    sine identity would not apply slot-wise. Summing over the
    //    Galois group isolates N * u_0, whose slots are the single
    //    real value N*(m + e + q0*I_0) with integer I_0. The N factor
    //    is folded into the scale (exact).
    auto &S = *scheme_;
    const uint32_t logN = log2Exact(ctx->n());
    for (uint32_t k = logN; k >= 1; --k)
        raised = S.add(raised, S.applyGalois(raised, (1ULL << k) + 1));

    // 3. Reduce angle: p = 2*pi*(u_0/q0) / 2^r. The 1/N from the
    // trace is folded into the constant (folding it into the scale
    // would compound through the squarings and overflow).
    const double factor =
        2.0 * std::numbers::pi / ((double)(1 << r) * ctx->n());
    Ciphertext y = S.rescale(S.mulConst(raised, factor));

    // 4. Sine evaluation + doublings.
    Ciphertext sin_u = evalSinePoly(y);

    // 5. slots = (q0 / (2*pi*Δ)) * sin(2*pi*u/q0): dividing by the
    //    input scale here makes the output carry the slot values
    //    directly at its tracked scale.
    Ciphertext out = S.rescale(S.mulConst(
        sin_u, static_cast<double>(q0) /
                   (2.0 * std::numbers::pi * ct.scale)));
    return out;
}

} // namespace f1
