#include "arch/area_power.h"

#include <algorithm>

namespace f1 {

namespace {

// Table 2 reference points (16 clusters, 64 MB, 3 crossbars, 2 PHYs).
constexpr double kNttFuArea = 2.27, kNttFuTdp = 4.80;
constexpr double kAutFuArea = 0.58, kAutFuTdp = 0.99;
constexpr double kMulFuArea = 0.25, kMulFuTdp = 0.60;
constexpr double kAddFuArea = 0.03, kAddFuTdp = 0.05;
constexpr double kRfArea512K = 0.56, kRfTdp512K = 1.67;
constexpr double kScratchAreaPerMB = 48.09 / 64.0;
constexpr double kScratchTdpPerMB = 20.35 / 64.0;
constexpr double kNocArea16x16x3 = 10.02, kNocTdp16x16x3 = 19.65;
constexpr double kPhyArea = 29.80 / 2.0, kPhyTdp = 0.45 / 2.0;

AreaBreakdown
breakdown(const F1Config &cfg, bool power)
{
    auto pick = [&](double area, double tdp) { return power ? tdp : area; };

    AreaBreakdown b{};
    b.nttFu = pick(kNttFuArea, kNttFuTdp);
    b.autFu = pick(kAutFuArea, kAutFuTdp);
    b.mulFu = pick(kMulFuArea, kMulFuTdp);
    b.addFu = pick(kAddFuArea, kAddFuTdp);
    b.regFile = pick(kRfArea512K, kRfTdp512K) * cfg.regFileKB / 512.0;

    // Low-throughput FU variants keep aggregate throughput, so their
    // datapath area is ~constant; only per-unit control is replicated
    // (a small adder per extra unit).
    double ntt_units = b.nttFu * cfg.nttPerCluster +
        b.addFu * 0.5 * (cfg.lowThroughputNttDivisor - 1);
    double aut_units = b.autFu * cfg.autPerCluster +
        b.addFu * 0.5 * (cfg.lowThroughputAutDivisor - 1);
    b.cluster = ntt_units + aut_units + b.mulFu * cfg.mulPerCluster +
        b.addFu * cfg.addPerCluster + b.regFile;
    b.totalCompute = b.cluster * cfg.clusters;

    b.scratchpad =
        pick(kScratchAreaPerMB, kScratchTdpPerMB) * cfg.scratchBanks *
        cfg.bankMB;
    // Crossbar cost grows with port count squared (bit-sliced 16x16 is
    // the reference); three crossbars as in the paper.
    double ports = std::max(cfg.scratchBanks, cfg.clusters) / 16.0;
    b.noc = pick(kNocArea16x16x3, kNocTdp16x16x3) * ports * ports;
    b.hbmPhys = pick(kPhyArea, kPhyTdp) * cfg.hbmPhys;
    b.totalMemory = b.scratchpad + b.noc + b.hbmPhys;
    b.total = b.totalCompute + b.totalMemory;
    return b;
}

} // namespace

AreaBreakdown
AreaModel::area() const
{
    return breakdown(cfg_, false);
}

AreaBreakdown
AreaModel::tdp() const
{
    return breakdown(cfg_, true);
}

} // namespace f1
