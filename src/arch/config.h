/**
 * @file
 * F1 hardware configuration and timing model (paper §3, §6).
 *
 * Defaults match the evaluated F1 implementation: 16 compute clusters
 * (1 NTT, 1 automorphism, 2 multiplier, 2 adder FUs + a 512 KB banked
 * register file each), a 64 MB scratchpad in 16 banks, three 16x16
 * 512-byte bit-sliced crossbars, and two HBM2 PHYs at 512 GB/s each.
 * Logic runs at 1 GHz; memories are double-pumped at 2 GHz.
 *
 * All FUs are fully pipelined at E = 128 lanes: an RVec of N elements
 * occupies its FU for G = N/E issue cycles; latencies below are the
 * additional pipeline depths.
 */
#ifndef F1_ARCH_CONFIG_H
#define F1_ARCH_CONFIG_H

#include <cstdint>

#include "common/bits.h"
#include "isa/isa.h"

namespace f1 {

struct F1Config
{
    uint32_t lanes = 128;
    uint32_t clusters = 16;
    uint32_t nttPerCluster = 1;
    uint32_t autPerCluster = 1;
    uint32_t mulPerCluster = 2;
    uint32_t addPerCluster = 2;
    uint32_t regFileKB = 512;
    uint32_t scratchBanks = 16;
    uint32_t bankMB = 4;
    uint32_t hbmPhys = 2;
    double hbmGBsPerPhy = 512.0;
    double freqGHz = 1.0;
    uint32_t portBytes = 512;      //!< NoC/bank port width per cycle
    uint32_t hbmLatency = 100;     //!< worst-case load latency (§3)

    /**
     * Sensitivity knobs (paper §8.3 / Table 5): replace the single
     * high-throughput NTT/automorphism FU with `divisor` units of
     * 1/divisor throughput each (same aggregate throughput).
     */
    uint32_t lowThroughputNttDivisor = 1;
    uint32_t lowThroughputAutDivisor = 1;

    /**
     * Host-execution knob (not modeled hardware): software threads the
     * functional layer uses to process residue polynomials in parallel,
     * mirroring the one-vector-unit-per-residue mapping (§2.3, §4).
     * 0 = auto (F1_THREADS env override if set, else hardware
     * concurrency); 1 = deterministic serial fallback. Results are
     * bit-identical for every setting. Applied via
     * setGlobalThreadCount() (common/parallel.h) by the bench/sim
     * entry points.
     */
    uint32_t hostThreads = 0;

    size_t scratchBytes() const
    {
        return (size_t)scratchBanks * bankMB * 1024 * 1024;
    }
    size_t regFileBytes() const { return (size_t)regFileKB * 1024; }

    /** Aggregate HBM bytes per cycle at the logic clock. */
    double
    hbmBytesPerCycle() const
    {
        return hbmPhys * hbmGBsPerPhy / freqGHz;
    }

    uint32_t
    fuCount(FuType t) const
    {
        switch (t) {
          case FuType::kNtt:
            return nttPerCluster * lowThroughputNttDivisor;
          case FuType::kAut:
            return autPerCluster * lowThroughputAutDivisor;
          case FuType::kMul:
            return mulPerCluster;
          case FuType::kAdd:
            return addPerCluster;
        }
        return 0;
    }

    /** Issue-port occupancy of one RVec op on one FU, in cycles. */
    uint32_t
    occupancy(FuType t, uint32_t n) const
    {
        uint32_t g = ceilDiv(n, lanes);
        switch (t) {
          case FuType::kNtt:
            return g * lowThroughputNttDivisor;
          case FuType::kAut:
            return g * lowThroughputAutDivisor;
          default:
            return g;
        }
    }

    /** Total latency (issue to result available), in cycles. */
    uint32_t
    latency(Opcode op, uint32_t n) const
    {
        const uint32_t g = ceilDiv(n, lanes);
        switch (fuFor(op)) {
          case FuType::kAdd:
            return g + 1;
          case FuType::kMul:
            return g + 4; // pipelined modular-multiplier depth
          case FuType::kNtt:
            // Four-step pipeline: two E-point NTT passes around a
            // transpose; the transpose buffers a full E x G tile.
            return (2 * g + lanes + 12) * lowThroughputNttDivisor;
          case FuType::kAut:
            // Column permute, quadrant-swap transpose (fills E/2
            // rows), row permute, reverse transpose.
            return (g + lanes + 6) * lowThroughputAutDivisor;
        }
        return g;
    }

    /** Cycles for one RVec through a 512-byte port. */
    uint32_t
    portCycles(uint32_t n) const
    {
        return ceilDiv((uint64_t)n * 4, portBytes);
    }

    /** Register-file capacity in RVec slots. */
    uint32_t
    regFileSlots(uint32_t n) const
    {
        return static_cast<uint32_t>(regFileBytes() / ((size_t)n * 4));
    }

    /** Scratchpad capacity in RVec slots. */
    uint32_t
    scratchSlots(uint32_t n) const
    {
        return static_cast<uint32_t>(scratchBytes() / ((size_t)n * 4));
    }
};

} // namespace f1

#endif // F1_ARCH_CONFIG_H
