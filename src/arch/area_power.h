/**
 * @file
 * Area and power models calibrated to the paper's RTL synthesis
 * results (Table 1, Table 2; 14/12 nm). The paper's numbers are fixed
 * points; these models compose them across configurations for the
 * design-space exploration of Fig. 11 and the power breakdowns of
 * Fig. 9b.
 */
#ifndef F1_ARCH_AREA_POWER_H
#define F1_ARCH_AREA_POWER_H

#include "arch/config.h"

namespace f1 {

/** Component areas (mm^2) and TDP (W), Table 2. */
struct AreaBreakdown
{
    double nttFu, autFu, mulFu, addFu, regFile;
    double cluster;       //!< one compute cluster
    double totalCompute;  //!< all clusters
    double scratchpad;
    double noc;
    double hbmPhys;
    double totalMemory;
    double total;
};

class AreaModel
{
  public:
    explicit AreaModel(const F1Config &cfg) : cfg_(cfg) {}

    AreaBreakdown area() const;
    AreaBreakdown tdp() const;

  private:
    F1Config cfg_;
};

/**
 * Energy model: converts activity counts from the simulator into
 * energy/average power. Per-active-cycle FU energies derive from the
 * Table 2 TDP at full utilization; memory energies use standard
 * per-byte costs (HBM2 ~7 pJ/bit).
 */
struct EnergyRates
{
    // nJ per active FU cycle.
    double nttCycle = 4.80;
    double autCycle = 0.99;
    double mulCycle = 0.60;
    double addCycle = 0.05;
    // nJ per byte moved.
    double regFileByte = 0.00163; // 1.67 W / (2 * 512 B/cycle) / 1 GHz
    double scratchByte = 0.00124; // 20.35 W / (16 banks * 1 KB/cycle)
    double nocByte = 0.0008;      // 19.65 W at 24 TB/s
    double hbmByte = 0.056;       // 7 pJ/bit
};

} // namespace f1

#endif // F1_ARCH_AREA_POWER_H
