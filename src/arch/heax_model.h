/**
 * @file
 * Performance model of HEAX-sigma, the comparison point of the paper's
 * Table 4: HEAX (Riazi et al., ASPLOS'20) extended with an SRAM-based
 * scalar automorphism unit. HEAX is closed FPGA RTL, so this model is
 * built from its published architecture: fixed-function key-switching
 * pipelines whose NTT cores process one butterfly column per cycle at
 * an FPGA clock (~300 MHz), plus the paper's scalar automorphism
 * extension (one element per cycle per unit).
 */
#ifndef F1_ARCH_HEAX_MODEL_H
#define F1_ARCH_HEAX_MODEL_H

#include <cstdint>

namespace f1 {

struct HeaxConfig
{
    double freqGHz = 0.300;  //!< FPGA clock
    // HEAX's largest configuration instantiates 16 NTT cores, each
    // retiring 8 butterflies per cycle.
    uint32_t nttCores = 16;
    uint32_t butterfliesPerCore = 8;
    uint32_t autUnits = 16;  //!< scalar automorphism units (HEAX-sigma)
    uint32_t multLanes = 128; //!< element-wise modular multiplier lanes
};

class HeaxModel
{
  public:
    explicit HeaxModel(const HeaxConfig &cfg = {}) : cfg_(cfg) {}

    /** ns per residue-polynomial NTT (pipelined reciprocal). */
    double
    nttNs(uint32_t n) const
    {
        double butterflies = 0.5 * n * log2(n);
        double per_cycle = cfg_.nttCores * cfg_.butterfliesPerCore;
        return butterflies / per_cycle / cfg_.freqGHz;
    }

    /** ns per residue-polynomial automorphism (scalar SRAM walk). */
    double
    autNs(uint32_t n) const
    {
        return (double)n / cfg_.autUnits / cfg_.freqGHz;
    }

    /** ns per residue-polynomial element-wise multiply. */
    double
    mulNs(uint32_t n) const
    {
        return (double)n / cfg_.multLanes / cfg_.freqGHz;
    }

    /** ns for a full-ciphertext NTT (2 polys x L residues). */
    double
    ciphertextNttNs(uint32_t n, uint32_t level) const
    {
        return 2.0 * level * nttNs(n);
    }

    double
    ciphertextAutNs(uint32_t n, uint32_t level) const
    {
        return 2.0 * level * autNs(n);
    }

    /**
     * ns for a homomorphic multiplication: tensor (4L multiplies +
     * L adds folded into the multiply pipeline) plus the key-switching
     * pipeline (L INTTs, L*L NTTs, 2L^2 multiply-accumulates), the
     * dominant term.
     */
    double
    homomorphicMulNs(uint32_t n, uint32_t level) const
    {
        double tensor = 4.0 * level * mulNs(n);
        double ks = level * nttNs(n) +
            (double)level * level * nttNs(n) +
            2.0 * level * level * mulNs(n);
        return tensor + ks;
    }

    /** ns for a homomorphic permutation (automorphism + key switch). */
    double
    homomorphicPermNs(uint32_t n, uint32_t level) const
    {
        double aut = 2.0 * level * autNs(n);
        double ks = level * nttNs(n) +
            (double)level * level * nttNs(n) +
            2.0 * level * level * mulNs(n);
        return aut + ks;
    }

  private:
    static double
    log2(uint32_t x)
    {
        double r = 0;
        while (x >>= 1)
            r += 1;
        return r;
    }

    HeaxConfig cfg_;
};

} // namespace f1

#endif // F1_ARCH_HEAX_MODEL_H
