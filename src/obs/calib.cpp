#include "obs/calib.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace f1::obs {

namespace {

uint64_t
clampToGauge(double v)
{
    if (!(v > 0))
        return 0;
    return static_cast<uint64_t>(v);
}

} // namespace

ScheduleCalibration &
ScheduleCalibration::global()
{
    static ScheduleCalibration *c = new ScheduleCalibration;
    return *c;
}

void
ScheduleCalibration::record(size_t kind, const char *name,
                            uint64_t predictedCycle, int64_t measuredNs)
{
    if (kind >= kMaxKinds || name == nullptr)
        return;
    Kind &k = kinds_[kind];
    std::lock_guard<std::mutex> lock(k.m);
    if (k.name == nullptr) {
        k.name = name;
        // Gauge registration takes the registry lock while holding the
        // kind mutex; that order is acyclic because gauge callbacks
        // (run under the registry lock) only read atomics.
        MetricsRegistry &reg = MetricsRegistry::global();
        const std::string base = std::string("calib.") + name + ".";
        k.gauges.push_back(reg.gauge(
            base + "samples", [&k] {
                return k.gSamples.load(std::memory_order_relaxed);
            }));
        k.gauges.push_back(reg.gauge(
            base + "slope_milli", [&k] {
                return k.gSlopeMilli.load(std::memory_order_relaxed);
            }));
        k.gauges.push_back(reg.gauge(
            base + "intercept_ns", [&k] {
                return k.gInterceptNs.load(std::memory_order_relaxed);
            }));
        k.gauges.push_back(reg.gauge(
            base + "mae_ns", [&k] {
                return k.gMaeNs.load(std::memory_order_relaxed);
            }));
    }
    const double x = static_cast<double>(predictedCycle);
    const double y = static_cast<double>(measuredNs);
    k.n += 1;
    k.sx += x;
    k.sy += y;
    k.sxx += x * x;
    k.sxy += x * y;
    if (k.ring.size() < kRingCap) {
        k.ring.emplace_back(x, y);
    } else {
        k.ring[k.ringNext] = {x, y};
        k.ringNext = (k.ringNext + 1) % kRingCap;
    }
    refit(k);
}

void
ScheduleCalibration::refit(Kind &k)
{
    const double n = static_cast<double>(k.n);
    const double den = n * k.sxx - k.sx * k.sx;
    double slope = 0, intercept = 0;
    if (k.n >= 2 && std::abs(den) > 1e-9) {
        slope = (n * k.sxy - k.sx * k.sy) / den;
        intercept = (k.sy - slope * k.sx) / n;
    } else if (k.n >= 1) {
        // All predictions identical (or a single sample): the best
        // constant model is the mean measured start.
        intercept = k.sy / n;
    }
    double absErr = 0;
    for (const auto &[x, y] : k.ring)
        absErr += std::abs(y - (slope * x + intercept));
    const double mae =
        k.ring.empty() ? 0 : absErr / double(k.ring.size());

    k.gSamples.store(k.n, std::memory_order_relaxed);
    k.gSlopeMilli.store(clampToGauge(slope * 1000.0),
                        std::memory_order_relaxed);
    k.gInterceptNs.store(clampToGauge(intercept),
                         std::memory_order_relaxed);
    k.gMaeNs.store(clampToGauge(mae), std::memory_order_relaxed);
}

std::vector<ScheduleCalibration::KindFit>
ScheduleCalibration::snapshot() const
{
    std::vector<KindFit> out;
    for (const Kind &k : kinds_) {
        std::lock_guard<std::mutex> lock(k.m);
        if (k.name == nullptr || k.n == 0)
            continue;
        KindFit f;
        f.name = k.name;
        f.samples = k.n;
        const double n = static_cast<double>(k.n);
        const double den = n * k.sxx - k.sx * k.sx;
        if (k.n >= 2 && std::abs(den) > 1e-9) {
            f.slopeNsPerCycle = (n * k.sxy - k.sx * k.sy) / den;
            f.interceptNs = (k.sy - f.slopeNsPerCycle * k.sx) / n;
        } else {
            f.interceptNs = k.sy / n;
        }
        double absErr = 0;
        for (const auto &[x, y] : k.ring)
            absErr += std::abs(
                y - (f.slopeNsPerCycle * x + f.interceptNs));
        f.maeNs = k.ring.empty() ? 0 : absErr / double(k.ring.size());
        f.retained = k.ring.size();
        out.push_back(std::move(f));
    }
    return out;
}

std::string
ScheduleCalibration::toJson() const
{
    const std::vector<KindFit> fits = snapshot();
    std::ostringstream os;
    os << "{\"ring_capacity\": " << kRingCap << ", \"kinds\": {";
    bool first = true;
    char buf[64];
    for (const KindFit &f : fits) {
        os << (first ? "" : ", ");
        first = false;
        os << "\"" << f.name << "\": {\"samples\": " << f.samples;
        std::snprintf(buf, sizeof buf, "%.6f", f.slopeNsPerCycle);
        os << ", \"slope_ns_per_cycle\": " << buf;
        std::snprintf(buf, sizeof buf, "%.3f", f.interceptNs);
        os << ", \"intercept_ns\": " << buf;
        std::snprintf(buf, sizeof buf, "%.3f", f.maeNs);
        os << ", \"mae_ns\": " << buf
           << ", \"retained\": " << f.retained << "}";
    }
    os << "}}\n";
    return os.str();
}

void
ScheduleCalibration::reset()
{
    for (Kind &k : kinds_) {
        std::lock_guard<std::mutex> lock(k.m);
        k.n = 0;
        k.sx = k.sy = k.sxx = k.sxy = 0;
        k.ring.clear();
        k.ringNext = 0;
        k.gSamples.store(0, std::memory_order_relaxed);
        k.gSlopeMilli.store(0, std::memory_order_relaxed);
        k.gInterceptNs.store(0, std::memory_order_relaxed);
        k.gMaeNs.store(0, std::memory_order_relaxed);
    }
}

} // namespace f1::obs
