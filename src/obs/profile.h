/**
 * @file
 * Per-job execution profiling: a thread-local ProfileCollector that
 * hot paths report into, and the ExecutionProfile it distills.
 *
 * Attribution model: the OpGraphExecutor installs one collector for
 * the duration of a run (ProfileScope), and the thread pool INHERITS
 * the dispatching thread's collector into every worker executing that
 * batch (see ThreadPool::run). An NTT running on a pool thread as part
 * of job A's key-switch is therefore counted against job A's
 * collector even while job B dispatches concurrently — each pool
 * batch carries its own caller's collector, so per-job counts are
 * exact in both serving modes (inline throughput mode and shared-pool
 * latency mode).
 *
 * Cost when off (no collector installed): every hook is one
 * thread-local pointer load and a predictable branch — this file is
 * what makes ExecutionPolicy::telemetry's "<1% disabled overhead"
 * contract hold by construction. Hooks with a collector installed are
 * relaxed atomic adds (the collector is shared by the workers of one
 * run, never across runs).
 *
 * This header is a LEAF: it must include nothing above <atomic> and
 * friends, because the hot paths that include it (ntt.cpp,
 * keyswitch.cpp, scratch.cpp, lru_cache.h, parallel.cpp) sit below
 * every other layer.
 */
#ifndef F1_OBS_PROFILE_H
#define F1_OBS_PROFILE_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace f1::obs {

/** Hot-path event classes attributed to the active collector. */
enum class ProfileCounter : uint8_t {
    kNttForward = 0,   //!< production forward NTTs
    kNttInverse,       //!< production inverse NTTs
    kKeySwitchApply,   //!< KeySwitcher::apply calls
    kBasisExtend,      //!< BasisExtender::extend calls
    kCacheHit,         //!< LRU cache hits (hint + encoding caches)
    kCacheMiss,        //!< LRU cache misses
    kCount,
};

/**
 * Accumulates one run's hot-path activity. All fields are relaxed
 * atomics: a run's workers share the collector concurrently, and the
 * final read happens after the pool joins (which synchronizes).
 *
 * Op-kind slots are indexed by the runtime's HeOpKind values; the
 * executor maps them to names when finalizing (this header cannot see
 * the enum — see the leaf-header note above).
 */
class ProfileCollector
{
  public:
    static constexpr size_t kMaxOpKinds = 16;

    std::array<std::atomic<uint64_t>, size_t(ProfileCounter::kCount)>
        counters{};
    std::array<std::atomic<uint64_t>, kMaxOpKinds> opCount{};
    std::array<std::atomic<uint64_t>, kMaxOpKinds> opNanos{};

    /** Scratch-arena live words under this collector; peak is the
     *  per-job scratch high-water mark. Signed: a handle may be
     *  released under a different collector than it was acquired
     *  under (moved handles), which must not wrap. */
    std::atomic<int64_t> scratchLiveWords{0};
    std::atomic<int64_t> scratchPeakWords{0};

    void
    add(ProfileCounter c, uint64_t d = 1)
    {
        counters[size_t(c)].fetch_add(d, std::memory_order_relaxed);
    }

    void
    addOp(size_t kind, uint64_t nanos)
    {
        if (kind >= kMaxOpKinds)
            return;
        opCount[kind].fetch_add(1, std::memory_order_relaxed);
        opNanos[kind].fetch_add(nanos, std::memory_order_relaxed);
    }

    void
    scratchAcquire(int64_t words)
    {
        const int64_t live =
            scratchLiveWords.fetch_add(words,
                                       std::memory_order_relaxed) +
            words;
        int64_t peak = scratchPeakWords.load(std::memory_order_relaxed);
        while (live > peak &&
               !scratchPeakWords.compare_exchange_weak(
                   peak, live, std::memory_order_relaxed)) {
        }
    }

    void
    scratchRelease(int64_t words)
    {
        scratchLiveWords.fetch_sub(words, std::memory_order_relaxed);
    }
};

/** The calling thread's active collector (nullptr = profiling off). */
extern thread_local ProfileCollector *t_profileCollector;

inline ProfileCollector *
profileCollector()
{
    return t_profileCollector;
}

/** Installs `c` for the calling thread; returns the previous one. */
inline ProfileCollector *
setProfileCollector(ProfileCollector *c)
{
    ProfileCollector *prev = t_profileCollector;
    t_profileCollector = c;
    return prev;
}

/** RAII install/restore; the pool wraps batch bodies in one. */
class ProfileScope
{
  public:
    explicit ProfileScope(ProfileCollector *c)
        : prev_(setProfileCollector(c))
    {
    }
    ~ProfileScope() { t_profileCollector = prev_; }
    ProfileScope(const ProfileScope &) = delete;
    ProfileScope &operator=(const ProfileScope &) = delete;

  private:
    ProfileCollector *prev_;
};

/** The hot-path hook: one TLS load + branch when profiling is off. */
inline void
profileAdd(ProfileCounter c, uint64_t d = 1)
{
    if (ProfileCollector *col = t_profileCollector)
        col->add(c, d);
}

inline void
profileScratchAcquire(int64_t words)
{
    if (ProfileCollector *col = t_profileCollector)
        col->scratchAcquire(words);
}

inline void
profileScratchRelease(int64_t words)
{
    if (ProfileCollector *col = t_profileCollector)
        col->scratchRelease(words);
}

/**
 * One run's distilled profile, attached to ExecutionResult::profile
 * (and therefore JobResult::exec.profile) when
 * ExecutionPolicy::telemetry.profile is set.
 */
struct ExecutionProfile
{
    struct OpKindSlice
    {
        uint64_t count = 0;
        double totalMs = 0;
    };

    /** Time/count breakdown by HE op kind, keyed by kind name. */
    std::map<std::string, OpKindSlice> opKinds;

    // Hot-path invocation counts (see ProfileCounter).
    uint64_t nttForward = 0;
    uint64_t nttInverse = 0;
    uint64_t keySwitchApplies = 0;
    uint64_t basisExtends = 0;
    uint64_t cacheHits = 0;   //!< all LRU caches (hints + encodings)
    uint64_t cacheMisses = 0;

    /** Plaintext-encoding cache traffic (subset of cacheHits/Misses,
     *  broken out because the serving engine budgets it). */
    uint64_t encodingCacheHits = 0;
    uint64_t encodingCacheMisses = 0;

    /** Scratch-arena high-water mark over the run, in 8-byte words. */
    int64_t scratchPeakWords = 0;

    double prepareMs = 0; //!< untimed phase: keys, encrypt, encode
    double executeMs = 0; //!< timed phase (== ExecutionResult.wallMs)

    std::string label; //!< TelemetryOptions::label (serving: tenant)

    /** Correlation ids of the batch members this profile covers, in
     *  member order (obs/tracectx.h; one entry per fused job, 0 for
     *  untraced members). A profile covers the WHOLE fused batch, so
     *  every member's trace id maps to it. */
    std::vector<uint64_t> traceIds;

    std::string toJson() const;
};

} // namespace f1::obs

#endif // F1_OBS_PROFILE_H
