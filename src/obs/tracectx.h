/**
 * @file
 * Correlated tracing: the per-job trace id that stitches the three
 * telemetry systems together, an always-available live capture ring,
 * and the correlated Perfetto writer.
 *
 * The flight recorder (obs/eventlog.h) knows a job's serving
 * lifecycle, the per-op tracer (obs/trace.h) knows which HeOps ran on
 * which worker, and the ExecutionProfile knows the job's hot-path
 * totals — but before this layer they shared no key, so a p99 outlier
 * in serving.service_ms could not be followed from submit through
 * admission, coalescing, and the ops that ran it. ServingEngine::
 * submit allocates one 64-bit trace id per job (allocateTraceId) and
 * threads it through every artifact; writeCorrelatedTrace then merges
 * the serving lifecycle lane and the executor span lanes into ONE
 * Chrome trace-event document with flow events ("ph":"s"/"t"/"f",
 * id = the trace id) linking each job's submit→admit→coalesce→
 * dispatch→complete chain to the first executor span that ran it.
 *
 * LiveTraceCapture is the /tracez?ms=N instrument: a process-wide
 * seqlock ring (same discipline as the flight recorder's slots —
 * atomic words under a per-slot ticket, torn reads discarded, never
 * UB) that the executor feeds ONLY while a capture is armed. Cost
 * when disarmed is one relaxed atomic load per op on top of the
 * telemetry null checks; arming needs no engine restart and no
 * per-job telemetry opt-in, which is what makes it a live instrument
 * rather than a config change.
 */
#ifndef F1_OBS_TRACECTX_H
#define F1_OBS_TRACECTX_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "obs/eventlog.h"
#include "obs/trace.h"

namespace f1::obs {

/** Process-unique, never-zero 64-bit trace id (0 = "untraced"). Ids
 *  are a mixed counter, so they are unique AND well-distributed —
 *  suitable as Perfetto flow-event ids without collision checks. */
uint64_t allocateTraceId();

/** Absolute steady-clock nanoseconds — the shared time base of the
 *  tracer epoch (Tracer::epochNs), the flight recorder's tsMs, and
 *  the live capture ring. */
inline int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * On-demand live span capture: a fixed ring of per-slot seqlocks the
 * executor mirrors op spans into while at least one capture is armed
 * (arm/disarm nest). Readers never block writers; a dump is a
 * consistent sample of committed slots. Serves /tracez?ms=N.
 */
class LiveTraceCapture
{
  public:
    explicit LiveTraceCapture(size_t capacity = 8192);
    LiveTraceCapture(const LiveTraceCapture &) = delete;
    LiveTraceCapture &operator=(const LiveTraceCapture &) = delete;

    /** The process-wide ring every executor feeds (intentionally
     *  leaked, like FlightRecorder::global). */
    static LiveTraceCapture &global();

    /** One relaxed load — the executor's per-op gate. */
    bool
    armed() const
    {
        return armed_.load(std::memory_order_relaxed) != 0;
    }

    /** arm/disarm nest: concurrent /tracez windows share the ring. */
    void arm() { armed_.fetch_add(1, std::memory_order_relaxed); }
    void disarm() { armed_.fetch_sub(1, std::memory_order_relaxed); }

    /** Records one op span. `tsNs` is ABSOLUTE steady-clock ns
     *  (steadyNowNs / Tracer::epochNs() + span ts); `name` must be a
     *  static string (op kind name). Lock-free. */
    void record(int64_t tsNs, int64_t durNs, const char *name,
                int32_t handle, uint64_t traceId,
                int64_t predictedCycle);

    struct CapturedSpan
    {
        int64_t tsNs = 0; //!< absolute steady-clock start
        int64_t durNs = 0;
        const char *name = nullptr;
        int32_t handle = -1;
        uint32_t lane = 0; //!< per-thread capture lane
        uint64_t traceId = 0;
        int64_t predictedCycle = -1;
    };

    /** Committed spans with tsNs >= sinceNs, time-sorted. */
    std::vector<CapturedSpan> spansSince(int64_t sinceNs) const;

    /**
     * The /tracez?ms=N entry point: arms the ring, sleeps for the
     * (clamped, 1..2000ms) window, disarms, and renders the window's
     * spans as a Chrome trace-event JSON document with timestamps
     * re-based to the window start. Blocks the calling thread for the
     * window — the exporter's serial server serves nothing else
     * meanwhile, which a live-debugging client accepts by asking.
     */
    std::string captureJson(int64_t windowMs);

    size_t capacity() const { return cap_; }
    uint64_t
    recorded() const
    {
        return next_.load(std::memory_order_relaxed);
    }

  private:
    // Payload packing (relaxed atomic words under the ticket):
    //   w[0] tsNs  w[1] durNs  w[2] name (static-string address)
    //   w[3] handle | lane<<32  w[4] traceId  w[5] predictedCycle
    static constexpr size_t kWords = 6;
    struct Slot
    {
        std::atomic<uint64_t> ticket{0};
        std::atomic<uint64_t> w[kWords]{};
    };

    const size_t cap_;
    std::unique_ptr<Slot[]> slots_;
    std::atomic<uint64_t> next_{0};
    std::atomic<int> armed_{0};
};

/**
 * Merges finished executor traces and the flight recorder's serving
 * lifecycle into one correlated Chrome trace-event document:
 *
 *  - pid 0 "executor": every trace's op spans and sched instants, one
 *    tid block per trace (lanes keep their relative ids), timestamps
 *    re-based from each tracer's absolute epoch onto a common origin;
 *  - pid 1 "serving": one instant per ServingEvent (submit/admit/...)
 *    carrying job id, tenant, batch size, and trace id;
 *  - flow events named "job" (id = the trace id, hex): "s" at a job's
 *    first lifecycle event, "t" at each later one, and a terminating
 *    "f" (bp:"e") bound to the job's FIRST executor span — the arrows
 *    Perfetto draws from the serving lane into the op that ran it.
 *
 * Traces and events both stamp the steady clock, so the merge needs
 * no cross-clock translation. Events or spans with traceId 0 render
 * but get no flow. Returns the number of flow-linked jobs.
 */
size_t writeCorrelatedTrace(
    std::ostream &os,
    std::span<const std::shared_ptr<const Trace>> traces,
    const std::vector<ServingEvent> &events);

/** writeCorrelatedTrace into a string (tests, small dumps). */
std::string correlatedTraceJson(
    std::span<const std::shared_ptr<const Trace>> traces,
    const std::vector<ServingEvent> &events);

} // namespace f1::obs

#endif // F1_OBS_TRACECTX_H
