#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace f1::obs {

namespace {

constexpr double kLatencyBucketsMs[] = {
    0.01, 0.02, 0.05, 0.1,  0.25, 0.5,  1.0,    2.5,   5.0,    10.0,
    25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0};

/** JSON numbers must not be NaN/inf; clamp defensively. */
void
appendJsonNumber(std::ostringstream &os, double v)
{
    if (!std::isfinite(v))
        v = 0;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    os << buf;
}

void
appendJsonString(std::ostringstream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

std::span<const double>
defaultLatencyBucketsMs()
{
    return kLatencyBucketsMs;
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0;
    const auto want = static_cast<uint64_t>(
        q * static_cast<double>(count - 1));
    uint64_t seen = 0;
    for (size_t b = 0; b < counts.size(); ++b) {
        seen += counts[b];
        if (seen > want)
            return b < bounds.size()
                       ? bounds[b]
                       : (bounds.empty() ? 0 : bounds.back());
    }
    return bounds.empty() ? 0 : bounds.back();
}

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      counts_(bounds.size() + 1)
{
    F1_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bucket bounds must be ascending");
}

void
Histogram::observe(double value)
{
    const size_t b = static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
    counts_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    const double micro = value * 1e6;
    sumMicro_.fetch_add(
        micro > 0 ? static_cast<uint64_t>(std::llround(micro)) : 0,
        std::memory_order_relaxed);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot s;
    s.bounds = bounds_;
    s.counts.reserve(counts_.size());
    for (const auto &c : counts_)
        s.counts.push_back(c.load(std::memory_order_relaxed));
    s.count = count_.load(std::memory_order_relaxed);
    s.sum =
        static_cast<double>(sumMicro_.load(std::memory_order_relaxed)) /
        1e6;
    return s;
}

void
Histogram::reset()
{
    for (auto &c : counts_)
        c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sumMicro_.store(0, std::memory_order_relaxed);
}

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream os;
    os << "{\"counters\": {";
    bool first = true;
    for (const auto &[name, v] : counters) {
        if (!first)
            os << ", ";
        first = false;
        appendJsonString(os, name);
        os << ": " << v;
    }
    os << "}, \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms) {
        if (!first)
            os << ", ";
        first = false;
        appendJsonString(os, name);
        os << ": {\"count\": " << h.count << ", \"sum_ms\": ";
        appendJsonNumber(os, h.sum);
        os << ", \"p50_ms\": ";
        appendJsonNumber(os, h.quantile(0.50));
        os << ", \"p95_ms\": ";
        appendJsonNumber(os, h.quantile(0.95));
        os << ", \"bounds_ms\": [";
        for (size_t i = 0; i < h.bounds.size(); ++i) {
            if (i)
                os << ", ";
            appendJsonNumber(os, h.bounds[i]);
        }
        os << "], \"counts\": [";
        for (size_t i = 0; i < h.counts.size(); ++i) {
            if (i)
                os << ", ";
            os << h.counts[i];
        }
        os << "]}";
    }
    os << "}}";
    return os.str();
}

GaugeHandle::GaugeHandle(GaugeHandle &&o) noexcept
    : reg_(o.reg_), id_(o.id_)
{
    o.reg_ = nullptr;
    o.id_ = 0;
}

GaugeHandle &
GaugeHandle::operator=(GaugeHandle &&o) noexcept
{
    if (this != &o) {
        if (reg_)
            reg_->unregisterGauge(id_);
        reg_ = o.reg_;
        id_ = o.id_;
        o.reg_ = nullptr;
        o.id_ = 0;
    }
    return *this;
}

GaugeHandle::~GaugeHandle()
{
    if (reg_)
        reg_->unregisterGauge(id_);
}

MetricsRegistry &
MetricsRegistry::global()
{
    // Intentionally leaked: hot paths cache Counter references in
    // function-local statics, which must stay valid through static
    // destruction of arbitrary other objects.
    static MetricsRegistry *reg = new MetricsRegistry;
    return *reg;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(m_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.emplace(name, std::make_unique<Counter>())
                 .first;
    return *it->second;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::span<const double> bounds)
{
    std::lock_guard<std::mutex> lock(m_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(name, std::make_unique<Histogram>(
                                    bounds.empty()
                                        ? defaultLatencyBucketsMs()
                                        : bounds))
                 .first;
    }
    return *it->second;
}

GaugeHandle
MetricsRegistry::gauge(const std::string &name,
                       std::function<uint64_t()> fn)
{
    std::lock_guard<std::mutex> lock(m_);
    const uint64_t id = nextGaugeId_++;
    gauges_.emplace(id, Gauge{name, std::move(fn)});
    return GaugeHandle(this, id);
}

void
MetricsRegistry::unregisterGauge(uint64_t id)
{
    std::lock_guard<std::mutex> lock(m_);
    gauges_.erase(id);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    // Gauges are evaluated under the registry lock: GaugeHandle
    // destruction takes the same lock, so a gauge's captures cannot
    // die mid-snapshot.
    std::lock_guard<std::mutex> lock(m_);
    MetricsSnapshot s;
    for (const auto &[name, c] : counters_)
        s.counters[name] = c->value();
    for (const auto &[id, g] : gauges_)
        s.counters[g.name] += g.fn();
    for (const auto &[name, h] : histograms_)
        s.histograms[name] = h->snapshot();
    return s;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(m_);
    for (auto &[name, c] : counters_)
        c->store(0);
    for (auto &[name, h] : histograms_)
        h->reset();
}

} // namespace f1::obs
