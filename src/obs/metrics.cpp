#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace f1::obs {

namespace {

constexpr double kLatencyBucketsMs[] = {
    0.01, 0.02, 0.05, 0.1,  0.25, 0.5,  1.0,    2.5,   5.0,    10.0,
    25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0};

constexpr double kDefaultQuantiles[] = {0.50, 0.95};

/** "p50_ms" / "p95_ms" / "p99_ms" / "p99_9_ms" for q in [0,1]. */
std::string
quantileJsonKey(double q)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", q * 100.0);
    std::string key(buf);
    for (char &c : key)
        if (c == '.')
            c = '_';
    return "p" + key + "_ms";
}

/** JSON numbers must not be NaN/inf; clamp defensively. */
void
appendJsonNumber(std::ostringstream &os, double v)
{
    if (!std::isfinite(v))
        v = 0;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    os << buf;
}

void
appendJsonString(std::ostringstream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

std::span<const double>
defaultLatencyBucketsMs()
{
    return kLatencyBucketsMs;
}

std::span<const double>
defaultQuantiles()
{
    return kDefaultQuantiles;
}

HistogramSnapshot::Quantile
HistogramSnapshot::quantileAt(double q) const
{
    if (count == 0)
        return {};
    // Nearest-rank (ceil(q*n), 1-based): p99 of 3 observations is
    // the 3rd, not the 2nd — small windows must not understate the
    // tail the SLO deadline prices.
    uint64_t want =
        q <= 0 ? 0
               : static_cast<uint64_t>(
                     std::ceil(q * static_cast<double>(count))) -
                     1;
    want = std::min(want, count - 1);
    const double lastEdge = bounds.empty() ? 0 : bounds.back();
    uint64_t seen = 0;
    for (size_t b = 0; b < counts.size(); ++b) {
        seen += counts[b];
        if (seen > want) {
            // The last counts slot is the overflow (+Inf) bucket: its
            // observations exceed every finite edge, so the estimate
            // is only a lower bound and carries the marker.
            if (b >= bounds.size())
                return {lastEdge, true};
            return {bounds[b], false};
        }
    }
    return {lastEdge, !bounds.empty()};
}

Histogram::Histogram(std::span<const double> bounds,
                     std::span<const double> quantiles)
    : bounds_(bounds.begin(), bounds.end()),
      counts_(bounds.size() + 1),
      quantiles_(quantiles.empty()
                     ? std::vector<double>(kDefaultQuantiles,
                                           kDefaultQuantiles + 2)
                     : std::vector<double>(quantiles.begin(),
                                           quantiles.end()))
{
    F1_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bucket bounds must be ascending");
    F1_REQUIRE(std::is_sorted(quantiles_.begin(), quantiles_.end()),
               "histogram quantile set must be ascending");
}

void
Histogram::setQuantiles(std::span<const double> quantiles)
{
    F1_REQUIRE(std::is_sorted(quantiles.begin(), quantiles.end()),
               "histogram quantile set must be ascending");
    std::lock_guard<std::mutex> lock(qm_);
    quantiles_.assign(quantiles.begin(), quantiles.end());
}

std::vector<double>
Histogram::quantiles() const
{
    std::lock_guard<std::mutex> lock(qm_);
    return quantiles_;
}

void
Histogram::observe(double value)
{
    const size_t b = static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
    counts_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    const double micro = value * 1e6;
    sumMicro_.fetch_add(
        micro > 0 ? static_cast<uint64_t>(std::llround(micro)) : 0,
        std::memory_order_relaxed);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot s;
    s.bounds = bounds_;
    s.quantiles = quantiles();
    s.counts.reserve(counts_.size());
    for (const auto &c : counts_)
        s.counts.push_back(c.load(std::memory_order_relaxed));
    s.count = count_.load(std::memory_order_relaxed);
    s.sum =
        static_cast<double>(sumMicro_.load(std::memory_order_relaxed)) /
        1e6;
    return s;
}

void
Histogram::reset()
{
    for (auto &c : counts_)
        c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sumMicro_.store(0, std::memory_order_relaxed);
}

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream os;
    os << "{\"counters\": {";
    bool first = true;
    for (const auto &[name, v] : counters) {
        if (!first)
            os << ", ";
        first = false;
        appendJsonString(os, name);
        os << ": " << v;
    }
    os << "}, \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms) {
        if (!first)
            os << ", ";
        first = false;
        appendJsonString(os, name);
        os << ": {\"count\": " << h.count << ", \"sum_ms\": ";
        appendJsonNumber(os, h.sum);
        // p50_ms/p95_ms are stable keys every existing consumer reads;
        // configured quantiles beyond those add keys, never rename.
        os << ", \"p50_ms\": ";
        appendJsonNumber(os, h.quantile(0.50));
        os << ", \"p95_ms\": ";
        appendJsonNumber(os, h.quantile(0.95));
        for (double q : h.quantiles) {
            const std::string key = quantileJsonKey(q);
            if (key == "p50_ms" || key == "p95_ms")
                continue;
            os << ", ";
            appendJsonString(os, key);
            os << ": ";
            appendJsonNumber(os, h.quantile(q));
        }
        os << ", \"overflow\": " << h.overflowCount();
        os << ", \"bounds_ms\": [";
        for (size_t i = 0; i < h.bounds.size(); ++i) {
            if (i)
                os << ", ";
            appendJsonNumber(os, h.bounds[i]);
        }
        os << "], \"counts\": [";
        for (size_t i = 0; i < h.counts.size(); ++i) {
            if (i)
                os << ", ";
            os << h.counts[i];
        }
        os << "]}";
    }
    os << "}}";
    return os.str();
}

GaugeHandle::GaugeHandle(GaugeHandle &&o) noexcept
    : reg_(o.reg_), id_(o.id_)
{
    o.reg_ = nullptr;
    o.id_ = 0;
}

GaugeHandle &
GaugeHandle::operator=(GaugeHandle &&o) noexcept
{
    if (this != &o) {
        if (reg_)
            reg_->unregisterGauge(id_);
        reg_ = o.reg_;
        id_ = o.id_;
        o.reg_ = nullptr;
        o.id_ = 0;
    }
    return *this;
}

GaugeHandle::~GaugeHandle()
{
    if (reg_)
        reg_->unregisterGauge(id_);
}

MetricsRegistry &
MetricsRegistry::global()
{
    // Intentionally leaked: hot paths cache Counter references in
    // function-local statics, which must stay valid through static
    // destruction of arbitrary other objects.
    static MetricsRegistry *reg = new MetricsRegistry;
    return *reg;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(m_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.emplace(name, std::make_unique<Counter>())
                 .first;
    return *it->second;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::span<const double> bounds,
                           std::span<const double> quantiles)
{
    std::lock_guard<std::mutex> lock(m_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(name, std::make_unique<Histogram>(
                                    bounds.empty()
                                        ? defaultLatencyBucketsMs()
                                        : bounds,
                                    quantiles))
                 .first;
    } else if (!quantiles.empty()) {
        it->second->setQuantiles(quantiles);
    }
    return *it->second;
}

GaugeHandle
MetricsRegistry::gauge(const std::string &name,
                       std::function<uint64_t()> fn)
{
    std::lock_guard<std::mutex> lock(m_);
    const uint64_t id = nextGaugeId_++;
    gauges_.emplace(id, Gauge{name, std::move(fn)});
    return GaugeHandle(this, id);
}

void
MetricsRegistry::unregisterGauge(uint64_t id)
{
    std::lock_guard<std::mutex> lock(m_);
    gauges_.erase(id);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    // Gauges are evaluated under the registry lock: GaugeHandle
    // destruction takes the same lock, so a gauge's captures cannot
    // die mid-snapshot.
    std::lock_guard<std::mutex> lock(m_);
    MetricsSnapshot s;
    for (const auto &[name, c] : counters_)
        s.counters[name] = c->value();
    for (const auto &[id, g] : gauges_)
        s.counters[g.name] += g.fn();
    for (const auto &[name, h] : histograms_)
        s.histograms[name] = h->snapshot();
    return s;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(m_);
    for (auto &[name, c] : counters_)
        c->store(0);
    for (auto &[name, h] : histograms_)
        h->reset();
}

} // namespace f1::obs
