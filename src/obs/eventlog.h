/**
 * @file
 * Always-on serving flight recorder: a bounded, lock-free ring of
 * structured serving-lifecycle events.
 *
 * When a job fails or the engine sheds under load, the metrics
 * registry says THAT it happened but not WHAT the pipeline was doing
 * around it. The flight recorder is the causal record: every job's
 * submit/admit/shed/coalesce/dispatch/complete/fail transition is
 * stamped with a global sequence number, so a dump reads as the
 * pipeline's recent history in exact order — the post-mortem
 * instrument Prometheus counters cannot be.
 *
 * Always-on by design: events fire per JOB transition (never per op
 * or per limb), so a record is one relaxed fetch_add plus a handful
 * of relaxed atomic stores — cheap enough to leave running in
 * production, which is the whole point of a flight recorder. There is
 * deliberately no off switch and no TLS gate; the per-op discipline
 * ("one TLS load + branch when telemetry is off") applies to the
 * profile/trace hooks, not to this per-job path.
 *
 * Concurrency: the ring is a fixed array of slots, each a per-slot
 * seqlock (ticket = 2*seq+1 while writing, 2*seq when committed) over
 * ATOMIC payload words — writers never block, readers (dump) retry
 * slots caught mid-write and drop them after a few attempts. A dump
 * is a consistent sample of committed events, sorted by sequence
 * number; under wraparound the oldest events are overwritten and the
 * dump reports how many were dropped.
 */
#ifndef F1_OBS_EVENTLOG_H
#define F1_OBS_EVENTLOG_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace f1::obs {

/** Serving-pipeline lifecycle transitions (see serving.h stages). */
enum class ServingEventKind : uint8_t {
    kSubmit = 0, //!< request arrived at submit() (pre-admission)
    kAdmit,      //!< admission passed; job enqueued with its id
    kShed,       //!< admission rejected the request
    kCoalesce,   //!< queued job pulled into another job's batch
    kDispatch,   //!< executor started a (batch) traversal
    kComplete,   //!< job future fulfilled with a result
    kFail,       //!< execution error (per batch from the executor,
                 //!< then per member job from the engine)
};

const char *servingEventKindName(ServingEventKind kind);

/** One decoded flight-recorder entry. */
struct ServingEvent
{
    uint64_t seq = 0;  //!< global causal order (1-based, gap-free)
    double tsMs = 0;   //!< steady-clock stamp (steadyNowMs)
    uint64_t jobId = 0;      //!< 0 = not yet assigned / batch-level
    uint64_t fingerprint = 0; //!< Program::fingerprint()
    uint64_t traceId = 0;     //!< per-job correlation id; 0 = none
    uint32_t batchSize = 0;   //!< members, where meaningful
    ServingEventKind kind = ServingEventKind::kSubmit;
    std::string tenant; //!< truncated to kTenantBytes
};

class FlightRecorder
{
  public:
    /** Tenant ids are truncated to this many bytes in the ring. */
    static constexpr size_t kTenantBytes = 24;

    explicit FlightRecorder(size_t capacity = 4096);
    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** The process-wide recorder every engine and executor records
     *  into (intentionally leaked, like MetricsRegistry::global). */
    static FlightRecorder &global();

    /** Lock-free; safe from any thread, including under engine
     *  locks. `traceId` is the job's correlation id from
     *  obs/tracectx.h (0 = none, e.g. pre-PR-10 callers). */
    void record(ServingEventKind kind, uint64_t jobId,
                std::string_view tenant, uint64_t fingerprint = 0,
                uint32_t batchSize = 0, uint64_t traceId = 0);

    /** Committed events in causal (sequence) order. A concurrent
     *  writer may cost a dump the slots it is overwriting; those
     *  count as dropped. */
    std::vector<ServingEvent> dump() const;

    /** {"capacity":...,"recorded":...,"dropped":...,"events":[...]}
     *  — valid JSON (tests/json_lint.h), served as /events.json. */
    std::string dumpJson() const;

    /** Writes dumpJson() to `path`; false on I/O failure. The serving
     *  engine calls this on job failure and on teardown-with-failures
     *  when ServingConfig::eventDumpPath is set. */
    bool dumpToFile(const std::string &path) const;

    /** Total events ever offered (recorded - min(recorded, capacity)
     *  of them have been overwritten). */
    uint64_t recorded() const
    {
        return next_.load(std::memory_order_relaxed);
    }
    size_t capacity() const { return cap_; }

  private:
    // Payload packing (all relaxed atomic words):
    //   w[0] jobId          w[1] fingerprint
    //   w[2] bit_cast(tsMs) w[3] kind | batchSize<<8 | tenantLen<<40
    //   w[4] traceId        w[5..7] tenant bytes, NUL-padded
    static constexpr size_t kTenantWords = 3;
    struct Slot
    {
        std::atomic<uint64_t> ticket{0};
        std::atomic<uint64_t> w[5 + kTenantWords]{};
    };

    const size_t cap_;
    std::unique_ptr<Slot[]> slots_;
    std::atomic<uint64_t> next_{0};

    /** Slots a dump had to discard after exhausting its retries
     *  (writer kept overwriting them). Cumulative across all dumps of
     *  this recorder's lifetime — it feeds the eventlog.dropped gauge
     *  together with the wraparound-overwritten count. */
    mutable std::atomic<uint64_t> tornDropped_{0};

    /** Registers eventlog.dropped. Declared LAST so it unregisters
     *  before any state it reads is destroyed. */
    GaugeHandle droppedGauge_;
};

} // namespace f1::obs

#endif // F1_OBS_EVENTLOG_H
