/**
 * @file
 * Per-op tracer emitting Chrome trace-event (Perfetto-loadable) JSON.
 *
 * One Tracer lives for one execution. Each recording thread claims a
 * private lane (a fixed-capacity ring buffer of POD events) on first
 * use, so the hot path takes NO locks: recording a span is a steady-
 * clock read plus a store into the lane's ring. Lanes are merged and
 * time-sorted only at finish(), after the run's pool dispatch has
 * joined (which is what makes the plain ring writes safe to read).
 *
 * Event model, mirroring F1's schedule introspection (§4.4, Fig. 10):
 *  - one complete span ("ph":"X") per executed HeOp, carrying the op
 *    kind, DSL handle, lane (worker) id, the compiler's predicted
 *    startCycle from ScheduleHints, and the measured start — the
 *    predicted-vs-actual pair every scheduling PR tunes against;
 *  - instant events ("ph":"i") for work steals and ciphertext
 *    releases, the two dynamic-scheduler decisions the static
 *    schedule cannot see.
 *
 * Ring overflow drops the OLDEST events per lane (it is a true ring)
 * and reports the drop count in the exported metadata, so a trace is
 * never silently truncated.
 */
#ifndef F1_OBS_TRACE_H
#define F1_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace f1::obs {

enum class TraceEventKind : uint8_t {
    kOpSpan,  //!< one HeOp execution (complete event)
    kSteal,   //!< op taken from another worker's deque (instant)
    kRelease, //!< ciphertext freed after last consumer (instant)
};

struct TraceEvent
{
    int64_t tsNs = 0;  //!< start, ns since the tracer's epoch
    int64_t durNs = 0; //!< spans only
    int64_t predictedCycle = -1; //!< compiler hint; -1 = unhinted
    uint64_t traceId = 0; //!< serving job correlation id; 0 = untraced
    const char *name = nullptr;  //!< static string (op kind name)
    int32_t handle = -1;         //!< DSL handle
    uint16_t lane = 0;           //!< filled at merge
    TraceEventKind kind = TraceEventKind::kOpSpan;
};

/** A finished, merged trace. */
class Trace
{
  public:
    const std::vector<TraceEvent> &events() const { return events_; }
    size_t spanCount() const { return spans_; }
    uint64_t droppedEvents() const { return dropped_; }
    size_t laneCount() const { return lanes_; }
    const std::string &label() const { return label_; }

    /** Absolute steady-clock ns of the source tracer's epoch — event
     *  tsNs values are relative to this, so traces from different
     *  tracers (and the flight recorder's tsMs stamps) can be merged
     *  onto one timeline (obs/tracectx.h). */
    int64_t epochNs() const { return epochNs_; }

    /** Chrome trace-event JSON ({"traceEvents": [...], ...}); load in
     *  ui.perfetto.dev or chrome://tracing. */
    void writeJson(std::ostream &os) const;
    std::string json() const;

  private:
    friend class Tracer;
    std::vector<TraceEvent> events_; //!< time-sorted
    size_t spans_ = 0;
    uint64_t dropped_ = 0;
    size_t lanes_ = 0;
    int64_t epochNs_ = 0;
    std::string label_;
};

class Tracer
{
  public:
    /** @param laneCapacity ring capacity per recording thread
     *  @param label        stamped into the trace metadata (tenant) */
    explicit Tracer(size_t laneCapacity = 1 << 14,
                    std::string label = {});
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** ns since the tracer's epoch, on the steady clock. */
    int64_t nowNs() const;

    /** Absolute steady-clock ns of this tracer's epoch. */
    int64_t epochNs() const { return epochNs_; }

    /** Records one op span. `name` must be a static string;
     *  `traceId` is the serving job's correlation id (0 = untraced
     *  standalone execution). */
    void span(const char *name, int32_t handle, int64_t tsNs,
              int64_t durNs, int64_t predictedCycle,
              uint64_t traceId = 0);

    /** Records an instant event (steal, release). */
    void instant(TraceEventKind kind, int32_t handle, int64_t tsNs);

    /**
     * Merges every lane into one time-sorted Trace. Call only after
     * all recording threads have joined (the executor calls it after
     * its pool dispatch returns).
     */
    Trace finish();

  private:
    struct Lane
    {
        std::vector<TraceEvent> ring;
        size_t head = 0;      //!< next write slot
        uint64_t written = 0; //!< total events offered
    };

    Lane &lane();

    const size_t laneCapacity_;
    const uint64_t id_; //!< distinguishes reincarnated tracers (TLS)
    const std::string label_;
    const int64_t epochNs_;

    std::mutex lanesMutex_;
    std::vector<std::unique_ptr<Lane>> lanes_;
};

} // namespace f1::obs

#endif // F1_OBS_TRACE_H
