#include "obs/eventlog.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "common/time_util.h"

namespace f1::obs {

namespace {

void
appendJsonString(std::ostringstream &os, std::string_view s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

const char *
servingEventKindName(ServingEventKind kind)
{
    switch (kind) {
      case ServingEventKind::kSubmit: return "submit";
      case ServingEventKind::kAdmit: return "admit";
      case ServingEventKind::kShed: return "shed";
      case ServingEventKind::kCoalesce: return "coalesce";
      case ServingEventKind::kDispatch: return "dispatch";
      case ServingEventKind::kComplete: return "complete";
      case ServingEventKind::kFail: return "fail";
    }
    return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : cap_(capacity == 0 ? 1 : capacity),
      slots_(std::make_unique<Slot[]>(cap_)),
      droppedGauge_(MetricsRegistry::global().gauge(
          "eventlog.dropped",
          [this] {
              // Atomics only — snapshot() holds the registry lock
              // while evaluating gauges (lock-order rule in
              // obs/metrics.h). Overwritten-by-wraparound plus
              // torn-slot discards across this recorder's lifetime.
              const uint64_t total =
                  next_.load(std::memory_order_relaxed);
              const uint64_t overwritten =
                  total > cap_ ? total - cap_ : 0;
              return overwritten +
                     tornDropped_.load(std::memory_order_relaxed);
          }))
{
}

FlightRecorder &
FlightRecorder::global()
{
    // Leaked for the same reason as MetricsRegistry::global():
    // executors record during static teardown of arbitrary objects.
    static FlightRecorder *rec = new FlightRecorder;
    return *rec;
}

void
FlightRecorder::record(ServingEventKind kind, uint64_t jobId,
                       std::string_view tenant, uint64_t fingerprint,
                       uint32_t batchSize, uint64_t traceId)
{
    const uint64_t seq =
        next_.fetch_add(1, std::memory_order_relaxed) + 1;
    Slot &s = slots_[(seq - 1) % cap_];

    // Per-slot seqlock over atomic words: mark writing (odd ticket),
    // store the payload, commit (even ticket). Readers that observe a
    // ticket change mid-copy discard the slot; because every word is
    // an atomic, a torn read is at worst a DISCARDED event, never UB.
    s.ticket.store(2 * seq + 1, std::memory_order_release);
    s.w[0].store(jobId, std::memory_order_relaxed);
    s.w[1].store(fingerprint, std::memory_order_relaxed);
    s.w[2].store(std::bit_cast<uint64_t>(steadyNowMs()),
                 std::memory_order_relaxed);
    const size_t len = std::min(tenant.size(), kTenantBytes);
    s.w[3].store(uint64_t(uint8_t(kind)) |
                     (uint64_t(batchSize) << 8) |
                     (uint64_t(len) << 40),
                 std::memory_order_relaxed);
    s.w[4].store(traceId, std::memory_order_relaxed);
    for (size_t wi = 0; wi < kTenantWords; ++wi) {
        uint64_t word = 0;
        for (size_t b = 0; b < 8; ++b) {
            const size_t i = wi * 8 + b;
            if (i < len)
                word |= uint64_t(uint8_t(tenant[i])) << (8 * b);
        }
        s.w[5 + wi].store(word, std::memory_order_relaxed);
    }
    s.ticket.store(2 * seq, std::memory_order_release);
}

std::vector<ServingEvent>
FlightRecorder::dump() const
{
    std::vector<ServingEvent> out;
    out.reserve(cap_);
    for (size_t i = 0; i < cap_; ++i) {
        const Slot &s = slots_[i];
        bool pushed = false;
        bool sawData = false;
        for (int attempt = 0; attempt < 4; ++attempt) {
            const uint64_t t1 =
                s.ticket.load(std::memory_order_acquire);
            if (t1 == 0)
                break; // never written
            sawData = true;
            if (t1 & 1)
                continue; // mid-write; retry
            ServingEvent ev;
            ev.seq = t1 / 2;
            ev.jobId = s.w[0].load(std::memory_order_relaxed);
            ev.fingerprint = s.w[1].load(std::memory_order_relaxed);
            ev.tsMs = std::bit_cast<double>(
                s.w[2].load(std::memory_order_relaxed));
            const uint64_t packed =
                s.w[3].load(std::memory_order_relaxed);
            ev.kind = ServingEventKind(uint8_t(packed));
            ev.batchSize = uint32_t(packed >> 8);
            ev.traceId = s.w[4].load(std::memory_order_relaxed);
            const size_t len =
                std::min<size_t>((packed >> 40) & 0xff, kTenantBytes);
            ev.tenant.resize(len);
            for (size_t wi = 0; wi < kTenantWords; ++wi) {
                const uint64_t word =
                    s.w[5 + wi].load(std::memory_order_relaxed);
                for (size_t b = 0; b < 8; ++b) {
                    const size_t ci = wi * 8 + b;
                    if (ci < len)
                        ev.tenant[ci] = char(uint8_t(word >> (8 * b)));
                }
            }
            std::atomic_thread_fence(std::memory_order_acquire);
            if (s.ticket.load(std::memory_order_relaxed) != t1)
                continue; // overwritten under us; retry
            out.push_back(std::move(ev));
            pushed = true;
            break;
        }
        if (sawData && !pushed)
            tornDropped_.fetch_add(1, std::memory_order_relaxed);
    }
    std::sort(out.begin(), out.end(),
              [](const ServingEvent &a, const ServingEvent &b) {
                  return a.seq < b.seq;
              });
    return out;
}

std::string
FlightRecorder::dumpJson() const
{
    const std::vector<ServingEvent> events = dump();
    const uint64_t total = recorded();
    const uint64_t dropped =
        total > events.size() ? total - events.size() : 0;
    std::ostringstream os;
    os << "{\"capacity\": " << cap_ << ", \"recorded\": " << total
       << ", \"dropped\": " << dropped << ", \"events\": [";
    bool first = true;
    char buf[64];
    for (const ServingEvent &ev : events) {
        if (!first)
            os << ", ";
        first = false;
        os << "{\"seq\": " << ev.seq << ", \"ts_ms\": ";
        std::snprintf(buf, sizeof buf, "%.3f", ev.tsMs);
        os << buf << ", \"kind\": ";
        appendJsonString(os, servingEventKindName(ev.kind));
        os << ", \"job_id\": " << ev.jobId << ", \"tenant\": ";
        appendJsonString(os, ev.tenant);
        // Fingerprints are full 64-bit hashes; hex-string them so
        // JSON consumers that parse numbers as doubles keep the bits.
        std::snprintf(buf, sizeof buf, "0x%016llx",
                      static_cast<unsigned long long>(ev.fingerprint));
        os << ", \"fingerprint\": \"" << buf << "\"";
        std::snprintf(buf, sizeof buf, "0x%016llx",
                      static_cast<unsigned long long>(ev.traceId));
        os << ", \"trace_id\": \"" << buf << "\""
           << ", \"batch_size\": " << ev.batchSize << "}";
    }
    os << "]}";
    return os.str();
}

bool
FlightRecorder::dumpToFile(const std::string &path) const
{
    std::ofstream f(path, std::ios::trunc);
    if (!f)
        return false;
    f << dumpJson() << "\n";
    return f.good();
}

} // namespace f1::obs
