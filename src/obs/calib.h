/**
 * @file
 * Schedule-calibration observatory: per-op-kind linear fit of the
 * compiler's predicted start cycles against measured start times.
 *
 * F1's headline claim (§4.4) is that static cycle scheduling keeps the
 * datapath saturated; the instrument for that claim is the residual
 * between the cycle scheduler's predicted startCycle and when the op
 * actually started. The tracer has carried the pair per span since the
 * telemetry PR, but nothing aggregated it — a reviewer had to eyeball
 * Perfetto. ScheduleCalibration closes the loop: executors feed it
 * (predicted startCycle, measured start ns) pairs per op kind, it
 * maintains a least-squares fit y = slope·x + intercept plus the mean
 * absolute error of the fit over a bounded recent window, and it
 * publishes everything twice — as registry gauges
 * (calib.<kind>.{samples,slope_milli,intercept_ns,mae_ns}) for
 * Prometheus, and as /calibration.json for humans.
 *
 * Interpretation: slope_ns_per_cycle is the effective ns-per-cycle of
 * the schedule on this machine (the software runtime has no fixed
 * clock, so the fit DISCOVERS the scale factor); mae_ns is how far a
 * typical op strays from the line — the direct measure of how well the
 * static schedule predicts reality. A growing MAE under load is the
 * "schedule no longer matches the machine" signal the ROADMAP's
 * perf items gate against.
 *
 * Only the FIRST member of a fused batch records: members 2..B execute
 * back-to-back inside one runOp sweep, so their measured starts are a
 * property of batch fusion, not of the schedule, and would skew the
 * fit.
 */
#ifndef F1_OBS_CALIB_H
#define F1_OBS_CALIB_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace f1::obs {

class ScheduleCalibration
{
  public:
    /** Kinds are dense small enums (HeOpKind casts); anything >= this
     *  is ignored rather than resized under a hot-path lock. */
    static constexpr size_t kMaxKinds = 16;

    /** Recent-window ring per kind: MAE is computed over at most this
     *  many retained pairs (the running fit itself uses ALL samples
     *  via running sums). */
    static constexpr size_t kRingCap = 512;

    ScheduleCalibration() = default;
    ScheduleCalibration(const ScheduleCalibration &) = delete;
    ScheduleCalibration &operator=(const ScheduleCalibration &) =
        delete;

    /** The process-wide accumulator every executor feeds
     *  (intentionally leaked, like the other obs globals). */
    static ScheduleCalibration &global();

    /**
     * Records one (predicted cycle, measured start ns) pair. `name`
     * must be a static string (op kind name); it doubles as the metric
     * label on first use. `measuredNs` is relative to the batch's
     * execute epoch so pairs from different runs share an origin of
     * "start of traversal". Takes the kind's mutex — callers are on
     * the traced path already (a span was just recorded), so this
     * never touches the telemetry-off path.
     */
    void record(size_t kind, const char *name, uint64_t predictedCycle,
                int64_t measuredNs);

    struct KindFit
    {
        std::string name;
        uint64_t samples = 0;
        double slopeNsPerCycle = 0;
        double interceptNs = 0;
        double maeNs = 0;
        size_t retained = 0; //!< pairs in the MAE window (<= kRingCap)
    };

    /** Fits for every kind with >= 1 sample, kind-index order. */
    std::vector<KindFit> snapshot() const;

    /** The /calibration.json document. */
    std::string toJson() const;

    /** Drops all samples and fits (bench epochs, tests). Registered
     *  gauges stay registered and read the zeroed mirrors. */
    void reset();

  private:
    struct Kind
    {
        mutable std::mutex m;
        const char *name = nullptr;
        uint64_t n = 0;
        // Running least-squares sums over ALL samples (x = predicted
        // cycle, y = measured ns).
        double sx = 0, sy = 0, sxx = 0, sxy = 0;
        // Bounded recent window for the MAE.
        std::vector<std::pair<double, double>> ring;
        size_t ringNext = 0;

        // Gauge mirrors: snapshot() holds the registry lock while
        // evaluating gauges, so gauge callbacks must NOT take the
        // kind mutex (lock-order rule from obs/metrics.h) — they read
        // these relaxed atomics instead. Signed fit values are
        // clamped at 0 for the uint64 gauge surface; /calibration.json
        // carries the signed doubles.
        std::atomic<uint64_t> gSamples{0};
        std::atomic<uint64_t> gSlopeMilli{0};
        std::atomic<uint64_t> gInterceptNs{0};
        std::atomic<uint64_t> gMaeNs{0};
        std::vector<GaugeHandle> gauges;
    };

    void refit(Kind &k);

    Kind kinds_[kMaxKinds];
};

} // namespace f1::obs

#endif // F1_OBS_CALIB_H
