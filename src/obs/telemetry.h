/**
 * @file
 * The per-execution telemetry switchboard carried by
 * ExecutionPolicy::telemetry.
 *
 * Both collectors default OFF. Disabled cost is the contract the
 * whole obs/ subsystem is designed around: with profile and trace
 * both false, an execution performs no clock reads, no allocations,
 * and no atomic traffic beyond the pre-existing stats counters — the
 * hot-path hooks reduce to thread-local null checks plus one relaxed
 * atomic load per op for the /tracez live-capture arm check
 * (obs/tracectx.h; < 1% on the scheduler-latency bench; tests assert
 * no profile/trace artifacts are produced).
 */
#ifndef F1_OBS_TELEMETRY_H
#define F1_OBS_TELEMETRY_H

#include <cstddef>
#include <string>

#include "obs/profile.h"
#include "obs/trace.h"

namespace f1::obs {

struct TelemetryOptions
{
    /** Collect an ExecutionProfile (op-kind breakdown, NTT/key-switch
     *  /basis-extend counts, scratch high-water, cache traffic). */
    bool profile = false;

    /** Record per-op spans and steal/release instants into a
     *  Perfetto-loadable trace (ExecutionResult::trace). */
    bool trace = false;

    /** Ring capacity per recording thread (trace only). */
    size_t traceLaneCapacity = 1 << 14;

    /** Stamped into trace metadata and the profile; the serving
     *  engine fills it with the job's tenant when empty. */
    std::string label;

    bool enabled() const { return profile || trace; }
};

} // namespace f1::obs

#endif // F1_OBS_TELEMETRY_H
