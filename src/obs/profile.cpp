#include "obs/profile.h"

#include <cstdio>
#include <sstream>

namespace f1::obs {

thread_local ProfileCollector *t_profileCollector = nullptr;

namespace {

/** The label is the only free-form string in the export. */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
ExecutionProfile::toJson() const
{
    std::ostringstream os;
    os << "{\"label\": \"" << escapeJson(label)
       << "\", \"prepare_ms\": "
       << prepareMs << ", \"execute_ms\": " << executeMs
       << ", \"op_kinds\": {";
    bool first = true;
    for (const auto &[name, s] : opKinds) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << name << "\": {\"count\": " << s.count
           << ", \"total_ms\": " << s.totalMs << "}";
    }
    os << "}, \"trace_ids\": [";
    first = true;
    for (uint64_t id : traceIds) {
        if (!first)
            os << ", ";
        first = false;
        char buf[24];
        std::snprintf(buf, sizeof buf, "0x%016llx",
                      static_cast<unsigned long long>(id));
        os << "\"" << buf << "\"";
    }
    os << "], \"ntt_forward\": " << nttForward
       << ", \"ntt_inverse\": " << nttInverse
       << ", \"key_switch_applies\": " << keySwitchApplies
       << ", \"basis_extends\": " << basisExtends
       << ", \"cache_hits\": " << cacheHits
       << ", \"cache_misses\": " << cacheMisses
       << ", \"encoding_cache_hits\": " << encodingCacheHits
       << ", \"encoding_cache_misses\": " << encodingCacheMisses
       << ", \"scratch_peak_words\": " << scratchPeakWords << "}";
    return os.str();
}

} // namespace f1::obs
