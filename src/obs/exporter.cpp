#include "obs/exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include "common/error.h"

namespace f1::obs {

namespace {

void
appendDouble(std::ostringstream &os, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    os << buf;
}

/** Registry name -> exposition family + optional label pair. */
struct FamilyName
{
    std::string family;
    std::string labels; //!< `key="value"` or empty
};

FamilyName
mapName(const std::string &raw)
{
    // Per-instance namespaces become labels on one family: the
    // registry writes "slo.<tenant>.<leaf>" / "cache.<name>.<leaf>",
    // and a scraper wants sum by (tenant) over one series name, not a
    // metric name per tenant. The middle segment may itself contain
    // dots (tenant ids are arbitrary), so split on the FIRST and LAST
    // dot of the remainder.
    for (const auto &[prefix, label] :
         {std::pair<const char *, const char *>{"slo.", "tenant"},
          {"cache.", "cache"},
          {"calib.", "op"}}) {
        const size_t plen = std::strlen(prefix);
        if (raw.compare(0, plen, prefix) != 0)
            continue;
        const std::string rest = raw.substr(plen);
        const size_t dot = rest.rfind('.');
        if (dot == std::string::npos || dot == 0)
            break; // malformed; fall through to plain mapping
        FamilyName fn;
        fn.family = "f1_" + sanitizeMetricName(prefix) +
                    sanitizeMetricName(rest.substr(dot + 1));
        fn.labels = std::string(label) + "=\"" +
                    escapeLabelValue(rest.substr(0, dot)) + "\"";
        return fn;
    }
    return {"f1_" + sanitizeMetricName(raw), ""};
}

std::string
withLabels(const std::string &family, const std::string &labels,
           const std::string &extra = {})
{
    std::string out = family;
    if (labels.empty() && extra.empty())
        return out;
    out += '{';
    out += labels;
    if (!labels.empty() && !extra.empty())
        out += ',';
    out += extra;
    out += '}';
    return out;
}

struct Family
{
    const char *type = "gauge";
    std::vector<std::string> lines;
};

} // namespace

std::string
sanitizeMetricName(std::string_view raw)
{
    std::string out;
    out.reserve(raw.size() + 1);
    if (!raw.empty() && std::isdigit(static_cast<unsigned char>(raw[0])))
        out += '_';
    for (char c : raw) {
        const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                        c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

std::string
escapeLabelValue(std::string_view raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
renderPrometheus(const MetricsSnapshot &snap)
{
    // Group samples by family first: the exposition format requires
    // one # TYPE line per family preceding ALL its samples, and
    // labeled instances of one family (slo.<a>.x, slo.<b>.x) arrive
    // interleaved with other names in the sorted registry maps.
    std::map<std::string, Family> families;

    for (const auto &[name, value] : snap.counters) {
        const FamilyName fn = mapName(name);
        // The snapshot folds counters and gauges into one map, so the
        // honest shared type is gauge (queue depths legitimately go
        // down; Prometheus counters must not).
        Family &fam = families[fn.family];
        std::ostringstream line;
        line << withLabels(fn.family, fn.labels) << ' ' << value;
        fam.lines.push_back(line.str());
    }

    for (const auto &[name, h] : snap.histograms) {
        const FamilyName fn = mapName(name);
        Family &fam = families[fn.family];
        fam.type = "histogram";
        uint64_t cum = 0;
        for (size_t i = 0; i < h.bounds.size(); ++i) {
            cum += i < h.counts.size() ? h.counts[i] : 0;
            std::ostringstream line;
            line << withLabels(fn.family + "_bucket", fn.labels,
                               [&] {
                                   std::ostringstream le;
                                   le << "le=\"";
                                   appendDouble(le, h.bounds[i]);
                                   le << '"';
                                   return le.str();
                               }())
                 << ' ' << cum;
            fam.lines.push_back(line.str());
        }
        {
            std::ostringstream line;
            line << withLabels(fn.family + "_bucket", fn.labels,
                               "le=\"+Inf\"")
                 << ' ' << h.count;
            fam.lines.push_back(line.str());
        }
        {
            std::ostringstream line;
            line << withLabels(fn.family + "_sum", fn.labels) << ' ';
            appendDouble(line, h.sum);
            fam.lines.push_back(line.str());
        }
        {
            std::ostringstream line;
            line << withLabels(fn.family + "_count", fn.labels) << ' '
                 << h.count;
            fam.lines.push_back(line.str());
        }

        // Quantile estimates live in their own gauge family (a
        // Prometheus histogram has no quantile samples). An estimate
        // that falls in the overflow bucket has no finite upper
        // bound; exposing the last edge would report a measured
        // latency that never happened, so the sample is "+Inf".
        Family &qfam = families[fn.family + "_quantile"];
        for (double q : h.quantiles) {
            const HistogramSnapshot::Quantile est = h.quantileAt(q);
            std::ostringstream line;
            std::ostringstream ql;
            ql << "quantile=\"";
            appendDouble(ql, q);
            ql << '"';
            line << withLabels(fn.family + "_quantile", fn.labels,
                               ql.str())
                 << ' ';
            if (est.overflow)
                line << "+Inf";
            else
                appendDouble(line, est.value);
            qfam.lines.push_back(line.str());
        }
    }

    std::ostringstream os;
    for (const auto &[name, fam] : families) {
        if (fam.lines.empty())
            continue;
        os << "# TYPE " << name << ' ' << fam.type << '\n';
        for (const std::string &line : fam.lines)
            os << line << '\n';
    }
    return os.str();
}

MetricsExporter::MetricsExporter(ExporterConfig cfg)
    : cfg_(std::move(cfg))
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    F1_REQUIRE(fd >= 0, "exporter: socket() failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.port);
    if (::inet_pton(AF_INET, cfg_.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        ::close(fd);
        F1_REQUIRE(false, "exporter: bad bind address \""
                              << cfg_.bindAddress << "\"");
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(fd, 16) != 0) {
        ::close(fd);
        F1_REQUIRE(false, "exporter: cannot bind "
                              << cfg_.bindAddress << ":" << cfg_.port);
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof bound;
    ::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &blen);
    port_ = ntohs(bound.sin_port);
    listenFd_.store(fd, std::memory_order_release);
    thread_ = std::thread([this] { serveLoop(); });
}

MetricsExporter::~MetricsExporter()
{
    stop();
}

void
MetricsExporter::stop()
{
    if (stop_.exchange(true))
        return;
    const int fd = listenFd_.exchange(-1);
    if (fd >= 0) {
        // Unblocks the accept() in serveLoop.
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    if (thread_.joinable())
        thread_.join();
}

MetricsExporter::Response
MetricsExporter::handle(std::string_view path) const
{
    // Split off the query string; today only /tracez reads it, but
    // every route tolerates one (a scraper adding ?foo never 404s).
    std::string_view query;
    const size_t qpos = path.find('?');
    if (qpos != std::string_view::npos) {
        query = path.substr(qpos + 1);
        path = path.substr(0, qpos);
    }

    Response r;
    if (path == "/metrics") {
        const MetricsSnapshot snap =
            cfg_.snapshot ? cfg_.snapshot()
                          : MetricsRegistry::global().snapshot();
        r.contentType = "text/plain; version=0.0.4; charset=utf-8";
        r.body = renderPrometheus(snap);
    } else if (path == "/snapshot.json") {
        const MetricsSnapshot snap =
            cfg_.snapshot ? cfg_.snapshot()
                          : MetricsRegistry::global().snapshot();
        r.contentType = "application/json";
        r.body = snap.toJson();
    } else if (path == "/tenants.json") {
        r.contentType = "application/json";
        r.body = cfg_.slo != nullptr ? cfg_.slo->toJson() : "{}";
    } else if (path == "/events.json") {
        const FlightRecorder *rec = cfg_.events != nullptr
                                        ? cfg_.events
                                        : &FlightRecorder::global();
        r.contentType = "application/json";
        r.body = rec->dumpJson();
    } else if (path == "/calibration.json") {
        const ScheduleCalibration *calib =
            cfg_.calib != nullptr ? cfg_.calib
                                  : &ScheduleCalibration::global();
        r.contentType = "application/json";
        r.body = calib->toJson();
    } else if (path == "/tracez") {
        int64_t ms = 50;
        const size_t mpos = query.find("ms=");
        if (mpos != std::string_view::npos &&
            (mpos == 0 || query[mpos - 1] == '&')) {
            const long v =
                std::atol(std::string(query.substr(mpos + 3)).c_str());
            if (v > 0)
                ms = v;
        }
        // captureJson clamps to 1..2000ms and blocks for the window;
        // the serial server serves nothing else meanwhile (by design —
        // see the header's endpoint table).
        r.contentType = "application/json";
        r.body = LiveTraceCapture::global().captureJson(ms);
    } else if (path == "/healthz") {
        r.body = "ok\n";
    } else {
        r.status = 404;
        r.body = "not found\n";
    }
    return r;
}

void
MetricsExporter::serveOne(int fd)
{
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

    std::string req;
    char buf[2048];
    while (req.size() < 8192 &&
           req.find("\r\n\r\n") == std::string::npos) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0)
            break;
        req.append(buf, size_t(n));
    }

    Response resp;
    if (req.compare(0, 4, "GET ") != 0) {
        resp.status = 405;
        resp.body = "method not allowed\n";
    } else {
        const size_t pathStart = 4;
        size_t pathEnd = req.find(' ', pathStart);
        if (pathEnd == std::string::npos)
            pathEnd = req.size();
        // The query string passes through: handle() splits it.
        resp = handle(std::string_view(req).substr(
            pathStart, pathEnd - pathStart));
    }

    const char *statusText = resp.status == 200   ? "OK"
                             : resp.status == 404 ? "Not Found"
                                                  : "Method Not Allowed";
    std::ostringstream os;
    os << "HTTP/1.1 " << resp.status << ' ' << statusText << "\r\n"
       << "Content-Type: " << resp.contentType << "\r\n"
       << "Content-Length: " << resp.body.size() << "\r\n"
       << "Connection: close\r\n\r\n"
       << resp.body;
    const std::string out = os.str();
    size_t sent = 0;
    while (sent < out.size()) {
        const ssize_t n = ::send(fd, out.data() + sent,
                                 out.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            break;
        sent += size_t(n);
    }
}

void
MetricsExporter::serveLoop()
{
    while (!stop_.load(std::memory_order_relaxed)) {
        const int lfd = listenFd_.load(std::memory_order_acquire);
        if (lfd < 0)
            return;
        const int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) {
            if (stop_.load(std::memory_order_relaxed))
                return;
            continue;
        }
        serveOne(fd);
        ::close(fd);
    }
}

int
httpGet(uint16_t port, std::string_view path, std::string *body)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return 0;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return 0;
    }
    std::ostringstream req;
    req << "GET " << path << " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
        << "Connection: close\r\n\r\n";
    const std::string out = req.str();
    size_t sent = 0;
    while (sent < out.size()) {
        const ssize_t n = ::send(fd, out.data() + sent,
                                 out.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            ::close(fd);
            return 0;
        }
        sent += size_t(n);
    }
    std::string resp;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0)
            break;
        resp.append(buf, size_t(n));
    }
    ::close(fd);
    int status = 0;
    if (resp.compare(0, 5, "HTTP/") == 0) {
        const size_t sp = resp.find(' ');
        if (sp != std::string::npos)
            status = std::atoi(resp.c_str() + sp + 1);
    }
    if (body != nullptr) {
        const size_t hdrEnd = resp.find("\r\n\r\n");
        *body = hdrEnd == std::string::npos
                    ? std::string()
                    : resp.substr(hdrEnd + 4);
    }
    return status;
}

} // namespace f1::obs
