#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace f1::obs {

namespace {

/** Burn rates are reported in milli-units; cap so a 0-attainment
 *  window with a tight budget stays a finite, sortable number. */
constexpr double kMaxBurnRate = 1e6;

void
appendJsonString(std::ostringstream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
appendJsonNumber(std::ostringstream &os, double v)
{
    if (!std::isfinite(v))
        v = 0;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    os << buf;
}

} // namespace

SloTracker::SloTracker(SloConfig cfg)
    : cfg_(cfg)
{
    if (cfg_.windowSize == 0)
        cfg_.windowSize = 1;
    cfg_.targetAttainment =
        std::min(cfg_.targetAttainment, 1.0 - 1e-9);
}

double
SloTracker::attainmentOf(uint64_t winTotal, uint64_t winMisses)
{
    if (winTotal == 0)
        return 1.0;
    return 1.0 - double(winMisses) / double(winTotal);
}

double
SloTracker::burnRateOf(uint64_t winTotal, uint64_t winMisses) const
{
    if (winTotal == 0)
        return 0.0;
    const double missFrac = double(winMisses) / double(winTotal);
    const double budget = 1.0 - cfg_.targetAttainment;
    return std::min(missFrac / budget, kMaxBurnRate);
}

void
SloTracker::recordJob(const std::string &tenant, double latencyMs,
                      double deadlineMs)
{
    const bool miss = deadlineMs > 0 && !(latencyMs <= deadlineMs);
    std::lock_guard<std::mutex> lock(m_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
        auto t = std::make_unique<Tenant>();
        t->ring.assign(cfg_.windowSize, 0);
        auto &reg = MetricsRegistry::global();
        t->missCounter =
            &reg.counter("slo." + tenant + ".deadline_misses");
        // The gauge lambdas read the Tenant's atomics only: a
        // registry snapshot evaluates them under the REGISTRY lock,
        // and taking m_ there would invert against this very path
        // (m_ held -> registry lock to register). Integer scaling:
        // attainment in basis points, burn rate in milli-units.
        Tenant *tp = t.get();
        const double target = cfg_.targetAttainment;
        t->attainGauge =
            reg.gauge("slo." + tenant + ".attainment", [tp] {
                const uint64_t tot =
                    tp->winTotal.load(std::memory_order_relaxed);
                const uint64_t miss =
                    tp->winMisses.load(std::memory_order_relaxed);
                return uint64_t(
                    std::llround(attainmentOf(tot, miss) * 10000.0));
            });
        t->burnGauge =
            reg.gauge("slo." + tenant + ".burn_rate", [tp, target] {
                const uint64_t tot =
                    tp->winTotal.load(std::memory_order_relaxed);
                if (tot == 0)
                    return uint64_t(0);
                const uint64_t miss =
                    tp->winMisses.load(std::memory_order_relaxed);
                const double rate = std::min(
                    (double(miss) / double(tot)) / (1.0 - target),
                    kMaxBurnRate);
                return uint64_t(std::llround(rate * 1000.0));
            });
        it = tenants_.emplace(tenant, std::move(t)).first;
    }

    Tenant &t = *it->second;
    if (t.total >= cfg_.windowSize) {
        // Window full: the slot at head leaves the window.
        if (t.ring[t.head] != 0)
            t.winMisses.fetch_sub(1, std::memory_order_relaxed);
    } else {
        t.winTotal.fetch_add(1, std::memory_order_relaxed);
    }
    t.ring[t.head] = miss ? 1 : 0;
    t.head = (t.head + 1) % cfg_.windowSize;
    ++t.total;
    if (miss) {
        ++t.misses;
        t.winMisses.fetch_add(1, std::memory_order_relaxed);
        t.missCounter->inc();
    }
}

double
SloTracker::burnRate(const std::string &tenant) const
{
    std::lock_guard<std::mutex> lock(m_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end())
        return 0.0;
    return burnRateOf(
        it->second->winTotal.load(std::memory_order_relaxed),
        it->second->winMisses.load(std::memory_order_relaxed));
}

std::map<std::string, SloTracker::TenantSlo>
SloTracker::snapshot() const
{
    std::lock_guard<std::mutex> lock(m_);
    std::map<std::string, TenantSlo> out;
    for (const auto &[name, t] : tenants_) {
        TenantSlo s;
        s.total = t->total;
        s.misses = t->misses;
        s.windowTotal = t->winTotal.load(std::memory_order_relaxed);
        s.windowMisses = t->winMisses.load(std::memory_order_relaxed);
        s.attainment = attainmentOf(s.windowTotal, s.windowMisses);
        s.burnRate = burnRateOf(s.windowTotal, s.windowMisses);
        out.emplace(name, s);
    }
    return out;
}

std::string
SloTracker::toJson() const
{
    const auto tenants = snapshot();
    std::ostringstream os;
    os << "{\"target_attainment\": ";
    appendJsonNumber(os, cfg_.targetAttainment);
    os << ", \"window_size\": " << cfg_.windowSize
       << ", \"tenants\": {";
    bool first = true;
    for (const auto &[name, s] : tenants) {
        if (!first)
            os << ", ";
        first = false;
        appendJsonString(os, name);
        os << ": {\"total\": " << s.total
           << ", \"deadline_misses\": " << s.misses
           << ", \"window_total\": " << s.windowTotal
           << ", \"window_misses\": " << s.windowMisses
           << ", \"attainment\": ";
        appendJsonNumber(os, s.attainment);
        os << ", \"burn_rate\": ";
        appendJsonNumber(os, s.burnRate);
        os << "}";
    }
    os << "}}";
    return os.str();
}

} // namespace f1::obs
