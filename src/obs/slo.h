/**
 * @file
 * Per-tenant SLO tracking: sliding-window deadline attainment and
 * error-budget burn rate over observed job latency versus each
 * tenant's TenantPolicy::deadlineMs.
 *
 * The SoK on FHE accelerators argues that latency accounting — not
 * peak kernel speed — separates practical FHE serving from
 * benchmarks. This tracker turns the serving engine's per-job
 * latencies into the two numbers an operator actually pages on:
 *
 *  - attainment: the fraction of the last `windowSize` jobs that met
 *    their deadline (1.0 = every deadline met);
 *  - burn rate: (1 - attainment) / (1 - targetAttainment) — the
 *    multiple of the error budget being consumed. 1.0 means the
 *    tenant is burning budget exactly at the sustainable rate; 2.0
 *    means the window would exhaust a period's budget in half the
 *    period. This is the standard SRE burn-rate alert signal, and
 *    the AdmissionController can shed on it (AdmissionLimits::
 *    maxBurnRate) so overload sheds BEFORE the backlog explodes.
 *
 * Published registry metrics, per tenant (integer-scaled because
 * registry gauges are uint64):
 *  - slo.<tenant>.deadline_misses  counter, lifetime misses
 *  - slo.<tenant>.attainment       gauge, basis points (10000 = 100%)
 *  - slo.<tenant>.burn_rate        gauge, milli-units (1000 = 1.0x)
 *
 * Concurrency: recordJob takes a per-tracker mutex (it is a per-JOB
 * path — the one-TLS-load-and-branch discipline governs per-op hooks,
 * which this never touches). The gauges read lock-free atomics only,
 * so a registry snapshot never takes the tracker lock — the same
 * lock-ordering rule the serving queue-depth gauges follow.
 *
 * Gauges are summed per name by the registry, so keep at most one
 * live tracker per tenant namespace (one serving engine); two engines
 * sharing tenant names would double-count attainment.
 */
#ifndef F1_OBS_SLO_H
#define F1_OBS_SLO_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace f1::obs {

struct SloConfig
{
    /** Jobs per tenant in the sliding attainment window. */
    size_t windowSize = 256;

    /** SLO objective: the attainment fraction the burn rate is
     *  normalized against (0.99 = 1% error budget). Must be < 1;
     *  values >= 1 are clamped just below. */
    double targetAttainment = 0.99;
};

class SloTracker
{
  public:
    explicit SloTracker(SloConfig cfg = {});
    SloTracker(const SloTracker &) = delete;
    SloTracker &operator=(const SloTracker &) = delete;

    /**
     * Records one finished job. `latencyMs` is the tenant-visible
     * turnaround (queue + service); `deadlineMs <= 0` means the
     * tenant has no deadline and the job counts as met. Infinite
     * latency (failed jobs) counts as a miss.
     */
    void recordJob(const std::string &tenant, double latencyMs,
                   double deadlineMs);

    struct TenantSlo
    {
        uint64_t total = 0;  //!< lifetime jobs observed
        uint64_t misses = 0; //!< lifetime deadline misses
        uint64_t windowTotal = 0;
        uint64_t windowMisses = 0;
        double attainment = 1.0; //!< window fraction in [0, 1]
        double burnRate = 0.0;   //!< error-budget multiple
    };

    std::map<std::string, TenantSlo> snapshot() const;

    /**
     * Current window burn rate for one tenant (0.0 if unknown). Takes
     * the tracker mutex; safe to call under the serving engine's lock
     * (the dispatch path does) because the only other m_ holders are
     * recordJob — called OUTSIDE the engine lock — and the snapshot
     * paths, and the gauges read atomics without m_, so no cycle with
     * the registry lock exists either.
     */
    double burnRate(const std::string &tenant) const;

    /** {"target_attainment":...,"window_size":...,"tenants":{...}} —
     *  valid JSON (tests/json_lint.h), served as /tenants.json. */
    std::string toJson() const;

    const SloConfig &config() const { return cfg_; }

  private:
    struct Tenant
    {
        std::vector<uint8_t> ring; //!< 1 = missed deadline
        size_t head = 0;
        uint64_t total = 0;
        uint64_t misses = 0;
        //! Lock-free mirrors the registry gauges read (a snapshot
        //! holds the registry lock; it must never need ours).
        std::atomic<uint64_t> winTotal{0};
        std::atomic<uint64_t> winMisses{0};
        Counter *missCounter = nullptr;
        GaugeHandle attainGauge;
        GaugeHandle burnGauge;
    };

    double burnRateOf(uint64_t winTotal, uint64_t winMisses) const;
    static double attainmentOf(uint64_t winTotal, uint64_t winMisses);

    SloConfig cfg_;
    mutable std::mutex m_;
    //! unique_ptr: gauges capture raw Tenant pointers, which must
    //! stay stable across map rehash/insert.
    std::map<std::string, std::unique_ptr<Tenant>> tenants_;
};

} // namespace f1::obs

#endif // F1_OBS_SLO_H
