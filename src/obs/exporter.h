/**
 * @file
 * Live-introspection endpoint: a dependency-free embedded HTTP server
 * exposing the process's observability surface to a scraper.
 *
 * Endpoints:
 *  - /metrics        Prometheus text exposition (format 0.0.4)
 *                    rendered from a MetricsSnapshot: every scalar as
 *                    a gauge family, every histogram as cumulative
 *                    _bucket{le=...}/_sum/_count series plus a
 *                    <name>_quantile{quantile=...} gauge family for
 *                    the histogram's configured quantile set (value
 *                    "+Inf" when the quantile falls in the overflow
 *                    bucket — the estimate is only a lower bound).
 *  - /snapshot.json  MetricsSnapshot::toJson()
 *  - /tenants.json   SloTracker::toJson() (per-tenant attainment and
 *                    burn rate; "{}" when no tracker is wired)
 *  - /events.json    FlightRecorder::dumpJson()
 *  - /calibration.json  ScheduleCalibration::toJson() — per-op-kind
 *                    predicted-vs-measured schedule fit
 *  - /tracez?ms=N    LiveTraceCapture::captureJson(N): arms the live
 *                    capture ring, samples op spans for N ms (default
 *                    50, clamped 1..2000), and returns them as Chrome
 *                    trace JSON. Blocks the (serial) server for the
 *                    window — a live-debugging request, not a scrape.
 *  - /healthz        200 "ok"
 *
 * Name mapping (Prometheus names admit [a-zA-Z0-9_:] only):
 *  - "slo.<tenant>.<leaf>"  -> f1_slo_<leaf>{tenant="<tenant>"}
 *  - "cache.<name>.<leaf>"  -> f1_cache_<leaf>{cache="<name>"}
 *  - "calib.<op>.<leaf>"    -> f1_calib_<leaf>{op="<op>"}
 *  - anything else          -> "f1_" + name with [^a-zA-Z0-9_] -> '_'
 * so per-tenant and per-cache series aggregate under one family with
 * a label instead of exploding the metric namespace. Label values are
 * escaped per the exposition format (backslash, quote, newline).
 *
 * The server is deliberately minimal: one background thread, serial
 * request handling, GET only, connection-close per request — the load
 * profile of a scraper, not a proxy. It binds 127.0.0.1 by default
 * and never touches the serving hot path (every request renders from
 * a cold-path snapshot). Port 0 binds an ephemeral port; read it back
 * with port().
 */
#ifndef F1_OBS_EXPORTER_H
#define F1_OBS_EXPORTER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>

#include "obs/calib.h"
#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/tracectx.h"

namespace f1::obs {

/** Prometheus text exposition of `snap` (see header comment for the
 *  name/label mapping). Pure function; the testable core. */
std::string renderPrometheus(const MetricsSnapshot &snap);

/** [^a-zA-Z0-9_:] -> '_' (leading digit gets a '_' prefix). */
std::string sanitizeMetricName(std::string_view raw);

/** Exposition-format label-value escaping (\\, \", \n). */
std::string escapeLabelValue(std::string_view raw);

struct ExporterConfig
{
    std::string bindAddress = "127.0.0.1";
    uint16_t port = 0; //!< 0 = ephemeral; read back via port()

    /** Snapshot source; defaults to the global registry. */
    std::function<MetricsSnapshot()> snapshot;

    /** /tenants.json source (not owned; must outlive the exporter).
     *  nullptr serves "{}". */
    const SloTracker *slo = nullptr;

    /** /events.json source; defaults to FlightRecorder::global(). */
    const FlightRecorder *events = nullptr;

    /** /calibration.json source; defaults to
     *  ScheduleCalibration::global(). */
    const ScheduleCalibration *calib = nullptr;
};

class MetricsExporter
{
  public:
    /** Binds and starts serving immediately; throws FatalError when
     *  the socket cannot be bound. */
    explicit MetricsExporter(ExporterConfig cfg = {});
    ~MetricsExporter();
    MetricsExporter(const MetricsExporter &) = delete;
    MetricsExporter &operator=(const MetricsExporter &) = delete;

    /** The bound port (resolved when cfg.port was 0). */
    uint16_t port() const { return port_; }

    /** Stops accepting and joins the server thread (idempotent). */
    void stop();

    struct Response
    {
        int status = 200;
        std::string contentType = "text/plain; charset=utf-8";
        std::string body;
    };

    /** Routes one request path (optionally carrying a "?key=value"
     *  query, e.g. "/tracez?ms=20") to its response — the socket-free
     *  core, used directly by tests. */
    Response handle(std::string_view path) const;

  private:
    void serveLoop();
    void serveOne(int fd);

    ExporterConfig cfg_;
    std::atomic<int> listenFd_{-1};
    uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

/** Minimal blocking HTTP/1.1 GET against 127.0.0.1:`port` — the
 *  self-scrape used by benches, tests, and CI smoke checks. Returns
 *  the status code (0 on connect/transport failure) and fills `body`
 *  with the response payload when non-null. */
int httpGet(uint16_t port, std::string_view path,
            std::string *body = nullptr);

} // namespace f1::obs

#endif // F1_OBS_EXPORTER_H
