#include "obs/tracectx.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>
#include <thread>

namespace f1::obs {

namespace {

/** Tenant ids are the only free-form strings in the export. */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
hexId(uint64_t id)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(id));
    return buf;
}

void
appendUs(std::ostream &os, int64_t ns)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(ns) / 1000.0);
    os << buf;
}

/** Per-thread capture lane id: stable for the thread's lifetime, so
 *  one worker's spans stay on one row of the /tracez view. */
uint32_t
captureLane()
{
    static std::atomic<uint32_t> g_nextLane{0};
    thread_local const uint32_t lane =
        g_nextLane.fetch_add(1, std::memory_order_relaxed);
    return lane;
}

} // namespace

uint64_t
allocateTraceId()
{
    // splitmix64 over a relaxed counter: unique per process (the
    // counter), well-distributed (the mixer), and never 0.
    static std::atomic<uint64_t> g_next{0};
    uint64_t z = (g_next.fetch_add(1, std::memory_order_relaxed) + 1) *
                 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z != 0 ? z : 1;
}

LiveTraceCapture::LiveTraceCapture(size_t capacity)
    : cap_(capacity == 0 ? 1 : capacity),
      slots_(std::make_unique<Slot[]>(cap_))
{
}

LiveTraceCapture &
LiveTraceCapture::global()
{
    // Leaked for the same reason as FlightRecorder::global():
    // executors may record during static teardown.
    static LiveTraceCapture *cap = new LiveTraceCapture;
    return *cap;
}

void
LiveTraceCapture::record(int64_t tsNs, int64_t durNs, const char *name,
                         int32_t handle, uint64_t traceId,
                         int64_t predictedCycle)
{
    const uint64_t seq =
        next_.fetch_add(1, std::memory_order_relaxed) + 1;
    Slot &s = slots_[(seq - 1) % cap_];
    // Same per-slot seqlock as the flight recorder: odd ticket while
    // writing, even when committed; every payload word is an atomic,
    // so a torn read is a DISCARDED span, never UB.
    s.ticket.store(2 * seq + 1, std::memory_order_release);
    s.w[0].store(static_cast<uint64_t>(tsNs),
                 std::memory_order_relaxed);
    s.w[1].store(static_cast<uint64_t>(durNs),
                 std::memory_order_relaxed);
    s.w[2].store(reinterpret_cast<uintptr_t>(name),
                 std::memory_order_relaxed);
    s.w[3].store(uint64_t(uint32_t(handle)) |
                     (uint64_t(captureLane()) << 32),
                 std::memory_order_relaxed);
    s.w[4].store(traceId, std::memory_order_relaxed);
    s.w[5].store(static_cast<uint64_t>(predictedCycle),
                 std::memory_order_relaxed);
    s.ticket.store(2 * seq, std::memory_order_release);
}

std::vector<LiveTraceCapture::CapturedSpan>
LiveTraceCapture::spansSince(int64_t sinceNs) const
{
    std::vector<CapturedSpan> out;
    out.reserve(cap_);
    for (size_t i = 0; i < cap_; ++i) {
        const Slot &s = slots_[i];
        for (int attempt = 0; attempt < 4; ++attempt) {
            const uint64_t t1 =
                s.ticket.load(std::memory_order_acquire);
            if (t1 == 0)
                break; // never written
            if (t1 & 1)
                continue; // mid-write; retry
            CapturedSpan sp;
            sp.tsNs = static_cast<int64_t>(
                s.w[0].load(std::memory_order_relaxed));
            sp.durNs = static_cast<int64_t>(
                s.w[1].load(std::memory_order_relaxed));
            sp.name = reinterpret_cast<const char *>(
                static_cast<uintptr_t>(
                    s.w[2].load(std::memory_order_relaxed)));
            const uint64_t packed =
                s.w[3].load(std::memory_order_relaxed);
            sp.handle = int32_t(uint32_t(packed));
            sp.lane = uint32_t(packed >> 32);
            sp.traceId = s.w[4].load(std::memory_order_relaxed);
            sp.predictedCycle = static_cast<int64_t>(
                s.w[5].load(std::memory_order_relaxed));
            std::atomic_thread_fence(std::memory_order_acquire);
            if (s.ticket.load(std::memory_order_relaxed) != t1)
                continue; // overwritten under us; retry
            if (sp.tsNs >= sinceNs)
                out.push_back(sp);
            break;
        }
    }
    std::sort(out.begin(), out.end(),
              [](const CapturedSpan &a, const CapturedSpan &b) {
                  return a.tsNs < b.tsNs;
              });
    return out;
}

std::string
LiveTraceCapture::captureJson(int64_t windowMs)
{
    const int64_t ms = std::clamp<int64_t>(windowMs, 1, 2000);
    const int64_t t0 = steadyNowNs();
    arm();
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    disarm();
    const std::vector<CapturedSpan> spans = spansSince(t0);

    std::ostringstream os;
    os << "{\"displayTimeUnit\": \"ms\", \"otherData\": "
          "{\"window_ms\": "
       << ms << ", \"captured\": " << spans.size()
       << ", \"ring_capacity\": " << cap_
       << ", \"recorded_total\": " << recorded()
       << "},\n\"traceEvents\": [";
    bool first = true;
    for (const CapturedSpan &sp : spans) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "  {\"name\": \"" << (sp.name ? sp.name : "op")
           << "\", \"cat\": \"op\", \"ph\": \"X\", \"ts\": ";
        appendUs(os, sp.tsNs - t0);
        os << ", \"dur\": ";
        appendUs(os, sp.durNs);
        os << ", \"pid\": 0, \"tid\": " << sp.lane
           << ", \"args\": {\"handle\": " << sp.handle
           << ", \"trace_id\": \"" << hexId(sp.traceId)
           << "\", \"predicted_start_cycle\": " << sp.predictedCycle
           << "}}";
    }
    os << "\n]}\n";
    return os.str();
}

size_t
writeCorrelatedTrace(
    std::ostream &os,
    std::span<const std::shared_ptr<const Trace>> traces,
    const std::vector<ServingEvent> &events)
{
    // Everything below is on ONE clock (steady): serving events carry
    // steadyNowMs stamps, traces carry their tracer's absolute epoch.
    // Re-base onto the earliest timestamp so the document starts at 0.
    int64_t base = std::numeric_limits<int64_t>::max();
    for (const auto &t : traces) {
        if (t != nullptr && !t->events().empty())
            base = std::min(base,
                            t->epochNs() + t->events().front().tsNs);
    }
    for (const ServingEvent &e : events)
        base = std::min(
            base, static_cast<int64_t>(e.tsMs * 1e6));
    if (base == std::numeric_limits<int64_t>::max())
        base = 0;

    // First executor span per trace id — the flow arrow's target.
    struct SpanRef
    {
        int64_t tsNs = 0;
        uint32_t tid = 0;
        bool set = false;
    };
    std::map<uint64_t, SpanRef> firstSpan;
    {
        uint32_t tidBase = 0;
        for (const auto &t : traces) {
            if (t == nullptr)
                continue;
            for (const TraceEvent &e : t->events()) {
                if (e.kind != TraceEventKind::kOpSpan ||
                    e.traceId == 0)
                    continue;
                const int64_t abs = t->epochNs() + e.tsNs;
                SpanRef &ref = firstSpan[e.traceId];
                if (!ref.set || abs < ref.tsNs) {
                    ref.tsNs = abs;
                    ref.tid = tidBase + e.lane;
                    ref.set = true;
                }
            }
            tidBase += uint32_t(std::max<size_t>(t->laneCount(), 1));
        }
    }

    // Lifecycle events per trace id, in causal (seq) order.
    std::map<uint64_t, std::vector<const ServingEvent *>> lifecycle;
    for (const ServingEvent &e : events)
        if (e.traceId != 0)
            lifecycle[e.traceId].push_back(&e);
    for (auto &[id, evs] : lifecycle)
        std::sort(evs.begin(), evs.end(),
                  [](const ServingEvent *a, const ServingEvent *b) {
                      return a->seq < b->seq;
                  });

    size_t linked = 0;
    os << "{\"displayTimeUnit\": \"ms\", \"otherData\": "
          "{\"traces\": "
       << traces.size() << ", \"serving_events\": " << events.size()
       << ", \"jobs\": " << lifecycle.size()
       << "},\n\"traceEvents\": [\n"
       << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
          "\"args\": {\"name\": \"executor\"}},\n"
       << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
          "\"args\": {\"name\": \"serving\"}},\n"
       << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
          "\"tid\": 0, \"args\": {\"name\": \"lifecycle\"}}";

    // Executor lanes: one tid block per trace, lanes keep their ids.
    uint32_t tidBase = 0;
    for (const auto &t : traces) {
        if (t == nullptr)
            continue;
        for (const TraceEvent &e : t->events()) {
            const int64_t abs = t->epochNs() + e.tsNs;
            const uint32_t tid = tidBase + e.lane;
            os << ",\n";
            if (e.kind == TraceEventKind::kOpSpan) {
                os << "  {\"name\": \"" << (e.name ? e.name : "op")
                   << "\", \"cat\": \"op\", \"ph\": \"X\", \"ts\": ";
                appendUs(os, abs - base);
                os << ", \"dur\": ";
                appendUs(os, e.durNs);
                os << ", \"pid\": 0, \"tid\": " << tid
                   << ", \"args\": {\"handle\": " << e.handle
                   << ", \"trace_id\": \"" << hexId(e.traceId)
                   << "\", \"predicted_start_cycle\": "
                   << e.predictedCycle << "}}";
            } else {
                os << "  {\"name\": \""
                   << (e.name ? e.name : "event")
                   << "\", \"cat\": \"sched\", \"ph\": \"i\", "
                      "\"s\": \"t\", \"ts\": ";
                appendUs(os, abs - base);
                os << ", \"pid\": 0, \"tid\": " << tid
                   << ", \"args\": {\"handle\": " << e.handle
                   << "}}";
            }
        }
        tidBase += uint32_t(std::max<size_t>(t->laneCount(), 1));
    }

    // Serving lifecycle lane.
    for (const ServingEvent &e : events) {
        const int64_t abs = static_cast<int64_t>(e.tsMs * 1e6);
        os << ",\n  {\"name\": \"" << servingEventKindName(e.kind)
           << "\", \"cat\": \"serving\", \"ph\": \"i\", \"s\": "
              "\"t\", \"ts\": ";
        appendUs(os, abs - base);
        os << ", \"pid\": 1, \"tid\": 0, \"args\": {\"seq\": "
           << e.seq << ", \"job_id\": " << e.jobId
           << ", \"tenant\": \"" << escapeJson(e.tenant)
           << "\", \"batch_size\": " << e.batchSize
           << ", \"trace_id\": \"" << hexId(e.traceId) << "\"}}";
    }

    // Flow events: the arrows from each job's lifecycle chain into
    // its first executor span.
    for (const auto &[id, evs] : lifecycle) {
        const std::string hid = hexId(id);
        for (size_t i = 0; i < evs.size(); ++i) {
            const int64_t abs =
                static_cast<int64_t>(evs[i]->tsMs * 1e6);
            os << ",\n  {\"name\": \"job\", \"cat\": \"job\", "
                  "\"ph\": \""
               << (i == 0 ? 's' : 't') << "\", \"id\": \"" << hid
               << "\", \"ts\": ";
            appendUs(os, abs - base);
            os << ", \"pid\": 1, \"tid\": 0}";
        }
        auto it = firstSpan.find(id);
        if (it == firstSpan.end() || !it->second.set)
            continue;
        os << ",\n  {\"name\": \"job\", \"cat\": \"job\", \"ph\": "
              "\"f\", \"bp\": \"e\", \"id\": \""
           << hid << "\", \"ts\": ";
        appendUs(os, it->second.tsNs - base);
        os << ", \"pid\": 0, \"tid\": " << it->second.tid << "}";
        ++linked;
    }

    os << "\n]}\n";
    return linked;
}

std::string
correlatedTraceJson(
    std::span<const std::shared_ptr<const Trace>> traces,
    const std::vector<ServingEvent> &events)
{
    std::ostringstream os;
    writeCorrelatedTrace(os, traces, events);
    return os.str();
}

} // namespace f1::obs
