#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "obs/metrics.h"

namespace f1::obs {

namespace {

std::atomic<uint64_t> g_nextTracerId{1};

/**
 * Per-thread lane cache. The tracer id (not just the pointer) is
 * checked: a new Tracer allocated at a dead tracer's address must not
 * hit the stale cache and write into a freed lane.
 */
struct LaneCache
{
    uint64_t tracerId = 0;
    void *lane = nullptr;
};
thread_local LaneCache t_laneCache;

int64_t
steadyNowNsRaw()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

const char *
instantName(TraceEventKind k)
{
    return k == TraceEventKind::kSteal ? "steal" : "release";
}

/** The label is the only free-form string in the export. */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

Tracer::Tracer(size_t laneCapacity, std::string label)
    : laneCapacity_(std::max<size_t>(laneCapacity, 16)),
      id_(g_nextTracerId.fetch_add(1, std::memory_order_relaxed)),
      label_(std::move(label)), epochNs_(steadyNowNsRaw())
{
}

int64_t
Tracer::nowNs() const
{
    return steadyNowNsRaw() - epochNs_;
}

Tracer::Lane &
Tracer::lane()
{
    if (t_laneCache.tracerId == id_)
        return *static_cast<Lane *>(t_laneCache.lane);
    std::lock_guard<std::mutex> lock(lanesMutex_);
    lanes_.push_back(std::make_unique<Lane>());
    Lane *l = lanes_.back().get();
    l->ring.resize(laneCapacity_);
    t_laneCache = {id_, l};
    return *l;
}

void
Tracer::span(const char *name, int32_t handle, int64_t tsNs,
             int64_t durNs, int64_t predictedCycle, uint64_t traceId)
{
    Lane &l = lane();
    TraceEvent &e = l.ring[l.head];
    e.tsNs = tsNs;
    e.durNs = durNs;
    e.predictedCycle = predictedCycle;
    e.traceId = traceId;
    e.name = name;
    e.handle = handle;
    e.kind = TraceEventKind::kOpSpan;
    l.head = (l.head + 1) % laneCapacity_;
    ++l.written;
}

void
Tracer::instant(TraceEventKind kind, int32_t handle, int64_t tsNs)
{
    Lane &l = lane();
    TraceEvent &e = l.ring[l.head];
    e.tsNs = tsNs;
    e.durNs = 0;
    e.predictedCycle = -1;
    e.traceId = 0;
    e.name = instantName(kind);
    e.handle = handle;
    e.kind = kind;
    l.head = (l.head + 1) % laneCapacity_;
    ++l.written;
}

Trace
Tracer::finish()
{
    std::lock_guard<std::mutex> lock(lanesMutex_);
    Trace t;
    t.label_ = label_;
    t.lanes_ = lanes_.size();
    t.epochNs_ = epochNs_;
    for (size_t li = 0; li < lanes_.size(); ++li) {
        Lane &l = *lanes_[li];
        const size_t kept = std::min<uint64_t>(l.written, laneCapacity_);
        t.dropped_ += l.written - kept;
        // Oldest-first: a full ring starts at head (the next victim).
        const size_t start =
            l.written >= laneCapacity_ ? l.head : 0;
        for (size_t k = 0; k < kept; ++k) {
            TraceEvent e = l.ring[(start + k) % laneCapacity_];
            e.lane = static_cast<uint16_t>(li);
            if (e.kind == TraceEventKind::kOpSpan)
                ++t.spans_;
            t.events_.push_back(e);
        }
    }
    std::stable_sort(t.events_.begin(), t.events_.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.tsNs < b.tsNs;
                     });
    if (t.dropped_ > 0) {
        static Counter &dropped =
            MetricsRegistry::global().counter("trace.dropped_events");
        dropped.inc(t.dropped_);
    }
    return t;
}

void
Trace::writeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\": \"ms\", \"otherData\": {\"label\": \""
       << escapeJson(label_) << "\", \"dropped_events\": " << dropped_
       << ", \"lanes\": " << lanes_ << "},\n\"traceEvents\": [\n";
    bool first = true;
    for (const TraceEvent &e : events_) {
        if (!first)
            os << ",\n";
        first = false;
        const double tsUs = static_cast<double>(e.tsNs) / 1000.0;
        if (e.kind == TraceEventKind::kOpSpan) {
            const double durUs = static_cast<double>(e.durNs) / 1000.0;
            char idBuf[24];
            std::snprintf(idBuf, sizeof idBuf, "0x%016llx",
                          static_cast<unsigned long long>(e.traceId));
            os << "  {\"name\": \"" << (e.name ? e.name : "op")
               << "\", \"cat\": \"op\", \"ph\": \"X\", \"ts\": " << tsUs
               << ", \"dur\": " << durUs << ", \"pid\": 0, \"tid\": "
               << e.lane << ", \"args\": {\"handle\": " << e.handle
               << ", \"trace_id\": \"" << idBuf
               << "\", \"predicted_start_cycle\": " << e.predictedCycle
               << "}}";
        } else {
            os << "  {\"name\": \"" << (e.name ? e.name : "event")
               << "\", \"cat\": \"sched\", \"ph\": \"i\", \"s\": "
                  "\"t\", \"ts\": "
               << tsUs << ", \"pid\": 0, \"tid\": " << e.lane
               << ", \"args\": {\"handle\": " << e.handle << "}}";
        }
    }
    os << "\n]}\n";
}

std::string
Trace::json() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

} // namespace f1::obs
