/**
 * @file
 * Process-wide metrics registry: named counters, fixed-bucket latency
 * histograms, and callback gauges, snapshotable to JSON.
 *
 * The F1 paper's evaluation (Figs. 9-10) is built on per-structure
 * utilization and cycle breakdowns; this registry is the software
 * analogue — one place every hot-path counter in the system reports
 * to, replacing the bespoke stats structs that used to be scattered
 * across ScratchArena, LruCache, OpGraphExecutor, and ServingEngine
 * (their old accessors remain as thin shims over this registry or
 * over instance-local counters that also register here as gauges).
 *
 * Cost model (the "zero overhead when off" contract):
 *  - Counter::inc is one relaxed atomic fetch_add — the same cost as
 *    the bespoke atomics it replaced. Hot paths resolve the Counter
 *    reference once (function-local static or member), so the name
 *    lookup mutex is off the hot path entirely.
 *  - Histogram::observe is a branch-free bucket search over <= 32
 *    bounds plus two relaxed adds; it sits on per-job paths (one call
 *    per job), never per-op or per-limb paths.
 *  - snapshot() locks the registry and evaluates gauges; it is a
 *    cold-path export for benches, tests, and serving dashboards.
 *
 * Gauges exist for components whose counters must stay exact
 * per-instance (the LRU caches: tests assert per-scheme hit counts):
 * the instance keeps its own counters and registers a callback; the
 * snapshot SUMS same-name gauges, so N scheme instances aggregate
 * under one metric name without sharing state.
 */
#ifndef F1_OBS_METRICS_H
#define F1_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace f1::obs {

/** Monotonic (or gauge-style inc/dec) relaxed-atomic counter. */
class Counter
{
  public:
    Counter() = default;
    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    void
    inc(uint64_t d = 1)
    {
        v_.fetch_add(d, std::memory_order_relaxed);
    }
    void
    dec(uint64_t d = 1)
    {
        v_.fetch_sub(d, std::memory_order_relaxed);
    }
    uint64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }
    /** For shim-level resets (e.g. ScratchArena::resetStats). */
    void
    store(uint64_t v)
    {
        v_.store(v, std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> v_{0};
};

struct HistogramSnapshot
{
    std::vector<double> bounds;   //!< bucket upper bounds, ascending
    std::vector<uint64_t> counts; //!< bounds.size() + 1 (overflow last)
    uint64_t count = 0;
    double sum = 0;

    /** Quantile set configured for this histogram (ascending); the
     *  JSON snapshot renders one pNN_ms key per entry. */
    std::vector<double> quantiles;

    /** Observations above the last bucket edge. These have no upper
     *  bound, so any quantile falling here is a lower-bound estimate
     *  (the +Inf bucket in Prometheus terms) — consumers must not
     *  read it as a measured latency. */
    uint64_t overflowCount() const
    {
        return counts.empty() ? 0 : counts.back();
    }

    /** Bucket-resolution quantile estimate with an explicit overflow
     *  marker: `value` is the upper bound of the bucket containing the
     *  q-quantile observation; when the observation sits in the
     *  overflow (+Inf) bucket, `value` is the last finite edge and
     *  `overflow` is true (Prometheus output renders it as +Inf). */
    struct Quantile
    {
        double value = 0;
        bool overflow = false;
    };
    Quantile quantileAt(double q) const;

    /** Compatibility wrapper: quantileAt(q).value (the overflow
     *  marker is dropped, clamping to the last finite edge). */
    double quantile(double q) const { return quantileAt(q).value; }
};

/**
 * Fixed-bucket histogram. Bucket bounds are immutable after
 * construction; observe() is lock-free (relaxed atomics). The sum is
 * accumulated in integer microunits (value * 1e6) to stay portable
 * across atomic<double> support levels.
 */
class Histogram
{
  public:
    explicit Histogram(std::span<const double> bounds,
                       std::span<const double> quantiles = {});
    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void observe(double value);
    HistogramSnapshot snapshot() const;
    void reset();

    /** Replaces the quantile set exported in snapshots (ascending;
     *  cold path, snapshot-consistent). Existing snapshot JSON keys
     *  never change meaning — new quantiles add keys. */
    void setQuantiles(std::span<const double> quantiles);
    std::vector<double> quantiles() const;

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<uint64_t>> counts_; //!< + overflow bucket
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sumMicro_{0};

    mutable std::mutex qm_; //!< guards quantiles_ (cold paths only)
    std::vector<double> quantiles_;
};

/** Default latency buckets (milliseconds), 10us .. 10s. */
std::span<const double> defaultLatencyBucketsMs();

/** Default exported quantile set: p50, p95. */
std::span<const double> defaultQuantiles();

struct MetricsSnapshot
{
    /** Counters plus evaluated gauges (same-name gauges summed). */
    std::map<std::string, uint64_t> counters;
    std::map<std::string, HistogramSnapshot> histograms;

    /** One JSON object: {"counters": {...}, "histograms": {...}}.
     *  Keys are sorted, so the output is deterministic. */
    std::string toJson() const;
};

class MetricsRegistry;

/**
 * RAII registration of a gauge callback; unregisters on destruction.
 * Destruction blocks until any in-flight snapshot() finishes, so a
 * gauge's captures stay valid for exactly the handle's lifetime.
 */
class GaugeHandle
{
  public:
    GaugeHandle() = default;
    GaugeHandle(GaugeHandle &&o) noexcept;
    GaugeHandle &operator=(GaugeHandle &&o) noexcept;
    GaugeHandle(const GaugeHandle &) = delete;
    GaugeHandle &operator=(const GaugeHandle &) = delete;
    ~GaugeHandle();

  private:
    friend class MetricsRegistry;
    GaugeHandle(MetricsRegistry *reg, uint64_t id)
        : reg_(reg), id_(id)
    {
    }
    MetricsRegistry *reg_ = nullptr;
    uint64_t id_ = 0;
};

class MetricsRegistry
{
  public:
    /** The process-wide registry (never destroyed, so counters
     *  resolved into function-local statics stay valid at exit). */
    static MetricsRegistry &global();

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Returns the counter registered under `name`, creating it on
     * first use. The reference stays valid for the registry's
     * lifetime; resolve once, increment forever.
     */
    Counter &counter(const std::string &name);

    /**
     * Returns the histogram registered under `name`, creating it with
     * `bounds` (default: defaultLatencyBucketsMs) and `quantiles`
     * (default: defaultQuantiles — p50/p95) on first use. Bounds of an
     * existing histogram are not changed; a non-empty `quantiles` set
     * DOES reconfigure an existing histogram's exported quantiles, so
     * late registrants can widen the set (e.g. add p99) without racing
     * on who resolves the metric first.
     */
    Histogram &histogram(const std::string &name,
                         std::span<const double> bounds = {},
                         std::span<const double> quantiles = {});

    /** Registers a gauge callback summed into `name` at snapshot. */
    [[nodiscard]] GaugeHandle
    gauge(const std::string &name, std::function<uint64_t()> fn);

    MetricsSnapshot snapshot() const;

    /** Zeroes every counter and histogram (gauges are callbacks and
     *  keep their instance state). For tests and bench epochs. */
    void reset();

  private:
    friend class GaugeHandle;
    void unregisterGauge(uint64_t id);

    mutable std::mutex m_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    struct Gauge
    {
        std::string name;
        std::function<uint64_t()> fn;
    };
    std::map<uint64_t, Gauge> gauges_;
    uint64_t nextGaugeId_ = 1;
};

} // namespace f1::obs

#endif // F1_OBS_METRICS_H
