#include "workloads/workloads.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"

namespace f1 {

namespace {

/**
 * Halevi-Shoup diagonal matrix-vector product: out = W * x computed as
 * sum_d rot(x, d) ⊙ diag_d over `diags` nonzero diagonals, followed by
 * a rotate-and-add reduction when the output is narrower than the
 * input. The workhorse of the LoLa networks and HELR.
 */
int
diagonalMatVec(Program &p, int x, uint32_t diags, bool encrypted_weights,
               uint32_t reduce_steps = 0)
{
    int acc = -1;
    for (uint32_t d = 0; d < diags; ++d) {
        int xr = d == 0 ? x : p.rotate(x, d);
        int prod;
        if (encrypted_weights) {
            int w = p.input();
            // Weight ciphertexts enter at the program level; align.
            while (p.ops()[w].level > p.ops()[xr].level)
                w = p.modSwitch(w);
            prod = p.mul(xr, w);
        } else {
            prod = p.mulPlain(xr, p.inputPlainAt(p.ops()[xr].level));
        }
        acc = acc < 0 ? prod : p.add(acc, prod);
    }
    for (uint32_t s = 0; s < reduce_steps; ++s)
        acc = p.add(acc, p.rotate(acc, 1u << s));
    return acc;
}

/** Square activation (x^2 with rescale), LoLa's nonlinearity. */
int
square(Program &p, int x)
{
    int sq = p.mul(x, x);
    return p.modSwitch(sq);
}

} // namespace

Workload
makeMatVec(uint32_t n, uint32_t level, uint32_t rows)
{
    Program p(n, level, "matvec");
    int v = p.input();
    for (uint32_t r = 0; r < rows; ++r) {
        int w = p.inputPlain();
        int prod = p.mulPlain(v, w);
        // innerSum (Listing 2): log2(slots) rotate-and-add steps.
        for (uint32_t s = 0; (1u << s) < n / 2; ++s)
            prod = p.add(prod, p.rotate(prod, 1u << s));
        p.output(prod);
    }
    return {std::move(p), WorkloadScheme::kBgv, n, level, 0, "-", "-"};
}

Workload
makeLolaMnist(bool encrypted_weights, double scale)
{
    // LoLa-MNIST (LeNet-style): 784 -> 64 dense (conv-as-matmul),
    // square, 64 -> 10 dense, square. Starting L: 4 (unencrypted
    // weights) / 6 (encrypted weights), N = 8K (paper §7).
    const uint32_t n = 8192;
    const uint32_t level = encrypted_weights ? 6 : 4;
    auto scaled = [&](uint32_t x) {
        return std::max(2u, (uint32_t)(x * scale));
    };
    Program p(n, level,
              encrypted_weights ? "lola-mnist-ew" : "lola-mnist-uw");
    int x = p.input();
    int h1 = diagonalMatVec(p, x, scaled(32), encrypted_weights, 3);
    h1 = p.modSwitch(h1); // drop the mulPlain scale
    h1 = square(p, h1);
    int h2 = diagonalMatVec(p, h1, scaled(10), encrypted_weights, 2);
    p.output(h2);
    return {std::move(p), WorkloadScheme::kCkks, n, level,
            0, encrypted_weights ? "5431" : "2960",
            encrypted_weights ? "0.36" : "0.17"};
}

Workload
makeLolaCifar(double scale)
{
    // LoLa-CIFAR: 6 layers (MobileNet-v3-class compute), N = 16K,
    // L = 8. Layer widths scaled by `scale` for CPU-baseline
    // tractability; both CPU and F1 run the identical program.
    const uint32_t n = 16384;
    const uint32_t level = 8;
    auto scaled = [&](uint32_t x) {
        return std::max(2u, (uint32_t)(x * scale));
    };
    Program p(n, level, "lola-cifar-uw");
    int x = p.input();
    const uint32_t widths[] = {scaled(128), scaled(128), scaled(64),
                               scaled(64), scaled(32), scaled(10)};
    int h = x;
    for (size_t layer = 0; layer < 6; ++layer) {
        h = diagonalMatVec(p, h, widths[layer], false,
                           layer + 1 < 6 ? 2 : 3);
        if (p.ops()[h].level >= 2)
            h = p.modSwitch(h);
        if (layer % 2 == 1 && p.ops()[h].level >= 3)
            h = square(p, h);
    }
    p.output(h);
    return {std::move(p), WorkloadScheme::kCkks, n, level, 0,
            "1200000", "241"};
}

Workload
makeLogReg(uint32_t features, double scale)
{
    // HELR (Han et al.): one batch of logistic-regression training,
    // 256 features x 256 samples, CKKS starting at L = 16. Per
    // iteration: z = X*w (diagonal matvec + reduction), sigmoid via
    // degree-3 polynomial (two squaring-depth multiplies), gradient
    // accumulation back through X^T.
    const uint32_t n = 16384;
    const uint32_t level = 16;
    const uint32_t diags =
        std::max(4u, (uint32_t)(std::sqrt((double)features) * scale *
                                2));
    Program p(n, level, "logreg-helr");
    int X = p.input();  // packed samples
    int w = p.input();  // packed weights
    // z = X * w.
    int z = -1;
    for (uint32_t d = 0; d < diags; ++d) {
        int xr = d == 0 ? X : p.rotate(X, d);
        int wr = d == 0 ? w : p.rotate(w, d);
        int prod = p.mul(xr, wr);
        z = z < 0 ? prod : p.add(z, prod);
    }
    z = p.modSwitch(z);
    for (uint32_t s = 0; s < log2Floor(features); ++s)
        z = p.add(z, p.rotate(z, 1u << s));
    // sigmoid(z) ≈ c0 + c1 z + c3 z^3.
    int z2 = p.modSwitch(p.mul(z, z));
    int z3 = p.modSwitch(p.mul(z2, p.modSwitch(z)));
    int sig = p.addPlain(z3, p.inputPlainAt(p.ops()[z3].level));
    // gradient: g = X^T * sig (second diagonal pass).
    int Xd = p.modSwitch(p.modSwitch(p.modSwitch(X)));
    int g = -1;
    for (uint32_t d = 0; d < diags; ++d) {
        int xr = d == 0 ? Xd : p.rotate(Xd, d);
        int prod = p.mul(xr, sig);
        g = g < 0 ? prod : p.add(g, prod);
    }
    g = p.modSwitch(g);
    for (uint32_t s = 0; s < log2Floor(features); ++s)
        g = p.add(g, p.rotate(g, 1u << s));
    // w' = w - lr * g.
    int lr = p.mulPlain(g, p.inputPlainAt(p.ops()[g].level));
    p.output(p.modSwitch(lr));
    return {std::move(p), WorkloadScheme::kCkks, n, level, 0, "8300",
            "1.15"};
}

Workload
makeDbLookup(uint32_t entries, double scale)
{
    // HElib BGV_country_db_lookup at realistic parameters (paper §7:
    // L = 17, N = 16K): for each entry, an equality test via Fermat's
    // little theorem (x^(t-1) with t = 65537: 16 squarings), then
    // masked-value aggregation.
    const uint32_t n = 16384;
    const uint32_t level = 17;
    (void)scale;
    Program p(n, level, "db-lookup");
    int query = p.input();
    int acc = -1;
    for (uint32_t e = 0; e < entries; ++e) {
        // d = query - key_e (key is server-side plaintext).
        int d = p.addPlain(query, p.inputPlain());
        // d^(t-1) = d^(2^16): 16 squarings with modulus switching.
        for (int s = 0; s < 16; ++s) {
            d = p.modSwitch(d);
            d = p.mul(d, d);
        }
        // mask = 1 - d^(t-1); select value_e.
        int mask = p.addPlain(d, p.inputPlainAt(p.ops()[d].level));
        int sel = p.mulPlain(mask, p.inputPlainAt(p.ops()[mask].level));
        acc = acc < 0 ? sel : p.add(acc, sel);
    }
    // Aggregate across slots.
    for (uint32_t s = 0; s < 4; ++s)
        acc = p.add(acc, p.rotate(acc, 1u << s));
    p.output(acc);
    return {std::move(p), WorkloadScheme::kBgv, n, level, 0, "29300",
            "4.36"};
}

Workload
makeBgvBootstrap(uint32_t lmax, uint32_t digits)
{
    // Alperin-Sheriff-Peikert-style non-packed BGV bootstrapping
    // (fhe/bootstrap.h): homomorphic inner product with Enc(s), trace
    // (log2 N rotations), then (d-2) squarings.
    const uint32_t n = 16384;
    Program p(n, lmax, "bgv-bootstrap");
    p.setAuxCount(lmax); // enables the GHS algorithmic choice (§4.2)
    int bk = p.input(); // bootstrapping key Enc(s)
    int u = p.mulPlain(bk, p.inputPlain()); // c~1 * Enc(s)
    u = p.addPlain(u, p.inputPlain());      // + c~0
    // Trace: log2(N) rotations by distinct Galois elements.
    for (uint32_t k = 0; k < log2Exact(n); ++k)
        u = p.add(u, p.rotate(u, (int64_t)n + k));
    // Digit extraction: (d-2) squarings.
    for (uint32_t s = 0; s + 2 < digits; ++s) {
        u = p.modSwitch(u);
        u = p.mul(u, u);
    }
    p.output(u);
    return {std::move(p), WorkloadScheme::kBgv, n, lmax, lmax, "4390",
            "2.40"};
}

Workload
makeCkksBootstrap(uint32_t lmax)
{
    // HEAAN-style non-packed CKKS bootstrapping (fhe/bootstrap.h):
    // trace after the modulus raise, sine Taylor evaluation, angle
    // doublings.
    const uint32_t n = 16384;
    Program p(n, lmax, "ckks-bootstrap");
    p.setAuxCount(lmax);
    int u = p.input(); // the raised ciphertext
    for (uint32_t k = 0; k < log2Exact(n); ++k)
        u = p.add(u, p.rotate(u, (int64_t)n + k));
    // y and Taylor powers y^2..y^7 with rescaling.
    int y = p.modSwitch(p.mulPlain(u, p.inputPlain()));
    int y2 = p.modSwitch(p.mul(y, y));
    int y_d = p.modSwitch(y);
    int y3 = p.modSwitch(p.mul(y2, y_d));
    int y4 = p.modSwitch(p.mul(y2, y2));
    int sin_t = p.mulPlain(y3, p.inputPlainAt(p.ops()[y3].level));
    sin_t = p.modSwitch(sin_t);
    int cos_t = p.mulPlain(y2, p.inputPlainAt(p.ops()[y2].level));
    cos_t = p.modSwitch(cos_t);
    (void)y4;
    // 7 angle doublings: sin' = 2 sin cos, cos' = 1 - 2 sin^2.
    for (int i = 0; i < 7; ++i) {
        uint32_t lv = std::min(p.ops()[sin_t].level,
                               p.ops()[cos_t].level);
        while (p.ops()[sin_t].level > lv)
            sin_t = p.modSwitch(sin_t);
        while (p.ops()[cos_t].level > lv)
            cos_t = p.modSwitch(cos_t);
        int prod = p.modSwitch(p.mul(sin_t, cos_t));
        int s2 = p.modSwitch(p.mul(sin_t, sin_t));
        sin_t = p.mulPlain(prod, p.inputPlainAt(p.ops()[prod].level));
        cos_t = p.addPlain(
            p.mulPlain(s2, p.inputPlainAt(p.ops()[s2].level)),
            p.inputPlainAt(p.ops()[s2].level));
        sin_t = p.modSwitch(sin_t);
        cos_t = p.modSwitch(cos_t);
    }
    p.output(sin_t);
    return {std::move(p), WorkloadScheme::kCkks, n, lmax, lmax, "1554",
            "1.30"};
}

std::vector<Workload>
makeTable3Suite(double cifar_scale)
{
    std::vector<Workload> suite;
    suite.push_back(makeLolaCifar(cifar_scale));
    suite.push_back(makeLolaMnist(false));
    suite.push_back(makeLolaMnist(true));
    suite.push_back(makeLogReg());
    suite.push_back(makeDbLookup());
    suite.push_back(makeBgvBootstrap());
    suite.push_back(makeCkksBootstrap());
    return suite;
}

} // namespace f1
