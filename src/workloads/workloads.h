/**
 * @file
 * The paper's benchmark programs (§7) as DSL builders, structurally
 * faithful to the published algorithms and parameterized so the CPU
 * baseline stays runnable (EXPERIMENTS.md records the scales used):
 *
 *  - LoLa-CIFAR / LoLa-MNIST (unencrypted & encrypted weights):
 *    Brutzkus et al.'s low-latency networks as sequences of
 *    Halevi-Shoup diagonal matrix-vector products with square
 *    activations (CKKS, starting L = 8 / 4 / 6).
 *  - Logistic regression: HELR (Han et al.), one batch of 256 samples
 *    x 256 features, CKKS at L = 16.
 *  - DB Lookup: HElib's BGV country-db lookup: Fermat equality test
 *    (t-1 = 2^16: 16 squarings) + masked aggregation, BGV at L = 17.
 *  - BGV bootstrapping (Alperin-Sheriff-Peikert, non-packed) and CKKS
 *    bootstrapping (HEAAN, non-packed), L_max = 24: homomorphic
 *    inner product, trace (log2 N rotations), digit extraction /
 *    sine evaluation.
 */
#ifndef F1_WORKLOADS_WORKLOADS_H
#define F1_WORKLOADS_WORKLOADS_H

#include "compiler/program.h"

namespace f1 {

enum class WorkloadScheme { kBgv, kCkks };

struct Workload
{
    Program program;
    WorkloadScheme scheme;
    uint32_t n;
    uint32_t maxLevel;  //!< FheContext levels for reference execution
    uint32_t auxCount;  //!< aux primes for GHS (0 = digit only)
    const char *paperCpuMs;   //!< paper's CPU time (for reporting)
    const char *paperF1Ms;    //!< paper's F1 time
};

/** Listing 2: (rows x N-slot) matrix-vector multiply. */
Workload makeMatVec(uint32_t n = 16384, uint32_t level = 16,
                    uint32_t rows = 4);

/** LoLa-MNIST; encrypted_weights selects the two paper variants. */
Workload makeLolaMnist(bool encrypted_weights, double scale = 1.0);

/** LoLa-CIFAR (unencrypted weights). */
Workload makeLolaCifar(double scale = 0.25);

/** HELR logistic regression, one batch. */
Workload makeLogReg(uint32_t features = 256, double scale = 1.0);

/** BGV country-db lookup. */
Workload makeDbLookup(uint32_t entries = 4, double scale = 1.0);

/** Non-packed BGV bootstrapping (L_max = 24). */
Workload makeBgvBootstrap(uint32_t lmax = 24, uint32_t digits = 8);

/** Non-packed CKKS bootstrapping (L_max = 24). */
Workload makeCkksBootstrap(uint32_t lmax = 24);

/** All Table 3 benchmarks in paper order. */
std::vector<Workload> makeTable3Suite(double cifar_scale = 0.25);

} // namespace f1

#endif // F1_WORKLOADS_WORKLOADS_H
