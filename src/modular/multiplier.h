/**
 * @file
 * The four modular-multiplier designs compared in the paper's Table 1:
 * Barrett, Montgomery, NTT-friendly (Mert et al. [51]) and the paper's
 * FHE-friendly design (§5.3).
 *
 * Each class implements the same functional contract — mul(a, b) ==
 * a * b mod q — using the algorithm the corresponding hardware design
 * implements, and carries the synthesized area/power/delay reported in
 * Table 1 so the area and power models can compose them.
 */
#ifndef F1_MODULAR_MULTIPLIER_H
#define F1_MODULAR_MULTIPLIER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace f1 {

/** Synthesis characteristics of a multiplier design (paper Table 1). */
struct MultiplierCost
{
    double areaUm2;  //!< area in square microns (14/12nm)
    double powerMw;  //!< power in milliwatts
    double delayPs;  //!< critical-path delay in picoseconds
};

/** Common interface: word-sized modular multiplication for a fixed q. */
class ModMultiplier
{
  public:
    virtual ~ModMultiplier() = default;

    /** a * b mod q; a, b already reduced mod q. */
    virtual uint32_t mul(uint32_t a, uint32_t b) const = 0;

    virtual const char *name() const = 0;
    virtual MultiplierCost cost() const = 0;

    uint32_t modulus() const { return q_; }

  protected:
    explicit ModMultiplier(uint32_t q) : q_(q) {}
    uint32_t q_;
};

/**
 * Barrett reduction: approximates the quotient with a precomputed
 * mu = floor(2^64 / q). Works for any modulus (no congruence
 * restrictions), at the highest hardware cost of the four designs.
 */
class BarrettMultiplier : public ModMultiplier
{
  public:
    explicit BarrettMultiplier(uint32_t q);
    uint32_t mul(uint32_t a, uint32_t b) const override;
    const char *name() const override { return "Barrett"; }
    MultiplierCost cost() const override { return {5271.0, 18.40, 1317.0}; }

  private:
    uint64_t mu_; //!< floor(2^64 / q)
};

/**
 * Montgomery multiplication with R = 2^32. Requires q odd. Operands are
 * kept in the standard domain; mul() performs REDC(a*b) followed by a
 * REDC against R^2 mod q to return to the standard domain, mirroring a
 * hardware design whose datapath is a pair of REDC stages.
 */
class MontgomeryMultiplier : public ModMultiplier
{
  public:
    explicit MontgomeryMultiplier(uint32_t q);
    uint32_t mul(uint32_t a, uint32_t b) const override;
    const char *name() const override { return "Montgomery"; }
    MultiplierCost cost() const override { return {2916.0, 9.29, 1040.0}; }

    /** REDC(T) = T * 2^-32 mod q for T < q * 2^32; exposed for reuse. */
    uint32_t redc(uint64_t t) const;

    /** Map x into the Montgomery domain (x * 2^32 mod q). */
    uint32_t toMont(uint32_t x) const { return redc((uint64_t)x * r2_); }

  protected:
    uint32_t qInvNeg_; //!< -q^-1 mod 2^32
    uint32_t r2_;      //!< 2^64 mod q
};

/**
 * NTT-friendly multiplier (Mert et al. [51]): word-level Montgomery
 * with 16-bit digits, exploiting q ≡ 1 (mod 2^16) — which NTT moduli
 * with N >= 2^15 satisfy — so each of the two reduction rounds needs
 * only a 16x16 product for the m-digit and a shifted add for m*q.
 */
class NttFriendlyMultiplier : public ModMultiplier
{
  public:
    explicit NttFriendlyMultiplier(uint32_t q);
    uint32_t mul(uint32_t a, uint32_t b) const override;
    const char *name() const override { return "NTT-friendly"; }
    MultiplierCost cost() const override { return {2165.0, 5.36, 1000.0}; }

  protected:
    uint32_t qInvNegLo_; //!< -q^-1 mod 2^16
    uint32_t r2_;        //!< 2^64 mod q

    uint32_t redcDigits(uint64_t t) const;
};

/**
 * FHE-friendly multiplier (paper §5.3): restrict moduli so that the
 * per-digit Montgomery constant is trivial (-q^-1 ≡ ±1 mod 2^16),
 * removing the 16x16 multiplier stage that computes the m-digit. The
 * paper states q ≡ -1 (mod 2^16); combined with the negacyclic-NTT
 * requirement q ≡ 1 (mod 2N) this library uses q ≡ 1 (mod 2^16), for
 * which -q^-1 ≡ -1 (mod 2^16) and the stage degenerates to a negation
 * (see DESIGN.md §2.6). About 6,000 32-bit primes satisfy it.
 */
class FheFriendlyMultiplier : public ModMultiplier
{
  public:
    explicit FheFriendlyMultiplier(uint32_t q);
    uint32_t mul(uint32_t a, uint32_t b) const override;
    const char *name() const override { return "FHE-friendly"; }
    MultiplierCost cost() const override { return {1817.0, 4.10, 1000.0}; }

  private:
    uint32_t r2_; //!< 2^64 mod q

    uint32_t redcTrivial(uint64_t t) const;
};

/** Instantiate all four designs for modulus q (q must satisfy the
 *  FHE-friendly congruence; library moduli always do). */
std::vector<std::unique_ptr<ModMultiplier>> makeAllMultipliers(uint32_t q);

} // namespace f1

#endif // F1_MODULAR_MULTIPLIER_H
