#include "modular/primes.h"

#include <algorithm>

#include "common/bits.h"
#include "common/error.h"
#include "common/rng.h"
#include "modular/modarith.h"

namespace f1 {

namespace {

uint64_t
mulMod64(uint64_t a, uint64_t b, uint64_t m)
{
    return static_cast<uint64_t>((unsigned __int128)a * b % m);
}

uint64_t
powMod64(uint64_t a, uint64_t e, uint64_t m)
{
    uint64_t r = 1;
    a %= m;
    while (e) {
        if (e & 1)
            r = mulMod64(r, a, m);
        a = mulMod64(a, a, m);
        e >>= 1;
    }
    return r;
}

} // namespace

bool
isPrime(uint64_t n)
{
    if (n < 2)
        return false;
    for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                       19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
        if (n % p == 0)
            return n == p;
    }
    uint64_t d = n - 1;
    int r = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++r;
    }
    // This base set is deterministic for all n < 2^64.
    for (uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                       19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
        uint64_t x = powMod64(a, d, n);
        if (x == 1 || x == n - 1)
            continue;
        bool composite = true;
        for (int i = 0; i < r - 1; ++i) {
            x = mulMod64(x, x, n);
            if (x == n - 1) {
                composite = false;
                break;
            }
        }
        if (composite)
            return false;
    }
    return true;
}

std::vector<uint32_t>
generateNttPrimes(size_t count, uint32_t bits, uint64_t n,
                  const std::vector<uint32_t> &avoid)
{
    F1_REQUIRE(bits >= 17 && bits <= (uint32_t)kMaxModulusBits,
               "prime width " << bits << " out of range");
    F1_REQUIRE(isPowerOfTwo(n), "degree must be a power of two");

    // q ≡ 1 (mod step) where step = lcm(2N, 2^16); both are powers of
    // two so the lcm is their max.
    const uint64_t step = std::max<uint64_t>(2 * n, 1ULL << 16);
    F1_REQUIRE(step < (1ULL << bits),
               "degree too large for " << bits << "-bit primes");

    std::vector<uint32_t> primes;
    // Descend from the top of the bits-wide range.
    uint64_t candidate = ((1ULL << bits) - 1) / step * step + 1;
    while (candidate >= step)
    {
        if (candidate < (1ULL << (bits - 1)))
            break; // keep exactly `bits`-bit primes
        if (isPrime(candidate) &&
            std::find(avoid.begin(), avoid.end(),
                      (uint32_t)candidate) == avoid.end()) {
            primes.push_back(static_cast<uint32_t>(candidate));
            if (primes.size() == count)
                return primes;
        }
        candidate -= step;
    }
    F1_FATAL("not enough " << bits << "-bit NTT primes for N=" << n
             << " (found " << primes.size() << ", need " << count << ")");
}

size_t
countFheFriendlyPrimes(uint32_t bits)
{
    const uint64_t step = 1ULL << 16;
    size_t count = 0;
    for (uint64_t c = step + 1; c < (1ULL << bits); c += step) {
        if (isPrime(c))
            ++count;
    }
    return count;
}

uint32_t
primitiveRootOfUnity(uint64_t order, uint32_t q)
{
    F1_REQUIRE((q - 1) % order == 0,
               "order " << order << " does not divide q-1 for q=" << q);
    Rng rng(q); // deterministic per modulus
    const uint64_t exp = (q - 1) / order;
    for (int attempt = 0; attempt < 4096; ++attempt) {
        uint32_t g = static_cast<uint32_t>(rng.uniform(q - 2)) + 2;
        uint32_t cand = powMod(g, exp, q);
        // Exact order check: cand^(order/p) != 1 for prime p | order.
        // Our orders are powers of two, so checking order/2 suffices.
        if (cand == 1)
            continue;
        if (order % 2 == 0 && powMod(cand, order / 2, q) == 1)
            continue;
        F1_CHECK(powMod(cand, order, q) == 1, "root order overflow");
        return cand;
    }
    F1_FATAL("no primitive root of order " << order << " mod " << q);
}

} // namespace f1
