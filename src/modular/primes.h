/**
 * @file
 * Prime generation for RNS modulus chains.
 *
 * Library moduli satisfy two congruences simultaneously:
 *  - q ≡ 1 (mod 2N): required for the negacyclic NTT (a primitive
 *    2N-th root of unity must exist mod q);
 *  - q ≡ 1 (mod 2^16): the FHE-friendly multiplier restriction
 *    (paper §5.3, adapted — see DESIGN.md).
 */
#ifndef F1_MODULAR_PRIMES_H
#define F1_MODULAR_PRIMES_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace f1 {

/** Deterministic Miller-Rabin, exact for all 64-bit inputs. */
bool isPrime(uint64_t n);

/**
 * Generates `count` distinct primes of exactly `bits` bits satisfying
 * q ≡ 1 (mod lcm(2n, 2^16)), descending from the top of the range,
 * skipping any prime in `avoid`.
 *
 * @param count  number of primes
 * @param bits   prime width in bits (<= 31)
 * @param n      polynomial degree (power of two)
 * @param avoid  primes to skip (e.g., already used by the chain)
 */
std::vector<uint32_t> generateNttPrimes(
    size_t count, uint32_t bits, uint64_t n,
    const std::vector<uint32_t> &avoid = {});

/**
 * Counts primes q < 2^31 with q ≡ 1 (mod 2^16) up to a sampling bound;
 * used by the Table 1 bench to reproduce the paper's claim that the
 * FHE-friendly restriction still leaves thousands of usable moduli.
 */
size_t countFheFriendlyPrimes(uint32_t bits);

/**
 * Finds an element of exact multiplicative order `order` mod prime q.
 * Requires order | q - 1.
 */
uint32_t primitiveRootOfUnity(uint64_t order, uint32_t q);

} // namespace f1

#endif // F1_MODULAR_PRIMES_H
