/**
 * @file
 * Scalar modular arithmetic over word-sized prime moduli.
 *
 * F1 operates on 32-bit residue words (paper §2.3: RNS representation
 * with W = 32-bit words). All library moduli are primes q < 2^31 so that
 * lazy sums of two residues still fit a 32-bit word and 64-bit
 * intermediates never overflow. NTT moduli are further restricted to
 * q < 2^30 (kLazyModulusBits) so the Harvey lazy-butterfly pipeline can
 * carry values in [0, 4q) without overflow; see mulModShoupLazy and the
 * value-range table in README.md.
 */
#ifndef F1_MODULAR_MODARITH_H
#define F1_MODULAR_MODARITH_H

#include <cstdint>

#include "common/error.h"

namespace f1 {

/** Maximum supported modulus width in bits. */
constexpr int kMaxModulusBits = 31;

/**
 * Maximum modulus width for the lazy (Harvey) NTT pipeline. Lazy
 * butterflies keep values in [0, 4q) between stages, so the modulus
 * must satisfy 4q < 2^32, i.e. q < 2^30. NttTables enforces this at
 * construction.
 */
constexpr int kLazyModulusBits = 30;

/** a + b mod q, inputs already reduced. */
inline uint32_t
addMod(uint32_t a, uint32_t b, uint32_t q)
{
    uint32_t s = a + b;
    return s >= q ? s - q : s;
}

/** a - b mod q, inputs already reduced. */
inline uint32_t
subMod(uint32_t a, uint32_t b, uint32_t q)
{
    return a >= b ? a - b : a + q - b;
}

/** a * b mod q via 64-bit widening; reference implementation. */
inline uint32_t
mulMod(uint32_t a, uint32_t b, uint32_t q)
{
    return static_cast<uint32_t>((uint64_t)a * b % q);
}

/** -a mod q. */
inline uint32_t
negMod(uint32_t a, uint32_t q)
{
    return a == 0 ? 0 : q - a;
}

/** a^e mod q by square-and-multiply. */
inline uint32_t
powMod(uint32_t a, uint64_t e, uint32_t q)
{
    uint64_t base = a % q;
    uint64_t result = 1;
    while (e) {
        if (e & 1)
            result = result * base % q;
        base = base * base % q;
        e >>= 1;
    }
    return static_cast<uint32_t>(result);
}

/** a^-1 mod prime q (Fermat); requires gcd(a, q) == 1. */
inline uint32_t
invMod(uint32_t a, uint32_t q)
{
    F1_REQUIRE(a % q != 0, "inverse of zero mod " << q);
    return powMod(a, q - 2, q);
}

/**
 * Shoup precomputation for multiplication by a fixed operand w < q:
 * precon = floor(w * 2^32 / q). Used on NTT twiddle factors, where the
 * hardware stores w alongside its precomputed constant.
 */
inline uint32_t
shoupPrecompute(uint32_t w, uint32_t q)
{
    return static_cast<uint32_t>(((uint64_t)w << 32) / q);
}

/**
 * Shoup modular multiplication a * w mod q with precomputed
 * precon = floor(w << 32 / q). Single multiply-high plus a correction;
 * this is the fast scalar path used by the software NTT.
 */
inline uint32_t
mulModShoup(uint32_t a, uint32_t w, uint32_t precon, uint32_t q)
{
    uint32_t hi = static_cast<uint32_t>(((uint64_t)a * precon) >> 32);
    uint32_t r = static_cast<uint32_t>(
        (uint64_t)a * w - (uint64_t)hi * q);
    return r >= q ? r - q : r;
}

/**
 * Lazy Shoup multiplication: like mulModShoup but without the final
 * conditional subtraction. Returns a * w mod q in [0, 2q). Valid for
 * ANY 32-bit a (including lazy values up to 4q) and w < q — the Shoup
 * error bound r < a*w/2^32 + q < 2q holds for the full 32-bit range
 * of a. This is the butterfly multiply of the Harvey NTT.
 */
inline uint32_t
mulModShoupLazy(uint32_t a, uint32_t w, uint32_t precon, uint32_t q)
{
    uint32_t hi = static_cast<uint32_t>(((uint64_t)a * precon) >> 32);
    return static_cast<uint32_t>((uint64_t)a * w - (uint64_t)hi * q);
}

/**
 * Lazy addition: a + b with no reduction. For a, b < 2q the result is
 * in [0, 4q), which fits a 32-bit word when q < 2^30.
 */
inline uint32_t
addLazy(uint32_t a, uint32_t b)
{
    return a + b;
}

/**
 * Lazy subtraction: a - b + 2q with twoQ = 2q precomputed by the
 * caller. For a, b < 2q the result is in (0, 4q); no reduction.
 */
inline uint32_t
subLazy(uint32_t a, uint32_t b, uint32_t twoQ)
{
    return a + twoQ - b;
}

/**
 * Final correction pass of the lazy pipeline: reduces x in [0, 4q)
 * to the canonical representative in [0, q). twoQ = 2q.
 */
inline uint32_t
lazyCorrect(uint32_t x, uint32_t q, uint32_t twoQ)
{
    if (x >= twoQ)
        x -= twoQ;
    return x >= q ? x - q : x;
}

} // namespace f1

#endif // F1_MODULAR_MODARITH_H
