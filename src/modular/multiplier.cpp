#include "modular/multiplier.h"

#include "common/error.h"
#include "modular/modarith.h"

namespace f1 {

namespace {

/** q^-1 mod 2^32 by Newton iteration; q must be odd. */
uint32_t
invModPow2(uint32_t q)
{
    uint32_t x = q; // correct mod 2^3
    for (int i = 0; i < 5; ++i)
        x *= 2u - q * x; // doubles the number of correct bits
    return x;
}

uint32_t
pow2_64Mod(uint32_t q)
{
    return static_cast<uint32_t>(
        ((unsigned __int128)1 << 64) % q);
}

} // namespace

//
// Barrett
//

BarrettMultiplier::BarrettMultiplier(uint32_t q) : ModMultiplier(q)
{
    F1_REQUIRE(q > 1, "Barrett modulus must be > 1");
    mu_ = static_cast<uint64_t>(((unsigned __int128)1 << 64) / q);
}

uint32_t
BarrettMultiplier::mul(uint32_t a, uint32_t b) const
{
    uint64_t t = (uint64_t)a * b;
    uint64_t qhat = static_cast<uint64_t>(
        ((unsigned __int128)t * mu_) >> 64);
    uint64_t r = t - qhat * q_;
    while (r >= q_)
        r -= q_;
    return static_cast<uint32_t>(r);
}

//
// Montgomery
//

MontgomeryMultiplier::MontgomeryMultiplier(uint32_t q) : ModMultiplier(q)
{
    F1_REQUIRE(q & 1, "Montgomery modulus must be odd");
    qInvNeg_ = ~invModPow2(q) + 1; // -q^-1 mod 2^32
    r2_ = pow2_64Mod(q);
}

uint32_t
MontgomeryMultiplier::redc(uint64_t t) const
{
    uint32_t m = static_cast<uint32_t>(t) * qInvNeg_;
    uint64_t u = (t + (uint64_t)m * q_) >> 32;
    return static_cast<uint32_t>(u >= q_ ? u - q_ : u);
}

uint32_t
MontgomeryMultiplier::mul(uint32_t a, uint32_t b) const
{
    // REDC(a*b) = a*b*R^-1; a second REDC against R^2 restores the
    // standard domain.
    uint32_t ab = redc((uint64_t)a * b);
    return redc((uint64_t)ab * r2_);
}

//
// NTT-friendly (digit-serial Montgomery, 16-bit digits)
//

NttFriendlyMultiplier::NttFriendlyMultiplier(uint32_t q) : ModMultiplier(q)
{
    F1_REQUIRE(q & 1, "NTT-friendly modulus must be odd");
    // -q^-1 mod 2^16, computed generically (the hardware carries a
    // 16x16 multiplier for the m-digit).
    uint32_t x = q & 0xffff; // Newton mod 2^16
    for (int i = 0; i < 4; ++i)
        x = (x * (2u - q * x)) & 0xffff;
    qInvNegLo_ = (0x10000u - x) & 0xffff;
    r2_ = pow2_64Mod(q);
}

uint32_t
NttFriendlyMultiplier::redcDigits(uint64_t t) const
{
    for (int round = 0; round < 2; ++round) {
        uint32_t m = (static_cast<uint32_t>(t & 0xffff) * qInvNegLo_)
            & 0xffff;
        t = (t + (uint64_t)m * q_) >> 16;
    }
    return static_cast<uint32_t>(t >= q_ ? t - q_ : t);
}

uint32_t
NttFriendlyMultiplier::mul(uint32_t a, uint32_t b) const
{
    uint32_t ab = redcDigits((uint64_t)a * b);
    return redcDigits((uint64_t)ab * r2_);
}

//
// FHE-friendly (paper §5.3): trivial per-digit constant
//

FheFriendlyMultiplier::FheFriendlyMultiplier(uint32_t q) : ModMultiplier(q)
{
    F1_REQUIRE((q & 0xffff) == 1,
               "FHE-friendly multiplier requires q ≡ 1 (mod 2^16), got "
               << q);
    r2_ = pow2_64Mod(q);
}

uint32_t
FheFriendlyMultiplier::redcTrivial(uint64_t t) const
{
    // With q ≡ 1 (mod 2^16), -q^-1 ≡ -1 (mod 2^16): the m-digit is just
    // the two's-complement negation of the low digit — no multiplier.
    for (int round = 0; round < 2; ++round) {
        uint32_t m = (0x10000u - static_cast<uint32_t>(t & 0xffff))
            & 0xffff;
        t = (t + (uint64_t)m * q_) >> 16;
    }
    return static_cast<uint32_t>(t >= q_ ? t - q_ : t);
}

uint32_t
FheFriendlyMultiplier::mul(uint32_t a, uint32_t b) const
{
    uint32_t ab = redcTrivial((uint64_t)a * b);
    return redcTrivial((uint64_t)ab * r2_);
}

std::vector<std::unique_ptr<ModMultiplier>>
makeAllMultipliers(uint32_t q)
{
    std::vector<std::unique_ptr<ModMultiplier>> v;
    v.push_back(std::make_unique<BarrettMultiplier>(q));
    v.push_back(std::make_unique<MontgomeryMultiplier>(q));
    v.push_back(std::make_unique<NttFriendlyMultiplier>(q));
    v.push_back(std::make_unique<FheFriendlyMultiplier>(q));
    return v;
}

} // namespace f1
