/**
 * @file
 * F1's high-level DSL (paper §4.1, Listing 2): programs are dataflow
 * graphs of homomorphic operations on ciphertext handles. The DSL
 * exposes the FHE interface (add, multiply, rotate) plus the one
 * implementation detail the paper keeps (the noise budget L); the
 * compiler handles everything below.
 */
#ifndef F1_COMPILER_PROGRAM_H
#define F1_COMPILER_PROGRAM_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/error.h"
#include "fhe/keyswitch.h"

namespace f1 {

enum class HeOpKind : uint8_t {
    kInput,      //!< encrypted program input
    kInputPlain, //!< unencrypted operand (e.g. model weights)
    kAdd,
    kSub,
    kAddPlain,
    kMulPlain,
    kMul,        //!< ciphertext x ciphertext (tensor + key switch)
    kRotate,     //!< slot rotation (automorphism + key switch)
    kConjugate,
    kModSwitch,  //!< BGV modulus switch / CKKS rescale
    kOutput,
};

struct HeOp
{
    HeOpKind kind;
    int a = -1, b = -1;   //!< operand handles
    int64_t rotateBy = 0;
    uint32_t level = 0;   //!< residues carried by the result
    int hintId = -1;      //!< key-switch hint identity (reuse tracking)
    KeySwitchVariant variant = KeySwitchVariant::kDigitLxL;
};

/** A homomorphic program: the unit the F1 compiler consumes. */
class Program
{
  public:
    /**
     * @param n           polynomial degree
     * @param start_level L at the program entry (Listing 2's L=16)
     */
    Program(uint32_t n, uint32_t start_level, std::string name = "")
        : n_(n), startLevel_(start_level), name_(std::move(name))
    {
    }

    uint32_t n() const { return n_; }
    uint32_t startLevel() const { return startLevel_; }
    const std::string &name() const { return name_; }
    const std::vector<HeOp> &ops() const { return ops_; }
    uint32_t auxCount() const { return auxCount_; }

    /** Aux primes available to GHS key-switching (0 = digit only). */
    void setAuxCount(uint32_t k) { auxCount_ = k; }

    int input() { return push({HeOpKind::kInput, -1, -1, 0,
                               startLevel_}); }
    int inputPlain() { return push({HeOpKind::kInputPlain, -1, -1, 0,
                                    startLevel_}); }
    int inputPlainAt(uint32_t level)
    {
        return push({HeOpKind::kInputPlain, -1, -1, 0, level});
    }

    int
    add(int a, int b)
    {
        matchLevels(a, b);
        return push({HeOpKind::kAdd, a, b, 0, ops_[a].level});
    }

    int
    sub(int a, int b)
    {
        matchLevels(a, b);
        return push({HeOpKind::kSub, a, b, 0, ops_[a].level});
    }

    int
    addPlain(int a, int pt)
    {
        return push({HeOpKind::kAddPlain, a, pt, 0, ops_[a].level});
    }

    int
    mulPlain(int a, int pt)
    {
        return push({HeOpKind::kMulPlain, a, pt, 0, ops_[a].level});
    }

    int
    mul(int a, int b)
    {
        matchLevels(a, b);
        HeOp op{HeOpKind::kMul, a, b, 0, ops_[a].level};
        op.hintId = hintFor(/*rotation=*/INT64_MIN, op.level);
        return push(op);
    }

    int
    rotate(int a, int64_t r)
    {
        HeOp op{HeOpKind::kRotate, a, -1, r, ops_[a].level};
        op.hintId = hintFor(r, op.level);
        return push(op);
    }

    int
    conjugate(int a)
    {
        HeOp op{HeOpKind::kConjugate, a, -1, 0, ops_[a].level};
        op.hintId = hintFor(INT64_MAX, op.level);
        return push(op);
    }

    int
    modSwitch(int a)
    {
        F1_REQUIRE(ops_[a].level >= 2, "cannot drop below one level");
        return push({HeOpKind::kModSwitch, a, -1, 0,
                     ops_[a].level - 1});
    }

    int output(int a)
    {
        return push({HeOpKind::kOutput, a, -1, 0, ops_[a].level});
    }

    /**
     * Appends an op verbatim, without the builder's level checks or
     * hint bookkeeping — the entry point for deserializers and
     * generated frontends. Unlike the builder methods, operands may
     * reference handles appended later (forward references); the
     * op-graph executor topologically sorts at graph build and rejects
     * cycles with a diagnostic naming the offending handles.
     */
    int pushRaw(HeOp op) { return push(op); }

    size_t hintCount() const { return hintIds_.size(); }

    /** Number of ops using each hint (reuse statistics, §4.2). */
    std::map<int, size_t> hintUseCounts() const;

    /**
     * Content-addressed fingerprint of the program's structure: ring
     * degree, entry level, aux primes, and every op's (kind, operands,
     * rotation, level, variant). Two Program objects with equal
     * fingerprints execute identically on identical inputs, whatever
     * their names or addresses — the serving coalescer's batching key.
     * The name is deliberately excluded; hintId is derived from the
     * ops and needs no separate folding.
     */
    uint64_t fingerprint() const;

  private:
    int
    push(HeOp op)
    {
        ops_.push_back(op);
        return static_cast<int>(ops_.size() - 1);
    }

    void
    matchLevels(int a, int b) const
    {
        F1_REQUIRE(ops_[a].level == ops_[b].level,
                   "operand level mismatch: " << ops_[a].level << " vs "
                   << ops_[b].level
                   << " (modSwitch operands in lockstep)");
    }

    /** Hint identity for (rotation key, level). */
    int
    hintFor(int64_t key, uint32_t level)
    {
        auto k = std::make_pair(key, level);
        auto it = hintIds_.find(k);
        if (it == hintIds_.end())
            it = hintIds_.emplace(k, (int)hintIds_.size()).first;
        return it->second;
    }

    uint32_t n_;
    uint32_t startLevel_;
    uint32_t auxCount_ = 0;
    std::string name_;
    std::vector<HeOp> ops_;
    std::map<std::pair<int64_t, uint32_t>, int> hintIds_;
};

} // namespace f1

#endif // F1_COMPILER_PROGRAM_H
