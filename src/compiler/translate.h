/**
 * @file
 * Phase 1 of the F1 compiler (paper §4.2): orders homomorphic
 * operations to maximize key-switch-hint reuse, chooses the
 * key-switching implementation per operation (algorithmic choice), and
 * translates the program into an instruction-level dataflow graph at
 * RVec granularity.
 */
#ifndef F1_COMPILER_TRANSLATE_H
#define F1_COMPILER_TRANSLATE_H

#include <vector>

#include "compiler/program.h"
#include "isa/isa.h"

namespace f1 {

struct TranslateOptions
{
    /**
     * Key-switch selection: kAuto applies the paper's heuristic
     * (GHS for high levels with little hint reuse; digit otherwise);
     * the others force one variant.
     */
    enum class Ks { kAuto, kDigit, kGhs } ks = Ks::kAuto;

    /** Level at/above which kAuto prefers the GHS variant (§2.4:
     *  "attractive for very large L (~20)"). */
    uint32_t ghsLevelThreshold = 18;

    /** Hint-reuse count below which kAuto prefers GHS even at lower
     *  levels (large hints are not worth loading once). */
    size_t ghsReuseThreshold = 2;
};

struct TranslationResult
{
    Dfg dfg;
    std::vector<int> opOrder; //!< phase-1 order of HE ops
    size_t hintRVecs = 0;     //!< total key-switch hint working set

    /**
     * HE-op handle that emitted each instruction (parallel to
     * dfg.instrs). Lets later phases attribute instruction-level
     * schedule decisions back to the source homomorphic op — the
     * mapping deriveScheduleHints uses to distill per-op runtime
     * hints from the static schedule.
     */
    std::vector<int> instrOp;
};

/** Runs phase 1 on `prog`. */
TranslationResult translateProgram(const Program &prog,
                                   const TranslateOptions &opt = {});

} // namespace f1

#endif // F1_COMPILER_TRANSLATE_H
