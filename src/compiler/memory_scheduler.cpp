#include "compiler/memory_scheduler.h"

#include <algorithm>
#include <queue>
#include <set>

namespace f1 {

namespace {

constexpr uint32_t kNoUse = UINT32_MAX;

/** Per-value bookkeeping for the residency simulation. */
struct ValState
{
    bool resident = false;
    bool everLoaded = false; //!< compulsory-traffic tracking
    uint32_t usePtr = 0;     //!< index into the uses list
};

class MemScheduler
{
  public:
    MemScheduler(const Dfg &dfg, const F1Config &cfg, MemPolicy policy)
        : dfg_(dfg), cfg_(cfg), policy_(policy),
          capacity_(cfg.scratchSlots(dfg.n)), vals_(dfg.values.size()),
          uses_(dfg.values.size())
    {
        F1_REQUIRE(capacity_ >= 8, "scratchpad too small for N");
        for (uint32_t i = 0; i < dfg_.instrs.size(); ++i) {
            const auto &ins = dfg_.instrs[i];
            for (ValueId v : {ins.src0, ins.src1})
                if (v != kNoValue)
                    uses_[v].push_back(i);
        }
    }

    MemScheduleResult
    run()
    {
        std::vector<uint32_t> order = executionOrder();
        posInOrder_.resize(dfg_.instrs.size());
        for (uint32_t i = 0; i < order.size(); ++i)
            posInOrder_[order[i]] = i;
        if (policy_ == MemPolicy::kCsr) {
            for (auto &u : uses_) {
                std::sort(u.begin(), u.end(),
                          [&](uint32_t a, uint32_t b) {
                              return posInOrder_[a] < posInOrder_[b];
                          });
            }
        }
        for (uint32_t i = 0; i < order.size(); ++i) {
            curPos_ = i;
            step(order[i]);
        }
        return std::move(result_);
    }

  private:
    /**
     * Instruction ordering. The default follows phase-1 priorities
     * (translation order, topologically valid). The CSR policy
     * (Goodman) greedily minimizes the live-value set.
     */
    std::vector<uint32_t>
    executionOrder()
    {
        const uint32_t n = (uint32_t)dfg_.instrs.size();
        std::vector<uint32_t> order;
        order.reserve(n);
        if (policy_ == MemPolicy::kPriorityBelady) {
            for (uint32_t i = 0; i < n; ++i)
                order.push_back(i);
            return order;
        }

        std::vector<int> deps(n, 0);
        std::vector<std::vector<uint32_t>> consumers(
            dfg_.values.size());
        for (uint32_t i = 0; i < n; ++i) {
            const auto &ins = dfg_.instrs[i];
            for (ValueId v : {ins.src0, ins.src1}) {
                if (v != kNoValue &&
                    dfg_.values[v].producer != UINT32_MAX) {
                    ++deps[i];
                    consumers[v].push_back(i);
                }
            }
        }
        std::vector<uint32_t> remaining_uses(dfg_.values.size());
        for (size_t v = 0; v < uses_.size(); ++v)
            remaining_uses[v] = (uint32_t)uses_[v].size();

        auto score = [&](uint32_t i) {
            const auto &ins = dfg_.instrs[i];
            int s = ins.dst != kNoValue ? -1 : 0;
            for (ValueId v : {ins.src0, ins.src1})
                if (v != kNoValue && remaining_uses[v] == 1)
                    ++s; // this use kills the value
            return s;
        };

        using Entry = std::pair<std::pair<int, int64_t>, uint32_t>;
        std::priority_queue<Entry> ready;
        auto push = [&](uint32_t i) {
            ready.push({{score(i), -(int64_t)dfg_.instrs[i].priority},
                        i});
        };
        std::vector<bool> scheduled(n, false);
        for (uint32_t i = 0; i < n; ++i)
            if (deps[i] == 0)
                push(i);
        while (!ready.empty()) {
            auto [key, i] = ready.top();
            ready.pop();
            if (scheduled[i])
                continue;
            if (key.first != score(i)) {
                push(i); // stale score; reinsert
                continue;
            }
            scheduled[i] = true;
            order.push_back(i);
            const auto &ins = dfg_.instrs[i];
            for (ValueId v : {ins.src0, ins.src1})
                if (v != kNoValue)
                    --remaining_uses[v];
            if (ins.dst != kNoValue)
                for (uint32_t user : consumers[ins.dst])
                    if (--deps[user] == 0)
                        push(user);
        }
        F1_CHECK(order.size() == n, "CSR left unscheduled instructions");
        return order;
    }

    /** Position (in execution order) of v's next use at/after `pos`. */
    uint32_t
    nextUse(ValueId v, uint32_t pos)
    {
        auto &st = vals_[v];
        const auto &u = uses_[v];
        while (st.usePtr < u.size() &&
               posInOrder_[u[st.usePtr]] < pos)
            ++st.usePtr;
        return st.usePtr < u.size() ? posInOrder_[u[st.usePtr]]
                                    : kNoUse;
    }

    void
    loadValue(ValueId v)
    {
        makeRoom(1);
        auto &st = vals_[v];
        const auto &info = dfg_.values[v];
        const uint64_t bytes = dfg_.rvecBytes();
        if (info.kind == ValueKind::kKsh) {
            (st.everLoaded ? result_.traffic.kshNonCompulsory
                           : result_.traffic.kshCompulsory) += bytes;
        } else if (info.producer == UINT32_MAX) {
            (st.everLoaded ? result_.traffic.inputNonCompulsory
                           : result_.traffic.inputCompulsory) += bytes;
        } else {
            result_.traffic.intermLoad += bytes;
        }
        st.everLoaded = true;
        st.resident = true;
        ++residentCount_;
        result_.sequence.push_back({MemOp::Type::kLoad, UINT32_MAX, v});
        evictable_.push({nextUse(v, curPos_), v});
    }

    void
    makeRoom(uint32_t needed)
    {
        while (residentCount_ + needed > capacity_) {
            F1_CHECK(!evictable_.empty(), "scratchpad deadlock");
            auto [nu, v] = evictable_.top();
            evictable_.pop();
            if (!vals_[v].resident || pinned_.count(v))
                continue; // stale or in use right now
            uint32_t cur = nextUse(v, curPos_);
            if (cur != nu) {
                evictable_.push({cur, v}); // stale key; refresh
                continue;
            }
            vals_[v].resident = false;
            --residentCount_;
            if (cur == kNoUse)
                continue; // dead: drop silently
            if (dfg_.values[v].producer != UINT32_MAX) {
                // Live intermediate: dirty eviction -> spill (§4.3).
                result_.traffic.intermStore += dfg_.rvecBytes();
                result_.sequence.push_back(
                    {MemOp::Type::kStore, UINT32_MAX, v});
            }
            // Inputs/hints are clean: re-loadable from HBM.
        }
    }

    void
    step(uint32_t pc)
    {
        const auto &ins = dfg_.instrs[pc];

        pinned_.clear();
        for (ValueId v : {ins.src0, ins.src1}) {
            if (v == kNoValue)
                continue;
            pinned_.insert(v);
            if (!vals_[v].resident)
                loadValue(v);
        }
        if (ins.dst != kNoValue) {
            makeRoom(1);
            vals_[ins.dst].resident = true;
            ++residentCount_;
        }
        result_.sequence.push_back(
            {MemOp::Type::kCompute, pc, kNoValue});
        if (ins.op == Opcode::kStore)
            result_.traffic.intermStore += dfg_.rvecBytes();

        // Retire uses; free dead values immediately (§4.3: "we can
        // often replace a dead value").
        for (ValueId v : {ins.src0, ins.src1}) {
            if (v == kNoValue)
                continue;
            auto &st = vals_[v];
            const auto &u = uses_[v];
            while (st.usePtr < u.size() &&
                   posInOrder_[u[st.usePtr]] <= curPos_)
                ++st.usePtr;
            if (st.usePtr >= u.size()) {
                if (st.resident &&
                    dfg_.values[v].kind != ValueKind::kOutput) {
                    st.resident = false;
                    --residentCount_;
                }
            } else if (st.resident) {
                evictable_.push({posInOrder_[u[st.usePtr]], v});
            }
        }
        if (ins.dst != kNoValue)
            evictable_.push({nextUse(ins.dst, curPos_ + 1), ins.dst});

        result_.peakResidentRVecs =
            std::max(result_.peakResidentRVecs, (size_t)residentCount_);
    }

    const Dfg &dfg_;
    F1Config cfg_;
    MemPolicy policy_;
    uint32_t capacity_;
    uint32_t residentCount_ = 0;
    uint32_t curPos_ = 0;
    std::vector<ValState> vals_;
    std::vector<std::vector<uint32_t>> uses_; //!< per value, instr ids
    std::vector<uint32_t> posInOrder_;
    // Belady evicts the furthest next use: max-heap; kNoUse sorts
    // first naturally.
    std::priority_queue<std::pair<uint32_t, ValueId>> evictable_;
    std::set<ValueId> pinned_;
    MemScheduleResult result_;
};

} // namespace

MemScheduleResult
scheduleMemory(const Dfg &dfg, const F1Config &cfg, MemPolicy policy)
{
    return MemScheduler(dfg, cfg, policy).run();
}

} // namespace f1
