/**
 * @file
 * Phase 2 of the F1 compiler (paper §4.3): the off-chip data-movement
 * scheduler. Consumes the instruction DFG and produces an operation
 * sequence with explicit loads and spills, scheduling against a
 * simplified machine (scratchpad directly attached to the FUs).
 *
 * Instructions issue in priority order among ready ones; loads are
 * issued greedily ahead of use (decoupling); evictions follow the
 * furthest-next-use rule (Belady approximation, §4.3). The alternative
 * CSR policy (Goodman's register-pressure-aware ordering) backs the
 * Table 5 sensitivity study.
 */
#ifndef F1_COMPILER_MEMORY_SCHEDULER_H
#define F1_COMPILER_MEMORY_SCHEDULER_H

#include <cstdint>
#include <vector>

#include "arch/config.h"
#include "isa/isa.h"

namespace f1 {

struct MemOp
{
    enum class Type : uint8_t { kCompute, kLoad, kStore };
    Type type;
    InstrId instr = UINT32_MAX; //!< for kCompute
    ValueId value = kNoValue;   //!< for kLoad / kStore
};

struct TrafficBytes
{
    uint64_t kshCompulsory = 0;
    uint64_t kshNonCompulsory = 0;
    uint64_t inputCompulsory = 0;
    uint64_t inputNonCompulsory = 0;
    uint64_t intermLoad = 0;  //!< fills of spilled intermediates
    uint64_t intermStore = 0; //!< spills + output stores

    uint64_t
    total() const
    {
        return kshCompulsory + kshNonCompulsory + inputCompulsory +
               inputNonCompulsory + intermLoad + intermStore;
    }
    uint64_t
    compulsory() const
    {
        return kshCompulsory + inputCompulsory;
    }
};

struct MemScheduleResult
{
    std::vector<MemOp> sequence;
    TrafficBytes traffic;
    size_t peakResidentRVecs = 0;
};

enum class MemPolicy {
    kPriorityBelady, //!< the F1 scheduler (§4.3)
    kCsr,            //!< register-pressure-aware ordering (Table 5)
};

MemScheduleResult scheduleMemory(const Dfg &dfg, const F1Config &cfg,
                                 MemPolicy policy =
                                     MemPolicy::kPriorityBelady);

} // namespace f1

#endif // F1_COMPILER_MEMORY_SCHEDULER_H
