#include "compiler/cycle_scheduler.h"

#include <algorithm>
#include <cmath>
#include <list>
#include <unordered_map>
#include <unordered_set>

namespace f1 {

namespace {

/** Simple per-cluster LRU of register-file-resident values. */
class RfCache
{
  public:
    void
    init(uint32_t slots)
    {
        slots_ = std::max(2u, slots);
    }

    bool
    contains(ValueId v) const
    {
        return map_.count(v) != 0;
    }

    void
    touch(ValueId v)
    {
        auto it = map_.find(v);
        if (it != map_.end()) {
            lru_.erase(it->second);
            lru_.push_front(v);
            it->second = lru_.begin();
            return;
        }
        lru_.push_front(v);
        map_[v] = lru_.begin();
        if (map_.size() > slots_) {
            map_.erase(lru_.back());
            lru_.pop_back();
        }
    }

  private:
    uint32_t slots_ = 2;
    std::list<ValueId> lru_;
    std::unordered_map<ValueId, std::list<ValueId>::iterator> map_;
};

class CycleScheduler
{
  public:
    CycleScheduler(const Dfg &dfg, const MemScheduleResult &mem,
                   const F1Config &cfg, bool record)
        : dfg_(dfg), mem_(mem), cfg_(cfg), record_(record)
    {
        result_.traffic = mem.traffic;
        const uint32_t n = dfg.n;
        hbmCyclesPerRVec_ = std::max<uint64_t>(
            1, (uint64_t)std::llround(dfg.rvecBytes() /
                                      cfg.hbmBytesPerCycle()));
        portCycles_ = cfg.portCycles(n);
        bankRead_.assign(cfg.scratchBanks, 0);
        bankWrite_.assign(cfg.scratchBanks, 0);
        clusterIn_.assign(cfg.clusters, 0);
        clusterOut_.assign(cfg.clusters, 0);
        for (FuType t : {FuType::kNtt, FuType::kAut, FuType::kMul,
                         FuType::kAdd}) {
            fuFree_[(size_t)t].assign(
                (size_t)cfg.clusters * cfg.fuCount(t), 0);
        }
        rf_.resize(cfg.clusters);
        for (auto &rf : rf_)
            rf.init(cfg.regFileSlots(n));
        valueReady_.assign(dfg.values.size(), 0);
        valueBank_.assign(dfg.values.size(), UINT16_MAX);
        result_.instrIssueCycle.assign(dfg.instrs.size(), 0);
        // Decoupling window: about half the scratchpad of prefetch.
        prefetchWindow_ =
            (uint64_t)(cfg.scratchBytes() / 2 / cfg.hbmBytesPerCycle());
    }

    ScheduleResult
    run()
    {
        for (const MemOp &op : mem_.sequence) {
            switch (op.type) {
              case MemOp::Type::kLoad:
                doLoad(op.value);
                break;
              case MemOp::Type::kStore:
                doStore(op.value);
                break;
              case MemOp::Type::kCompute:
                doCompute(op.instr);
                break;
            }
        }
        result_.cycles = makespan_;
        return std::move(result_);
    }

  private:
    uint16_t
    homeBank(ValueId v)
    {
        if (valueBank_[v] == UINT16_MAX)
            valueBank_[v] = v % cfg_.scratchBanks;
        return valueBank_[v];
    }

    void
    recordEvent(ScheduledEvent ev)
    {
        if (record_)
            result_.events.push_back(ev);
    }

    void
    doLoad(ValueId v)
    {
        // Decoupled prefetch: issue as early as bandwidth allows, but
        // not more than a window ahead of the compute frontier.
        uint64_t earliest =
            frontier_ > prefetchWindow_ ? frontier_ - prefetchWindow_
                                        : 0;
        uint64_t start = std::max(hbmFree_, earliest);
        hbmFree_ = start + hbmCyclesPerRVec_;
        result_.hbmBusyCycles += hbmCyclesPerRVec_;
        result_.timeline.addHbm(start, dfg_.rvecBytes());
        recordEvent({ScheduledEvent::Res::kHbm, 0, 0, 0, start,
                     hbmFree_, UINT32_MAX, v});

        uint64_t arrive = hbmFree_ + cfg_.hbmLatency;
        uint16_t bank = homeBank(v);
        uint64_t wp = std::max(bankWrite_[bank], arrive);
        bankWrite_[bank] = wp + portCycles_;
        recordEvent({ScheduledEvent::Res::kBankWrite, bank, 0, 0, wp,
                     wp + portCycles_, UINT32_MAX, v});
        valueReady_[v] = wp + portCycles_;
        result_.scratchBytes += dfg_.rvecBytes();
        bump(valueReady_[v]);
    }

    /** @return the store's HBM start cycle. */
    uint64_t
    doStore(ValueId v)
    {
        uint16_t bank = homeBank(v);
        uint64_t rp = std::max(bankRead_[bank], valueReady_[v]);
        bankRead_[bank] = rp + portCycles_;
        uint64_t start = std::max(hbmFree_, rp + portCycles_);
        hbmFree_ = start + hbmCyclesPerRVec_;
        result_.hbmBusyCycles += hbmCyclesPerRVec_;
        result_.timeline.addHbm(start, dfg_.rvecBytes());
        result_.scratchBytes += dfg_.rvecBytes();
        recordEvent({ScheduledEvent::Res::kHbm, 0, 0, 0, start,
                     hbmFree_, UINT32_MAX, v});
        bump(hbmFree_);
        return start;
    }

    /** Fetches an operand into cluster c; returns its arrival cycle. */
    uint64_t
    fetchOperand(uint16_t c, ValueId v)
    {
        if (rf_[c].contains(v)) {
            rf_[c].touch(v);
            result_.rfBytes += dfg_.rvecBytes();
            return valueReady_[v];
        }
        uint16_t bank = homeBank(v);
        uint64_t t = std::max({bankRead_[bank], clusterIn_[c],
                               valueReady_[v]});
        bankRead_[bank] = t + portCycles_;
        clusterIn_[c] = t + portCycles_;
        recordEvent({ScheduledEvent::Res::kBankRead, bank, 0, 0, t,
                     t + portCycles_, UINT32_MAX, v});
        recordEvent({ScheduledEvent::Res::kClusterIn, c, 0, 0, t,
                     t + portCycles_, UINT32_MAX, v});
        result_.nocBytes += dfg_.rvecBytes();
        result_.scratchBytes += dfg_.rvecBytes();
        result_.rfBytes += dfg_.rvecBytes();
        rf_[c].touch(v);
        return t + portCycles_;
    }

    void
    doCompute(InstrId id)
    {
        const Instruction &ins = dfg_.instrs[id];
        if (ins.op == Opcode::kStore) {
            // Output stores flow through the memory path.
            result_.instrIssueCycle[id] = doStore(ins.src0);
            return;
        }
        const FuType fu = fuFor(ins.op);
        const uint32_t units = cfg_.fuCount(fu);

        // Cluster choice: prefer operand locality, then earliest FU.
        uint16_t cluster = 0;
        uint64_t best = UINT64_MAX;
        for (uint16_t c = 0; c < cfg_.clusters; ++c) {
            uint64_t fu_free = UINT64_MAX;
            for (uint32_t u = 0; u < units; ++u)
                fu_free = std::min(fu_free,
                                   fuFree_[(size_t)fu][c * units + u]);
            uint64_t score = fu_free;
            for (ValueId v : {ins.src0, ins.src1})
                if (v != kNoValue && rf_[c].contains(v))
                    score = score > portCycles_ ? score - portCycles_
                                                : 0;
            if (score < best) {
                best = score;
                cluster = c;
            }
        }

        uint64_t operands = 0;
        for (ValueId v : {ins.src0, ins.src1})
            if (v != kNoValue)
                operands = std::max(operands,
                                    fetchOperand(cluster, v));

        uint32_t unit = 0;
        uint64_t fu_free = UINT64_MAX;
        for (uint32_t u = 0; u < units; ++u) {
            uint64_t f = fuFree_[(size_t)fu][cluster * units + u];
            if (f < fu_free) {
                fu_free = f;
                unit = u;
            }
        }
        const uint32_t occ = cfg_.occupancy(fu, dfg_.n);
        uint64_t issue = std::max(operands, fu_free);
        result_.instrIssueCycle[id] = issue;
        fuFree_[(size_t)fu][cluster * units + unit] = issue + occ;
        result_.fuBusyCycles[(size_t)fu] += occ;
        result_.timeline.addFu(fu, issue, occ);
        recordEvent({ScheduledEvent::Res::kFu, cluster, (uint16_t)fu,
                     (uint16_t)unit, issue, issue + occ, id, kNoValue});

        uint64_t done = issue + cfg_.latency(ins.op, dfg_.n);
        frontier_ = std::max(frontier_, issue);

        if (ins.dst != kNoValue) {
            // Result into the RF, then written back to its home bank.
            rf_[cluster].touch(ins.dst);
            result_.rfBytes += dfg_.rvecBytes();
            uint16_t bank = homeBank(ins.dst);
            uint64_t t = std::max({clusterOut_[cluster],
                                   bankWrite_[bank], done});
            clusterOut_[cluster] = t + portCycles_;
            bankWrite_[bank] = t + portCycles_;
            recordEvent({ScheduledEvent::Res::kClusterOut, cluster, 0,
                         0, t, t + portCycles_, id, ins.dst});
            recordEvent({ScheduledEvent::Res::kBankWrite, bank, 0, 0,
                         t, t + portCycles_, id, ins.dst});
            result_.nocBytes += dfg_.rvecBytes();
            result_.scratchBytes += dfg_.rvecBytes();
            valueReady_[ins.dst] = t + portCycles_;
            bump(valueReady_[ins.dst]);
        } else {
            bump(done);
        }
    }

    void
    bump(uint64_t t)
    {
        makespan_ = std::max(makespan_, t);
    }

    const Dfg &dfg_;
    const MemScheduleResult &mem_;
    F1Config cfg_;
    bool record_;

    uint64_t hbmCyclesPerRVec_ = 1;
    uint32_t portCycles_ = 1;
    uint64_t prefetchWindow_ = 0;
    uint64_t hbmFree_ = 0;
    uint64_t frontier_ = 0;  //!< latest compute issue so far
    uint64_t makespan_ = 0;
    std::vector<uint64_t> bankRead_, bankWrite_;
    std::vector<uint64_t> clusterIn_, clusterOut_;
    std::array<std::vector<uint64_t>, 4> fuFree_;
    std::vector<RfCache> rf_;
    std::vector<uint64_t> valueReady_;
    std::vector<uint16_t> valueBank_;
    ScheduleResult result_;
};

} // namespace

ScheduleResult::Power
ScheduleResult::averagePower(const F1Config &cfg,
                             const EnergyRates &rates) const
{
    const double seconds = cycles / (cfg.freqGHz * 1e9);
    if (seconds <= 0)
        return {};
    double fus_j = fuBusyCycles[(size_t)FuType::kNtt] * rates.nttCycle +
                   fuBusyCycles[(size_t)FuType::kAut] * rates.autCycle +
                   fuBusyCycles[(size_t)FuType::kMul] * rates.mulCycle +
                   fuBusyCycles[(size_t)FuType::kAdd] * rates.addCycle;
    fus_j *= 1e-9; // nJ -> J
    double rf_j = rfBytes * rates.regFileByte * 1e-9;
    double noc_j = nocBytes * rates.nocByte * 1e-9;
    double scratch_j = scratchBytes * rates.scratchByte * 1e-9;
    double hbm_j = traffic.total() * rates.hbmByte * 1e-9;
    Power p;
    p.fus = fus_j / seconds;
    p.regFiles = rf_j / seconds;
    p.noc = noc_j / seconds;
    p.scratch = scratch_j / seconds;
    p.hbm = hbm_j / seconds;
    p.total = p.fus + p.regFiles + p.noc + p.scratch + p.hbm;
    return p;
}

ScheduleResult
scheduleCycles(const Dfg &dfg, const MemScheduleResult &mem,
               const F1Config &cfg, bool record_events)
{
    return CycleScheduler(dfg, mem, cfg, record_events).run();
}

} // namespace f1
