#include "compiler/translate.h"

#include <algorithm>
#include <map>

namespace f1 {

namespace {

/** RVec values backing one ciphertext (2 polynomials x level). */
struct CtVals
{
    std::vector<ValueId> c0, c1; //!< indexed by residue
};

/** RVec values backing one plaintext (1 polynomial x level). */
using PtVals = std::vector<ValueId>;

/**
 * Key-switch hint values, digit variant: per digit i < level, the a/b
 * polynomials over tracks {0..level-1, special}. GHS variant: a/b over
 * level + aux residues.
 */
struct HintVals
{
    // digit: a[i][track]; ghs: a[0][residue].
    std::vector<std::vector<ValueId>> a, b;
};

class Translator
{
  public:
    Translator(const Program &prog, const TranslateOptions &opt)
        : prog_(prog), opt_(opt)
    {
        result_.dfg.n = prog.n();
    }

    TranslationResult
    run()
    {
        orderOps();
        hintUses_ = prog_.hintUseCounts();
        for (int op : result_.opOrder) {
            emitOp(op);
            // Everything emitted since the last op belongs to `op`.
            result_.instrOp.resize(result_.dfg.instrs.size(), op);
        }
        result_.dfg.validate();
        return std::move(result_);
    }

  private:
    //
    // Phase 1a: order HE ops by clustering same-hint operations
    // (paper §4.2: perform all four multiplies, then all four
    // Rotate(X,1), ...).
    //
    void
    orderOps()
    {
        const auto &ops = prog_.ops();
        std::vector<int> remaining_deps(ops.size(), 0);
        std::vector<std::vector<int>> users(ops.size());
        for (size_t i = 0; i < ops.size(); ++i) {
            for (int src : {ops[i].a, ops[i].b}) {
                if (src >= 0) {
                    ++remaining_deps[i];
                    users[src].push_back((int)i);
                }
            }
        }
        // Ready list grouped by hint.
        std::map<int, std::vector<int>> ready; // hintId -> ops (-1: none)
        auto push_ready = [&](int i) {
            ready[ops[i].hintId].push_back(i);
        };
        for (size_t i = 0; i < ops.size(); ++i)
            if (remaining_deps[i] == 0)
                push_ready((int)i);

        int current_hint = -2;
        while (!ready.empty()) {
            // Prefer the hint we are already using; otherwise the hint
            // with the most pending ready ops (amortize its load).
            std::vector<int> *bucket = nullptr;
            int bucket_hint = -2;
            auto cur = ready.find(current_hint);
            if (cur != ready.end()) {
                bucket = &cur->second;
                bucket_hint = cur->first;
            } else {
                size_t best = 0;
                for (auto &[hint, vec] : ready) {
                    if (vec.size() > best ||
                        (hint == -1 && vec.size() >= best)) {
                        best = vec.size();
                        bucket = &vec;
                        bucket_hint = hint;
                    }
                }
            }
            int op = bucket->back();
            bucket->pop_back();
            if (bucket->empty())
                ready.erase(bucket_hint);
            current_hint = ops[op].hintId;

            result_.opOrder.push_back(op);
            for (int user : users[op]) {
                if (--remaining_deps[user] == 0)
                    push_ready(user);
            }
        }
        F1_CHECK(result_.opOrder.size() == ops.size(),
                 "cycle in HE-op graph");
    }

    //
    // Phase 1b: translation.
    //

    Dfg &dfg() { return result_.dfg; }

    KeySwitchVariant
    chooseVariant(const HeOp &op) const
    {
        if (opt_.ks == TranslateOptions::Ks::kDigit)
            return KeySwitchVariant::kDigitLxL;
        if (opt_.ks == TranslateOptions::Ks::kGhs)
            return KeySwitchVariant::kGhsExtension;
        if (prog_.auxCount() < op.level)
            return KeySwitchVariant::kDigitLxL; // GHS unavailable
        size_t reuse = hintUses_.count(op.hintId)
                           ? hintUses_.at(op.hintId)
                           : 1;
        if (op.level >= opt_.ghsLevelThreshold ||
            reuse < opt_.ghsReuseThreshold)
            return KeySwitchVariant::kGhsExtension;
        return KeySwitchVariant::kDigitLxL;
    }

    CtVals
    freshCt(uint32_t level, ValueKind kind)
    {
        CtVals v;
        for (uint32_t r = 0; r < level; ++r) {
            v.c0.push_back(dfg().newValue(kind));
            v.c1.push_back(dfg().newValue(kind));
        }
        return v;
    }

    const HintVals &
    hint(int hint_id, uint32_t level, KeySwitchVariant variant)
    {
        auto it = hints_.find(hint_id);
        if (it != hints_.end())
            return it->second;
        HintVals h;
        if (variant == KeySwitchVariant::kDigitLxL) {
            // level digits x (level + 1 special) tracks, a and b.
            h.a.resize(level);
            h.b.resize(level);
            for (uint32_t i = 0; i < level; ++i) {
                for (uint32_t t = 0; t <= level; ++t) {
                    h.a[i].push_back(
                        dfg().newValue(ValueKind::kKsh, hint_id));
                    h.b[i].push_back(
                        dfg().newValue(ValueKind::kKsh, hint_id));
                }
            }
            result_.hintRVecs += 2 * level * (level + 1);
        } else {
            h.a.resize(1);
            h.b.resize(1);
            const uint32_t span = level + prog_.auxCount();
            for (uint32_t r = 0; r < span; ++r) {
                h.a[0].push_back(
                    dfg().newValue(ValueKind::kKsh, hint_id));
                h.b[0].push_back(
                    dfg().newValue(ValueKind::kKsh, hint_id));
            }
            result_.hintRVecs += 2 * span;
        }
        return hints_.emplace(hint_id, std::move(h)).first->second;
    }

    ValueId
    binop(Opcode op, ValueId a, ValueId b)
    {
        ValueId dst = dfg().newValue(ValueKind::kIntermediate);
        dfg().emit(op, dst, a, b);
        return dst;
    }

    ValueId
    unop(Opcode op, ValueId a)
    {
        ValueId dst = dfg().newValue(ValueKind::kIntermediate);
        dfg().emit(op, dst, a);
        return dst;
    }

    /**
     * Key-switch of a single polynomial x (paper Listing 1 with the
     * hybrid special-prime division). Returns (u0, u1).
     */
    std::pair<PtVals, PtVals>
    keySwitch(const PtVals &x, const HintVals &h, uint32_t level,
              KeySwitchVariant variant)
    {
        if (variant == KeySwitchVariant::kDigitLxL)
            return keySwitchDigit(x, h, level);
        return keySwitchGhs(x, h, level);
    }

    std::pair<PtVals, PtVals>
    keySwitchDigit(const PtVals &x, const HintVals &h, uint32_t level)
    {
        const uint32_t tracks = level + 1; // cipher residues + special
        std::vector<ValueId> acc0(tracks, kNoValue);
        std::vector<ValueId> acc1(tracks, kNoValue);

        for (uint32_t i = 0; i < level; ++i) {
            // Digit i to coefficient form (Listing 1 line 3).
            ValueId yi = unop(Opcode::kIntt, x[i]);
            for (uint32_t t = 0; t < tracks; ++t) {
                // Lift into track t (line 8); track i reuses x[i].
                ValueId xt = (t == i) ? x[i] : unop(Opcode::kNtt, yi);
                ValueId p1 = binop(Opcode::kMul, xt, h.a[i][t]);
                ValueId p0 = binop(Opcode::kMul, xt, h.b[i][t]);
                acc1[t] = acc1[t] == kNoValue
                              ? p1
                              : binop(Opcode::kAdd, acc1[t], p1);
                acc0[t] = acc0[t] == kNoValue
                              ? p0
                              : binop(Opcode::kAdd, acc0[t], p0);
            }
        }

        // Hybrid division by the special prime: the special track goes
        // to coefficient form, is re-lifted into each cipher residue,
        // subtracted, and scaled by p_sp^-1 (a scalar multiply).
        auto scale_down = [&](std::vector<ValueId> &acc) {
            PtVals out(level);
            ValueId d = unop(Opcode::kIntt, acc[level]);
            for (uint32_t j = 0; j < level; ++j) {
                ValueId dj = unop(Opcode::kNtt, d);
                ValueId diff = binop(Opcode::kSub, acc[j], dj);
                out[j] = unop(Opcode::kMul, diff); // scalar p_sp^-1
            }
            return out;
        };
        return {scale_down(acc0), scale_down(acc1)};
    }

    std::pair<PtVals, PtVals>
    keySwitchGhs(const PtVals &x, const HintVals &h, uint32_t level)
    {
        const uint32_t aux = prog_.auxCount();
        // Basis extension up: INTT each residue, then per aux prime a
        // multiply-accumulate over the digits plus an NTT.
        std::vector<ValueId> coeff(level);
        for (uint32_t i = 0; i < level; ++i)
            coeff[i] = unop(Opcode::kIntt, x[i]);
        std::vector<ValueId> ext(aux);
        for (uint32_t k = 0; k < aux; ++k) {
            ValueId acc = unop(Opcode::kMul, coeff[0]);
            for (uint32_t i = 1; i < level; ++i) {
                ValueId term = unop(Opcode::kMul, coeff[i]);
                acc = binop(Opcode::kAdd, acc, term);
            }
            ext[k] = unop(Opcode::kNtt, acc);
        }

        // Multiply against the hint over level + aux residues.
        const uint32_t span = level + aux;
        std::vector<ValueId> u0(span), u1(span);
        for (uint32_t r = 0; r < span; ++r) {
            ValueId xr = r < level ? x[r] : ext[r - level];
            u1[r] = binop(Opcode::kMul, xr, h.a[0][r]);
            u0[r] = binop(Opcode::kMul, xr, h.b[0][r]);
        }

        // Scale down by P: aux residues to coefficient form, extend
        // back into each cipher residue, subtract, scale.
        auto scale_down = [&](std::vector<ValueId> &u) {
            PtVals out(level);
            std::vector<ValueId> dc(aux);
            for (uint32_t k = 0; k < aux; ++k)
                dc[k] = unop(Opcode::kIntt, u[level + k]);
            for (uint32_t j = 0; j < level; ++j) {
                ValueId acc = unop(Opcode::kMul, dc[0]);
                for (uint32_t k = 1; k < aux; ++k) {
                    ValueId term = unop(Opcode::kMul, dc[k]);
                    acc = binop(Opcode::kAdd, acc, term);
                }
                ValueId dj = unop(Opcode::kNtt, acc);
                ValueId diff = binop(Opcode::kSub, u[j], dj);
                out[j] = unop(Opcode::kMul, diff); // scalar P^-1
            }
            return out;
        };
        return {scale_down(u0), scale_down(u1)};
    }

    void
    emitOp(int idx)
    {
        const HeOp &op = prog_.ops()[idx];
        const uint32_t level = op.level;
        switch (op.kind) {
          case HeOpKind::kInput: {
            cts_[idx] = freshCt(level, ValueKind::kInput);
            return;
          }
          case HeOpKind::kInputPlain: {
            PtVals pt;
            for (uint32_t r = 0; r < level; ++r)
                pt.push_back(dfg().newValue(ValueKind::kInput));
            pts_[idx] = std::move(pt);
            return;
          }
          case HeOpKind::kAdd:
          case HeOpKind::kSub: {
            Opcode o = op.kind == HeOpKind::kAdd ? Opcode::kAdd
                                                 : Opcode::kSub;
            const CtVals &a = cts_.at(op.a), &b = cts_.at(op.b);
            CtVals out;
            for (uint32_t r = 0; r < level; ++r) {
                out.c0.push_back(binop(o, a.c0[r], b.c0[r]));
                out.c1.push_back(binop(o, a.c1[r], b.c1[r]));
            }
            cts_[idx] = std::move(out);
            return;
          }
          case HeOpKind::kAddPlain: {
            const CtVals &a = cts_.at(op.a);
            const PtVals &p = pts_.at(op.b);
            CtVals out;
            for (uint32_t r = 0; r < level; ++r) {
                out.c0.push_back(binop(Opcode::kAdd, a.c0[r], p[r]));
                out.c1.push_back(a.c1[r]); // c1 passes through
            }
            cts_[idx] = std::move(out);
            return;
          }
          case HeOpKind::kMulPlain: {
            const CtVals &a = cts_.at(op.a);
            const PtVals &p = pts_.at(op.b);
            CtVals out;
            for (uint32_t r = 0; r < level; ++r) {
                out.c0.push_back(binop(Opcode::kMul, a.c0[r], p[r]));
                out.c1.push_back(binop(Opcode::kMul, a.c1[r], p[r]));
            }
            cts_[idx] = std::move(out);
            return;
          }
          case HeOpKind::kMul: {
            const CtVals &a = cts_.at(op.a), &b = cts_.at(op.b);
            KeySwitchVariant variant = chooseVariant(op);
            const HintVals &h = hint(op.hintId, level, variant);
            // Tensor (§2.2.1).
            PtVals l0(level), l1(level), l2(level);
            for (uint32_t r = 0; r < level; ++r) {
                l0[r] = binop(Opcode::kMul, a.c0[r], b.c0[r]);
                ValueId t1 = binop(Opcode::kMul, a.c0[r], b.c1[r]);
                ValueId t2 = binop(Opcode::kMul, a.c1[r], b.c0[r]);
                l1[r] = binop(Opcode::kAdd, t1, t2);
                l2[r] = binop(Opcode::kMul, a.c1[r], b.c1[r]);
            }
            auto [u0, u1] = keySwitch(l2, h, level, variant);
            CtVals out;
            for (uint32_t r = 0; r < level; ++r) {
                out.c0.push_back(binop(Opcode::kAdd, l0[r], u0[r]));
                out.c1.push_back(binop(Opcode::kAdd, l1[r], u1[r]));
            }
            cts_[idx] = std::move(out);
            return;
          }
          case HeOpKind::kRotate:
          case HeOpKind::kConjugate: {
            const CtVals &a = cts_.at(op.a);
            KeySwitchVariant variant = chooseVariant(op);
            const HintVals &h = hint(op.hintId, level, variant);
            PtVals sc0(level), sc1(level);
            for (uint32_t r = 0; r < level; ++r) {
                sc0[r] = unop(Opcode::kAut, a.c0[r]);
                sc1[r] = unop(Opcode::kAut, a.c1[r]);
            }
            auto [u0, u1] = keySwitch(sc1, h, level, variant);
            CtVals out;
            for (uint32_t r = 0; r < level; ++r) {
                out.c0.push_back(binop(Opcode::kAdd, sc0[r], u0[r]));
                out.c1.push_back(u1[r]);
            }
            cts_[idx] = std::move(out);
            return;
          }
          case HeOpKind::kModSwitch: {
            const CtVals &a = cts_.at(op.a);
            CtVals out;
            auto drop = [&](const std::vector<ValueId> &poly) {
                // INTT the dropped residue, lift δ into each remaining
                // residue, subtract, scale by q_drop^-1.
                ValueId y = unop(Opcode::kIntt, poly[level]);
                std::vector<ValueId> res;
                for (uint32_t j = 0; j < level; ++j) {
                    ValueId dj = unop(Opcode::kNtt, y);
                    ValueId diff = binop(Opcode::kSub, poly[j], dj);
                    res.push_back(unop(Opcode::kMul, diff));
                }
                return res;
            };
            out.c0 = drop(a.c0);
            out.c1 = drop(a.c1);
            cts_[idx] = std::move(out);
            return;
          }
          case HeOpKind::kOutput: {
            const CtVals &a = cts_.at(op.a);
            for (uint32_t r = 0; r < level; ++r) {
                dfg().values[a.c0[r]].kind = ValueKind::kOutput;
                dfg().values[a.c1[r]].kind = ValueKind::kOutput;
                // Outputs are stored back to memory.
                dfg().emit(Opcode::kStore, kNoValue, a.c0[r]);
                dfg().emit(Opcode::kStore, kNoValue, a.c1[r]);
            }
            return;
          }
        }
        F1_PANIC("unhandled HE op kind");
    }

    const Program &prog_;
    TranslateOptions opt_;
    TranslationResult result_;
    std::map<int, CtVals> cts_;
    std::map<int, PtVals> pts_;
    std::map<int, HintVals> hints_;
    std::map<int, size_t> hintUses_;
};

} // namespace

TranslationResult
translateProgram(const Program &prog, const TranslateOptions &opt)
{
    return Translator(prog, opt).run();
}

} // namespace f1
