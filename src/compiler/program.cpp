#include "compiler/program.h"

namespace f1 {

std::map<int, size_t>
Program::hintUseCounts() const
{
    std::map<int, size_t> counts;
    for (const auto &op : ops_)
        if (op.hintId >= 0)
            ++counts[op.hintId];
    return counts;
}

} // namespace f1
