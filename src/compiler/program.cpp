#include "compiler/program.h"

#include "common/hash.h"

namespace f1 {

uint64_t
Program::fingerprint() const
{
    uint64_t fp = hashMix(0xf19e1d);
    fp = hashCombine(fp, n_);
    fp = hashCombine(fp, startLevel_);
    fp = hashCombine(fp, auxCount_);
    fp = hashCombine(fp, ops_.size());
    for (const HeOp &op : ops_) {
        fp = hashCombine(fp, uint64_t(op.kind));
        fp = hashCombine(fp, uint64_t(int64_t(op.a)));
        fp = hashCombine(fp, uint64_t(int64_t(op.b)));
        fp = hashCombine(fp, uint64_t(op.rotateBy));
        fp = hashCombine(fp, op.level);
        fp = hashCombine(fp, uint64_t(op.variant));
    }
    return fp;
}

std::map<int, size_t>
Program::hintUseCounts() const
{
    std::map<int, size_t> counts;
    for (const auto &op : ops_)
        if (op.hintId >= 0)
            ++counts[op.hintId];
    return counts;
}

} // namespace f1
