/**
 * @file
 * Phase 3 of the F1 compiler (paper §4.4): the cycle-level scheduler.
 * Consumes the phase-2 operation sequence and assigns exact cycles to
 * every instruction and transfer under all structural constraints:
 * per-cluster FU occupancy, register-file capacity, scratchpad bank
 * ports, crossbar cluster ports, and HBM bandwidth. Loads are hoisted
 * to their earliest issue cycle within a decoupling window (§3's
 * decoupled data orchestration).
 *
 * Because the schedule is fully static, this scheduler doubles as the
 * performance model (§4.4: "our scheduler also doubles as a
 * performance measurement tool"); the sim/ checker independently
 * replays the produced events to validate the static schedule.
 */
#ifndef F1_COMPILER_CYCLE_SCHEDULER_H
#define F1_COMPILER_CYCLE_SCHEDULER_H

#include <array>
#include <cstdint>
#include <vector>

#include "arch/area_power.h"
#include "compiler/memory_scheduler.h"

namespace f1 {

/** One scheduled occupancy interval on a hardware resource. */
struct ScheduledEvent
{
    enum class Res : uint8_t {
        kFu,          //!< (cluster, fuType, unit)
        kHbm,
        kBankRead,    //!< (bank)
        kBankWrite,
        kClusterIn,   //!< (cluster)
        kClusterOut,
    };
    Res res;
    uint16_t a = 0, b = 0, c = 0; //!< resource coordinates
    uint64_t start = 0, end = 0;  //!< [start, end) busy interval
    InstrId instr = UINT32_MAX;
    ValueId value = kNoValue;
};

/** Per-kind activity timeline, bucketed (Fig. 10). */
struct Timeline
{
    uint32_t bucketCycles = 4096;
    // Active FU-cycles per bucket, per FU class.
    std::vector<std::array<uint64_t, 4>> fuActive;
    std::vector<uint64_t> hbmBytes;

    void
    addFu(FuType t, uint64_t cycle, uint64_t cycles)
    {
        size_t b = cycle / bucketCycles;
        if (fuActive.size() <= b)
            fuActive.resize(b + 1, {0, 0, 0, 0});
        fuActive[b][(size_t)t] += cycles;
    }
    void
    addHbm(uint64_t cycle, uint64_t bytes)
    {
        size_t b = cycle / bucketCycles;
        if (hbmBytes.size() <= b)
            hbmBytes.resize(b + 1, 0);
        hbmBytes[b] += bytes;
    }
};

struct ScheduleResult
{
    uint64_t cycles = 0; //!< makespan
    TrafficBytes traffic;
    std::array<uint64_t, 4> fuBusyCycles{}; //!< by FuType
    uint64_t hbmBusyCycles = 0;
    uint64_t nocBytes = 0;      //!< bank<->cluster transfers
    uint64_t scratchBytes = 0;  //!< bank port traffic
    uint64_t rfBytes = 0;       //!< register-file traffic
    Timeline timeline;
    std::vector<ScheduledEvent> events;

    /**
     * Issue cycle assigned to every instruction (parallel to
     * dfg.instrs; stores record their HBM start). Always populated —
     * unlike `events` it is one word per instruction, and it is the
     * raw material deriveScheduleHints turns into runtime priorities.
     */
    std::vector<uint64_t> instrIssueCycle;

    double
    timeMs(const F1Config &cfg) const
    {
        return (double)cycles / (cfg.freqGHz * 1e6);
    }

    /** Average power (W) over the run, split by component. */
    struct Power
    {
        double fus, regFiles, noc, scratch, hbm, total;
    };
    Power averagePower(const F1Config &cfg,
                       const EnergyRates &rates = {}) const;
};

ScheduleResult scheduleCycles(const Dfg &dfg, const MemScheduleResult &mem,
                              const F1Config &cfg,
                              bool record_events = false);

} // namespace f1

#endif // F1_COMPILER_CYCLE_SCHEDULER_H
