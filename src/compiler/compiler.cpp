#include "compiler/compiler.h"

#include <algorithm>

namespace f1 {

CompileResult
compileProgram(const Program &prog, const F1Config &cfg,
               const CompileOptions &opt)
{
    CompileResult r;
    r.translation = translateProgram(prog, opt.translate);
    r.memory = scheduleMemory(r.translation.dfg, cfg, opt.memPolicy);
    r.schedule = scheduleCycles(r.translation.dfg, r.memory, cfg,
                                opt.recordEvents);
    r.hints = deriveScheduleHints(prog, r.translation, r.memory,
                                  r.schedule);
    return r;
}

ScheduleHints
deriveScheduleHints(const Program &prog,
                    const TranslationResult &translation,
                    const MemScheduleResult &memory,
                    const ScheduleResult &schedule)
{
    const size_t nOps = prog.ops().size();
    const auto &instrOp = translation.instrOp;
    F1_REQUIRE(instrOp.size() == schedule.instrIssueCycle.size(),
               "translation and schedule describe different DFGs ("
                   << instrOp.size() << " vs "
                   << schedule.instrIssueCycle.size()
                   << " instructions)");

    ScheduleHints h;
    h.startCycle.assign(nOps, 0);
    h.releaseRank.assign(nOps, 0);

    // startCycle: first issue cycle among the op's instructions.
    std::vector<uint64_t> first(nOps, UINT64_MAX);
    for (size_t i = 0; i < instrOp.size(); ++i) {
        const size_t op = static_cast<size_t>(instrOp[i]);
        F1_CHECK(op < nOps, "instrOp names handle outside program");
        first[op] =
            std::min(first[op], schedule.instrIssueCycle[i]);
    }
    for (size_t op = 0; op < nOps; ++op)
        h.startCycle[op] = first[op] == UINT64_MAX ? 0 : first[op];

    // releaseRank: position of the op's last compute in the memory
    // scheduler's operation sequence (its liveness/retire order).
    uint32_t pos = 0;
    for (const MemOp &m : memory.sequence) {
        if (m.type != MemOp::Type::kCompute)
            continue;
        ++pos;
        h.releaseRank[static_cast<size_t>(instrOp[m.instr])] = pos;
    }
    return h;
}

} // namespace f1
