#include "compiler/compiler.h"

namespace f1 {

CompileResult
compileProgram(const Program &prog, const F1Config &cfg,
               const CompileOptions &opt)
{
    CompileResult r;
    r.translation = translateProgram(prog, opt.translate);
    r.memory = scheduleMemory(r.translation.dfg, cfg, opt.memPolicy);
    r.schedule = scheduleCycles(r.translation.dfg, r.memory, cfg,
                                opt.recordEvents);
    return r;
}

} // namespace f1
