/**
 * @file
 * The full three-phase F1 compiler pipeline (paper Fig. 3): program ->
 * instruction DFG -> data-movement schedule -> cycle-level schedule.
 */
#ifndef F1_COMPILER_COMPILER_H
#define F1_COMPILER_COMPILER_H

#include "compiler/cycle_scheduler.h"
#include "compiler/memory_scheduler.h"
#include "compiler/program.h"
#include "compiler/translate.h"

namespace f1 {

struct CompileOptions
{
    TranslateOptions translate;
    MemPolicy memPolicy = MemPolicy::kPriorityBelady;
    bool recordEvents = false;
};

struct CompileResult
{
    TranslationResult translation;
    MemScheduleResult memory;
    ScheduleResult schedule;
};

/** Runs all three phases against `cfg`. */
CompileResult compileProgram(const Program &prog, const F1Config &cfg,
                             const CompileOptions &opt = {});

} // namespace f1

#endif // F1_COMPILER_COMPILER_H
