/**
 * @file
 * The full three-phase F1 compiler pipeline (paper Fig. 3): program ->
 * instruction DFG -> data-movement schedule -> cycle-level schedule.
 *
 * Since the schedule-aware-runtime PR this header also exports
 * ScheduleHints, the compiler->runtime product that closes the loop
 * the paper opens in §4.4 ("our scheduler also doubles as a
 * performance measurement tool"): the static schedule is distilled
 * into per-HE-op priorities the OpGraphExecutor's work-stealing
 * scheduler consumes (via ExecutionPolicy::scheduleHints).
 */
#ifndef F1_COMPILER_COMPILER_H
#define F1_COMPILER_COMPILER_H

#include "compiler/cycle_scheduler.h"
#include "compiler/memory_scheduler.h"
#include "compiler/program.h"
#include "compiler/translate.h"

namespace f1 {

struct CompileOptions
{
    TranslateOptions translate;
    MemPolicy memPolicy = MemPolicy::kPriorityBelady;
    bool recordEvents = false;
};

/**
 * Per-HE-op runtime hints distilled from the static schedule, indexed
 * by DSL handle. The runtime's work-stealing scheduler pops ready ops
 * in ascending (startCycle, releaseRank, handle) order:
 *
 *  - startCycle is the cycle the phase-3 scheduler issued the op's
 *    first instruction at. Ready ops the static schedule starts
 *    earlier are on (or nearer) the critical path, so they run first.
 *  - releaseRank is the position of the op's last instruction in the
 *    phase-2 memory scheduler's operation sequence — the liveness
 *    order. Among ops the cycle scheduler starts together, running
 *    lower ranks first retires operands in the order the Belady
 *    scheduler planned their death, bounding resident ciphertexts.
 *
 * Ops that emit no instructions (inputs, materialized during the
 * untimed prepare phase) carry 0/0 and never reach the ready set.
 */
struct ScheduleHints
{
    std::vector<uint64_t> startCycle;  //!< by HeOp handle
    std::vector<uint32_t> releaseRank; //!< by HeOp handle

    /** Number of ops described; must equal Program::ops().size() of
     *  the program the hints were derived from. */
    size_t size() const { return startCycle.size(); }
};

struct CompileResult
{
    TranslationResult translation;
    MemScheduleResult memory;
    ScheduleResult schedule;
    ScheduleHints hints; //!< runtime hints (see deriveScheduleHints)
};

/** Runs all three phases against `cfg` and derives runtime hints. */
CompileResult compileProgram(const Program &prog, const F1Config &cfg,
                             const CompileOptions &opt = {});

/**
 * Distills the phase-2/phase-3 products into ScheduleHints for
 * `prog`. Exposed separately so callers that already hold a
 * CompileResult for a different machine config can re-derive hints
 * without recompiling.
 */
ScheduleHints deriveScheduleHints(const Program &prog,
                                  const TranslationResult &translation,
                                  const MemScheduleResult &memory,
                                  const ScheduleResult &schedule);

} // namespace f1

#endif // F1_COMPILER_COMPILER_H
