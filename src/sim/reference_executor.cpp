#include "sim/reference_executor.h"

#include <chrono>

#include "common/error.h"
#include "common/rng.h"

namespace f1 {

ReferenceExecutor::ReferenceExecutor(const Program &prog, BgvScheme *bgv)
    : prog_(prog), scheme_(RefScheme::kBgv), bgv_(bgv)
{
}

ReferenceExecutor::ReferenceExecutor(const Program &prog,
                                     CkksScheme *ckks)
    : prog_(prog), scheme_(RefScheme::kCkks), ckks_(ckks)
{
}

void
ReferenceExecutor::setInputSlots(int handle, std::vector<uint64_t> slots)
{
    bgvInputs_[handle] = std::move(slots);
}

void
ReferenceExecutor::setInputSlots(int handle,
                                 std::vector<std::complex<double>> slots)
{
    ckksInputs_[handle] = std::move(slots);
}

void
ReferenceExecutor::setPlainSlots(int handle, std::vector<uint64_t> slots)
{
    bgvPlains_[handle] = std::move(slots);
}

void
ReferenceExecutor::setPlainSlots(int handle,
                                 std::vector<std::complex<double>> slots)
{
    ckksPlains_[handle] = std::move(slots);
}

RefExecutionResult
ReferenceExecutor::run()
{
    RefExecutionResult result;
    const auto &ops = prog_.ops();
    std::map<int, Ciphertext> cts;
    std::map<int, std::vector<int64_t>> bgv_pts;
    std::map<int, std::vector<std::complex<double>>> ckks_pts;
    Rng rng(0xdada);

    // Prepare inputs (encryption excluded from the timed region, as
    // the client performs it).
    const uint32_t n = prog_.n();
    for (size_t i = 0; i < ops.size(); ++i) {
        const HeOp &op = ops[i];
        if (op.kind == HeOpKind::kInput) {
            if (scheme_ == RefScheme::kBgv) {
                auto it = bgvInputs_.find((int)i);
                std::vector<uint64_t> slots =
                    it != bgvInputs_.end()
                        ? it->second
                        : rng.uniformVector(n, bgv_->plainModulus());
                cts[(int)i] = bgv_->encryptSlots(slots, op.level);
            } else {
                auto it = ckksInputs_.find((int)i);
                std::vector<std::complex<double>> slots(n / 2);
                if (it != ckksInputs_.end()) {
                    slots = it->second;
                } else {
                    for (auto &s : slots)
                        s = {rng.uniformReal(-1, 1), 0.0};
                }
                cts[(int)i] = ckks_->encrypt(slots, op.level);
            }
        } else if (op.kind == HeOpKind::kInputPlain) {
            if (scheme_ == RefScheme::kBgv) {
                auto it = bgvPlains_.find((int)i);
                std::vector<uint64_t> slots =
                    it != bgvPlains_.end()
                        ? it->second
                        : rng.uniformVector(n, bgv_->plainModulus());
                bgv_pts[(int)i] = bgv_->encoder().encodeSlots(slots);
            } else {
                auto it = ckksPlains_.find((int)i);
                std::vector<std::complex<double>> slots(n / 2);
                if (it != ckksPlains_.end()) {
                    slots = it->second;
                } else {
                    for (auto &s : slots)
                        s = {rng.uniformReal(-1, 1), 0.0};
                }
                ckks_pts[(int)i] = std::move(slots);
            }
        }
    }

    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < ops.size(); ++i) {
        const HeOp &op = ops[i];
        const int h = (int)i;
        switch (op.kind) {
          case HeOpKind::kInput:
          case HeOpKind::kInputPlain:
            break;
          case HeOpKind::kAdd:
            cts[h] = scheme_ == RefScheme::kBgv
                         ? bgv_->add(cts.at(op.a), cts.at(op.b))
                         : ckks_->add(cts.at(op.a), cts.at(op.b));
            break;
          case HeOpKind::kSub:
            cts[h] = scheme_ == RefScheme::kBgv
                         ? bgv_->sub(cts.at(op.a), cts.at(op.b))
                         : ckks_->sub(cts.at(op.a), cts.at(op.b));
            break;
          case HeOpKind::kAddPlain:
            if (scheme_ == RefScheme::kBgv) {
                cts[h] = bgv_->addPlain(cts.at(op.a),
                                        bgv_pts.at(op.b));
            } else {
                cts[h] = ckks_->addPlain(cts.at(op.a),
                                         ckks_pts.at(op.b));
            }
            break;
          case HeOpKind::kMulPlain:
            if (scheme_ == RefScheme::kBgv) {
                cts[h] = bgv_->mulPlain(cts.at(op.a),
                                        bgv_pts.at(op.b));
            } else {
                cts[h] = ckks_->mulPlain(cts.at(op.a),
                                         ckks_pts.at(op.b));
            }
            break;
          case HeOpKind::kMul:
            cts[h] = scheme_ == RefScheme::kBgv
                         ? bgv_->mul(cts.at(op.a), cts.at(op.b))
                         : ckks_->mul(cts.at(op.a), cts.at(op.b));
            break;
          case HeOpKind::kRotate:
            cts[h] = scheme_ == RefScheme::kBgv
                         ? bgv_->rotate(cts.at(op.a), op.rotateBy)
                         : ckks_->rotate(cts.at(op.a), op.rotateBy);
            break;
          case HeOpKind::kConjugate:
            cts[h] = scheme_ == RefScheme::kBgv
                         ? bgv_->conjugate(cts.at(op.a))
                         : ckks_->conjugate(cts.at(op.a));
            break;
          case HeOpKind::kModSwitch:
            cts[h] = scheme_ == RefScheme::kBgv
                         ? bgv_->modSwitch(cts.at(op.a))
                         : ckks_->rescale(cts.at(op.a));
            break;
          case HeOpKind::kOutput:
            result.outputs[h] = cts.at(op.a);
            break;
        }
    }
    auto t1 = std::chrono::steady_clock::now();
    result.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return result;
}

} // namespace f1
