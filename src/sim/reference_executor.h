/**
 * @file
 * Functional execution of DSL programs on real encrypted data through
 * the FHE layer — the equivalent of the paper's §8.5 functional
 * simulator, and the CPU baseline of Table 3: the same homomorphic
 * operation graph the F1 compiler schedules is executed in software
 * and timed.
 *
 * Since the serving-runtime PR this is a thin wrapper over
 * runtime::OpGraphExecutor; since the ExecutionPolicy redesign it
 * simply accumulates RuntimeInputs and forwards a policy, and its
 * run() returns the runtime's ExecutionResult directly (the old
 * RefExecutionResult alias is gone). Outputs are bit-identical across
 * schedulers and thread counts (asserted by tests/test_runtime.cpp).
 *
 * Timed-region change vs the historical loop: first-use key-switch
 * hint generation now happens in the untimed prepare phase
 * (consistent with table4_micro, which always excluded keygen), so
 * wallMs is lower on cold schemes than pre-runtime numbers — CPU
 * baselines are not directly comparable across that boundary.
 */
#ifndef F1_SIM_REFERENCE_EXECUTOR_H
#define F1_SIM_REFERENCE_EXECUTOR_H

#include <complex>
#include <vector>

#include "runtime/op_graph_executor.h"

namespace f1 {

/** Execution backends: which scheme interprets the program. */
enum class RefScheme { kBgv, kCkks };

/**
 * Executes `prog` with the given scheme. Inputs are supplied through
 * setters keyed by DSL handle; handles without data get deterministic
 * pseudo-random values.
 */
class ReferenceExecutor
{
  public:
    /** BGV backend. */
    ReferenceExecutor(const Program &prog, BgvScheme *bgv)
        : scheme_(RefScheme::kBgv), exec_(prog, bgv)
    {
    }

    /** CKKS backend. */
    ReferenceExecutor(const Program &prog, CkksScheme *ckks)
        : scheme_(RefScheme::kCkks), exec_(prog, ckks)
    {
    }

    /** Provides slot data for an encrypted input handle (BGV). */
    void
    setInputSlots(int handle, std::vector<uint64_t> slots)
    {
        inputs_.bind(handle, std::move(slots));
    }

    /** Provides slot data for an encrypted input handle (CKKS). */
    void
    setInputSlots(int handle, std::vector<std::complex<double>> slots)
    {
        inputs_.bind(handle, std::move(slots));
    }

    /** Provides plaintext data for an unencrypted input handle. */
    void
    setPlainSlots(int handle, std::vector<uint64_t> slots)
    {
        inputs_.bind(handle, std::move(slots));
    }

    void
    setPlainSlots(int handle, std::vector<std::complex<double>> slots)
    {
        inputs_.bind(handle, std::move(slots));
    }

    /** Seed for default input data and encryption randomness. */
    void setSeed(uint64_t seed) { inputs_.seed = seed; }

    /** Policy for run(); defaults to ExecutionPolicy's defaults
     *  (work-stealing, no hints, whole pool). */
    void setPolicy(const ExecutionPolicy &policy) { policy_ = policy; }

    /** Deprecated: use setPolicy(). Kept for pre-policy call sites. */
    void setDispatchMode(DispatchMode mode)
    {
        policy_.scheduler = mode;
    }

    RefScheme scheme() const { return scheme_; }

    ExecutionResult run() { return exec_.execute(inputs_, policy_); }

  private:
    RefScheme scheme_;
    OpGraphExecutor exec_;
    RuntimeInputs inputs_;
    ExecutionPolicy policy_;
};

} // namespace f1

#endif // F1_SIM_REFERENCE_EXECUTOR_H
