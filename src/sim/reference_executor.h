/**
 * @file
 * Functional execution of DSL programs on real encrypted data through
 * the FHE layer — the equivalent of the paper's §8.5 functional
 * simulator, and the CPU baseline of Table 3: the same homomorphic
 * operation graph the F1 compiler schedules is executed in software
 * and timed.
 */
#ifndef F1_SIM_REFERENCE_EXECUTOR_H
#define F1_SIM_REFERENCE_EXECUTOR_H

#include <complex>
#include <functional>
#include <map>
#include <vector>

#include "compiler/program.h"
#include "fhe/bgv.h"
#include "fhe/ckks.h"

namespace f1 {

/** Execution backends: which scheme interprets the program. */
enum class RefScheme { kBgv, kCkks };

struct RefExecutionResult
{
    double wallMs = 0; //!< software execution time
    std::map<int, Ciphertext> outputs; //!< by DSL handle
};

/**
 * Executes `prog` with the given scheme. Inputs are supplied through
 * callbacks keyed by DSL handle; handles without a callback get
 * deterministic pseudo-random data.
 */
class ReferenceExecutor
{
  public:
    /** BGV backend. */
    ReferenceExecutor(const Program &prog, BgvScheme *bgv);
    /** CKKS backend. */
    ReferenceExecutor(const Program &prog, CkksScheme *ckks);

    /** Provides slot data for an encrypted input handle (BGV). */
    void setInputSlots(int handle, std::vector<uint64_t> slots);
    /** Provides slot data for an encrypted input handle (CKKS). */
    void setInputSlots(int handle,
                       std::vector<std::complex<double>> slots);
    /** Provides plaintext data for an unencrypted input handle. */
    void setPlainSlots(int handle, std::vector<uint64_t> slots);
    void setPlainSlots(int handle,
                       std::vector<std::complex<double>> slots);

    RefExecutionResult run();

  private:
    const Program &prog_;
    RefScheme scheme_;
    BgvScheme *bgv_ = nullptr;
    CkksScheme *ckks_ = nullptr;
    std::map<int, std::vector<uint64_t>> bgvInputs_, bgvPlains_;
    std::map<int, std::vector<std::complex<double>>> ckksInputs_,
        ckksPlains_;
};

} // namespace f1

#endif // F1_SIM_REFERENCE_EXECUTOR_H
