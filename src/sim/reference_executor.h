/**
 * @file
 * Functional execution of DSL programs on real encrypted data through
 * the FHE layer — the equivalent of the paper's §8.5 functional
 * simulator, and the CPU baseline of Table 3: the same homomorphic
 * operation graph the F1 compiler schedules is executed in software
 * and timed.
 *
 * Since the serving-runtime PR this is a thin wrapper over
 * runtime::OpGraphExecutor, so the reference path and the serving
 * path share one engine. The default dispatch is wavefront-parallel;
 * under F1_THREADS=1 (or DispatchMode::kSerial) results are
 * bit-identical to the historical serial loop's order, and they are
 * bit-identical across thread counts regardless (asserted by
 * tests/test_runtime.cpp).
 *
 * Timed-region change vs the historical loop: first-use key-switch
 * hint generation now happens in the untimed prepare phase
 * (consistent with table4_micro, which always excluded keygen), so
 * wallMs is lower on cold schemes than pre-runtime numbers — CPU
 * baselines are not directly comparable across that boundary.
 */
#ifndef F1_SIM_REFERENCE_EXECUTOR_H
#define F1_SIM_REFERENCE_EXECUTOR_H

#include <complex>
#include <vector>

#include "runtime/op_graph_executor.h"

namespace f1 {

/** Execution backends: which scheme interprets the program. */
enum class RefScheme { kBgv, kCkks };

/** Historical name; the runtime layer defines the shared type. */
using RefExecutionResult = ExecutionResult;

/**
 * Executes `prog` with the given scheme. Inputs are supplied through
 * setters keyed by DSL handle; handles without data get deterministic
 * pseudo-random values.
 */
class ReferenceExecutor
{
  public:
    /** BGV backend. */
    ReferenceExecutor(const Program &prog, BgvScheme *bgv)
        : scheme_(RefScheme::kBgv), exec_(prog, bgv)
    {
    }

    /** CKKS backend. */
    ReferenceExecutor(const Program &prog, CkksScheme *ckks)
        : scheme_(RefScheme::kCkks), exec_(prog, ckks)
    {
    }

    /** Provides slot data for an encrypted input handle (BGV). */
    void
    setInputSlots(int handle, std::vector<uint64_t> slots)
    {
        inputs_.bgvSlots[handle] = std::move(slots);
    }

    /** Provides slot data for an encrypted input handle (CKKS). */
    void
    setInputSlots(int handle, std::vector<std::complex<double>> slots)
    {
        inputs_.ckksSlots[handle] = std::move(slots);
    }

    /** Provides plaintext data for an unencrypted input handle. */
    void
    setPlainSlots(int handle, std::vector<uint64_t> slots)
    {
        inputs_.bgvPlainSlots[handle] = std::move(slots);
    }

    void
    setPlainSlots(int handle, std::vector<std::complex<double>> slots)
    {
        inputs_.ckksPlainSlots[handle] = std::move(slots);
    }

    /** Seed for default input data and encryption randomness. */
    void setSeed(uint64_t seed) { inputs_.seed = seed; }

    /** kWavefront (default) or kSerial (historical op order). */
    void setDispatchMode(DispatchMode mode)
    {
        exec_.setDispatchMode(mode);
    }

    RefScheme scheme() const { return scheme_; }

    RefExecutionResult run() { return exec_.run(inputs_); }

  private:
    RefScheme scheme_;
    OpGraphExecutor exec_;
    RuntimeInputs inputs_;
};

} // namespace f1

#endif // F1_SIM_REFERENCE_EXECUTOR_H
