#include "sim/checker.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace f1 {

CheckReport
checkSchedule(const ScheduleResult &schedule, const F1Config &cfg)
{
    (void)cfg;
    CheckReport report;

    // Group events by concrete resource instance.
    using Key = std::tuple<uint8_t, uint16_t, uint16_t, uint16_t>;
    std::map<Key, std::vector<const ScheduledEvent *>> byResource;
    for (const auto &ev : schedule.events) {
        byResource[{(uint8_t)ev.res, ev.a, ev.b, ev.c}].push_back(&ev);
        ++report.eventsChecked;
    }

    report.resourcesChecked = byResource.size();
    for (auto &[key, events] : byResource) {
        std::sort(events.begin(), events.end(),
                  [](const ScheduledEvent *x, const ScheduledEvent *y) {
                      return x->start < y->start;
                  });
        for (size_t i = 1; i < events.size(); ++i) {
            if (events[i]->start < events[i - 1]->end) {
                report.ok = false;
                if (report.firstViolation.empty()) {
                    std::ostringstream os;
                    os << "resource (" << (int)std::get<0>(key) << ","
                       << std::get<1>(key) << "," << std::get<2>(key)
                       << "," << std::get<3>(key)
                       << ") double-booked: [" << events[i - 1]->start
                       << "," << events[i - 1]->end << ") overlaps ["
                       << events[i]->start << "," << events[i]->end
                       << ")";
                    report.firstViolation = os.str();
                }
            }
            if (events[i]->end > schedule.cycles) {
                report.ok = false;
                if (report.firstViolation.empty())
                    report.firstViolation =
                        "event beyond reported makespan";
            }
        }
    }
    return report;
}

} // namespace f1
