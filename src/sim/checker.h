/**
 * @file
 * Static-schedule checker (paper §7: "Because the architecture is
 * static, this is very different from conventional simulators, and
 * acts more as a checker"). Independently replays the event list the
 * cycle-level scheduler produced and verifies that no hardware
 * resource is double-booked and that every value is produced before it
 * is consumed — i.e., that the fully static schedule needs no stall
 * logic.
 */
#ifndef F1_SIM_CHECKER_H
#define F1_SIM_CHECKER_H

#include <string>

#include "compiler/cycle_scheduler.h"

namespace f1 {

struct CheckReport
{
    bool ok = true;
    size_t eventsChecked = 0;
    size_t resourcesChecked = 0;
    std::string firstViolation;
};

/** Validates a recorded schedule (requires recordEvents=true). */
CheckReport checkSchedule(const ScheduleResult &schedule,
                          const F1Config &cfg);

} // namespace f1

#endif // F1_SIM_CHECKER_H
