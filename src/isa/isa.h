/**
 * @file
 * The F1 instruction set at residue-vector (RVec) granularity.
 *
 * F1 compiles FHE programs into linear streams of vector instructions
 * over N-element residue polynomials (paper §3 "Distributed control").
 * Each instruction reads up to two RVec operands and produces one RVec
 * result; loads and stores move RVecs between HBM and the scratchpad.
 * There is no control flow: programs are dataflow graphs with all
 * dependences known at compile time.
 */
#ifndef F1_ISA_ISA_H
#define F1_ISA_ISA_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace f1 {

enum class Opcode : uint8_t {
    kNtt,   //!< forward NTT (NTT FU)
    kIntt,  //!< inverse NTT (NTT FU)
    kAut,   //!< automorphism (automorphism FU)
    kMul,   //!< element-wise modular multiply (multiplier FU)
    kAdd,   //!< element-wise modular add (adder FU)
    kSub,   //!< element-wise modular subtract (adder FU)
    kLoad,  //!< HBM -> scratchpad
    kStore, //!< scratchpad -> HBM
};

const char *opcodeName(Opcode op);

/** True for opcodes executed on compute-cluster functional units. */
inline bool
isCompute(Opcode op)
{
    return op != Opcode::kLoad && op != Opcode::kStore;
}

/** Functional unit classes within a compute cluster. */
enum class FuType : uint8_t { kNtt, kAut, kMul, kAdd };

/** FU class executing a compute opcode. */
inline FuType
fuFor(Opcode op)
{
    switch (op) {
      case Opcode::kNtt:
      case Opcode::kIntt:
        return FuType::kNtt;
      case Opcode::kAut:
        return FuType::kAut;
      case Opcode::kMul:
        return FuType::kMul;
      case Opcode::kAdd:
      case Opcode::kSub:
        return FuType::kAdd;
      default:
        F1_PANIC("no FU for memory opcode");
    }
}

using ValueId = uint32_t;
using InstrId = uint32_t;
constexpr ValueId kNoValue = UINT32_MAX;

/** Provenance classes for traffic accounting (paper Fig. 9a). */
enum class ValueKind : uint8_t {
    kInput,        //!< program input ciphertext/plaintext
    kKsh,          //!< key-switch hint
    kIntermediate, //!< produced by an instruction
    kOutput,       //!< program output
};

struct ValueInfo
{
    ValueKind kind = ValueKind::kIntermediate;
    /** For kKsh: identifies the hint this RVec belongs to, so the
     *  scheduler can maximize reuse across homomorphic ops (§4.2). */
    int32_t hintId = -1;
    InstrId producer = UINT32_MAX; //!< kNoInstr for off-chip values
};

struct Instruction
{
    Opcode op;
    ValueId dst = kNoValue;
    ValueId src0 = kNoValue;
    ValueId src1 = kNoValue; //!< kNoValue for unary ops
    /** Priority reflecting global order from phase 1 (§4.2); lower =
     *  earlier. */
    uint32_t priority = 0;
};

/**
 * Instruction-level dataflow graph: the output of the homomorphic
 * operation compiler (§4.2) and the unit of work for phases 2 and 3.
 */
struct Dfg
{
    uint32_t n = 0; //!< polynomial length (elements per RVec)
    std::vector<Instruction> instrs;
    std::vector<ValueInfo> values;

    size_t rvecBytes() const { return (size_t)n * 4; }

    ValueId
    newValue(ValueKind kind, int32_t hint_id = -1)
    {
        values.push_back(ValueInfo{kind, hint_id, UINT32_MAX});
        return static_cast<ValueId>(values.size() - 1);
    }

    InstrId
    emit(Opcode op, ValueId dst, ValueId src0, ValueId src1 = kNoValue)
    {
        InstrId id = static_cast<InstrId>(instrs.size());
        instrs.push_back(Instruction{op, dst, src0, src1, id});
        if (dst != kNoValue)
            values[dst].producer = id;
        return id;
    }

    /** Compute-instruction count by FU class (cost-model queries). */
    std::vector<size_t> opHistogram() const;

    /** Validation: operands defined before use, no double definition. */
    void validate() const;
};

} // namespace f1

#endif // F1_ISA_ISA_H
