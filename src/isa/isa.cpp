#include "isa/isa.h"

namespace f1 {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::kNtt:
        return "ntt";
      case Opcode::kIntt:
        return "intt";
      case Opcode::kAut:
        return "aut";
      case Opcode::kMul:
        return "mul";
      case Opcode::kAdd:
        return "add";
      case Opcode::kSub:
        return "sub";
      case Opcode::kLoad:
        return "load";
      case Opcode::kStore:
        return "store";
    }
    return "?";
}

std::vector<size_t>
Dfg::opHistogram() const
{
    std::vector<size_t> h(8, 0);
    for (const auto &ins : instrs)
        h[static_cast<size_t>(ins.op)]++;
    return h;
}

void
Dfg::validate() const
{
    std::vector<bool> defined(values.size(), false);
    for (size_t v = 0; v < values.size(); ++v) {
        // Off-chip values (inputs, hints) are born defined.
        if (values[v].producer == UINT32_MAX)
            defined[v] = true;
    }
    for (const auto &ins : instrs) {
        for (ValueId src : {ins.src0, ins.src1}) {
            if (src != kNoValue)
                F1_CHECK(defined[src], "use before def of value " << src);
        }
        if (ins.dst != kNoValue) {
            F1_CHECK(!defined[ins.dst] ||
                         values[ins.dst].producer == UINT32_MAX,
                     "double definition of value " << ins.dst);
            defined[ins.dst] = true;
        }
    }
}

} // namespace f1
