#include "runtime/op_graph_executor.h"

#include <algorithm>

#include "common/error.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/time_util.h"

namespace f1 {

namespace {

/**
 * Ciphertext operands of an op, written to out[0..1] (-1 = none).
 * kAddPlain/kMulPlain's b names a plaintext handle, not a ciphertext
 * edge; kInput/kInputPlain are sources.
 */
void
ctOperands(const HeOp &op, int out[2])
{
    out[0] = out[1] = -1;
    switch (op.kind) {
      case HeOpKind::kInput:
      case HeOpKind::kInputPlain:
        break;
      case HeOpKind::kAdd:
      case HeOpKind::kSub:
      case HeOpKind::kMul:
        out[0] = op.a;
        out[1] = op.b;
        break;
      case HeOpKind::kAddPlain:
      case HeOpKind::kMulPlain:
      case HeOpKind::kRotate:
      case HeOpKind::kConjugate:
      case HeOpKind::kModSwitch:
      case HeOpKind::kOutput:
        out[0] = op.a;
        break;
    }
}

bool
producesCiphertext(const HeOp &op)
{
    return op.kind != HeOpKind::kOutput &&
           op.kind != HeOpKind::kInputPlain;
}

} // namespace

struct OpGraphExecutor::RunState
{
    std::vector<std::optional<Ciphertext>> cts;
    std::vector<std::shared_ptr<const std::vector<int64_t>>> bgvPts;
    std::vector<std::vector<std::complex<double>>> ckksPts;
    std::vector<std::optional<Ciphertext>> outs;
    std::vector<int> indeg;
    std::vector<int> uses;
    size_t resident = 0;
    ExecutionResult result;

    void
    release(int h)
    {
        cts[h].reset();
        --resident;
    }
};

OpGraphExecutor::OpGraphExecutor(const Program &prog, BgvScheme *bgv)
    : prog_(prog), bgv_(bgv)
{
    buildGraph();
}

OpGraphExecutor::OpGraphExecutor(const Program &prog, CkksScheme *ckks)
    : prog_(prog), ckks_(ckks)
{
    buildGraph();
}

void
OpGraphExecutor::buildGraph()
{
    const auto &ops = prog_.ops();
    const size_t n = ops.size();
    dependents_.assign(n, {});
    indegree_.assign(n, 0);
    consumers_.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
        int deps[2];
        ctOperands(ops[i], deps);
        for (int d : deps) {
            if (d < 0)
                continue;
            F1_REQUIRE(static_cast<size_t>(d) < i,
                       "op " << i << " references future handle " << d);
            dependents_[d].push_back(static_cast<int>(i));
            ++indegree_[i];
            ++consumers_[d];
        }
    }
}

void
OpGraphExecutor::prepare(const RuntimeInputs &in, RunState &st) const
{
    const auto &ops = prog_.ops();
    const uint32_t n = prog_.n();

    // Hint warming, in program order. Hint bits are order-independent
    // (hintSeed), so this is a latency optimization, not a correctness
    // requirement: it keeps key generation out of the timed region,
    // matching the old executor's "client-side work excluded" stance.
    for (const HeOp &op : ops) {
        if (op.kind == HeOpKind::kMul) {
            if (bgv_)
                bgv_->relinHintShared(op.level);
            else
                ckks_->relinHintShared(op.level);
        } else if (op.kind == HeOpKind::kRotate ||
                   op.kind == HeOpKind::kConjugate) {
            const auto &order = bgv_ ? bgv_->encoder().slotOrder()
                                     : ckks_->encoder().slotOrder();
            const uint64_t g = op.kind == HeOpKind::kRotate
                                   ? order.rotationGalois(op.rotateBy)
                                   : order.conjugationGalois();
            if (bgv_)
                bgv_->galoisHintShared(g, op.level);
            else
                ckks_->galoisHintShared(g, op.level);
        }
    }

    // Inputs: encryption and encoding run serially in program order
    // with a per-run Rng, so the prepared state is a pure function of
    // (program, inputs, seed) — independent of concurrent jobs.
    Rng rng(in.seed);
    for (size_t i = 0; i < ops.size(); ++i) {
        const HeOp &op = ops[i];
        const int h = static_cast<int>(i);
        if (op.kind == HeOpKind::kInput) {
            if (bgv_) {
                auto it = in.bgvSlots.find(h);
                std::vector<uint64_t> slots =
                    it != in.bgvSlots.end()
                        ? it->second
                        : rng.uniformVector(n, bgv_->plainModulus());
                st.cts[h] = bgv_->encryptSlots(slots, op.level, rng);
            } else {
                auto it = in.ckksSlots.find(h);
                std::vector<std::complex<double>> slots(n / 2);
                if (it != in.ckksSlots.end()) {
                    slots = it->second;
                } else {
                    for (auto &s : slots)
                        s = {rng.uniformReal(-1, 1), 0.0};
                }
                st.cts[h] = ckks_->encrypt(slots, op.level, rng);
            }
            ++st.resident;
        } else if (op.kind == HeOpKind::kInputPlain) {
            if (bgv_) {
                auto it = in.bgvPlainSlots.find(h);
                std::vector<uint64_t> slots =
                    it != in.bgvPlainSlots.end()
                        ? it->second
                        : rng.uniformVector(n, bgv_->plainModulus());
                st.bgvPts[h] = encodeBgvPlain(slots, st);
            } else {
                auto it = in.ckksPlainSlots.find(h);
                std::vector<std::complex<double>> slots(n / 2);
                if (it != in.ckksPlainSlots.end()) {
                    slots = it->second;
                } else {
                    for (auto &s : slots)
                        s = {rng.uniformReal(-1, 1), 0.0};
                }
                st.ckksPts[h] = std::move(slots);
            }
        }
    }
    st.result.peakResidentCiphertexts = st.resident;
}

std::shared_ptr<const std::vector<int64_t>>
OpGraphExecutor::encodeBgvPlain(std::span<const uint64_t> slots,
                                RunState &st) const
{
    if (!encCache_) {
        return std::make_shared<const std::vector<int64_t>>(
            bgv_->encoder().encodeSlots(slots));
    }
    EncodingKey key;
    key.paramsFp =
        hashCombine(hashCombine(hashMix(0xe4c0de), prog_.n()),
                    bgv_->plainModulus());
    key.dataHash = hashU64Span(slots);
    if (auto hit = encCache_->get(key)) {
        ++st.result.encodingCacheHits;
        return hit;
    }
    ++st.result.encodingCacheMisses;
    // A concurrent job may race the same miss; put() keeps the first
    // value, and both values are identical (encoding is pure).
    return encCache_->put(key, bgv_->encoder().encodeSlots(slots));
}

void
OpGraphExecutor::executeOp(int h, RunState &st) const
{
    const HeOp &op = prog_.ops()[h];
    auto ct = [&](int idx) -> const Ciphertext & {
        F1_CHECK(st.cts[idx].has_value(),
                 "operand " << idx << " not resident for op " << h);
        return *st.cts[idx];
    };
    switch (op.kind) {
      case HeOpKind::kInput:
      case HeOpKind::kInputPlain:
        break; // materialized by prepare()
      case HeOpKind::kAdd:
        st.cts[h] = bgv_ ? bgv_->add(ct(op.a), ct(op.b))
                         : ckks_->add(ct(op.a), ct(op.b));
        break;
      case HeOpKind::kSub:
        st.cts[h] = bgv_ ? bgv_->sub(ct(op.a), ct(op.b))
                         : ckks_->sub(ct(op.a), ct(op.b));
        break;
      case HeOpKind::kAddPlain:
        st.cts[h] = bgv_ ? bgv_->addPlain(ct(op.a), *st.bgvPts[op.b])
                         : ckks_->addPlain(ct(op.a), st.ckksPts[op.b]);
        break;
      case HeOpKind::kMulPlain:
        st.cts[h] = bgv_ ? bgv_->mulPlain(ct(op.a), *st.bgvPts[op.b])
                         : ckks_->mulPlain(ct(op.a), st.ckksPts[op.b]);
        break;
      case HeOpKind::kMul:
        st.cts[h] = bgv_ ? bgv_->mul(ct(op.a), ct(op.b))
                         : ckks_->mul(ct(op.a), ct(op.b));
        break;
      case HeOpKind::kRotate:
        st.cts[h] = bgv_ ? bgv_->rotate(ct(op.a), op.rotateBy)
                         : ckks_->rotate(ct(op.a), op.rotateBy);
        break;
      case HeOpKind::kConjugate:
        st.cts[h] = bgv_ ? bgv_->conjugate(ct(op.a))
                         : ckks_->conjugate(ct(op.a));
        break;
      case HeOpKind::kModSwitch:
        st.cts[h] = bgv_ ? bgv_->modSwitch(ct(op.a))
                         : ckks_->rescale(ct(op.a));
        break;
      case HeOpKind::kOutput:
        st.outs[h] = ct(op.a);
        break;
    }
}

/**
 * Post-completion bookkeeping for op `h`: unlocks dependents whose
 * operands are now all computed (appended to readyOut) and releases
 * any ciphertext that `h` consumed for the last time. Runs on the
 * coordinating thread between wavefronts, so releases never race
 * against in-flight readers.
 */
void
OpGraphExecutor::retireOp(int h, RunState &st,
                          std::vector<int> &readyOut) const
{
    for (int dep : dependents_[h]) {
        if (--st.indeg[dep] == 0)
            readyOut.push_back(dep);
    }
    int deps[2];
    ctOperands(prog_.ops()[h], deps);
    for (int d : deps) {
        if (d >= 0 && --st.uses[d] == 0)
            st.release(d);
    }
    // A result nothing consumes (dead code) is dropped immediately.
    if (producesCiphertext(prog_.ops()[h]) && st.uses[h] == 0)
        st.release(h);
}

ExecutionResult
OpGraphExecutor::run(const RuntimeInputs &in) const
{
    const auto &ops = prog_.ops();
    const size_t n = ops.size();

    RunState st;
    st.cts.resize(n);
    st.outs.resize(n);
    st.bgvPts.resize(n);
    st.ckksPts.resize(n);
    st.indeg = indegree_;
    st.uses = consumers_;

    prepare(in, st);

    auto bumpPeak = [&st] {
        st.result.peakResidentCiphertexts =
            std::max(st.result.peakResidentCiphertexts, st.resident);
    };

    const double t0 = steadyNowMs();
    if (mode_ == DispatchMode::kSerial) {
        std::vector<int> ignored;
        for (size_t i = 0; i < n; ++i) {
            const HeOp &op = ops[i];
            if (op.kind == HeOpKind::kInput ||
                op.kind == HeOpKind::kInputPlain)
                continue;
            const int h = static_cast<int>(i);
            executeOp(h, st);
            if (producesCiphertext(op))
                ++st.resident;
            bumpPeak();
            retireOp(h, st, ignored);
            ++st.result.wavefronts;
            st.result.maxWavefrontWidth = 1;
        }
    } else {
        // Seed the first wavefront by propagating input completions.
        std::vector<int> ready;
        for (size_t i = 0; i < n; ++i) {
            if (ops[i].kind != HeOpKind::kInput &&
                ops[i].kind != HeOpKind::kInputPlain)
                continue;
            for (int dep : dependents_[i]) {
                if (--st.indeg[dep] == 0)
                    ready.push_back(dep);
            }
        }
        std::sort(ready.begin(), ready.end());

        std::vector<int> next;
        while (!ready.empty()) {
            ++st.result.wavefronts;
            st.result.maxWavefrontWidth =
                std::max(st.result.maxWavefrontWidth, ready.size());
            if (ready.size() == 1) {
                executeOp(ready[0], st);
            } else {
                parallelFor(0, ready.size(), [&](size_t i) {
                    executeOp(ready[i], st);
                });
            }
            for (int h : ready) {
                if (producesCiphertext(ops[h]))
                    ++st.resident;
            }
            bumpPeak();
            next.clear();
            for (int h : ready)
                retireOp(h, st, next);
            // Ascending handles keep the within-wavefront claim order
            // deterministic under F1_THREADS=1 (inline index order).
            std::sort(next.begin(), next.end());
            ready.swap(next);
        }
    }
    st.result.wallMs = steadyNowMs() - t0;

    for (size_t i = 0; i < n; ++i) {
        if (ops[i].kind == HeOpKind::kOutput)
            st.result.outputs[static_cast<int>(i)] =
                std::move(*st.outs[i]);
    }
    return st.result;
}

} // namespace f1
