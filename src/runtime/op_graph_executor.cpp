#include "runtime/op_graph_executor.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <exception>
#include <mutex>
#include <queue>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/time_util.h"
#include "obs/calib.h"
#include "obs/eventlog.h"
#include "obs/tracectx.h"

namespace f1 {

namespace {

/**
 * Ciphertext operands of an op, written to out[0..1] (-1 = none).
 * kAddPlain/kMulPlain's b names a plaintext handle, not a ciphertext
 * edge; kInput/kInputPlain are sources.
 */
void
ctOperands(const HeOp &op, int out[2])
{
    out[0] = out[1] = -1;
    switch (op.kind) {
      case HeOpKind::kInput:
      case HeOpKind::kInputPlain:
        break;
      case HeOpKind::kAdd:
      case HeOpKind::kSub:
      case HeOpKind::kMul:
        out[0] = op.a;
        out[1] = op.b;
        break;
      case HeOpKind::kAddPlain:
      case HeOpKind::kMulPlain:
      case HeOpKind::kRotate:
      case HeOpKind::kConjugate:
      case HeOpKind::kModSwitch:
      case HeOpKind::kOutput:
        out[0] = op.a;
        break;
    }
}

bool
producesCiphertext(const HeOp &op)
{
    return op.kind != HeOpKind::kOutput &&
           op.kind != HeOpKind::kInputPlain;
}

bool
isSource(const HeOp &op)
{
    return op.kind == HeOpKind::kInput ||
           op.kind == HeOpKind::kInputPlain;
}

// Static names for trace spans and profile op-kind keys, indexed by
// HeOpKind. The collector's fixed-size op slots must cover the enum.
constexpr const char *kOpKindNames[] = {
    "input",     "input_plain", "add",    "sub",
    "add_plain", "mul_plain",   "mul",    "rotate",
    "conjugate", "mod_switch",  "output",
};
constexpr size_t kOpKindCount =
    sizeof(kOpKindNames) / sizeof(kOpKindNames[0]);
static_assert(size_t(HeOpKind::kOutput) + 1 == kOpKindCount,
              "kOpKindNames is out of sync with HeOpKind");
static_assert(kOpKindCount <= obs::ProfileCollector::kMaxOpKinds,
              "HeOpKind outgrew ProfileCollector's op slots");

const char *
opKindName(HeOpKind kind)
{
    return kOpKindNames[size_t(kind)];
}

/** Registry-resolved executor metrics; resolved once, process-wide. */
struct ExecutorMetrics
{
    obs::Counter &runs;
    obs::Counter &ops;
    obs::Counter &steals;
    obs::Histogram &executeMs;

    static ExecutorMetrics &
    get()
    {
        static ExecutorMetrics m{
            obs::MetricsRegistry::global().counter("executor.runs"),
            obs::MetricsRegistry::global().counter("executor.ops"),
            obs::MetricsRegistry::global().counter("executor.steals"),
            obs::MetricsRegistry::global().histogram(
                "executor.execute_ms"),
        };
        return m;
    }
};

const std::vector<uint64_t> *
bgvBinding(const RuntimeInputs &in, int h)
{
    auto it = in.bindings.find(h);
    if (it == in.bindings.end())
        return nullptr;
    const auto *v = std::get_if<std::vector<uint64_t>>(&it->second);
    F1_REQUIRE(v != nullptr,
               "input binding for handle "
                   << h
                   << " holds CKKS slot data, but the executor runs a "
                      "BGV program");
    return v;
}

const std::vector<std::complex<double>> *
ckksBinding(const RuntimeInputs &in, int h)
{
    auto it = in.bindings.find(h);
    if (it == in.bindings.end())
        return nullptr;
    const auto *v =
        std::get_if<std::vector<std::complex<double>>>(&it->second);
    F1_REQUIRE(v != nullptr,
               "input binding for handle "
                   << h
                   << " holds BGV slot data, but the executor runs a "
                      "CKKS program");
    return v;
}

/**
 * Strict total order over ops for scheduling decisions. Without hints
 * every op carries (0, 0), so the order degenerates to ascending
 * handle — the historical deterministic order. With hints, ready ops
 * sort critical-path-first (cycle-scheduler issue cycle), then by the
 * memory scheduler's liveness rank, then by handle.
 */
struct OpPriority
{
    const ScheduleHints *hints = nullptr;

    bool
    before(int a, int b) const
    {
        if (hints != nullptr) {
            const size_t ua = static_cast<size_t>(a);
            const size_t ub = static_cast<size_t>(b);
            if (hints->startCycle[ua] != hints->startCycle[ub])
                return hints->startCycle[ua] < hints->startCycle[ub];
            if (hints->releaseRank[ua] != hints->releaseRank[ub])
                return hints->releaseRank[ua] <
                       hints->releaseRank[ub];
        }
        return a < b;
    }
};

} // namespace

/**
 * One batch member's private data: its ciphertexts, plaintexts,
 * outputs, and per-member counters. Every member of a batch walks the
 * same graph, so the structural state (dependency counts, liveness)
 * lives once in RunState; everything a single job owns lives here.
 */
struct OpGraphExecutor::Member
{
    std::vector<std::optional<Ciphertext>> cts;
    std::vector<std::shared_ptr<const std::vector<int64_t>>> bgvPts;
    std::vector<std::vector<std::complex<double>>> ckksSlots;
    std::vector<std::optional<Ciphertext>> outs;
    uint64_t encodingCacheHits = 0;
    uint64_t encodingCacheMisses = 0;

    /** Correlation id from RuntimeInputs (0 = untraced) and the
     *  member's position in the batch — only member 0 feeds the
     *  schedule-calibration fit (later members run back-to-back, so
     *  their start times measure fusion, not the schedule). */
    uint64_t traceId = 0;
    uint32_t memberIndex = 0;
};

/**
 * Per-traversal state, shared by every member of the batch. The
 * schedulers walk the graph ONCE: dependency counts, consumer counts,
 * and the resident-ciphertext high-water mark are per member (members
 * are structurally identical), and "execute op h" / "release handle
 * d" fan out across members.
 */
struct OpGraphExecutor::RunState
{
    std::vector<Member> members;
    std::vector<int> indeg;
    std::vector<int> uses;
    size_t resident = 0;     //!< live ciphertexts PER MEMBER
    size_t peakResident = 0; //!< per-member high-water mark
    size_t wavefronts = 0;
    size_t maxWavefrontWidth = 0;
    size_t steals = 0;
    EncodingCache *encCache = nullptr;

    // Telemetry for this traversal; all nullptr when telemetry is off.
    obs::ProfileCollector *collector = nullptr;
    obs::Tracer *tracer = nullptr;
    const ScheduleHints *hints = nullptr;

    /** Absolute-epoch-relative ns at which the timed execute phase
     *  began (tracer clock) — the origin for the schedule-calibration
     *  measured starts. */
    int64_t executeEpochNs = 0;

    /** The process-wide live-capture ring (obs/tracectx.h); runOp
     *  mirrors spans into it only while a /tracez window is armed. */
    obs::LiveTraceCapture *live = nullptr;

    void
    release(int h)
    {
        for (Member &m : members)
            m.cts[h].reset();
        --resident;
        if (tracer != nullptr)
            tracer->instant(obs::TraceEventKind::kRelease, h,
                            tracer->nowNs());
    }
};

OpGraphExecutor::OpGraphExecutor(const Program &prog, BgvScheme *bgv)
    : prog_(prog), fp_(prog.fingerprint()), bgv_(bgv)
{
    buildGraph();
}

OpGraphExecutor::OpGraphExecutor(const Program &prog, CkksScheme *ckks)
    : prog_(prog), fp_(prog.fingerprint()), ckks_(ckks)
{
    buildGraph();
}

void
OpGraphExecutor::buildGraph()
{
    const auto &ops = prog_.ops();
    const size_t n = ops.size();
    dependents_.assign(n, {});
    indegree_.assign(n, 0);
    consumers_.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
        int deps[2];
        ctOperands(ops[i], deps);
        for (int d : deps) {
            if (d < 0)
                continue;
            F1_REQUIRE(static_cast<size_t>(d) < n &&
                           d != static_cast<int>(i),
                       "op " << i << " references invalid handle "
                             << d);
            dependents_[d].push_back(static_cast<int>(i));
            ++indegree_[i];
            ++consumers_[d];
        }
    }

    // Kahn's algorithm with ascending-handle selection. Programs from
    // the builder API are already topologically sorted, so this
    // reproduces program order exactly (kSerial keeps its historical
    // semantics); pushRaw programs with forward references get a
    // valid order; and a cyclic graph is rejected here with the
    // offending handles named, instead of the executor spinning on a
    // never-ready op set.
    topoOrder_.clear();
    topoOrder_.reserve(n);
    std::vector<int> indeg = indegree_;
    std::priority_queue<int, std::vector<int>, std::greater<int>> ready;
    for (size_t i = 0; i < n; ++i)
        if (indeg[i] == 0)
            ready.push(static_cast<int>(i));
    while (!ready.empty()) {
        const int h = ready.top();
        ready.pop();
        topoOrder_.push_back(h);
        for (int dep : dependents_[h])
            if (--indeg[dep] == 0)
                ready.push(dep);
    }
    if (topoOrder_.size() != n) {
        std::ostringstream stuck;
        int listed = 0;
        for (size_t i = 0; i < n; ++i) {
            if (indeg[i] == 0)
                continue;
            if (listed++ > 0)
                stuck << ", ";
            if (listed > 8) {
                stuck << "...";
                break;
            }
            stuck << i;
        }
        F1_REQUIRE(false, "op DAG has a cycle; handles {"
                              << stuck.str()
                              << "} never become ready");
    }
}

void
OpGraphExecutor::prepare(const RuntimeInputs &in, RunState &st,
                         Member &m, bool first) const
{
    const auto &ops = prog_.ops();
    const uint32_t n = prog_.n();

    // Hint warming, in program order, once per batch (hints are keyed
    // by the program shape, not by member data). Hint bits are
    // order-independent (hintSeed), so this is a latency optimization,
    // not a correctness requirement: it keeps key generation out of
    // the timed region, matching the old executor's "client-side work
    // excluded" stance.
    if (first) {
        for (const HeOp &op : ops) {
            if (op.kind == HeOpKind::kMul) {
                if (bgv_)
                    bgv_->relinHintShared(op.level);
                else
                    ckks_->relinHintShared(op.level);
            } else if (op.kind == HeOpKind::kRotate ||
                       op.kind == HeOpKind::kConjugate) {
                const auto &order =
                    bgv_ ? bgv_->encoder().slotOrder()
                         : ckks_->encoder().slotOrder();
                const uint64_t g =
                    op.kind == HeOpKind::kRotate
                        ? order.rotationGalois(op.rotateBy)
                        : order.conjugationGalois();
                if (bgv_)
                    bgv_->galoisHintShared(g, op.level);
                else
                    ckks_->galoisHintShared(g, op.level);
            }
        }
    }

    // Inputs: encryption and encoding run serially in program order
    // with a per-member Rng, so each member's prepared state is a pure
    // function of (program, inputs, seed) — independent of concurrent
    // jobs AND of the other batch members.
    Rng rng(in.seed);
    for (size_t i = 0; i < ops.size(); ++i) {
        const HeOp &op = ops[i];
        const int h = static_cast<int>(i);
        if (op.kind == HeOpKind::kInput) {
            if (bgv_) {
                const auto *bound = bgvBinding(in, h);
                std::vector<uint64_t> slots =
                    bound ? *bound
                          : rng.uniformVector(n, bgv_->plainModulus());
                m.cts[h] = bgv_->encryptSlots(slots, op.level, rng);
            } else {
                const auto *bound = ckksBinding(in, h);
                std::vector<std::complex<double>> slots(n / 2);
                if (bound) {
                    slots = *bound;
                } else {
                    for (auto &s : slots)
                        s = {rng.uniformReal(-1, 1), 0.0};
                }
                m.cts[h] = ckks_->encrypt(slots, op.level, rng);
            }
            if (first)
                ++st.resident; // structural count, same for everyone
        } else if (op.kind == HeOpKind::kInputPlain) {
            if (bgv_) {
                const auto *bound = bgvBinding(in, h);
                std::vector<uint64_t> slots =
                    bound ? *bound
                          : rng.uniformVector(n, bgv_->plainModulus());
                m.bgvPts[h] = encodeBgvPlain(slots, st, m);
            } else {
                const auto *bound = ckksBinding(in, h);
                std::vector<std::complex<double>> slots(n / 2);
                if (bound) {
                    slots = *bound;
                } else {
                    for (auto &s : slots)
                        s = {rng.uniformReal(-1, 1), 0.0};
                }
                // Raw slots; encoded (and cached) lazily at the
                // consuming op, where scale and level are known.
                m.ckksSlots[h] = std::move(slots);
            }
        }
    }
    st.peakResident = st.resident;
}

std::shared_ptr<const std::vector<int64_t>>
OpGraphExecutor::encodeBgvPlain(std::span<const uint64_t> slots,
                                RunState &st, Member &m) const
{
    if (!st.encCache) {
        return std::make_shared<const std::vector<int64_t>>(
            bgv_->encoder().encodeSlots(slots));
    }
    EncodingKey key;
    key.paramsFp =
        hashCombine(hashCombine(hashMix(0xe4c0de), prog_.n()),
                    bgv_->plainModulus());
    key.dataHash = hashU64Span(slots);
    const auto alias = [](std::shared_ptr<const EncodedPlaintext> p) {
        const auto *v = std::get_if<std::vector<int64_t>>(p.get());
        F1_CHECK(v != nullptr,
                 "encoding-cache entry holds a CKKS value under a BGV "
                 "key");
        return std::shared_ptr<const std::vector<int64_t>>(
            std::move(p), v);
    };
    if (auto hit = st.encCache->get(key)) {
        ++m.encodingCacheHits;
        return alias(std::move(hit));
    }
    ++m.encodingCacheMisses;
    // A concurrent job may race the same miss; put() keeps the first
    // value, and both values are identical (encoding is pure).
    return alias(st.encCache->put(
        key, EncodedPlaintext(bgv_->encoder().encodeSlots(slots))));
}

/**
 * CKKS counterpart of encodeBgvPlain: plaintext slots are encoded to
 * an RnsPoly at the consuming ciphertext's (scale, level), and the
 * result is content-addressed in the shared cache — repeated model
 * weights across jobs and batch members encode once. Determinism:
 * encoding is a pure function of (slots, scale, level), so cached and
 * fresh encodings are bit-identical.
 */
std::shared_ptr<const RnsPoly>
OpGraphExecutor::encodeCkksPlain(
    std::span<const std::complex<double>> slots, double scale,
    size_t level, RunState &st, Member &m) const
{
    if (!st.encCache) {
        return std::make_shared<const RnsPoly>(
            ckks_->encoder().encode(slots, scale, level));
    }
    EncodingKey key;
    key.paramsFp = hashCombine(hashMix(0xc4c5de), prog_.n());
    uint64_t dh = hashMix(slots.size());
    for (const std::complex<double> &s : slots) {
        dh = hashCombine(dh, std::bit_cast<uint64_t>(s.real()));
        dh = hashCombine(dh, std::bit_cast<uint64_t>(s.imag()));
    }
    key.dataHash = dh;
    key.shapeFp =
        hashCombine(hashCombine(hashMix(0x5ca1e),
                                std::bit_cast<uint64_t>(scale)),
                    level);
    const auto alias = [](std::shared_ptr<const EncodedPlaintext> p) {
        const auto *v = std::get_if<RnsPoly>(p.get());
        F1_CHECK(v != nullptr,
                 "encoding-cache entry holds a BGV value under a CKKS "
                 "key");
        return std::shared_ptr<const RnsPoly>(std::move(p), v);
    };
    if (auto hit = st.encCache->get(key)) {
        ++m.encodingCacheHits;
        return alias(std::move(hit));
    }
    ++m.encodingCacheMisses;
    return alias(st.encCache->put(
        key,
        EncodedPlaintext(ckks_->encoder().encode(slots, scale,
                                                 level))));
}

void
OpGraphExecutor::executeOp(int h, RunState &st, Member &m) const
{
    const HeOp &op = prog_.ops()[h];
    auto ct = [&](int idx) -> const Ciphertext & {
        F1_CHECK(m.cts[idx].has_value(),
                 "operand " << idx << " not resident for op " << h);
        return *m.cts[idx];
    };
    switch (op.kind) {
      case HeOpKind::kInput:
      case HeOpKind::kInputPlain:
        break; // materialized by prepare()
      case HeOpKind::kAdd:
        m.cts[h] = bgv_ ? bgv_->add(ct(op.a), ct(op.b))
                        : ckks_->add(ct(op.a), ct(op.b));
        break;
      case HeOpKind::kSub:
        m.cts[h] = bgv_ ? bgv_->sub(ct(op.a), ct(op.b))
                        : ckks_->sub(ct(op.a), ct(op.b));
        break;
      case HeOpKind::kAddPlain:
        if (bgv_) {
            m.cts[h] = bgv_->addPlain(ct(op.a), *m.bgvPts[op.b]);
        } else {
            const Ciphertext &a = ct(op.a);
            auto pt = encodeCkksPlain(m.ckksSlots[op.b], a.scale,
                                      a.level(), st, m);
            m.cts[h] = ckks_->addPlainEncoded(a, *pt);
        }
        break;
      case HeOpKind::kMulPlain:
        if (bgv_) {
            m.cts[h] = bgv_->mulPlain(ct(op.a), *m.bgvPts[op.b]);
        } else {
            const Ciphertext &a = ct(op.a);
            auto pt = encodeCkksPlain(m.ckksSlots[op.b],
                                      ckks_->defaultScale(),
                                      a.level(), st, m);
            m.cts[h] = ckks_->mulPlainEncoded(a, *pt);
        }
        break;
      case HeOpKind::kMul:
        m.cts[h] = bgv_ ? bgv_->mul(ct(op.a), ct(op.b))
                        : ckks_->mul(ct(op.a), ct(op.b));
        break;
      case HeOpKind::kRotate:
        m.cts[h] = bgv_ ? bgv_->rotate(ct(op.a), op.rotateBy)
                        : ckks_->rotate(ct(op.a), op.rotateBy);
        break;
      case HeOpKind::kConjugate:
        m.cts[h] = bgv_ ? bgv_->conjugate(ct(op.a))
                        : ckks_->conjugate(ct(op.a));
        break;
      case HeOpKind::kModSwitch:
        m.cts[h] = bgv_ ? bgv_->modSwitch(ct(op.a))
                        : ckks_->rescale(ct(op.a));
        break;
      case HeOpKind::kOutput:
        m.outs[h] = ct(op.a);
        break;
    }
}

/**
 * executeOp plus this run's telemetry. The telemetry-off path is one
 * null check, one relaxed atomic load (the /tracez live-capture arm
 * check), and a tail call — no clock reads, which is what keeps
 * disabled runs inside the <1% overhead budget. Under batching the
 * trace carries one span per (op, member).
 */
void
OpGraphExecutor::runOp(int h, RunState &st, Member &m) const
{
    const bool live = st.live != nullptr && st.live->armed();
    if (st.collector == nullptr && st.tracer == nullptr && !live) {
        executeOp(h, st, m);
        return;
    }
    const HeOp &op = prog_.ops()[h];
    const int64_t predicted =
        st.hints != nullptr ? int64_t(st.hints->startCycle[size_t(h)])
                            : -1;
    if (st.tracer != nullptr) {
        // Tracer timestamps are steady-clock ns past the tracer's
        // epoch, so the span pair doubles as the op duration.
        const int64_t t0 = st.tracer->nowNs();
        executeOp(h, st, m);
        const int64_t ns = st.tracer->nowNs() - t0;
        if (st.collector != nullptr)
            st.collector->addOp(size_t(op.kind), uint64_t(ns));
        st.tracer->span(opKindName(op.kind), h, t0, ns, predicted,
                        m.traceId);
        // Calibration pairs the compiler's predicted start cycle with
        // the measured start relative to the traversal's own start;
        // only the lead member records (see Member::memberIndex).
        if (predicted >= 0 && m.memberIndex == 0)
            obs::ScheduleCalibration::global().record(
                size_t(op.kind), opKindName(op.kind),
                uint64_t(predicted), t0 - st.executeEpochNs);
        if (live)
            st.live->record(st.tracer->epochNs() + t0, ns,
                            opKindName(op.kind), h, m.traceId,
                            predicted);
        return;
    }
    const int64_t a0 = obs::steadyNowNs();
    executeOp(h, st, m);
    const int64_t ns = obs::steadyNowNs() - a0;
    if (st.collector != nullptr)
        st.collector->addOp(size_t(op.kind), uint64_t(ns));
    if (live)
        st.live->record(a0, ns, opKindName(op.kind), h, m.traceId,
                        predicted);
}

/**
 * The batching primitive: op `h` runs for every member back to back,
 * so the hint-cache entries, twiddle tables, and scratch buffers the
 * op touches stay hot across the whole batch, and the scheduler pays
 * its per-op cost (pops, retire bookkeeping, priority maintenance)
 * once per batch instead of once per job.
 */
void
OpGraphExecutor::runOpAllMembers(int h, RunState &st) const
{
    for (Member &m : st.members)
        runOp(h, st, m);
}

/**
 * Post-completion bookkeeping for op `h`: unlocks dependents whose
 * operands are now all computed (appended to readyOut) and releases
 * any ciphertext that `h` consumed for the last time. Used by the
 * serial and wavefront schedulers, which run it on the coordinating
 * thread between rounds, so releases never race against in-flight
 * readers; the work-stealing scheduler has its own atomic version.
 */
void
OpGraphExecutor::retireOp(int h, RunState &st,
                          std::vector<int> &readyOut) const
{
    for (int dep : dependents_[h]) {
        if (--st.indeg[dep] == 0)
            readyOut.push_back(dep);
    }
    int deps[2];
    ctOperands(prog_.ops()[h], deps);
    for (int d : deps) {
        if (d >= 0 && --st.uses[d] == 0)
            st.release(d);
    }
    // A result nothing consumes (dead code) is dropped immediately.
    if (producesCiphertext(prog_.ops()[h]) && st.uses[h] == 0)
        st.release(h);
}

void
OpGraphExecutor::runSerial(RunState &st) const
{
    const auto &ops = prog_.ops();
    std::vector<int> ignored;
    for (int h : topoOrder_) {
        const HeOp &op = ops[h];
        if (isSource(op))
            continue;
        runOpAllMembers(h, st);
        if (producesCiphertext(op))
            ++st.resident;
        st.peakResident = std::max(st.peakResident, st.resident);
        retireOp(h, st, ignored);
        ++st.wavefronts;
        st.maxWavefrontWidth = 1;
    }
}

void
OpGraphExecutor::runWavefront(RunState &st,
                              const ExecutionPolicy &policy) const
{
    const auto &ops = prog_.ops();
    const size_t n = ops.size();
    const OpPriority prio{policy.scheduleHints};
    const auto byPriority = [&](int a, int b) {
        return prio.before(a, b);
    };

    // Seed the first wavefront by propagating input completions.
    std::vector<int> ready;
    for (size_t i = 0; i < n; ++i) {
        if (!isSource(ops[i]))
            continue;
        for (int dep : dependents_[i]) {
            if (--st.indeg[dep] == 0)
                ready.push_back(dep);
        }
    }
    std::sort(ready.begin(), ready.end(), byPriority);

    // The parallel grain is (op, member): a round with R ready ops
    // and B members dispatches R*B bodies, so a wide batch keeps the
    // pool saturated even on narrow program regions. Index order is
    // op-major (member minor), so the inline fallback runs each op
    // across all members back to back — the batching locality the
    // fused traversal exists for.
    const size_t B = st.members.size();
    std::vector<int> next;
    while (!ready.empty()) {
        ++st.wavefronts;
        st.maxWavefrontWidth =
            std::max(st.maxWavefrontWidth, ready.size());
        if (ready.size() * B == 1) {
            runOp(ready[0], st, st.members[0]);
        } else {
            parallelFor(0, ready.size() * B, [&](size_t i) {
                runOp(ready[i / B], st, st.members[i % B]);
            });
        }
        for (int h : ready) {
            if (producesCiphertext(ops[h]))
                ++st.resident;
        }
        st.peakResident = std::max(st.peakResident, st.resident);
        next.clear();
        for (int h : ready)
            retireOp(h, st, next);
        // The priority order keeps the within-wavefront claim order
        // deterministic under F1_THREADS=1 (inline index order);
        // without hints it is ascending handles, as before.
        std::sort(next.begin(), next.end(), byPriority);
        ready.swap(next);
    }
}

/**
 * Continuation scheduling: W workers each own a priority deque of
 * ready ops. Completing op `h` atomically decrements its consumers'
 * dependency counts; a consumer reaching zero is pushed onto the
 * completing worker's deque (the continuation stays local). A worker
 * whose deque is empty steals the most urgent op from another deque.
 * No round barrier exists, so an expensive op never stalls
 * independent work that becomes ready while it runs.
 *
 * Synchronization: all deque traffic goes through per-deque mutexes;
 * dependency counts are acq_rel atomics, so a consumer popped from
 * any deque observes every producer's ciphertext write. Consumer
 * counts are acq_rel atomics too: the thread whose decrement reaches
 * zero is the only one to release the ciphertext, and every reader
 * has already finished (it decrements only after executing).
 */
void
OpGraphExecutor::runWorkStealing(RunState &st,
                                 const ExecutionPolicy &policy) const
{
    const auto &ops = prog_.ops();
    const size_t n = ops.size();
    const OpPriority prio{policy.scheduleHints};
    // Min-heap on OpPriority: heapCmp is "worse-than".
    const auto heapCmp = [&](int a, int b) {
        return prio.before(b, a);
    };

    unsigned workers = globalThreadCount();
    if (policy.threadBudget != 0)
        workers = std::min(workers, policy.threadBudget);
    workers = std::max(workers, 1u);
    const size_t W = workers;

    struct WorkerDeque
    {
        std::mutex m;
        std::vector<int> heap; //!< ready ops, min-heap by priority
    };
    std::unique_ptr<WorkerDeque[]> deques(new WorkerDeque[W]);

    std::vector<std::atomic<int>> indeg(n);
    std::vector<std::atomic<int>> uses(n);
    for (size_t i = 0; i < n; ++i) {
        indeg[i].store(indegree_[i], std::memory_order_relaxed);
        uses[i].store(consumers_[i], std::memory_order_relaxed);
    }

    size_t totalWork = 0;
    for (const HeOp &op : ops)
        if (!isSource(op))
            ++totalWork;
    std::atomic<size_t> remaining{totalWork};
    std::atomic<size_t> resident{st.resident};
    std::atomic<size_t> peakResident{st.peakResident};
    std::atomic<size_t> steals{0};
    // Ops concurrently in flight; the peak is WS's analogue of the
    // wavefront scheduler's maxWavefrontWidth (see ExecutionResult).
    std::atomic<size_t> running{0};
    std::atomic<size_t> peakRunning{0};
    std::atomic<bool> abort{false};
    std::mutex errMutex;
    std::exception_ptr firstError;

    // Seed: propagate input completions, then deal the initial ready
    // set round-robin across the deques in priority order so workers
    // start loaded without stealing.
    std::vector<int> ready0;
    for (size_t i = 0; i < n; ++i) {
        if (!isSource(ops[i]))
            continue;
        for (int dep : dependents_[i]) {
            if (indeg[dep].fetch_sub(1, std::memory_order_relaxed) ==
                1)
                ready0.push_back(dep);
        }
    }
    std::sort(ready0.begin(), ready0.end(),
              [&](int a, int b) { return prio.before(a, b); });
    for (size_t k = 0; k < ready0.size(); ++k)
        deques[k % W].heap.push_back(ready0[k]);
    for (size_t w = 0; w < W; ++w)
        std::make_heap(deques[w].heap.begin(), deques[w].heap.end(),
                       heapCmp);

    auto popFrom = [&](WorkerDeque &dq) -> int {
        std::lock_guard<std::mutex> lock(dq.m);
        if (dq.heap.empty())
            return -1;
        std::pop_heap(dq.heap.begin(), dq.heap.end(), heapCmp);
        const int h = dq.heap.back();
        dq.heap.pop_back();
        return h;
    };
    auto pushTo = [&](WorkerDeque &dq, int h) {
        std::lock_guard<std::mutex> lock(dq.m);
        dq.heap.push_back(h);
        std::push_heap(dq.heap.begin(), dq.heap.end(), heapCmp);
    };

    auto releaseCt = [&](int h) {
        for (Member &m : st.members)
            m.cts[h].reset();
        resident.fetch_sub(1, std::memory_order_relaxed);
        if (st.tracer != nullptr)
            st.tracer->instant(obs::TraceEventKind::kRelease, h,
                               st.tracer->nowNs());
    };

    // The WS work unit stays one op across ALL members: the op is
    // popped once, its hint/twiddle working set is touched once, and
    // only then do dependents unlock — exactly the amortization the
    // coalescer buys. Member outputs are disjoint, so no member-level
    // synchronization is needed.
    auto runOne = [&](size_t wid, int h) {
        const size_t now =
            running.fetch_add(1, std::memory_order_relaxed) + 1;
        size_t wide = peakRunning.load(std::memory_order_relaxed);
        while (now > wide &&
               !peakRunning.compare_exchange_weak(
                   wide, now, std::memory_order_relaxed)) {
        }
        runOpAllMembers(h, st);
        running.fetch_sub(1, std::memory_order_relaxed);
        if (producesCiphertext(ops[h])) {
            const size_t cur =
                resident.fetch_add(1, std::memory_order_relaxed) + 1;
            size_t peak =
                peakResident.load(std::memory_order_relaxed);
            while (cur > peak &&
                   !peakResident.compare_exchange_weak(
                       peak, cur, std::memory_order_relaxed)) {
            }
            // Dead code: a result nothing consumes is dropped now.
            if (uses[h].load(std::memory_order_acquire) == 0)
                releaseCt(h);
        }
        // Unlock dependents; newly-ready continuations stay local.
        for (int dep : dependents_[h]) {
            if (indeg[dep].fetch_sub(1,
                                     std::memory_order_acq_rel) == 1)
                pushTo(deques[wid], dep);
        }
        // Release operands this op consumed for the last time.
        int deps[2];
        ctOperands(ops[h], deps);
        for (int d : deps) {
            if (d >= 0 &&
                uses[d].fetch_sub(1, std::memory_order_acq_rel) == 1)
                releaseCt(d);
        }
        remaining.fetch_sub(1, std::memory_order_release);
    };

    auto worker = [&](size_t wid) {
        try {
            for (;;) {
                if (abort.load(std::memory_order_relaxed))
                    return;
                int h = popFrom(deques[wid]);
                if (h < 0) {
                    for (size_t k = 1; k < W && h < 0; ++k)
                        h = popFrom(deques[(wid + k) % W]);
                    if (h >= 0) {
                        steals.fetch_add(1,
                                         std::memory_order_relaxed);
                        if (st.tracer != nullptr)
                            st.tracer->instant(
                                obs::TraceEventKind::kSteal, h,
                                st.tracer->nowNs());
                    }
                }
                if (h < 0) {
                    if (remaining.load(std::memory_order_acquire) ==
                        0)
                        return;
                    std::this_thread::yield();
                    continue;
                }
                runOne(wid, h);
            }
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(errMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
            // Unblock the other workers: they must not spin on a
            // remaining count that will never reach zero.
            abort.store(true, std::memory_order_relaxed);
        }
    };

    // One pool dispatch for the whole run: each claimed index is a
    // long-lived worker loop. Under InlineParallelScope (or a
    // one-thread pool) the bodies run inline in index order — worker
    // 0 drains the whole graph in strict priority order, the rest
    // find no work — so the serial fallback is exact and
    // deterministic.
    parallelFor(0, W, worker);
    if (firstError)
        std::rethrow_exception(firstError);

    st.resident = resident.load(std::memory_order_relaxed);
    st.peakResident = peakResident.load(std::memory_order_relaxed);
    st.steals = steals.load(std::memory_order_relaxed);
    st.maxWavefrontWidth =
        peakRunning.load(std::memory_order_relaxed);
}

ExecutionResult
OpGraphExecutor::execute(const RuntimeInputs &in,
                         const ExecutionPolicy &policy) const
{
    auto results =
        executeBatch(std::span<const RuntimeInputs>(&in, 1), policy);
    return std::move(results.front());
}

std::vector<ExecutionResult>
OpGraphExecutor::executeBatch(std::span<const RuntimeInputs> inputs,
                              const ExecutionPolicy &policy) const
{
    const auto &ops = prog_.ops();
    const size_t n = ops.size();
    const size_t B = inputs.size();
    F1_REQUIRE(B > 0, "executeBatch needs at least one member");
    if (policy.scheduleHints != nullptr) {
        F1_REQUIRE(policy.scheduleHints->size() == n,
                   "schedule hints describe "
                       << policy.scheduleHints->size()
                       << " ops but the program has " << n);
    }

    RunState st;
    st.members.resize(B);
    for (size_t b = 0; b < B; ++b) {
        Member &m = st.members[b];
        m.cts.resize(n);
        m.outs.resize(n);
        m.bgvPts.resize(n);
        m.ckksSlots.resize(n);
        m.traceId = inputs[b].traceId;
        m.memberIndex = uint32_t(b);
    }
    st.indeg = indegree_;
    st.uses = consumers_;
    st.encCache = policy.encodingCache;
    st.hints = policy.scheduleHints;
    st.live = &obs::LiveTraceCapture::global();

    // Telemetry collectors live on the stack for exactly this run.
    // The ProfileScope around each phase makes pool batches dispatched
    // from it inherit the collector (see ThreadPool::run), so nested
    // limb-parallel work is attributed to this run — and a run WITHOUT
    // a collector shadows any outer one instead of polluting it. A
    // batch collects ONE profile/trace for the whole traversal and
    // shares it across members' results.
    std::unique_ptr<obs::ProfileCollector> collector;
    std::unique_ptr<obs::Tracer> tracer;
    if (policy.telemetry.profile)
        collector = std::make_unique<obs::ProfileCollector>();
    if (policy.telemetry.trace)
        tracer = std::make_unique<obs::Tracer>(
            policy.telemetry.traceLaneCapacity,
            policy.telemetry.label);
    st.collector = collector.get();
    st.tracer = tracer.get();

    size_t totalWork = 0;
    for (const HeOp &op : ops)
        if (!isSource(op))
            ++totalWork;

    // Prepare members serially, each from its own Rng(seed): member
    // i's prepared state is byte-for-byte what a solo run would build.
    // Flight-recorder hooks: one dispatch event per batch traversal
    // (jobId 0 — the executor doesn't know serving job ids; the
    // engine's per-job admit/complete events bracket this one by
    // fingerprint) and one batch-level fail event when the traversal
    // throws, so a post-mortem shows WHERE in the pipeline a job died.
    obs::FlightRecorder &rec = obs::FlightRecorder::global();
    rec.record(obs::ServingEventKind::kDispatch, 0,
               policy.telemetry.label, fp_, uint32_t(B),
               inputs[0].traceId);

    const double p0 = steadyNowMs();
    double prepareMs = 0;
    double wallMs = 0;
    try {
        {
            obs::ProfileScope profScope(st.collector);
            for (size_t b = 0; b < B; ++b)
                prepare(inputs[b], st, st.members[b], b == 0);
        }
        prepareMs = steadyNowMs() - p0;

        const double t0 = steadyNowMs();
        {
            obs::ProfileScope profScope(st.collector);
            // The calibration origin: measured op starts are relative
            // to the moment the traversal begins (tracer clock).
            st.executeEpochNs = st.tracer ? st.tracer->nowNs() : 0;
            switch (policy.scheduler) {
              case SchedulerKind::kSerial:
                runSerial(st);
                break;
              case SchedulerKind::kWavefront:
                runWavefront(st, policy);
                break;
              case SchedulerKind::kWorkStealing:
                runWorkStealing(st, policy);
                break;
            }
        }
        wallMs = steadyNowMs() - t0;
    } catch (...) {
        rec.record(obs::ServingEventKind::kFail, 0,
                   policy.telemetry.label, fp_, uint32_t(B),
                   inputs[0].traceId);
        throw;
    }

    std::shared_ptr<const obs::ExecutionProfile> profile;
    if (collector) {
        auto prof = std::make_shared<obs::ExecutionProfile>();
        prof->label = policy.telemetry.label;
        for (size_t k = 0; k < kOpKindCount; ++k) {
            const uint64_t c = collector->opCount[k].load(
                std::memory_order_relaxed);
            if (c == 0)
                continue;
            auto &slice = prof->opKinds[kOpKindNames[k]];
            slice.count = c;
            slice.totalMs = double(collector->opNanos[k].load(
                                std::memory_order_relaxed)) /
                            1e6;
        }
        const auto counter = [&](obs::ProfileCounter c) {
            return collector->counters[size_t(c)].load(
                std::memory_order_relaxed);
        };
        prof->nttForward = counter(obs::ProfileCounter::kNttForward);
        prof->nttInverse = counter(obs::ProfileCounter::kNttInverse);
        prof->keySwitchApplies =
            counter(obs::ProfileCounter::kKeySwitchApply);
        prof->basisExtends =
            counter(obs::ProfileCounter::kBasisExtend);
        prof->cacheHits = counter(obs::ProfileCounter::kCacheHit);
        prof->cacheMisses = counter(obs::ProfileCounter::kCacheMiss);
        for (const Member &m : st.members) {
            prof->encodingCacheHits += m.encodingCacheHits;
            prof->encodingCacheMisses += m.encodingCacheMisses;
        }
        prof->scratchPeakWords = collector->scratchPeakWords.load(
            std::memory_order_relaxed);
        prof->prepareMs = prepareMs;
        prof->executeMs = wallMs;
        for (const Member &m : st.members)
            prof->traceIds.push_back(m.traceId);
        profile = std::move(prof);
    }
    std::shared_ptr<const obs::Trace> trace;
    if (tracer)
        trace = std::make_shared<const obs::Trace>(tracer->finish());

    std::vector<ExecutionResult> results(B);
    for (size_t b = 0; b < B; ++b) {
        ExecutionResult &r = results[b];
        Member &m = st.members[b];
        r.wallMs = wallMs;
        r.opsExecuted = totalWork;
        r.batchSize = B;
        r.peakResidentCiphertexts = st.peakResident;
        r.wavefronts = st.wavefronts;
        r.maxWavefrontWidth = st.maxWavefrontWidth;
        r.steals = st.steals;
        r.encodingCacheHits = m.encodingCacheHits;
        r.encodingCacheMisses = m.encodingCacheMisses;
        r.profile = profile;
        r.trace = trace;
        for (size_t i = 0; i < n; ++i) {
            if (ops[i].kind == HeOpKind::kOutput)
                r.outputs[static_cast<int>(i)] =
                    std::move(*m.outs[i]);
        }
    }

    // Registry fold: cheap per-RUN (not per-op) aggregate metrics,
    // always on — this is the "one snapshot" the bespoke stats structs
    // used to scatter. A batch counts one run per member and the full
    // fused op count (op x member), so executor.ops stays "homomorphic
    // ops actually executed" whether jobs batched or not.
    ExecutorMetrics &em = ExecutorMetrics::get();
    em.runs.inc(B);
    em.ops.inc(totalWork * B);
    em.steals.inc(st.steals);
    em.executeMs.observe(wallMs);

    return results;
}

} // namespace f1
