/**
 * @file
 * Multi-tenant serving engine: the system layer the SoK on FHE
 * accelerators and BASALISC identify as where deployments live —
 * scheduling many concurrent encrypted jobs, not just fast kernels.
 *
 * Jobs flow through a three-stage pipeline:
 *
 *  1. ADMIT — submit() consults an AdmissionController, which reads
 *     the process-wide metrics registry (serving.jobs_* counters and
 *     the serving.queue_ms p95) plus the tenant's queue depth, and
 *     sheds load with AdmissionRejected when the engine is over its
 *     configured limits. Admitted jobs enter their tenant's FIFO
 *     queue stamped with the tenant class's priority and deadline.
 *
 *  2. COALESCE — a dispatching worker picks the most urgent queued
 *     job (SchedulingPolicy::kDeadline: highest tenant priority, then
 *     earliest deadline; kRoundRobin preserves the historical
 *     per-tenant round-robin), then pulls up to maxBatch - 1 more
 *     queued jobs whose Program has the same content-addressed
 *     fingerprint — from any tenant, any queue position — into one
 *     batch. Identical-program jobs are the common serving case (many
 *     clients of one model), and fusing them shares one DAG
 *     traversal, one hint warming, and one scheduling pass.
 *
 *  3. EXECUTE — the batch runs through
 *     OpGraphExecutor::executeBatch, which executes each HeOp across
 *     every batch member before releasing operands; per-op overhead
 *     amortizes over the batch. In the default throughput mode each
 *     worker executes its batch single-threaded
 *     (InlineParallelScope), so concurrency comes from batch-level
 *     parallelism and batches never contend for the shared pool.
 *
 * Caches: a shared LRU over plaintext encodings (content-addressed
 * for BOTH schemes, see EncodingKey) and the scheme's synchronized
 * key-switch hint cache mean repeated requests skip re-encoding and
 * re-keygen.
 *
 * Determinism: job outputs are a pure function of (program, inputs,
 * seed) — independent of worker count, queue interleaving, other
 * tenants' traffic, the scheduling policy, and whether the job ran
 * solo or fused into a batch (tests/test_runtime.cpp asserts
 * bit-identity against isolated execution for both schemes and both
 * policies).
 *
 * Introspection: every stage transition above is recorded into the
 * process-wide flight recorder (obs/eventlog.h — submit/admit/shed/
 * coalesce from the engine, dispatch/fail from the executor,
 * complete/fail per job), each completed job feeds the engine's
 * per-tenant SloTracker (obs/slo.h — deadline attainment and
 * burn rate vs TenantPolicy::deadlineMs, published as slo.<tenant>.*
 * so AdmissionLimits::maxBurnRate can shed on it), and an exporter
 * (obs/exporter.h) can serve all of it to a scraper.
 */
#ifndef F1_RUNTIME_SERVING_H
#define F1_RUNTIME_SERVING_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "runtime/op_graph_executor.h"

namespace f1 {

/** Dispatch order over queued jobs. */
enum class SchedulingPolicy : uint8_t {
    /** Tenant classes: highest priority first, earliest deadline
     *  within a class (EDF), submit order as the final tie-break. */
    kDeadline,
    /** Historical compatibility mode: one job per tenant in
     *  first-seen tenant order, FIFO within a tenant. Priorities and
     *  deadlines still stamp JobResult but do not affect order. */
    kRoundRobin,
};

/**
 * One tenant class's scheduling contract. Tenants not named in
 * ServingConfig::tenantPolicies get ServingConfig::defaultTenantPolicy.
 */
struct TenantPolicy
{
    /** Dispatch priority under kDeadline; higher runs first. */
    int priority = 0;

    /** Soft deadline, milliseconds after submit. Orders dispatch
     *  within a priority class (EDF); it is not a hard guarantee. */
    double deadlineMs = 1000.0;

    /** Shed when this tenant already has this many queued jobs
     *  (0 = unlimited). Checked at admission, per tenant, so one
     *  flooding tenant is shed before it can crowd out the rest. */
    size_t maxQueueDepth = 0;
};

/** Engine-wide admission limits (0 disables each check). */
struct AdmissionLimits
{
    /** Shed when the fleet backlog — jobs_submitted minus completed
     *  minus failed, read from the metrics registry — reaches this. */
    size_t maxBacklog = 0;

    /** Shed while the registry's serving.queue_ms p95 exceeds this
     *  (milliseconds). The histogram is cumulative, so this acts on
     *  the process's whole observed history; benches and tests
     *  bracket epochs with MetricsRegistry::reset(). */
    double maxQueueP95Ms = 0;

    /**
     * Shed a tenant while its SLO error-budget burn rate — the
     * registry's slo.<tenant>.burn_rate gauge (published in
     * milli-units by the engine's SloTracker), divided back to a
     * multiplier — is at or over this value. 1.0 means "shedding
     * starts the moment the tenant burns budget faster than
     * sustainable"; practical alerting thresholds are 2-10. Unlike
     * maxQueueP95Ms this is windowed, so it recovers on its own once
     * the tenant's recent jobs meet their deadlines again. Requires a
     * tenant name (engine submits always pass one); metric absent or
     * name empty = check passes.
     */
    double maxBurnRate = 0;
};

/** Thrown by ServingEngine::submit when admission sheds the job. */
class AdmissionRejected : public FatalError
{
  public:
    explicit AdmissionRejected(const std::string &msg)
        : FatalError(msg)
    {
    }
};

/**
 * Decides admit/shed for one would-be job. Deliberately stateless:
 * every decision is computed from a MetricsSnapshot — the same
 * registry view dashboards export — plus the tenant's queue depth,
 * NOT from private engine counters, so the shedding behavior is
 * exactly reproducible from observable metrics (and tests drive it by
 * staging registry state). ServingEngine owns one and consults it in
 * submit(); it is also usable standalone for capacity planning.
 */
class AdmissionController
{
  public:
    explicit AdmissionController(AdmissionLimits limits)
        : limits_(limits)
    {
    }

    struct Decision
    {
        bool admit = true;
        std::string reason; //!< set when admit == false
    };

    /** Decision from an explicit registry snapshot (the testable
     *  core; pure function of its arguments). `tenantName` keys the
     *  per-tenant SLO metrics (slo.<tenant>.burn_rate) for the
     *  maxBurnRate check; empty skips that check. */
    Decision decide(const obs::MetricsSnapshot &snap,
                    const std::string &tenantName,
                    const TenantPolicy &tenant,
                    size_t tenantQueueDepth) const;

    /** Decision from MetricsRegistry::global().snapshot() (what the
     *  engine calls on every submit). */
    Decision decide(const std::string &tenantName,
                    const TenantPolicy &tenant,
                    size_t tenantQueueDepth) const;

    /** Name-free compatibility overloads (burn-rate check skipped). */
    Decision
    decide(const obs::MetricsSnapshot &snap, const TenantPolicy &tenant,
           size_t tenantQueueDepth) const
    {
        return decide(snap, std::string(), tenant, tenantQueueDepth);
    }
    Decision
    decide(const TenantPolicy &tenant, size_t tenantQueueDepth) const
    {
        return decide(std::string(), tenant, tenantQueueDepth);
    }

    const AdmissionLimits &limits() const { return limits_; }

  private:
    AdmissionLimits limits_;
};

struct ServingConfig
{
    /** Concurrent batch workers; 0 = configuredThreadCount(). */
    unsigned workers = 0;

    /** Entries in the shared plaintext-encoding cache. */
    size_t encodingCacheCapacity = 1024;

    /**
     * true (throughput mode): each worker runs its batch
     * single-threaded. false (latency mode): batches use the shared
     * pool for op/limb parallelism and contend with each other.
     */
    bool inlineIntraOp = true;

    /** Dispatch order over queued jobs (stage 2 of the pipeline). */
    SchedulingPolicy scheduling = SchedulingPolicy::kDeadline;

    /** Identical-program jobs fused per execution (1 = no batching).
     *  Fusion never changes job outputs, only amortizes overhead. */
    size_t maxBatch = 8;

    /** Engine-wide admission limits (stage 1; 0s admit everything). */
    AdmissionLimits admission;

    /** Per-tenant classes; tenants not listed get the default. */
    std::map<std::string, TenantPolicy> tenantPolicies;
    TenantPolicy defaultTenantPolicy;

    /** Per-tenant SLO tracking (always on; it is a per-job cost).
     *  Window size and the target attainment the burn rate is
     *  normalized against — see obs/slo.h. */
    obs::SloConfig slo;

    /**
     * When non-empty, the global flight recorder's JSON dump is
     * written here on every failed batch and again at engine teardown
     * if any job failed — the post-mortem artifact. Empty (default)
     * never touches the filesystem; /events.json and
     * FlightRecorder::global().dumpJson() stay available either way.
     */
    std::string eventDumpPath;

    /**
     * Execution policy applied to every batch. The engine overrides
     * encodingCache with its shared cache, and a job carrying its own
     * ScheduleHints (JobRequest::hints) overrides scheduleHints; the
     * other fields pass through as-is.
     */
    ExecutionPolicy policy;
};

struct JobRequest
{
    /** Program to execute; must outlive the job's future. */
    const Program *program = nullptr;
    std::string tenant = "default";
    RuntimeInputs inputs;

    /** Compiler schedule hints for this job's program (optional; must
     *  outlive the job's future). Overrides ServingConfig's policy
     *  hints, which can only describe one program shape. When jobs
     *  coalesce, the batch lead's hints drive the shared traversal —
     *  hints affect scheduling order only, never output bits. */
    const ScheduleHints *hints = nullptr;
};

struct JobResult
{
    uint64_t jobId = 0;
    std::string tenant;
    ExecutionResult exec; //!< exec.batchSize tells how the job ran
    double queueMs = 0;   //!< submit -> worker pickup
    double serviceMs = 0; //!< pickup -> completion (includes prepare)

    /** Correlation id allocated at submit (obs/tracectx.h): the same
     *  id stamps this job's flight-recorder lifecycle events, its
     *  executor trace spans, and its ExecutionProfile::traceIds entry,
     *  so one slow job can be followed across all three. */
    uint64_t traceId = 0;
};

/**
 * Per-engine counters. Deprecated as an aggregation point: the same
 * totals (fleet-wide, across engines) live in the metrics registry as
 * "serving.jobs_*" / "serving.shed_jobs" counters,
 * "serving.{queue,service}_ms" / "serving.batch_size" histograms, and
 * "serving.queue_depth{,_peak}" gauges — prefer
 * MetricsRegistry::global().snapshot().
 */
struct ServingStats
{
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t shed = 0;
    size_t peakQueueDepth = 0;
    uint64_t encodingCacheHits = 0;
    uint64_t encodingCacheMisses = 0;
    std::map<std::string, uint64_t> completedPerTenant;
};

class ServingEngine
{
  public:
    explicit ServingEngine(BgvScheme *bgv, ServingConfig cfg = {});
    explicit ServingEngine(CkksScheme *ckks, ServingConfig cfg = {});

    /** Drains every accepted job, then stops the workers. */
    ~ServingEngine();

    ServingEngine(const ServingEngine &) = delete;
    ServingEngine &operator=(const ServingEngine &) = delete;

    /**
     * Admits and enqueues a job; the future resolves when it
     * completes (or carries the job's exception).
     *
     * Lifetime: the engine stores req.program and req.hints as BARE
     * POINTERS for the queued job's whole life — both must stay alive
     * until the returned future resolves (or drain() returns). A
     * destroyed-too-early Program is use-after-free inside a worker,
     * not a catchable error, so keep them owned by the caller's
     * longest-lived scope.
     *
     * Throws FatalError if req.program is null or the engine is
     * shutting down, and AdmissionRejected when the admission
     * controller sheds the job (tenant queue over its cap, fleet
     * backlog or queue-latency p95 over the configured limits); shed
     * jobs count into serving.shed_jobs and are never enqueued.
     */
    std::future<JobResult> submit(JobRequest req);

    /** Blocks until every job submitted so far has completed. */
    void drain();

    unsigned workers() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** The admission controller this engine consults (configured
     *  from ServingConfig::admission). */
    const AdmissionController &admission() const { return admission_; }

    /** Per-tenant SLO state (deadline attainment, burn rate) for
     *  every tenant this engine has completed jobs for; also the
     *  /tenants.json source when an exporter is pointed at it. */
    const obs::SloTracker &slo() const { return slo_; }

    /** Deprecated shim (see ServingStats): per-engine snapshot. */
    ServingStats stats() const;

    /** Deprecated shim: per-engine encoding-cache counters; the
     *  registry aggregates them as "cache.serving_encoding.*". */
    CacheStats encodingCacheStats() const { return encCache_.stats(); }

  private:
    struct Job
    {
        uint64_t id = 0;
        JobRequest req;
        std::promise<JobResult> promise;
        double submitMs = 0;
        uint64_t programFp = 0;  //!< coalescing key
        int priority = 0;        //!< tenant class, frozen at submit
        double deadlineAtMs = 0; //!< submitMs + class deadline
        uint64_t traceId = 0;    //!< correlation id (tracectx.h)
    };

    void start();
    void workerLoop();
    const TenantPolicy &policyFor(const std::string &tenant) const;
    //! Pops the dispatch head + same-fingerprint jobs; m_ held.
    bool popBatch(std::vector<Job> &out);
    //! One fused execution; fulfills every member's promise.
    void runBatch(std::vector<Job> &batch);

    BgvScheme *bgv_ = nullptr;
    CkksScheme *ckks_ = nullptr;
    ServingConfig cfg_;
    AdmissionController admission_;
    EncodingCache encCache_;
    //! Publishes slo.<tenant>.* into the registry; its gauges read
    //! atomics only, so registering them is snapshot-safe (see
    //! obs/slo.h on lock ordering).
    obs::SloTracker slo_;

    mutable std::mutex m_;
    std::condition_variable cvWork_;
    std::condition_variable cvDrained_;
    bool accepting_ = true;
    bool stop_ = false;
    uint64_t nextJobId_ = 1;
    size_t pending_ = 0;  //!< queued, not yet picked up
    size_t inFlight_ = 0; //!< picked up, not yet completed
    std::map<std::string, std::deque<Job>> queues_;
    std::vector<std::string> tenantOrder_; //!< first-seen order
    size_t rrCursor_ = 0;
    ServingStats stats_;

    //! Lock-free mirrors of pending_ / peakQueueDepth so the
    //! queue-depth gauges never take m_ inside a registry snapshot.
    std::atomic<size_t> depthNow_{0};
    std::atomic<size_t> depthPeak_{0};

    std::vector<std::thread> workers_;

    //! Declared last: gauge callbacks capture `this`, and GaugeHandle
    //! destruction (first in reverse member order) unregisters them
    //! before any engine state they read goes away.
    obs::GaugeHandle depthGauge_;
    obs::GaugeHandle depthPeakGauge_;
};

} // namespace f1

#endif // F1_RUNTIME_SERVING_H
