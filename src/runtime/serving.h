/**
 * @file
 * Multi-tenant serving engine: the system layer the SoK on FHE
 * accelerators and BASALISC identify as where deployments live —
 * scheduling many concurrent encrypted jobs, not just fast kernels.
 *
 * Requests are (Program, inputs) jobs tagged with a logical tenant.
 * The engine keeps one FIFO queue per tenant and serves them
 * round-robin, so a tenant flooding the queue cannot starve the
 * others. W worker threads run jobs through the op-graph executor; in
 * the default throughput mode each worker executes its job
 * single-threaded (InlineParallelScope), so concurrency comes from
 * job-level parallelism and jobs never contend for the shared pool —
 * the right trade when independent jobs outnumber cores, which is the
 * serving regime.
 *
 * Caches: a shared LRU over plaintext encodings (content-addressed,
 * see EncodingKey) and the scheme's synchronized key-switch hint
 * cache mean repeated requests skip re-encoding and re-keygen.
 *
 * Determinism: job outputs are a pure function of (program, inputs,
 * seed) — independent of worker count, queue interleaving, and other
 * tenants' traffic (tests/test_runtime.cpp asserts bit-identity
 * against isolated execution).
 */
#ifndef F1_RUNTIME_SERVING_H
#define F1_RUNTIME_SERVING_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/op_graph_executor.h"

namespace f1 {

struct ServingConfig
{
    /** Concurrent job workers; 0 = configuredThreadCount(). */
    unsigned workers = 0;

    /** Entries in the shared plaintext-encoding cache. */
    size_t encodingCacheCapacity = 1024;

    /**
     * true (throughput mode): each worker runs its job
     * single-threaded. false (latency mode): jobs use the shared pool
     * for op/limb parallelism and contend with each other.
     */
    bool inlineIntraOp = true;

    /**
     * Execution policy applied to every job. The engine overrides
     * encodingCache with its shared cache, and a job carrying its own
     * ScheduleHints (JobRequest::hints) overrides scheduleHints; the
     * other fields pass through as-is.
     */
    ExecutionPolicy policy;
};

struct JobRequest
{
    /** Program to execute; must outlive the job's future. */
    const Program *program = nullptr;
    std::string tenant = "default";
    RuntimeInputs inputs;

    /** Compiler schedule hints for this job's program (optional; must
     *  outlive the job's future). Overrides ServingConfig's policy
     *  hints, which can only describe one program shape. */
    const ScheduleHints *hints = nullptr;
};

struct JobResult
{
    uint64_t jobId = 0;
    std::string tenant;
    ExecutionResult exec;
    double queueMs = 0;   //!< submit -> worker pickup
    double serviceMs = 0; //!< pickup -> completion (includes prepare)
};

/**
 * Per-engine counters. Deprecated as an aggregation point: the same
 * totals (fleet-wide, across engines) live in the metrics registry as
 * "serving.jobs_*" counters and "serving.{queue,service}_ms"
 * histograms — prefer MetricsRegistry::global().snapshot().
 */
struct ServingStats
{
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    size_t peakQueueDepth = 0;
    uint64_t encodingCacheHits = 0;
    uint64_t encodingCacheMisses = 0;
    std::map<std::string, uint64_t> completedPerTenant;
};

class ServingEngine
{
  public:
    explicit ServingEngine(BgvScheme *bgv, ServingConfig cfg = {});
    explicit ServingEngine(CkksScheme *ckks, ServingConfig cfg = {});

    /** Drains every accepted job, then stops the workers. */
    ~ServingEngine();

    ServingEngine(const ServingEngine &) = delete;
    ServingEngine &operator=(const ServingEngine &) = delete;

    /**
     * Enqueues a job; the future resolves when it completes (or
     * carries the job's exception). Throws if called during
     * destruction.
     */
    std::future<JobResult> submit(JobRequest req);

    /** Blocks until every job submitted so far has completed. */
    void drain();

    unsigned workers() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Deprecated shim (see ServingStats): per-engine snapshot. */
    ServingStats stats() const;

    /** Deprecated shim: per-engine encoding-cache counters; the
     *  registry aggregates them as "cache.serving_encoding.*". */
    CacheStats encodingCacheStats() const { return encCache_.stats(); }

  private:
    struct Job
    {
        uint64_t id = 0;
        JobRequest req;
        std::promise<JobResult> promise;
        double submitMs = 0;
    };

    void start();
    void workerLoop();
    bool popJob(Job &out); //!< round-robin across tenant queues
    JobResult runJob(Job &job);

    BgvScheme *bgv_ = nullptr;
    CkksScheme *ckks_ = nullptr;
    ServingConfig cfg_;
    EncodingCache encCache_;

    mutable std::mutex m_;
    std::condition_variable cvWork_;
    std::condition_variable cvDrained_;
    bool accepting_ = true;
    bool stop_ = false;
    uint64_t nextJobId_ = 1;
    size_t pending_ = 0;  //!< queued, not yet picked up
    size_t inFlight_ = 0; //!< picked up, not yet completed
    std::map<std::string, std::deque<Job>> queues_;
    std::vector<std::string> tenantOrder_; //!< first-seen order
    size_t rrCursor_ = 0;
    ServingStats stats_;

    std::vector<std::thread> workers_;
};

} // namespace f1

#endif // F1_RUNTIME_SERVING_H
