#include "runtime/serving.h"

#include <limits>
#include <optional>

#include "common/error.h"
#include "common/parallel.h"
#include "common/time_util.h"
#include "obs/tracectx.h"

namespace f1 {

namespace {

/** Registry-resolved serving metrics; resolved once, process-wide. */
struct ServingMetrics
{
    obs::Counter &submitted;
    obs::Counter &completed;
    obs::Counter &failed;
    obs::Counter &shed;
    obs::Counter &dispatchPenalties;
    obs::Histogram &queueMs;
    obs::Histogram &serviceMs;
    obs::Histogram &batchSize;

    static ServingMetrics &
    get()
    {
        static constexpr double kBatchBounds[] = {1,  2,  4,  8,
                                                  16, 32, 64, 128};
        // Latency histograms carry a p99 on top of the default
        // p50/p95 set: tail latency is what SLO deadlines price.
        static constexpr double kLatencyQuantiles[] = {0.50, 0.95,
                                                       0.99};
        auto &reg = obs::MetricsRegistry::global();
        static ServingMetrics m{
            reg.counter("serving.jobs_submitted"),
            reg.counter("serving.jobs_completed"),
            reg.counter("serving.jobs_failed"),
            reg.counter("serving.shed_jobs"),
            reg.counter("serving.dispatch_penalties"),
            reg.histogram("serving.queue_ms", {}, kLatencyQuantiles),
            reg.histogram("serving.service_ms", {},
                          kLatencyQuantiles),
            reg.histogram("serving.batch_size", kBatchBounds),
        };
        return m;
    }
};

uint64_t
counterOrZero(const obs::MetricsSnapshot &snap, const char *name)
{
    auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
}

} // namespace

AdmissionController::Decision
AdmissionController::decide(const obs::MetricsSnapshot &snap,
                            const std::string &tenantName,
                            const TenantPolicy &tenant,
                            size_t tenantQueueDepth) const
{
    Decision d;
    if (tenant.maxQueueDepth != 0 &&
        tenantQueueDepth >= tenant.maxQueueDepth) {
        d.admit = false;
        std::ostringstream os;
        os << "tenant queue depth " << tenantQueueDepth
           << " at its cap " << tenant.maxQueueDepth;
        d.reason = os.str();
        return d;
    }
    if (limits_.maxBacklog != 0) {
        const uint64_t sub =
            counterOrZero(snap, "serving.jobs_submitted");
        const uint64_t done =
            counterOrZero(snap, "serving.jobs_completed");
        const uint64_t fail =
            counterOrZero(snap, "serving.jobs_failed");
        const uint64_t backlog =
            sub > done + fail ? sub - done - fail : 0;
        if (backlog >= limits_.maxBacklog) {
            d.admit = false;
            std::ostringstream os;
            os << "fleet backlog " << backlog << " at its cap "
               << limits_.maxBacklog
               << " (serving.jobs_submitted - completed - failed)";
            d.reason = os.str();
            return d;
        }
    }
    if (limits_.maxQueueP95Ms > 0) {
        auto it = snap.histograms.find("serving.queue_ms");
        if (it != snap.histograms.end() && it->second.count > 0) {
            const double p95 = it->second.quantile(0.95);
            if (p95 > limits_.maxQueueP95Ms) {
                d.admit = false;
                std::ostringstream os;
                os << "serving.queue_ms p95 " << p95
                   << "ms over the limit " << limits_.maxQueueP95Ms
                   << "ms";
                d.reason = os.str();
                return d;
            }
        }
    }
    if (limits_.maxBurnRate > 0 && !tenantName.empty()) {
        // The SloTracker publishes burn rate in milli-units (1000 =
        // burning the error budget exactly at the sustainable rate).
        // Windowed, so unlike the cumulative p95 check it re-admits
        // by itself once the tenant's recent jobs meet deadlines.
        const uint64_t milli = counterOrZero(
            snap, ("slo." + tenantName + ".burn_rate").c_str());
        const double rate = double(milli) / 1000.0;
        if (rate >= limits_.maxBurnRate) {
            d.admit = false;
            std::ostringstream os;
            os << "slo." << tenantName << ".burn_rate " << rate
               << "x at/over the limit " << limits_.maxBurnRate
               << "x (deadline misses burning the error budget)";
            d.reason = os.str();
            return d;
        }
    }
    return d;
}

AdmissionController::Decision
AdmissionController::decide(const std::string &tenantName,
                            const TenantPolicy &tenant,
                            size_t tenantQueueDepth) const
{
    return decide(obs::MetricsRegistry::global().snapshot(),
                  tenantName, tenant, tenantQueueDepth);
}

ServingEngine::ServingEngine(BgvScheme *bgv, ServingConfig cfg)
    : bgv_(bgv), cfg_(std::move(cfg)), admission_(cfg_.admission),
      encCache_(cfg_.encodingCacheCapacity, "serving_encoding"),
      slo_(cfg_.slo)
{
    start();
}

ServingEngine::ServingEngine(CkksScheme *ckks, ServingConfig cfg)
    : ckks_(ckks), cfg_(std::move(cfg)), admission_(cfg_.admission),
      encCache_(cfg_.encodingCacheCapacity, "serving_encoding"),
      slo_(cfg_.slo)
{
    start();
}

void
ServingEngine::start()
{
    if (cfg_.maxBatch == 0)
        cfg_.maxBatch = 1;
    // Gauges read the lock-free mirrors, never m_: a registry
    // snapshot holds the registry lock while evaluating gauges, and a
    // submit() path may snapshot the registry — an m_-taking gauge
    // would be a lock-order inversion.
    auto &reg = obs::MetricsRegistry::global();
    depthGauge_ = reg.gauge("serving.queue_depth", [this] {
        return uint64_t(depthNow_.load(std::memory_order_relaxed));
    });
    depthPeakGauge_ = reg.gauge("serving.queue_depth_peak", [this] {
        return uint64_t(depthPeak_.load(std::memory_order_relaxed));
    });
    const unsigned n =
        cfg_.workers == 0 ? configuredThreadCount() : cfg_.workers;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ServingEngine::~ServingEngine()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        accepting_ = false;
    }
    drain(); // every accepted promise is fulfilled before teardown
    {
        std::lock_guard<std::mutex> lock(m_);
        stop_ = true;
    }
    cvWork_.notify_all();
    for (auto &w : workers_)
        w.join();
    // Teardown-with-failures: leave the post-mortem on disk even if
    // nobody inspected the per-failure dumps while serving.
    if (!cfg_.eventDumpPath.empty() && stats_.failed > 0)
        obs::FlightRecorder::global().dumpToFile(cfg_.eventDumpPath);
}

const TenantPolicy &
ServingEngine::policyFor(const std::string &tenant) const
{
    auto it = cfg_.tenantPolicies.find(tenant);
    return it == cfg_.tenantPolicies.end() ? cfg_.defaultTenantPolicy
                                           : it->second;
}

std::future<JobResult>
ServingEngine::submit(JobRequest req)
{
    F1_REQUIRE(req.program != nullptr,
               "JobRequest::program is null; submit() stores program "
               "and hints as bare pointers, so pass a live Program "
               "that outlives the job's future");
    const TenantPolicy &tp = policyFor(req.tenant);
    const uint64_t fp = req.program->fingerprint();
    // One correlation id per job, allocated before the first
    // lifecycle event so even a SHED request is followable.
    const uint64_t traceId = obs::allocateTraceId();
    obs::FlightRecorder &rec = obs::FlightRecorder::global();
    rec.record(obs::ServingEventKind::kSubmit, 0, req.tenant, fp, 0,
               traceId);

    // Snapshot the registry BEFORE taking m_ (the snapshot evaluates
    // gauges across the process; keeping it outside our lock keeps
    // the lock graph acyclic). Skipped entirely when no admission
    // limit is configured — the default submit path stays cheap.
    const bool needsAdmission =
        tp.maxQueueDepth != 0 || admission_.limits().maxBacklog != 0 ||
        admission_.limits().maxQueueP95Ms > 0 ||
        admission_.limits().maxBurnRate > 0;
    std::optional<obs::MetricsSnapshot> snap;
    if (needsAdmission)
        snap = obs::MetricsRegistry::global().snapshot();

    std::future<JobResult> fut;
    uint64_t jobId = 0;
    {
        std::lock_guard<std::mutex> lock(m_);
        F1_REQUIRE(accepting_, "engine is shutting down");

        if (needsAdmission) {
            auto qit = queues_.find(req.tenant);
            const size_t depth =
                qit == queues_.end() ? 0 : qit->second.size();
            const AdmissionController::Decision d =
                admission_.decide(*snap, req.tenant, tp, depth);
            if (!d.admit) {
                ServingMetrics::get().shed.inc();
                ++stats_.shed;
                rec.record(obs::ServingEventKind::kShed, 0,
                           req.tenant, fp, 0, traceId);
                throw AdmissionRejected("job shed for tenant \"" +
                                        req.tenant + "\": " + d.reason);
            }
        }

        Job job;
        job.id = jobId = nextJobId_++;
        job.req = std::move(req);
        job.submitMs = steadyNowMs();
        job.programFp = fp;
        job.priority = tp.priority;
        job.deadlineAtMs = job.submitMs + tp.deadlineMs;
        job.traceId = traceId;
        // The inputs travel into executeBatch by move (runBatch), so
        // stamping them here threads the id into spans + profile
        // without widening the executor API.
        job.req.inputs.traceId = traceId;
        fut = job.promise.get_future();

        auto [it, inserted] = queues_.try_emplace(job.req.tenant);
        if (inserted)
            tenantOrder_.push_back(job.req.tenant);
        const std::string &tenant = it->first;
        it->second.push_back(std::move(job));
        ++pending_;
        ++stats_.submitted;
        ServingMetrics::get().submitted.inc();
        stats_.peakQueueDepth =
            std::max(stats_.peakQueueDepth, pending_);
        depthNow_.store(pending_, std::memory_order_relaxed);
        depthPeak_.store(stats_.peakQueueDepth,
                         std::memory_order_relaxed);
        rec.record(obs::ServingEventKind::kAdmit, jobId, tenant, fp,
                   0, traceId);
    }
    cvWork_.notify_one();
    return fut;
}

bool
ServingEngine::popBatch(std::vector<Job> &out)
{
    // Called with m_ held. Stage 2 of the pipeline: pick the dispatch
    // head under the configured policy, then coalesce.
    const size_t n = tenantOrder_.size();
    size_t leadIdx = n;
    if (cfg_.scheduling == SchedulingPolicy::kRoundRobin) {
        // Scan tenants round-robin from the cursor; the cursor
        // advances past the tenant served, so a tenant with a deep
        // queue yields to every other tenant between its jobs.
        for (size_t k = 0; k < n; ++k) {
            const size_t idx = (rrCursor_ + k) % n;
            if (!queues_[tenantOrder_[idx]].empty()) {
                leadIdx = idx;
                rrCursor_ = (idx + 1) % n;
                break;
            }
        }
    } else {
        // kDeadline: a tenant's class is fixed and its queue is FIFO,
        // so each queue's front is that tenant's most urgent job —
        // scanning fronts finds the global (priority, EDF) head.
        //
        // Burn-rate penalty (the scheduling tier BELOW admission
        // shedding): a tenant at/over half the configured shed
        // threshold (AdmissionLimits::maxBurnRate) is already deep
        // into its error budget, so its jobs lose to EVERY
        // unpenalized tenant's regardless of class priority — the
        // budget-burner yields the datapath before admission has to
        // start rejecting it outright. Among equally-penalized (or
        // equally-clean) fronts the normal priority/EDF/id order
        // holds. Disabled when maxBurnRate is 0 (no SLO shedding
        // configured means no SLO scheduling either). slo_.burnRate
        // takes the tracker mutex under m_; safe — see obs/slo.h.
        const double maxBurn = cfg_.admission.maxBurnRate;
        const Job *best = nullptr;
        bool bestPenalized = false;
        bool sawPenalized = false;
        for (size_t idx = 0; idx < n; ++idx) {
            auto &q = queues_[tenantOrder_[idx]];
            if (q.empty())
                continue;
            const Job &c = q.front();
            const bool penalized =
                maxBurn > 0 &&
                slo_.burnRate(tenantOrder_[idx]) >= 0.5 * maxBurn;
            sawPenalized |= penalized;
            bool wins;
            if (best == nullptr) {
                wins = true;
            } else if (penalized != bestPenalized) {
                wins = !penalized;
            } else {
                wins = c.priority > best->priority ||
                       (c.priority == best->priority &&
                        (c.deadlineAtMs < best->deadlineAtMs ||
                         (c.deadlineAtMs == best->deadlineAtMs &&
                          c.id < best->id)));
            }
            if (wins) {
                best = &c;
                bestPenalized = penalized;
                leadIdx = idx;
            }
        }
        if (sawPenalized && best != nullptr && !bestPenalized)
            ServingMetrics::get().dispatchPenalties.inc();
    }
    if (leadIdx == n)
        return false;

    auto &leadQ = queues_[tenantOrder_[leadIdx]];
    out.push_back(std::move(leadQ.front()));
    leadQ.pop_front();

    // Coalesce: pull queued jobs whose program fingerprint matches
    // the lead's — any tenant, any queue position — up to maxBatch.
    // Pulling mid-queue jobs forward never reorders RESULTS (each job
    // resolves its own future) and never changes bits (executeBatch's
    // determinism contract); it trades strict dispatch order for one
    // shared traversal, which is the batching win.
    const uint64_t fp = out.front().programFp;
    for (size_t k = 0; k < n && out.size() < cfg_.maxBatch; ++k) {
        auto &q = queues_[tenantOrder_[(leadIdx + k) % n]];
        for (auto it = q.begin();
             it != q.end() && out.size() < cfg_.maxBatch;) {
            if (it->programFp == fp) {
                // Recording is lock-free, so it is safe under m_.
                obs::FlightRecorder::global().record(
                    obs::ServingEventKind::kCoalesce, it->id,
                    it->req.tenant, fp,
                    uint32_t(out.size() + 1), it->traceId);
                out.push_back(std::move(*it));
                it = q.erase(it);
            } else {
                ++it;
            }
        }
    }
    return true;
}

void
ServingEngine::runBatch(std::vector<Job> &batch)
{
    const double startMs = steadyNowMs();
    ServingMetrics &sm = ServingMetrics::get();
    sm.batchSize.observe(double(batch.size()));

    bool failed = false;
    std::exception_ptr error;
    std::vector<JobResult> results;
    try {
        const Job &lead = batch.front();
        OpGraphExecutor exec =
            bgv_ ? OpGraphExecutor(*lead.req.program, bgv_)
                 : OpGraphExecutor(*lead.req.program, ckks_);
        ExecutionPolicy pol = cfg_.policy;
        pol.encodingCache = &encCache_;
        if (lead.req.hints != nullptr)
            pol.scheduleHints = lead.req.hints;
        // Tag the batch's telemetry artifacts with the tenant when
        // the whole batch belongs to one, unless the configured
        // policy already carries an explicit label.
        if (pol.telemetry.enabled() && pol.telemetry.label.empty()) {
            bool oneTenant = true;
            for (const Job &j : batch)
                oneTenant &= j.req.tenant == lead.req.tenant;
            pol.telemetry.label =
                oneTenant ? lead.req.tenant : "batch";
        }

        std::vector<RuntimeInputs> ins;
        ins.reserve(batch.size());
        for (Job &j : batch)
            ins.push_back(std::move(j.req.inputs));
        std::vector<ExecutionResult> execs =
            exec.executeBatch(ins, pol);

        const double endMs = steadyNowMs();
        results.resize(batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
            results[i].jobId = batch[i].id;
            results[i].tenant = batch[i].req.tenant;
            results[i].exec = std::move(execs[i]);
            results[i].queueMs = startMs - batch[i].submitMs;
            results[i].serviceMs = endMs - startMs;
            results[i].traceId = batch[i].traceId;
        }
    } catch (...) {
        failed = true;
        error = std::current_exception();
        // Promises are fulfilled below, AFTER the flight-recorder /
        // SLO / stats bookkeeping: a waiter that observes the
        // exception must also observe the failure's post-mortem.
    }

    obs::FlightRecorder &rec = obs::FlightRecorder::global();
    if (failed) {
        sm.failed.inc(batch.size());
        for (const Job &j : batch) {
            rec.record(obs::ServingEventKind::kFail, j.id,
                       j.req.tenant, j.programFp,
                       uint32_t(batch.size()), j.traceId);
            // A failed job attained nothing: an infinite latency
            // misses any finite deadline in the SLO window.
            slo_.recordJob(j.req.tenant,
                           std::numeric_limits<double>::infinity(),
                           policyFor(j.req.tenant).deadlineMs);
        }
        if (!cfg_.eventDumpPath.empty())
            rec.dumpToFile(cfg_.eventDumpPath);
    } else {
        sm.completed.inc(batch.size());
        for (const JobResult &r : results) {
            sm.queueMs.observe(r.queueMs);
            sm.serviceMs.observe(r.serviceMs);
            rec.record(obs::ServingEventKind::kComplete, r.jobId,
                       r.tenant, batch.front().programFp,
                       uint32_t(batch.size()), r.traceId);
            slo_.recordJob(r.tenant, r.queueMs + r.serviceMs,
                           policyFor(r.tenant).deadlineMs);
        }
    }

    // Ordering invariant: every promise is fulfilled BEFORE inFlight_
    // drops to zero. drain() returns when pending_ == inFlight_ == 0,
    // and its contract is that every accepted future is ready by
    // then; fulfilling after the decrement would let drain() (and
    // the destructor behind it) race ahead of waiters' futures.
    {
        std::lock_guard<std::mutex> lock(m_);
        if (failed) {
            stats_.failed += batch.size();
        } else {
            for (const JobResult &r : results) {
                ++stats_.completed;
                ++stats_.completedPerTenant[r.tenant];
                stats_.encodingCacheHits += r.exec.encodingCacheHits;
                stats_.encodingCacheMisses +=
                    r.exec.encodingCacheMisses;
            }
        }
    }
    if (failed) {
        for (Job &j : batch)
            j.promise.set_exception(error);
    } else {
        for (size_t i = 0; i < batch.size(); ++i)
            batch[i].promise.set_value(std::move(results[i]));
    }
    {
        std::lock_guard<std::mutex> lock(m_);
        inFlight_ -= batch.size();
        if (pending_ == 0 && inFlight_ == 0)
            cvDrained_.notify_all();
    }
}

void
ServingEngine::workerLoop()
{
    for (;;) {
        std::vector<Job> batch;
        {
            std::unique_lock<std::mutex> lock(m_);
            cvWork_.wait(lock, [&] { return stop_ || pending_ > 0; });
            if (stop_ && pending_ == 0)
                return;
            if (!popBatch(batch))
                continue;
            pending_ -= batch.size();
            depthNow_.store(pending_, std::memory_order_relaxed);
            inFlight_ += batch.size();
        }

        if (cfg_.inlineIntraOp) {
            InlineParallelScope inlineScope;
            runBatch(batch);
        } else {
            runBatch(batch);
        }
    }
}

void
ServingEngine::drain()
{
    std::unique_lock<std::mutex> lock(m_);
    cvDrained_.wait(lock,
                    [&] { return pending_ == 0 && inFlight_ == 0; });
}

ServingStats
ServingEngine::stats() const
{
    std::lock_guard<std::mutex> lock(m_);
    return stats_;
}

} // namespace f1
