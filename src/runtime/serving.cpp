#include "runtime/serving.h"

#include "common/error.h"
#include "common/parallel.h"
#include "common/time_util.h"
#include "obs/metrics.h"

namespace f1 {

namespace {

/** Registry-resolved serving metrics; resolved once, process-wide. */
struct ServingMetrics
{
    obs::Counter &submitted;
    obs::Counter &completed;
    obs::Counter &failed;
    obs::Histogram &queueMs;
    obs::Histogram &serviceMs;

    static ServingMetrics &
    get()
    {
        auto &reg = obs::MetricsRegistry::global();
        static ServingMetrics m{
            reg.counter("serving.jobs_submitted"),
            reg.counter("serving.jobs_completed"),
            reg.counter("serving.jobs_failed"),
            reg.histogram("serving.queue_ms"),
            reg.histogram("serving.service_ms"),
        };
        return m;
    }
};

} // namespace

ServingEngine::ServingEngine(BgvScheme *bgv, ServingConfig cfg)
    : bgv_(bgv), cfg_(cfg),
      encCache_(cfg.encodingCacheCapacity, "serving_encoding")
{
    start();
}

ServingEngine::ServingEngine(CkksScheme *ckks, ServingConfig cfg)
    : ckks_(ckks), cfg_(cfg),
      encCache_(cfg.encodingCacheCapacity, "serving_encoding")
{
    start();
}

void
ServingEngine::start()
{
    const unsigned n =
        cfg_.workers == 0 ? configuredThreadCount() : cfg_.workers;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ServingEngine::~ServingEngine()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        accepting_ = false;
    }
    drain(); // every accepted promise is fulfilled before teardown
    {
        std::lock_guard<std::mutex> lock(m_);
        stop_ = true;
    }
    cvWork_.notify_all();
    for (auto &w : workers_)
        w.join();
}

std::future<JobResult>
ServingEngine::submit(JobRequest req)
{
    F1_REQUIRE(req.program != nullptr, "job without a program");
    std::future<JobResult> fut;
    {
        std::lock_guard<std::mutex> lock(m_);
        F1_REQUIRE(accepting_, "engine is shutting down");
        Job job;
        job.id = nextJobId_++;
        job.req = std::move(req);
        job.submitMs = steadyNowMs();
        fut = job.promise.get_future();

        auto [it, inserted] =
            queues_.try_emplace(job.req.tenant);
        if (inserted)
            tenantOrder_.push_back(job.req.tenant);
        it->second.push_back(std::move(job));
        ++pending_;
        ++stats_.submitted;
        ServingMetrics::get().submitted.inc();
        stats_.peakQueueDepth =
            std::max(stats_.peakQueueDepth, pending_);
    }
    cvWork_.notify_one();
    return fut;
}

bool
ServingEngine::popJob(Job &out)
{
    // Called with m_ held. Scans tenants round-robin from the cursor;
    // the cursor advances past the tenant served, so a tenant with a
    // deep queue yields to every other tenant between its jobs.
    const size_t n = tenantOrder_.size();
    for (size_t k = 0; k < n; ++k) {
        const size_t idx = (rrCursor_ + k) % n;
        auto &q = queues_[tenantOrder_[idx]];
        if (q.empty())
            continue;
        out = std::move(q.front());
        q.pop_front();
        rrCursor_ = (idx + 1) % n;
        return true;
    }
    return false;
}

JobResult
ServingEngine::runJob(Job &job)
{
    JobResult res;
    res.jobId = job.id;
    res.tenant = job.req.tenant;
    const double startMs = steadyNowMs();
    res.queueMs = startMs - job.submitMs;

    OpGraphExecutor exec =
        bgv_ ? OpGraphExecutor(*job.req.program, bgv_)
             : OpGraphExecutor(*job.req.program, ckks_);
    ExecutionPolicy pol = cfg_.policy;
    pol.encodingCache = &encCache_;
    if (job.req.hints != nullptr)
        pol.scheduleHints = job.req.hints;
    // Tag this job's telemetry artifacts with the tenant, unless the
    // configured policy already carries an explicit label.
    if (pol.telemetry.enabled() && pol.telemetry.label.empty())
        pol.telemetry.label = job.req.tenant;
    res.exec = exec.execute(job.req.inputs, pol);
    res.serviceMs = steadyNowMs() - startMs;
    return res;
}

void
ServingEngine::workerLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(m_);
            cvWork_.wait(lock, [&] { return stop_ || pending_ > 0; });
            if (stop_ && pending_ == 0)
                return;
            if (!popJob(job))
                continue;
            --pending_;
            ++inFlight_;
        }

        bool failed = false;
        JobResult res;
        try {
            if (cfg_.inlineIntraOp) {
                InlineParallelScope inlineScope;
                res = runJob(job);
            } else {
                res = runJob(job);
            }
        } catch (...) {
            failed = true;
            job.promise.set_exception(std::current_exception());
        }

        ServingMetrics &sm = ServingMetrics::get();
        if (failed) {
            sm.failed.inc();
        } else {
            sm.completed.inc();
            sm.queueMs.observe(res.queueMs);
            sm.serviceMs.observe(res.serviceMs);
        }
        {
            std::lock_guard<std::mutex> lock(m_);
            if (failed) {
                ++stats_.failed;
            } else {
                ++stats_.completed;
                ++stats_.completedPerTenant[res.tenant];
                stats_.encodingCacheHits += res.exec.encodingCacheHits;
                stats_.encodingCacheMisses +=
                    res.exec.encodingCacheMisses;
            }
            --inFlight_;
            if (pending_ == 0 && inFlight_ == 0)
                cvDrained_.notify_all();
        }
        if (!failed)
            job.promise.set_value(std::move(res));
    }
}

void
ServingEngine::drain()
{
    std::unique_lock<std::mutex> lock(m_);
    cvDrained_.wait(lock,
                    [&] { return pending_ == 0 && inFlight_ == 0; });
}

ServingStats
ServingEngine::stats() const
{
    std::lock_guard<std::mutex> lock(m_);
    return stats_;
}

} // namespace f1
