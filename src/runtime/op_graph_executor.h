/**
 * @file
 * DAG-parallel execution of DSL programs — the runtime layer between
 * the functional FHE simulator and the serving engine.
 *
 * F1 exploits parallelism below the program (limbs, lanes); this
 * executor adds the level above it: each HeOp's ciphertext operands
 * define a dependency DAG over the Program's op list, and ready
 * wavefronts (ops whose operands are all computed) execute
 * concurrently on the shared thread pool. Per-op FHE kernels called
 * from a pool worker take the pool's inline path, so the two levels
 * compose without nesting deadlocks: wide wavefronts parallelize
 * across ops, narrow ones fall through to per-limb parallelism.
 *
 * Determinism contract: every homomorphic op is a pure function of
 * its operands (hint randomness is derived per identity — see
 * hintSeed — and encryption randomness comes from a per-run Rng
 * consumed in program order during the serial prepare phase), so
 * outputs are bit-identical for any dispatch mode, thread count, and
 * concurrent-job interleaving. tests/test_runtime.cpp asserts this.
 *
 * Liveness: the executor counts the consumers of every ciphertext
 * handle and releases each ciphertext after its last consumer
 * completes, instead of holding every intermediate until the program
 * ends. ExecutionResult::peakResidentCiphertexts reports the
 * high-water mark.
 */
#ifndef F1_RUNTIME_OP_GRAPH_EXECUTOR_H
#define F1_RUNTIME_OP_GRAPH_EXECUTOR_H

#include <complex>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/lru_cache.h"
#include "compiler/program.h"
#include "fhe/bgv.h"
#include "fhe/ckks.h"

namespace f1 {

/** How the executor walks the op graph. */
enum class DispatchMode {
    kSerial,    //!< exact program order, one op at a time
    kWavefront, //!< topological wavefronts across the thread pool
};

/**
 * Per-run inputs, keyed by DSL handle. Handles without supplied data
 * get deterministic pseudo-random values drawn from `seed`; `seed`
 * also drives encryption randomness, so a run's ciphertext bits are a
 * function of (program, inputs, seed) alone.
 */
struct RuntimeInputs
{
    std::map<int, std::vector<uint64_t>> bgvSlots;
    std::map<int, std::vector<uint64_t>> bgvPlainSlots;
    std::map<int, std::vector<std::complex<double>>> ckksSlots;
    std::map<int, std::vector<std::complex<double>>> ckksPlainSlots;
    uint64_t seed = 0xdada;
};

struct ExecutionResult
{
    double wallMs = 0; //!< timed execute phase (prepare excluded)
    std::map<int, Ciphertext> outputs; //!< by DSL handle

    /** High-water mark of simultaneously live ciphertexts (inputs and
     *  intermediates; outputs are copied out and not counted). */
    size_t peakResidentCiphertexts = 0;

    size_t wavefronts = 0;        //!< dispatch rounds executed
    size_t maxWavefrontWidth = 0; //!< widest concurrent op set

    /** Plaintext-encoding cache traffic attributable to this run. */
    uint64_t encodingCacheHits = 0;
    uint64_t encodingCacheMisses = 0;
};

/**
 * Content-addressed key for cached plaintext encodings: scheme/param
 * fingerprint plus a hash of the slot data. Content addressing (rather
 * than (program, handle) addressing) keeps the cache correct across
 * tenants that reuse a program shape with different constants.
 */
struct EncodingKey
{
    uint64_t paramsFp = 0;
    uint64_t dataHash = 0;
    bool operator==(const EncodingKey &) const = default;
};

struct EncodingKeyHash
{
    size_t
    operator()(const EncodingKey &k) const
    {
        return static_cast<size_t>(k.paramsFp ^ k.dataHash);
    }
};

/** Shared cache of BGV slot encodings (the serving engine owns one). */
using EncodingCache =
    LruCache<EncodingKey, std::vector<int64_t>, EncodingKeyHash>;

/**
 * Executes one Program against a scheme backend. The graph analysis
 * (dependents, in-degrees, consumer counts) happens once at
 * construction; run() is re-entrant and holds all per-run state on
 * the stack, so distinct jobs over the same program may share one
 * executor or build their own — both are safe concurrently.
 */
class OpGraphExecutor
{
  public:
    OpGraphExecutor(const Program &prog, BgvScheme *bgv);
    OpGraphExecutor(const Program &prog, CkksScheme *ckks);

    void setDispatchMode(DispatchMode mode) { mode_ = mode; }
    DispatchMode dispatchMode() const { return mode_; }

    /** Optional shared encoding cache (nullptr = encode per run). */
    void setEncodingCache(EncodingCache *cache) { encCache_ = cache; }

    ExecutionResult run(const RuntimeInputs &in = {}) const;

  private:
    struct RunState;

    void buildGraph();
    void prepare(const RuntimeInputs &in, RunState &st) const;
    std::shared_ptr<const std::vector<int64_t>>
    encodeBgvPlain(std::span<const uint64_t> slots, RunState &st) const;
    void executeOp(int h, RunState &st) const;
    void retireOp(int h, RunState &st,
                  std::vector<int> &readyOut) const;

    const Program &prog_;
    BgvScheme *bgv_ = nullptr;
    CkksScheme *ckks_ = nullptr;
    DispatchMode mode_ = DispatchMode::kWavefront;
    EncodingCache *encCache_ = nullptr;

    // Graph structure, fixed per program.
    std::vector<std::vector<int>> dependents_; //!< ct-edge successors
    std::vector<int> indegree_;  //!< ct-operand count per op
    std::vector<int> consumers_; //!< ct uses of each op's result
};

} // namespace f1

#endif // F1_RUNTIME_OP_GRAPH_EXECUTOR_H
