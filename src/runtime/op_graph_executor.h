/**
 * @file
 * DAG-parallel execution of DSL programs — the runtime layer between
 * the functional FHE simulator and the serving engine.
 *
 * F1 exploits parallelism below the program (limbs, lanes); this
 * executor adds the level above it: each HeOp's ciphertext operands
 * define a dependency DAG over the Program's op list, and independent
 * ops execute concurrently on the shared thread pool. Per-op FHE
 * kernels called from a pool worker take the pool's inline path, so
 * the two levels compose without nesting deadlocks: wide op-level
 * parallelism narrows gracefully into per-limb parallelism.
 *
 * Three schedulers (ExecutionPolicy::scheduler):
 *  - kSerial: one op at a time in deterministic topological (program)
 *    order — the debugging/baseline mode.
 *  - kWavefront: rounds of all-ready ops with a barrier between
 *    rounds. Simple, but imbalanced rounds leave threads idle at the
 *    barrier.
 *  - kWorkStealing: continuation scheduling. Each completed op
 *    decrements its consumers' dependency counts and enqueues
 *    newly-ready ops on the completing worker's deque; idle workers
 *    steal. No thread ever waits at a round barrier. When
 *    ExecutionPolicy::scheduleHints carries the compiler's static
 *    schedule, ready ops are prioritized critical-path-first
 *    (cycle-scheduler issue order) with memory-scheduler liveness
 *    rank as the tie-break — F1's §4.4 static schedule driving
 *    dynamic execution.
 *
 * Determinism contract (unchanged across schedulers): every
 * homomorphic op is a pure function of its operands (hint randomness
 * is derived per identity — see hintSeed — and encryption randomness
 * comes from a per-run Rng consumed in program order during the
 * serial prepare phase), so outputs are bit-identical for any
 * scheduler, thread count, schedule hints, and concurrent-job
 * interleaving. tests/test_runtime.cpp asserts this.
 *
 * Liveness: the executor counts the consumers of every ciphertext
 * handle and releases each ciphertext after its last consumer
 * completes, instead of holding every intermediate until the program
 * ends. ExecutionResult::peakResidentCiphertexts reports the
 * high-water mark.
 */
#ifndef F1_RUNTIME_OP_GRAPH_EXECUTOR_H
#define F1_RUNTIME_OP_GRAPH_EXECUTOR_H

#include <complex>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "common/lru_cache.h"
#include "compiler/compiler.h"
#include "compiler/program.h"
#include "fhe/bgv.h"
#include "fhe/ckks.h"
#include "obs/telemetry.h"

namespace f1 {

/** How the executor walks the op graph. */
enum class SchedulerKind : uint8_t {
    kSerial,       //!< topological program order, one op at a time
    kWavefront,    //!< ready wavefronts with a barrier per round
    kWorkStealing, //!< continuation scheduling on per-worker deques
};

/**
 * Deprecated: historical name for SchedulerKind, kept so pre-policy
 * call sites (setDispatchMode) compile unchanged. New code should
 * spell SchedulerKind and pass it through ExecutionPolicy.
 */
using DispatchMode = SchedulerKind;

/**
 * Slot data bound to one input handle. The alternative encodes the
 * scheme's slot type — BGV binds integer slots, CKKS binds complex
 * slots — and whether the handle is an encrypted input (kInput) or a
 * plaintext operand (kInputPlain) is determined by the handle's op
 * kind, not the binding. A future third scheme (TFHE gate inputs,
 * ROADMAP item 5) adds a variant alternative here instead of another
 * pair of parallel maps.
 */
using InputBinding =
    std::variant<std::vector<uint64_t>,               // BGV slots
                 std::vector<std::complex<double>>>;  // CKKS slots

/**
 * Per-run inputs, keyed by DSL handle. Handles without supplied data
 * get deterministic pseudo-random values drawn from `seed`; `seed`
 * also drives encryption randomness, so a run's ciphertext bits are a
 * function of (program, inputs, seed) alone. Binding slot data of the
 * wrong scheme for the executing backend fails with a diagnostic at
 * prepare time.
 */
struct RuntimeInputs
{
    std::map<int, InputBinding> bindings;
    uint64_t seed = 0xdada;

    /** Correlation id stamped by the serving engine at submit
     *  (obs/tracectx.h); the executor carries it into tracer spans,
     *  flight-recorder events, and the ExecutionProfile so one job's
     *  artifacts share a key. Observability only — it NEVER affects
     *  outputs (the determinism contract stays (program, inputs,
     *  seed)). 0 = untraced. */
    uint64_t traceId = 0;

    void
    bind(int handle, std::vector<uint64_t> slots)
    {
        bindings[handle] = std::move(slots);
    }

    void
    bind(int handle, std::vector<std::complex<double>> slots)
    {
        bindings[handle] = std::move(slots);
    }
};

/**
 * Per-run results and scheduler statistics. The stats fields are
 * populated consistently by ALL three schedulers:
 *  - opsExecuted / peakResidentCiphertexts / encodingCache*: always.
 *  - wavefronts / maxWavefrontWidth: kSerial reports (opsExecuted, 1);
 *    kWavefront reports its dispatch rounds and widest round;
 *    kWorkStealing reports 0 rounds (it has none) and the peak number
 *    of ops concurrently in flight as the width.
 *  - steals: nonzero only under kWorkStealing; 0 elsewhere.
 *
 * Batched execution (executeBatch) returns one ExecutionResult per
 * batch member. outputs / encodingCache{Hits,Misses} / opsExecuted /
 * peakResidentCiphertexts are per member (identical to what a solo
 * run of that member reports, ciphertext-count-wise, because every
 * member walks the same graph); wallMs / wavefronts /
 * maxWavefrontWidth / steals describe the one shared traversal and
 * repeat across members; profile and trace, when enabled, are
 * collected once for the whole batch and shared by every member.
 */
struct ExecutionResult
{
    double wallMs = 0; //!< timed execute phase (prepare excluded)
    std::map<int, Ciphertext> outputs; //!< by DSL handle

    /** Non-source ops the scheduler ran (inputs are materialized by
     *  the prepare phase and not counted). */
    size_t opsExecuted = 0;

    /** Members fused into the traversal that produced this result
     *  (1 for execute()). */
    size_t batchSize = 1;

    /** High-water mark of simultaneously live ciphertexts PER MEMBER
     *  (inputs and intermediates; outputs are copied out and not
     *  counted). A batch holds batchSize times this many. */
    size_t peakResidentCiphertexts = 0;

    size_t wavefronts = 0;        //!< dispatch rounds (0 under WS)
    size_t maxWavefrontWidth = 0; //!< widest concurrent op set
    size_t steals = 0; //!< ops taken from another worker's deque (WS)

    /** Plaintext-encoding cache traffic attributable to this run. */
    uint64_t encodingCacheHits = 0;
    uint64_t encodingCacheMisses = 0;

    /** Set iff ExecutionPolicy::telemetry.profile. */
    std::shared_ptr<const obs::ExecutionProfile> profile;

    /** Set iff ExecutionPolicy::telemetry.trace. */
    std::shared_ptr<const obs::Trace> trace;
};

/**
 * Content-addressed key for cached plaintext encodings: scheme/param
 * fingerprint plus a hash of the slot data. Content addressing (rather
 * than (program, handle) addressing) keeps the cache correct across
 * tenants that reuse a program shape with different constants.
 *
 * BGV encodings depend only on (params, slots), so shapeFp stays 0.
 * CKKS encodings additionally depend on the encoding scale and the
 * ciphertext level they are lifted to, so shapeFp folds both in —
 * the same slot data encoded at two scales occupies two entries. The
 * scheme tag inside paramsFp keeps the two key spaces disjoint, so
 * one shared cache serves mixed traffic.
 */
struct EncodingKey
{
    uint64_t paramsFp = 0; //!< scheme tag + ring/modulus fingerprint
    uint64_t dataHash = 0; //!< content hash of the slot data
    uint64_t shapeFp = 0;  //!< CKKS (scale, level); 0 for BGV
    bool operator==(const EncodingKey &) const = default;
};

struct EncodingKeyHash
{
    size_t
    operator()(const EncodingKey &k) const
    {
        return static_cast<size_t>(k.paramsFp ^ k.dataHash ^
                                   (k.shapeFp * 0x9e3779b97f4a7c15ULL));
    }
};

/**
 * A cached plaintext encoding: BGV centered coefficients, or a CKKS
 * plaintext polynomial already lifted to its target (scale, level).
 */
using EncodedPlaintext = std::variant<std::vector<int64_t>, RnsPoly>;

/** Shared cache of plaintext encodings for BOTH schemes (the serving
 *  engine owns one and passes it to every job). */
using EncodingCache =
    LruCache<EncodingKey, EncodedPlaintext, EncodingKeyHash>;

/**
 * Everything that shapes one execution, in one struct — the runtime
 * API is (program, inputs, policy), nothing hides in setter state.
 *
 * scheduleHints must describe the same program the executor was built
 * for (size checked at execute()); nullptr runs hint-free with
 * ascending-handle priority, which preserves the historical order.
 * threadBudget caps the worker count of the work-stealing scheduler
 * (0 = the whole pool); kSerial/kWavefront ignore it. encodingCache
 * nullptr means encode per run. telemetry turns on per-op tracing
 * and/or a per-run ExecutionProfile (both off by default; disabled
 * runs pay only thread-local null checks — see obs/telemetry.h).
 */
struct ExecutionPolicy
{
    SchedulerKind scheduler = SchedulerKind::kWorkStealing;
    const ScheduleHints *scheduleHints = nullptr;
    unsigned threadBudget = 0;
    EncodingCache *encodingCache = nullptr;
    obs::TelemetryOptions telemetry;
};

/**
 * Executes one Program against a scheme backend. The graph analysis
 * (dependents, in-degrees, consumer counts, topological order, cycle
 * rejection) happens once at construction; execute() is re-entrant
 * and holds all per-run state on the stack, so distinct jobs over the
 * same program may share one executor or build their own — both are
 * safe concurrently.
 */
class OpGraphExecutor
{
  public:
    OpGraphExecutor(const Program &prog, BgvScheme *bgv);
    OpGraphExecutor(const Program &prog, CkksScheme *ckks);

    /** The single-job entry point: runs `in` under `policy`.
     *  Equivalent to executeBatch with a one-element span. */
    ExecutionResult execute(const RuntimeInputs &in = {},
                            const ExecutionPolicy &policy = {}) const;

    /**
     * Fused execution of `inputs.size()` jobs of THIS program in one
     * graph traversal: each HeOp is dispatched once and executed
     * across every batch member before its operands are released, so
     * per-op overhead (ready-set pops, hint-cache probes, scheduling
     * bookkeeping, encoding-cache lookups) amortizes over the batch —
     * the serving engine's coalescer feeds identical-program jobs
     * here. Returns one ExecutionResult per member, in input order.
     *
     * Determinism: member i's outputs are bit-identical to a solo
     * execute(inputs[i], policy) — prepare() draws each member's
     * randomness from its own Rng(seed) in program order, and every
     * homomorphic op is a pure function of one member's operands, so
     * fusion shares scheduling and caches but never data.
     */
    std::vector<ExecutionResult>
    executeBatch(std::span<const RuntimeInputs> inputs,
                 const ExecutionPolicy &policy = {}) const;

    //
    // Deprecated pre-policy shims. They fold into a stored
    // ExecutionPolicy that run() forwards to execute(); the stored
    // default keeps the historical kWavefront dispatch. New code
    // should call execute() directly.
    //

    /** Deprecated: use ExecutionPolicy::scheduler. */
    void setDispatchMode(DispatchMode mode)
    {
        shimPolicy_.scheduler = mode;
    }
    /** Deprecated: reads the shim policy, not a live execution. */
    DispatchMode dispatchMode() const { return shimPolicy_.scheduler; }

    /** Deprecated: use ExecutionPolicy::encodingCache. */
    void setEncodingCache(EncodingCache *cache)
    {
        shimPolicy_.encodingCache = cache;
    }

    /** Deprecated: execute() under the shim policy. */
    ExecutionResult run(const RuntimeInputs &in = {}) const
    {
        return execute(in, shimPolicy_);
    }

  private:
    struct RunState;
    struct Member;

    void buildGraph();
    void prepare(const RuntimeInputs &in, RunState &st,
                 Member &m, bool first) const;
    std::shared_ptr<const std::vector<int64_t>>
    encodeBgvPlain(std::span<const uint64_t> slots, RunState &st,
                   Member &m) const;
    std::shared_ptr<const RnsPoly>
    encodeCkksPlain(std::span<const std::complex<double>> slots,
                    double scale, size_t level, RunState &st,
                    Member &m) const;
    void executeOp(int h, RunState &st, Member &m) const;
    //! executeOp + telemetry
    void runOp(int h, RunState &st, Member &m) const;
    void runOpAllMembers(int h, RunState &st) const;
    void retireOp(int h, RunState &st,
                  std::vector<int> &readyOut) const;
    void runSerial(RunState &st) const;
    void runWavefront(RunState &st,
                      const ExecutionPolicy &policy) const;
    void runWorkStealing(RunState &st,
                         const ExecutionPolicy &policy) const;

    const Program &prog_;
    uint64_t fp_ = 0; //!< prog_.fingerprint(), cached for event hooks
    BgvScheme *bgv_ = nullptr;
    CkksScheme *ckks_ = nullptr;
    ExecutionPolicy shimPolicy_{SchedulerKind::kWavefront, nullptr, 0,
                                nullptr};

    // Graph structure, fixed per program.
    std::vector<std::vector<int>> dependents_; //!< ct-edge successors
    std::vector<int> indegree_;  //!< ct-operand count per op
    std::vector<int> consumers_; //!< ct uses of each op's result
    std::vector<int> topoOrder_; //!< ascending-handle Kahn order
};

} // namespace f1

#endif // F1_RUNTIME_OP_GRAPH_EXECUTOR_H
