/**
 * @file
 * Matrix transposition, including a functional model of the paper's
 * quadrant-swap transpose unit (§5.1, Fig. 7). The hardware transposes
 * an E×E matrix by recursively swapping quadrants:
 *
 *     [A B]^T = [A^T C^T]
 *     [C D]     [B^T D^T]
 *
 * transposeQuadrantSwap() follows exactly that recursion so tests can
 * pin the hardware algorithm against the direct index transpose.
 */
#ifndef F1_POLY_TRANSPOSE_H
#define F1_POLY_TRANSPOSE_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"
#include "common/error.h"

namespace f1 {

/** Direct rows×cols transpose: out[c*rows + r] = in[r*cols + c]. */
template <typename T>
void
transposeDirect(std::span<const T> in, std::span<T> out,
                size_t rows, size_t cols)
{
    F1_CHECK(in.size() == rows * cols && out.size() == rows * cols,
             "transpose size mismatch");
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            out[c * rows + r] = in[r * cols + c];
}

namespace detail {

/** Swaps quadrants B and C of the dim×dim submatrix at (r0, c0). */
template <typename T>
void
quadrantSwap(std::span<T> m, size_t stride, size_t r0, size_t c0,
             size_t dim)
{
    const size_t h = dim / 2;
    for (size_t r = 0; r < h; ++r) {
        for (size_t c = 0; c < h; ++c) {
            std::swap(m[(r0 + r) * stride + (c0 + h + c)],
                      m[(r0 + h + r) * stride + (c0 + c)]);
        }
    }
}

template <typename T>
void
transposeQuadrantSwapRec(std::span<T> m, size_t stride, size_t r0,
                         size_t c0, size_t dim)
{
    if (dim == 1)
        return;
    // One full-size quadrant swap followed by recursive transposition
    // of the four quadrants (Fig. 7 right: an E×E quadrant swap feeding
    // log2(E) layers of smaller units).
    quadrantSwap(m, stride, r0, c0, dim);
    const size_t h = dim / 2;
    transposeQuadrantSwapRec(m, stride, r0, c0, h);
    transposeQuadrantSwapRec(m, stride, r0, c0 + h, h);
    transposeQuadrantSwapRec(m, stride, r0 + h, c0, h);
    transposeQuadrantSwapRec(m, stride, r0 + h, c0 + h, h);
}

} // namespace detail

/**
 * In-place transpose of a dim×dim matrix via the quadrant-swap
 * recursion; dim must be a power of two.
 */
template <typename T>
void
transposeQuadrantSwap(std::span<T> m, size_t dim)
{
    F1_CHECK(isPowerOfTwo(dim), "quadrant swap needs power-of-two dim");
    F1_CHECK(m.size() == dim * dim, "quadrant swap size mismatch");
    detail::transposeQuadrantSwapRec(m, dim, 0, 0, dim);
}

} // namespace f1

#endif // F1_POLY_TRANSPOSE_H
