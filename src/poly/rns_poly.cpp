#include "poly/rns_poly.h"

#include "common/error.h"
#include "common/parallel.h"
#include "modular/modarith.h"
#include "poly/automorphism.h"

namespace f1 {

RnsPoly::RnsPoly(const PolyContext *ctx, size_t levels, Domain domain)
    : ctx_(ctx), levels_(levels), domain_(domain),
      data_((size_t)ctx->n() * levels, 0)
{
    F1_REQUIRE(levels >= 1 && levels <= ctx->chainLength(),
               "level count " << levels << " out of range");
}

RnsPoly
RnsPoly::uniform(const PolyContext *ctx, size_t levels, Rng &rng,
                 Domain domain)
{
    // Serial on purpose: all residues draw from one PRNG stream, and
    // the draw order is part of the deterministic key/error schedule.
    RnsPoly p(ctx, levels, domain);
    for (size_t i = 0; i < levels; ++i) {
        const uint32_t q = ctx->modulus(i);
        for (auto &x : p.residue(i))
            x = static_cast<uint32_t>(rng.uniform(q));
    }
    return p;
}

RnsPoly
RnsPoly::fromSigned(const PolyContext *ctx, size_t levels,
                    std::span<const int64_t> coeffs, Domain target)
{
    F1_REQUIRE(coeffs.size() == ctx->n(), "coefficient count mismatch");
    RnsPoly p(ctx, levels, Domain::kCoeff);
    parallelForLimbs(levels, [&](size_t i) {
        const uint32_t q = ctx->modulus(i);
        auto res = p.residue(i);
        for (size_t j = 0; j < coeffs.size(); ++j) {
            int64_t c = coeffs[j] % (int64_t)q;
            if (c < 0)
                c += q;
            res[j] = static_cast<uint32_t>(c);
        }
        if (target == Domain::kNtt)
            ctx->tables(i).forward(res);
    });
    if (target == Domain::kNtt)
        p.domain_ = Domain::kNtt;
    return p;
}

std::span<uint32_t>
RnsPoly::residue(size_t i)
{
    F1_CHECK(i < levels_, "residue index " << i << " out of range");
    return {data_.data() + i * ctx_->n(), ctx_->n()};
}

std::span<const uint32_t>
RnsPoly::residue(size_t i) const
{
    F1_CHECK(i < levels_, "residue index " << i << " out of range");
    return {data_.data() + i * ctx_->n(), ctx_->n()};
}

void
RnsPoly::toNtt()
{
    if (domain_ == Domain::kNtt)
        return;
    parallelForLimbs(levels_,
                     [&](size_t i) { ctx_->tables(i).forward(residue(i)); });
    domain_ = Domain::kNtt;
}

void
RnsPoly::toCoeff()
{
    if (domain_ == Domain::kCoeff)
        return;
    parallelForLimbs(levels_,
                     [&](size_t i) { ctx_->tables(i).inverse(residue(i)); });
    domain_ = Domain::kCoeff;
}

RnsPoly &
RnsPoly::operator+=(const RnsPoly &o)
{
    F1_CHECK(levels_ == o.levels_ && domain_ == o.domain_,
             "operand mismatch in +=");
    parallelForLimbs(levels_, [&](size_t i) {
        const uint32_t q = ctx_->modulus(i);
        auto a = residue(i);
        auto b = o.residue(i);
        for (size_t j = 0; j < a.size(); ++j)
            a[j] = addMod(a[j], b[j], q);
    });
    return *this;
}

RnsPoly &
RnsPoly::operator-=(const RnsPoly &o)
{
    F1_CHECK(levels_ == o.levels_ && domain_ == o.domain_,
             "operand mismatch in -=");
    parallelForLimbs(levels_, [&](size_t i) {
        const uint32_t q = ctx_->modulus(i);
        auto a = residue(i);
        auto b = o.residue(i);
        for (size_t j = 0; j < a.size(); ++j)
            a[j] = subMod(a[j], b[j], q);
    });
    return *this;
}

RnsPoly
RnsPoly::operator+(const RnsPoly &o) const
{
    RnsPoly r = *this;
    r += o;
    return r;
}

RnsPoly
RnsPoly::operator-(const RnsPoly &o) const
{
    RnsPoly r = *this;
    r -= o;
    return r;
}

void
RnsPoly::negate()
{
    parallelForLimbs(levels_, [&](size_t i) {
        const uint32_t q = ctx_->modulus(i);
        for (auto &x : residue(i))
            x = negMod(x, q);
    });
}

RnsPoly &
RnsPoly::mulEq(const RnsPoly &o)
{
    F1_CHECK(domain_ == Domain::kNtt && o.domain_ == Domain::kNtt,
             "element-wise multiply requires NTT domain");
    F1_CHECK(levels_ == o.levels_, "level mismatch in mulEq");
    parallelForLimbs(levels_, [&](size_t i) {
        const uint32_t q = ctx_->modulus(i);
        auto a = residue(i);
        auto b = o.residue(i);
        for (size_t j = 0; j < a.size(); ++j)
            a[j] = mulMod(a[j], b[j], q);
    });
    return *this;
}

RnsPoly
RnsPoly::mul(const RnsPoly &o) const
{
    RnsPoly r = *this;
    r.mulEq(o);
    return r;
}

void
RnsPoly::mulScalarPerResidue(std::span<const uint32_t> scalar)
{
    F1_CHECK(scalar.size() >= levels_, "missing per-residue scalars");
    parallelForLimbs(levels_, [&](size_t i) {
        const uint32_t q = ctx_->modulus(i);
        const uint32_t s = scalar[i];
        const uint32_t pre = shoupPrecompute(s, q);
        for (auto &x : residue(i))
            x = mulModShoup(x, s, pre, q);
    });
}

void
RnsPoly::mulScalar(uint64_t c)
{
    parallelForLimbs(levels_, [&](size_t i) {
        const uint32_t q = ctx_->modulus(i);
        const uint32_t s = static_cast<uint32_t>(c % q);
        const uint32_t pre = shoupPrecompute(s, q);
        for (auto &x : residue(i))
            x = mulModShoup(x, s, pre, q);
    });
}

RnsPoly
RnsPoly::automorphism(uint64_t g) const
{
    RnsPoly out(ctx_, levels_, domain_);
    parallelForLimbs(levels_, [&](size_t i) {
        if (domain_ == Domain::kNtt)
            automorphismNtt(residue(i), out.residue(i), g);
        else
            automorphismCoeff(residue(i), out.residue(i), g,
                              ctx_->modulus(i));
    });
    return out;
}

RnsPoly
RnsPoly::restricted(size_t levels) const
{
    F1_CHECK(levels <= levels_, "restriction beyond current levels");
    RnsPoly out(ctx_, levels, domain_);
    std::copy(data_.begin(), data_.begin() + levels * ctx_->n(),
              out.data_.begin());
    return out;
}

void
RnsPoly::dropLastResidue()
{
    F1_CHECK(levels_ > 1, "cannot drop the last remaining residue");
    --levels_;
    data_.resize(levels_ * ctx_->n());
}

void
RnsPoly::appendZeroResidues(size_t count)
{
    F1_CHECK(levels_ + count <= ctx_->chainLength(),
             "not enough moduli in chain");
    levels_ += count;
    data_.resize(levels_ * ctx_->n(), 0);
}

std::pair<BigInt, bool>
RnsPoly::coeffCentered(size_t idx) const
{
    F1_CHECK(domain_ == Domain::kCoeff,
             "coeffCentered requires coefficient domain");
    std::vector<uint32_t> residues(levels_);
    for (size_t i = 0; i < levels_; ++i)
        residues[i] = residue(i)[idx];
    return ctx_->crtRecombineCentered(residues, levels_);
}

} // namespace f1
