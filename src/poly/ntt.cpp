#include "poly/ntt.h"

#include "common/bits.h"
#include "common/error.h"
#include "modular/modarith.h"
#include "modular/primes.h"
#include "obs/profile.h"

namespace f1 {

NttTables::NttTables(uint32_t n, uint32_t q) : n_(n), q_(q)
{
    F1_REQUIRE(isPowerOfTwo(n) && n >= 2, "NTT length must be a power "
               "of two >= 2, got " << n);
    // Harvey lazy butterflies carry values in [0, 4q); 4q must fit a
    // 32-bit word.
    F1_REQUIRE(q < (1u << kLazyModulusBits),
               "modulus " << q << " leaves no lazy-reduction headroom "
               "(need q < 2^" << kLazyModulusBits << ")");
    F1_REQUIRE((q - 1) % (2 * n) == 0,
               "modulus " << q << " is not NTT-friendly for n=" << n);
    logN_ = log2Exact(n);
    psi_ = primitiveRootOfUnity(2 * n, q);
    psiInv_ = invMod(psi_, q);
    omega_ = mulMod(psi_, psi_, q);
    omegaInv_ = invMod(omega_, q);
    nInv_ = invMod(n, q);
    buildTwiddles();
}

void
NttTables::buildTwiddles()
{
    tw_.resize(n_);
    twPre_.resize(n_);
    twInv_.resize(n_);
    twInvPre_.resize(n_);
    // Stage `half` (half = len/2) uses tw_[half + j] = omega^((n/2half)j).
    for (uint32_t half = 1; half < n_; half <<= 1) {
        uint32_t wlen = powMod(omega_, n_ / (2 * half), q_);
        uint32_t wlenInv = powMod(omegaInv_, n_ / (2 * half), q_);
        uint32_t w = 1, wi = 1;
        for (uint32_t j = 0; j < half; ++j) {
            tw_[half + j] = w;
            twPre_[half + j] = shoupPrecompute(w, q_);
            twInv_[half + j] = wi;
            twInvPre_[half + j] = shoupPrecompute(wi, q_);
            w = mulMod(w, wlen, q_);
            wi = mulMod(wi, wlenInv, q_);
        }
    }

    psiPow_.resize(n_);
    psiPowPre_.resize(n_);
    psiInvN_.resize(n_);
    psiInvNPre_.resize(n_);
    uint32_t p = 1;
    uint32_t pin = nInv_;
    for (uint32_t i = 0; i < n_; ++i) {
        psiPow_[i] = p;
        psiPowPre_[i] = shoupPrecompute(p, q_);
        psiInvN_[i] = pin;
        psiInvNPre_[i] = shoupPrecompute(pin, q_);
        p = mulMod(p, psi_, q_);
        pin = mulMod(pin, psiInv_, q_);
    }

    lenInv_.resize(logN_ + 1);
    lenInvPre_.resize(logN_ + 1);
    for (uint32_t lg = 0; lg <= logN_; ++lg) {
        lenInv_[lg] = invMod(1u << lg, q_);
        lenInvPre_[lg] = shoupPrecompute(lenInv_[lg], q_);
    }
}

uint32_t
NttTables::omegaPow(uint64_t e) const
{
    return powMod(omega_, e % n_, q_);
}

namespace {

/** In-place bit-reversal permutation of a power-of-two-length span. */
void
bitReversePermute(std::span<uint32_t> a)
{
    const uint32_t len = static_cast<uint32_t>(a.size());
    const uint32_t bits = log2Exact(len);
    for (uint32_t i = 0; i < len; ++i) {
        uint32_t j = bitReverse(i, bits);
        if (i < j)
            std::swap(a[i], a[j]);
    }
}

} // namespace

/**
 * Lazy Cooley-Tukey (decimation-in-time) forward stages: bit-reversal
 * followed by Harvey butterflies. Accepts values in [0, 4q); leaves
 * values in [0, 4q). Per butterfly: the upper input is conditionally
 * reduced into [0, 2q), the lower is multiplied lazily into [0, 2q),
 * and the outputs x+t / x-t+2q land back in [0, 4q).
 */
void
NttTables::forwardStagesLazy(std::span<uint32_t> a) const
{
    const uint32_t len = static_cast<uint32_t>(a.size());
    const uint32_t q = q_;
    const uint32_t twoQ = 2 * q;
    bitReversePermute(a);
    for (uint32_t half = 1; half < len; half <<= 1) {
        const uint32_t *tw = tw_.data() + half;
        const uint32_t *twPre = twPre_.data() + half;
        for (uint32_t base = 0; base < len; base += 2 * half) {
            uint32_t *lo = a.data() + base;
            uint32_t *hi = lo + half;
            for (uint32_t j = 0; j < half; ++j) {
                uint32_t x = lo[j];
                if (x >= twoQ)
                    x -= twoQ;
                const uint32_t t =
                    mulModShoupLazy(hi[j], tw[j], twPre[j], q);
                lo[j] = addLazy(x, t);
                hi[j] = subLazy(x, t, twoQ);
            }
        }
    }
}

/**
 * Lazy Gentleman-Sande (decimation-in-frequency) inverse stages with a
 * trailing bit-reversal — the exact same unscaled inverse DFT the
 * strict DIT loop computes, but with the invariant that every value
 * stays in [0, 2q): the sum butterfly output is conditionally reduced,
 * the difference goes through the lazy multiply. Callers apply the
 * 1/len (or fused ψ^-i/n) scaling with a fully-reducing mulModShoup,
 * which accepts the [0, 2q) inputs and restores [0, q).
 */
void
NttTables::inverseStagesLazy(std::span<uint32_t> a) const
{
    const uint32_t len = static_cast<uint32_t>(a.size());
    const uint32_t q = q_;
    const uint32_t twoQ = 2 * q;
    for (uint32_t half = len >> 1; half >= 1; half >>= 1) {
        const uint32_t *tw = twInv_.data() + half;
        const uint32_t *twPre = twInvPre_.data() + half;
        for (uint32_t base = 0; base < len; base += 2 * half) {
            uint32_t *lo = a.data() + base;
            uint32_t *hi = lo + half;
            for (uint32_t j = 0; j < half; ++j) {
                const uint32_t u = lo[j];
                const uint32_t v = hi[j];
                uint32_t s = addLazy(u, v); // [0, 4q)
                if (s >= twoQ)
                    s -= twoQ;
                lo[j] = s;
                hi[j] = mulModShoupLazy(subLazy(u, v, twoQ),
                                        tw[j], twPre[j], q);
            }
        }
    }
    bitReversePermute(a);
}

void
NttTables::cyclicForward(std::span<uint32_t> a) const
{
    const uint32_t len = static_cast<uint32_t>(a.size());
    F1_CHECK(isPowerOfTwo(len) && len <= n_, "bad cyclic NTT length");
    forwardStagesLazy(a);
    const uint32_t twoQ = 2 * q_;
    for (auto &x : a)
        x = lazyCorrect(x, q_, twoQ);
}

void
NttTables::cyclicInverse(std::span<uint32_t> a) const
{
    const uint32_t len = static_cast<uint32_t>(a.size());
    F1_CHECK(isPowerOfTwo(len) && len <= n_, "bad cyclic NTT length");
    inverseStagesLazy(a);
    const uint32_t lg = log2Exact(len);
    // Fully-reducing scale: accepts [0, 2q), restores [0, q).
    for (auto &x : a)
        x = mulModShoup(x, lenInv_[lg], lenInvPre_[lg], q_);
}

void
NttTables::forward(std::span<uint32_t> a) const
{
    F1_CHECK(a.size() == n_, "forward NTT length mismatch");
    // Per-job telemetry: one TLS null check when profiling is off.
    obs::profileAdd(obs::ProfileCounter::kNttForward);
    // ψ-powers pre-multiplication, lazily into [0, 2q).
    for (uint32_t i = 0; i < n_; ++i)
        a[i] = mulModShoupLazy(a[i], psiPow_[i], psiPowPre_[i], q_);
    forwardStagesLazy(a);
    const uint32_t twoQ = 2 * q_;
    for (auto &x : a)
        x = lazyCorrect(x, q_, twoQ);
}

void
NttTables::inverse(std::span<uint32_t> a) const
{
    F1_CHECK(a.size() == n_, "inverse NTT length mismatch");
    obs::profileAdd(obs::ProfileCounter::kNttInverse);
    // Unscaled lazy inverse FFT, then ψ^-i/n in one fully-reducing
    // pass (the fused table folds the 1/n in; it also serves as the
    // lazy pipeline's correction pass).
    inverseStagesLazy(a);
    for (uint32_t i = 0; i < n_; ++i)
        a[i] = mulModShoup(a[i], psiInvN_[i], psiInvNPre_[i], q_);
}

void
NttTables::cyclicForwardStrict(std::span<uint32_t> a) const
{
    const uint32_t len = static_cast<uint32_t>(a.size());
    F1_CHECK(isPowerOfTwo(len) && len <= n_, "bad cyclic NTT length");
    bitReversePermute(a);
    for (uint32_t half = 1; half < len; half <<= 1) {
        for (uint32_t base = 0; base < len; base += 2 * half) {
            for (uint32_t j = 0; j < half; ++j) {
                uint32_t u = a[base + j];
                uint32_t v = mulModShoup(a[base + half + j],
                                         tw_[half + j],
                                         twPre_[half + j], q_);
                a[base + j] = addMod(u, v, q_);
                a[base + half + j] = subMod(u, v, q_);
            }
        }
    }
}

void
NttTables::cyclicInverseStrict(std::span<uint32_t> a) const
{
    const uint32_t len = static_cast<uint32_t>(a.size());
    F1_CHECK(isPowerOfTwo(len) && len <= n_, "bad cyclic NTT length");
    bitReversePermute(a);
    for (uint32_t half = 1; half < len; half <<= 1) {
        for (uint32_t base = 0; base < len; base += 2 * half) {
            for (uint32_t j = 0; j < half; ++j) {
                uint32_t u = a[base + j];
                uint32_t v = mulModShoup(a[base + half + j],
                                         twInv_[half + j],
                                         twInvPre_[half + j], q_);
                a[base + j] = addMod(u, v, q_);
                a[base + half + j] = subMod(u, v, q_);
            }
        }
    }
    const uint32_t lg = log2Exact(len);
    for (auto &x : a)
        x = mulModShoup(x, lenInv_[lg], lenInvPre_[lg], q_);
}

void
NttTables::forwardStrict(std::span<uint32_t> a) const
{
    F1_CHECK(a.size() == n_, "forward NTT length mismatch");
    for (uint32_t i = 0; i < n_; ++i)
        a[i] = mulModShoup(a[i], psiPow_[i], psiPowPre_[i], q_);
    cyclicForwardStrict(a);
}

void
NttTables::inverseStrict(std::span<uint32_t> a) const
{
    F1_CHECK(a.size() == n_, "inverse NTT length mismatch");
    bitReversePermute(a);
    for (uint32_t half = 1; half < n_; half <<= 1) {
        for (uint32_t base = 0; base < n_; base += 2 * half) {
            for (uint32_t j = 0; j < half; ++j) {
                uint32_t u = a[base + j];
                uint32_t v = mulModShoup(a[base + half + j],
                                         twInv_[half + j],
                                         twInvPre_[half + j], q_);
                a[base + j] = addMod(u, v, q_);
                a[base + half + j] = subMod(u, v, q_);
            }
        }
    }
    for (uint32_t i = 0; i < n_; ++i)
        a[i] = mulModShoup(a[i], psiInvN_[i], psiInvNPre_[i], q_);
}

std::vector<uint32_t>
slowNegacyclicNtt(std::span<const uint32_t> a, uint32_t q, uint32_t psi)
{
    const size_t n = a.size();
    std::vector<uint32_t> out(n);
    for (size_t k = 0; k < n; ++k) {
        uint64_t acc = 0;
        uint32_t base = powMod(psi, 2 * k + 1, q);
        uint32_t x = 1;
        for (size_t i = 0; i < n; ++i) {
            acc = (acc + (uint64_t)a[i] * x) % q;
            x = mulMod(x, base, q);
        }
        out[k] = static_cast<uint32_t>(acc);
    }
    return out;
}

std::vector<uint32_t>
slowNegacyclicMul(std::span<const uint32_t> a, std::span<const uint32_t> b,
                  uint32_t q)
{
    const size_t n = a.size();
    F1_CHECK(b.size() == n, "length mismatch");
    std::vector<uint32_t> out(n, 0);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            uint32_t p = mulMod(a[i], b[j], q);
            size_t k = i + j;
            if (k < n)
                out[k] = addMod(out[k], p, q);
            else
                out[k - n] = subMod(out[k - n], p, q); // x^n = -1
        }
    }
    return out;
}

} // namespace f1
