/**
 * @file
 * Automorphisms σ_g of R_q = Z_q[x]/(x^N + 1) (paper §2.2.1) and the
 * vectorized chunk-local decomposition behind F1's automorphism unit
 * (§5.1, Fig. 5-6).
 *
 * Coefficient domain: σ_g maps coefficient a_i to position i*g mod N
 * with a sign flip when i*g mod 2N wraps past N.
 *
 * NTT domain (evaluations at ψ^(2k+1), see ntt.h): σ_g permutes slots
 * without sign flips: out[k] = in[(g*(2k+1) - 1)/2 mod N].
 *
 * Both maps are gathers of the affine form out[j] = in[(m*j + t) mod N]
 * (m odd), which is what the decomposed hardware path implements:
 * a chunk-local column permutation, a transpose, chunk-local row
 * permutations (multiply-by-m plus a per-chunk cyclic shift), and the
 * reverse transpose — each stage touching only E contiguous elements.
 */
#ifndef F1_POLY_AUTOMORPHISM_H
#define F1_POLY_AUTOMORPHISM_H

#include <cstdint>
#include <span>
#include <vector>

namespace f1 {

/** i*g^-1 mod 2N helper: multiplicative inverse of odd g mod 2^k. */
uint64_t invOddMod2k(uint64_t g, uint64_t modulus);

/**
 * Direct coefficient-domain automorphism: out gets σ_g(in).
 * g must be odd, 0 < g < 2N. out must not alias in.
 */
void automorphismCoeff(std::span<const uint32_t> in,
                       std::span<uint32_t> out,
                       uint64_t g, uint32_t q);

/**
 * Direct NTT-domain automorphism (pure permutation, no signs).
 * out must not alias in.
 */
void automorphismNtt(std::span<const uint32_t> in,
                     std::span<uint32_t> out, uint64_t g);

/**
 * Decomposed gather out[j] = in[(m*j + t) mod N] computed exactly as
 * the hardware does: per-chunk column permutation, transpose, per-chunk
 * row permutation, transpose. Exposed so tests can check it against
 * the direct maps; m must be odd. lanes = E (chunk width), must divide
 * N with N/lanes <= lanes.
 */
void affineGatherDecomposed(std::span<const uint32_t> in,
                            std::span<uint32_t> out,
                            uint64_t m, uint64_t t, uint32_t lanes);

/**
 * Coefficient-domain automorphism through the decomposed datapath
 * (gather + sign-flip pass), bit-identical to automorphismCoeff.
 */
void automorphismCoeffDecomposed(std::span<const uint32_t> in,
                                 std::span<uint32_t> out,
                                 uint64_t g, uint32_t q, uint32_t lanes);

/** NTT-domain automorphism through the decomposed datapath. */
void automorphismNttDecomposed(std::span<const uint32_t> in,
                               std::span<uint32_t> out,
                               uint64_t g, uint32_t lanes);

} // namespace f1

#endif // F1_POLY_AUTOMORPHISM_H
