#include "poly/fourstep.h"

#include "common/bits.h"
#include "common/error.h"
#include "modular/modarith.h"
#include "poly/transpose.h"

namespace f1 {

FourStepNtt::FourStepNtt(const NttTables &tables, uint32_t lanes)
    : tables_(tables), lanes_(lanes)
{
    const uint32_t n = tables.n();
    F1_REQUIRE(isPowerOfTwo(lanes), "lane count must be a power of two");
    F1_REQUIRE(n <= (uint64_t)lanes * lanes,
               "four-step unit supports N <= E^2 (N=" << n
               << ", E=" << lanes << ")");
    if (n <= lanes) {
        n1_ = n; // single sub-NTT, all quadrant swaps bypassed
        n2_ = 1;
    } else {
        n1_ = lanes;
        n2_ = n / lanes;
    }

    const uint32_t q = tables.q();
    psiPow_.resize(n);
    psiPowPre_.resize(n);
    psiInvPow_.resize(n);
    psiInvPre_.resize(n);
    const uint32_t psi = tables.psi();
    const uint32_t psi_inv = invMod(psi, q);
    uint32_t p = 1, pi = 1;
    for (uint32_t i = 0; i < n; ++i) {
        psiPow_[i] = p;
        psiPowPre_[i] = shoupPrecompute(p, q);
        psiInvPow_[i] = pi;
        psiInvPre_[i] = shoupPrecompute(pi, q);
        p = mulMod(p, psi, q);
        pi = mulMod(pi, psi_inv, q);
    }
}

void
FourStepNtt::fourStepCyclic(std::span<uint32_t> a, bool inverse) const
{
    const uint32_t n = tables_.n();
    const uint32_t q = tables_.q();
    if (n2_ == 1) {
        // Small-N bypass: a single sub-NTT pass.
        if (inverse)
            tables_.cyclicInverse(a);
        else
            tables_.cyclicForward(a);
        return;
    }

    // View a as an n1×n2 row-major matrix A[j1][j2] = a[j1*n2 + j2].
    // Step 1: transpose so the length-n1 sub-transforms are contiguous.
    std::vector<uint32_t> b(n);
    transposeDirect<uint32_t>(a, b, n1_, n2_);

    // Step 2: n1-point DFT on each of the n2 rows.
    for (uint32_t r = 0; r < n2_; ++r) {
        std::span<uint32_t> row(b.data() + (size_t)r * n1_, n1_);
        if (inverse)
            tables_.cyclicInverse(row);
        else
            tables_.cyclicForward(row);
    }

    // Step 3: twiddle by ω^(±j2*k1) (the unit's multiplier stage).
    for (uint32_t j2 = 0; j2 < n2_; ++j2) {
        const uint32_t base = inverse
            ? invMod(tables_.omegaPow(j2), q)
            : tables_.omegaPow(j2);
        uint32_t w = 1;
        for (uint32_t k1 = 0; k1 < n1_; ++k1) {
            b[(size_t)j2 * n1_ + k1] =
                mulMod(b[(size_t)j2 * n1_ + k1], w, q);
            w = mulMod(w, base, q);
        }
    }

    // Step 4: transpose back; rows are now indexed by k1.
    std::vector<uint32_t> c(n);
    transposeDirect<uint32_t>(b, c, n2_, n1_);

    // Step 5: n2-point DFT on each of the n1 rows (layers bypassed in
    // hardware when n2 < E).
    for (uint32_t r = 0; r < n1_; ++r) {
        std::span<uint32_t> row(c.data() + (size_t)r * n2_, n2_);
        if (inverse)
            tables_.cyclicInverse(row);
        else
            tables_.cyclicForward(row);
    }

    // Step 6: output element X[k2*n1 + k1] = C[k1][k2].
    transposeDirect<uint32_t>(c, a, n1_, n2_);
}

void
FourStepNtt::forward(std::span<uint32_t> a) const
{
    const uint32_t n = tables_.n();
    const uint32_t q = tables_.q();
    F1_CHECK(a.size() == n, "four-step forward length mismatch");
    for (uint32_t i = 0; i < n; ++i)
        a[i] = mulModShoup(a[i], psiPow_[i], psiPowPre_[i], q);
    fourStepCyclic(a, false);
}

void
FourStepNtt::inverse(std::span<uint32_t> a) const
{
    const uint32_t n = tables_.n();
    const uint32_t q = tables_.q();
    F1_CHECK(a.size() == n, "four-step inverse length mismatch");
    fourStepCyclic(a, true);
    for (uint32_t i = 0; i < n; ++i)
        a[i] = mulModShoup(a[i], psiInvPow_[i], psiInvPre_[i], q);
}

} // namespace f1
