#include "poly/automorphism.h"

#include "common/bits.h"
#include "common/error.h"
#include "modular/modarith.h"
#include "poly/transpose.h"

namespace f1 {

uint64_t
invOddMod2k(uint64_t g, uint64_t modulus)
{
    F1_CHECK(isPowerOfTwo(modulus), "modulus must be a power of two");
    F1_CHECK(g & 1, "only odd values are invertible mod 2^k");
    // Newton iteration; 6 rounds cover 64 bits.
    uint64_t x = g;
    for (int i = 0; i < 6; ++i)
        x *= 2 - g * x;
    return x & (modulus - 1);
}

void
automorphismCoeff(std::span<const uint32_t> in, std::span<uint32_t> out,
                  uint64_t g, uint32_t q)
{
    const uint64_t n = in.size();
    F1_CHECK(out.size() == n && isPowerOfTwo(n), "bad automorphism size");
    F1_CHECK((g & 1) && g < 2 * n, "automorphism index must be odd < 2N");
    const uint64_t h = invOddMod2k(g, 2 * n) & (n - 1); // g^-1 mod N
    for (uint64_t j = 0; j < n; ++j) {
        uint64_t i = (j * h) & (n - 1);
        uint64_t full = (i * g) & (2 * n - 1); // i*g mod 2N ∈ {j, j+N}
        uint32_t v = in[i];
        out[j] = (full == j) ? v : negMod(v, q);
    }
}

void
automorphismNtt(std::span<const uint32_t> in, std::span<uint32_t> out,
                uint64_t g)
{
    const uint64_t n = in.size();
    F1_CHECK(out.size() == n && isPowerOfTwo(n), "bad automorphism size");
    F1_CHECK((g & 1) && g < 2 * n, "automorphism index must be odd < 2N");
    // out[k] = in[k''] with 2k''+1 = g(2k+1) mod 2N; no sign flips
    // because ψ^(2N) = 1.
    for (uint64_t k = 0; k < n; ++k) {
        uint64_t src = ((g * (2 * k + 1)) & (2 * n - 1)) >> 1;
        out[k] = in[src];
    }
}

void
affineGatherDecomposed(std::span<const uint32_t> in,
                       std::span<uint32_t> out,
                       uint64_t m, uint64_t t, uint32_t lanes)
{
    const uint64_t n = in.size();
    F1_CHECK(out.size() == n, "size mismatch");
    F1_CHECK((m & 1) != 0, "gather multiplier must be odd");
    F1_CHECK(isPowerOfTwo(lanes) && n % lanes == 0,
             "lanes must be a power of two dividing N");
    const uint64_t e = lanes;
    const uint64_t g_chunks = n / e;

    // Stage 1: identical column permutation applied to every chunk.
    //   B[r][c] = in[r*E + ((m*c + t) mod E)]
    std::vector<uint32_t> b(n);
    for (uint64_t r = 0; r < g_chunks; ++r)
        for (uint64_t c = 0; c < e; ++c)
            b[r * e + c] = in[r * e + ((m * c + t) % e)];

    // Transpose G×E -> E×G (the hardware quadrant-swap unit).
    std::vector<uint32_t> ct(n);
    transposeDirect<uint32_t>(b, ct, g_chunks, e);

    // Stage 2: per-chunk row permutation: multiply-by-m plus a cyclic
    // shift of floor((m*c + t)/E), both mod G.
    std::vector<uint32_t> d(n);
    for (uint64_t c = 0; c < e; ++c) {
        const uint64_t shift = ((m * c + t) / e) % g_chunks;
        for (uint64_t r = 0; r < g_chunks; ++r) {
            uint64_t src = (m * r + shift) % g_chunks;
            d[c * g_chunks + r] = ct[c * g_chunks + src];
        }
    }

    // Reverse transpose E×G -> G×E.
    transposeDirect<uint32_t>(d, out, e, g_chunks);
}

void
automorphismCoeffDecomposed(std::span<const uint32_t> in,
                            std::span<uint32_t> out,
                            uint64_t g, uint32_t q, uint32_t lanes)
{
    const uint64_t n = in.size();
    const uint64_t h = invOddMod2k(g, 2 * n) & (n - 1);
    affineGatherDecomposed(in, out, h, 0, lanes);
    // Sign-flip pass (the "sign flip" block of Fig. 6), chunk-local.
    for (uint64_t j = 0; j < n; ++j) {
        uint64_t i = (j * h) & (n - 1);
        uint64_t full = (i * g) & (2 * n - 1);
        if (full != j)
            out[j] = negMod(out[j], q);
    }
}

void
automorphismNttDecomposed(std::span<const uint32_t> in,
                          std::span<uint32_t> out,
                          uint64_t g, uint32_t lanes)
{
    const uint64_t n = in.size();
    // out[k] = in[(g*(2k+1)-1)/2 mod N] = in[(g*k + (g-1)/2) mod N].
    affineGatherDecomposed(in, out, g & (2 * n - 1), (g - 1) / 2, lanes);
}

} // namespace f1
