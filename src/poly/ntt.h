/**
 * @file
 * Negacyclic Number-Theoretic Transform (paper §2.3, §5.2).
 *
 * Convention: the NTT domain is the vector of evaluations at odd powers
 * of the primitive 2N-th root of unity ψ, in natural order:
 *
 *     NTT(a)[k] = a(ψ^(2k+1)),   k = 0..N-1.
 *
 * With this convention polynomial multiplication mod x^N + 1 is exact
 * element-wise multiplication, and automorphisms act on the NTT domain
 * as index permutations without sign flips (see automorphism.h).
 *
 * The forward transform is implemented as a ψ-powers pre-multiplication
 * followed by a cyclic FFT with ω = ψ²; the inverse is the inverse
 * cyclic FFT followed by a ψ^-i/N post-multiplication. The hardware
 * four-step unit (fourstep.h) folds these multiplications into its
 * twiddle SRAM, as described in §5.2.
 */
#ifndef F1_POLY_NTT_H
#define F1_POLY_NTT_H

#include <cstdint>
#include <span>
#include <vector>

namespace f1 {

/**
 * Precomputed constants for NTTs of length n modulo q. q must satisfy
 * q ≡ 1 (mod 2n) and q < 2^30 (lazy-reduction headroom). All twiddles
 * carry Shoup precomputations so butterfly multiplications take a
 * single mulhi (+ correction on the strict path).
 *
 * The production transforms use Harvey lazy butterflies: intermediate
 * values stay in [0, 4q) through the forward stages and [0, 2q)
 * through the inverse stages, with a single correction pass at the
 * end (folded into the ψ^-i/N scaling for the negacyclic inverse).
 * Inputs must be reduced ([0, q)); outputs are reduced. The *Strict
 * variants run the original fully-reduced butterflies and exist as
 * the golden reference for equivalence tests and the bench_ntt_lazy
 * baseline — both paths are bit-identical by construction (exact
 * modular arithmetic, same transform).
 */
class NttTables
{
  public:
    NttTables(uint32_t n, uint32_t q);

    uint32_t n() const { return n_; }
    uint32_t q() const { return q_; }
    uint32_t psi() const { return psi_; }

    /** Negacyclic forward NTT, in place, natural order in and out. */
    void forward(std::span<uint32_t> a) const;

    /** Negacyclic inverse NTT, in place, natural order in and out. */
    void inverse(std::span<uint32_t> a) const;

    /**
     * Cyclic DFT with root of unity of order `len` = a.size() (a power
     * of two dividing n), natural order. Exposed for the four-step
     * unit, whose inner transforms are cyclic DFTs of length E and G.
     */
    void cyclicForward(std::span<uint32_t> a) const;
    void cyclicInverse(std::span<uint32_t> a) const; // includes 1/len

    /**
     * Strict-reduction reference path (the pre-lazy implementation):
     * every butterfly fully reduces into [0, q). Outputs are
     * bit-identical to the lazy path; kept for equivalence tests and
     * as the bench_ntt_lazy baseline.
     */
    void forwardStrict(std::span<uint32_t> a) const;
    void inverseStrict(std::span<uint32_t> a) const;
    void cyclicForwardStrict(std::span<uint32_t> a) const;
    void cyclicInverseStrict(std::span<uint32_t> a) const;

    /** ω^e where ω = ψ² is the primitive n-th root used by the FFT. */
    uint32_t omegaPow(uint64_t e) const;

  private:
    void buildTwiddles();
    void forwardStagesLazy(std::span<uint32_t> a) const;
    void inverseStagesLazy(std::span<uint32_t> a) const;

    uint32_t n_;
    uint32_t logN_;
    uint32_t q_;
    uint32_t psi_;    //!< primitive 2n-th root of unity
    uint32_t psiInv_;
    uint32_t omega_;  //!< psi^2, primitive n-th root
    uint32_t omegaInv_;
    uint32_t nInv_;

    // Stage twiddles for the cyclic FFT, layout tw_[half + j] for
    // half in {1, 2, 4, ...}, j < half.
    std::vector<uint32_t> tw_, twPre_;
    std::vector<uint32_t> twInv_, twInvPre_;
    // psi^i and psi^-i * nInv with Shoup precomputations.
    std::vector<uint32_t> psiPow_, psiPowPre_;
    std::vector<uint32_t> psiInvN_, psiInvNPre_;
    // Per-length inverse scalings for cyclicInverse.
    std::vector<uint32_t> lenInv_, lenInvPre_; // indexed by log2(len)
};

/** O(n^2) reference negacyclic transform; for tests only. */
std::vector<uint32_t> slowNegacyclicNtt(
    std::span<const uint32_t> a, uint32_t q, uint32_t psi);

/** O(n^2) schoolbook multiplication mod x^n + 1; for tests only. */
std::vector<uint32_t> slowNegacyclicMul(
    std::span<const uint32_t> a, std::span<const uint32_t> b, uint32_t q);

} // namespace f1

#endif // F1_POLY_NTT_H
