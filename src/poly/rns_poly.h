/**
 * @file
 * RNS polynomial: an element of R_Q = Z_Q[x]/(x^N + 1) stored as L
 * residue polynomials of N 32-bit coefficients (the paper's RVec,
 * Listing 1). Tracks whether it currently lives in the coefficient or
 * the NTT domain; element-wise products are only legal in the NTT
 * domain and the operations assert this.
 */
#ifndef F1_POLY_RNS_POLY_H
#define F1_POLY_RNS_POLY_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "poly/poly_context.h"

namespace f1 {

enum class Domain { kCoeff, kNtt };

class RnsPoly
{
  public:
    /** Zero polynomial with `levels` residues. */
    RnsPoly(const PolyContext *ctx, size_t levels,
            Domain domain = Domain::kNtt);

    /** Uniformly random element of R_Q (used for the `a` part of
     *  ciphertexts and public keys). */
    static RnsPoly uniform(const PolyContext *ctx, size_t levels,
                           Rng &rng, Domain domain = Domain::kNtt);

    /**
     * Polynomial with small signed integer coefficients (same integer
     * replicated across residues): error/ternary sampling and constant
     * lifting all use this.
     */
    static RnsPoly fromSigned(const PolyContext *ctx, size_t levels,
                              std::span<const int64_t> coeffs,
                              Domain target = Domain::kNtt);

    const PolyContext *context() const { return ctx_; }
    uint32_t n() const { return ctx_->n(); }
    size_t levels() const { return levels_; }
    Domain domain() const { return domain_; }

    std::span<uint32_t> residue(size_t i);
    std::span<const uint32_t> residue(size_t i) const;

    /** Domain conversions (all residues). */
    void toNtt();
    void toCoeff();

    // Element-wise arithmetic; operands must agree in level count and
    // domain. Levels beyond the shorter operand are dropped by callers.
    RnsPoly &operator+=(const RnsPoly &o);
    RnsPoly &operator-=(const RnsPoly &o);
    RnsPoly operator+(const RnsPoly &o) const;
    RnsPoly operator-(const RnsPoly &o) const;
    void negate();

    /** Element-wise product; both operands must be in the NTT domain. */
    RnsPoly &mulEq(const RnsPoly &o);
    RnsPoly mul(const RnsPoly &o) const;

    /** Multiply every residue i by scalar[i] (already reduced). */
    void mulScalarPerResidue(std::span<const uint32_t> scalar);

    /** Multiply by a small unsigned constant (reduced per residue). */
    void mulScalar(uint64_t c);

    /** Apply σ_g in the current domain. */
    RnsPoly automorphism(uint64_t g) const;

    /** Drop the last residue (modulus-switching support). */
    void dropLastResidue();

    /** Copy of the first `levels` residues. */
    RnsPoly restricted(size_t levels) const;

    /** Adds `count` fresh zero residues (used by base extension). */
    void appendZeroResidues(size_t count);

    /** Exact centered value of coefficient `idx` (CRT; coeff domain). */
    std::pair<BigInt, bool> coeffCentered(size_t idx) const;

    /** Raw storage access for the functional simulator. */
    std::vector<uint32_t> &raw() { return data_; }
    const std::vector<uint32_t> &raw() const { return data_; }
    void setDomain(Domain d) { domain_ = d; }

  private:
    const PolyContext *ctx_;
    size_t levels_;
    Domain domain_;
    std::vector<uint32_t> data_; //!< levels_ * n, residue-major
};

} // namespace f1

#endif // F1_POLY_RNS_POLY_H
