/**
 * @file
 * Shared polynomial-arithmetic context: the RNS modulus chain and the
 * per-modulus NTT tables. Owned by the FHE context; referenced by every
 * RnsPoly.
 */
#ifndef F1_POLY_POLY_CONTEXT_H
#define F1_POLY_POLY_CONTEXT_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bigint.h"
#include "poly/ntt.h"

namespace f1 {

class PolyContext
{
  public:
    /**
     * @param n       polynomial degree (power of two)
     * @param moduli  RNS primes q_0..q_{L-1}; each ≡ 1 (mod 2n)
     */
    PolyContext(uint32_t n, std::vector<uint32_t> moduli);

    uint32_t n() const { return n_; }
    size_t chainLength() const { return moduli_.size(); }
    uint32_t modulus(size_t i) const { return moduli_[i]; }
    const std::vector<uint32_t> &moduli() const { return moduli_; }
    const NttTables &tables(size_t i) const { return *tables_[i]; }

    /** Product q_0 * ... * q_{levels-1}. */
    BigInt modulusProduct(size_t levels) const;

    /**
     * CRT recombination of one coefficient from its first `levels`
     * residues, centered into (-Q/2, Q/2]; returns (magnitude, isNeg).
     */
    std::pair<BigInt, bool> crtRecombineCentered(
        const std::vector<uint32_t> &residues, size_t levels) const;

    /**
     * Precomputed CRT constants for the first `levels` moduli:
     * qHatInv[i] = (Q/q_i)^-1 mod q_i.
     */
    const std::vector<uint32_t> &qHatInv(size_t levels) const;

  private:
    void buildCrt();

    uint32_t n_;
    std::vector<uint32_t> moduli_;
    std::vector<std::unique_ptr<NttTables>> tables_;
    // crt_[lv]: per-prefix-length constants, index lv = levels-1.
    std::vector<std::vector<uint32_t>> qHatInv_;
    std::vector<std::vector<BigInt>> qHat_; //!< qHat_[lv][i] = Q/q_i
    std::vector<BigInt> qProd_;
};

} // namespace f1

#endif // F1_POLY_POLY_CONTEXT_H
