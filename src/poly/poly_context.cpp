#include "poly/poly_context.h"

#include "common/error.h"
#include "common/parallel.h"
#include "modular/modarith.h"

namespace f1 {

PolyContext::PolyContext(uint32_t n, std::vector<uint32_t> moduli)
    : n_(n), moduli_(std::move(moduli))
{
    F1_REQUIRE(!moduli_.empty(), "empty modulus chain");
    // Twiddle tables are per-modulus and independent; build one per
    // work unit (a few MB of root powers each at large N).
    tables_.resize(moduli_.size());
    parallelForLimbs(moduli_.size(), [&](size_t i) {
        tables_[i] = std::make_unique<NttTables>(n_, moduli_[i]);
    });
    buildCrt();
}

void
PolyContext::buildCrt()
{
    const size_t len = moduli_.size();
    qHatInv_.resize(len);
    qHat_.resize(len);
    qProd_.resize(len);
    BigInt prod(1);
    for (size_t lv = 0; lv < len; ++lv) {
        prod.mulSmall(moduli_[lv]);
        qProd_[lv] = prod;
        // For prefix of length lv+1: qHat_i = prod / q_i; compute
        // qHat_i mod q_i as the product of the other primes mod q_i.
        auto &inv = qHatInv_[lv];
        auto &hats = qHat_[lv];
        inv.resize(lv + 1);
        hats.resize(lv + 1);
        for (size_t i = 0; i <= lv; ++i) {
            uint64_t hat = 1;
            BigInt hat_big(1);
            for (size_t j = 0; j <= lv; ++j) {
                if (j != i) {
                    hat = hat * (moduli_[j] % moduli_[i]) % moduli_[i];
                    hat_big.mulSmall(moduli_[j]);
                }
            }
            inv[i] = invMod(static_cast<uint32_t>(hat), moduli_[i]);
            hats[i] = hat_big;
        }
    }
}

BigInt
PolyContext::modulusProduct(size_t levels) const
{
    F1_CHECK(levels >= 1 && levels <= moduli_.size(), "bad level count");
    return qProd_[levels - 1];
}

const std::vector<uint32_t> &
PolyContext::qHatInv(size_t levels) const
{
    F1_CHECK(levels >= 1 && levels <= moduli_.size(), "bad level count");
    return qHatInv_[levels - 1];
}

std::pair<BigInt, bool>
PolyContext::crtRecombineCentered(const std::vector<uint32_t> &residues,
                                  size_t levels) const
{
    F1_CHECK(residues.size() >= levels, "missing residues");
    const BigInt &bigq = qProd_[levels - 1];
    const auto &inv = qHatInv_[levels - 1];

    // x = sum_i [x_i * qHatInv_i mod q_i] * qHat_i  (mod Q)
    BigInt acc(0);
    for (size_t i = 0; i < levels; ++i) {
        uint32_t d = mulMod(residues[i] % moduli_[i], inv[i], moduli_[i]);
        acc += qHat_[levels - 1][i].timesSmall(d);
    }
    acc.reduceBySubtraction(bigq);

    // Center into (-Q/2, Q/2]: Q is odd, so compare 2*acc against Q.
    BigInt twice = acc + acc;
    if (twice > bigq) {
        BigInt mag = bigq - acc;
        return {mag, true};
    }
    return {acc, false};
}

} // namespace f1
