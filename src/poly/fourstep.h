/**
 * @file
 * Functional model of F1's four-step NTT unit (paper §5.2, Fig. 8).
 *
 * The hardware computes an N-point negacyclic NTT as a composition of
 * E-point transforms: E-point NTTs on each chunk, a twiddle
 * multiplication, a transpose, and a second round of E-point NTTs
 * (with layers bypassed when G = N/E < E). The negacyclic pre/post
 * multiplications are folded into the twiddle SRAM contents, which is
 * how a single pipeline serves both forward and inverse negacyclic
 * transforms (the paper's DIT+DIF observation).
 *
 * This model reproduces the dataflow — sub-NTTs of length E and G,
 * explicit twiddle pass, explicit transposes — and is verified
 * bit-identical to the iterative NttTables transform. The per-stage
 * timing of the unit lives in the architecture model, not here.
 */
#ifndef F1_POLY_FOURSTEP_H
#define F1_POLY_FOURSTEP_H

#include <cstdint>
#include <span>
#include <vector>

#include "poly/ntt.h"

namespace f1 {

class FourStepNtt
{
  public:
    /**
     * @param tables iterative-NTT tables for (n, q); reused for the
     *               sub-transform stage twiddles
     * @param lanes  E, the hardware vector width; requires n <= E^2
     */
    FourStepNtt(const NttTables &tables, uint32_t lanes);

    /** Negacyclic forward NTT through the four-step datapath. */
    void forward(std::span<uint32_t> a) const;

    /** Negacyclic inverse NTT through the four-step datapath. */
    void inverse(std::span<uint32_t> a) const;

    uint32_t lanes() const { return lanes_; }

  private:
    void fourStepCyclic(std::span<uint32_t> a, bool inverse) const;

    const NttTables &tables_;
    uint32_t lanes_;
    uint32_t n1_, n2_; //!< N = n1 * n2 decomposition (n1 = E)
    std::vector<uint32_t> psiPow_, psiPowPre_;   //!< ψ^i
    std::vector<uint32_t> psiInvPow_, psiInvPre_; //!< ψ^-i (unscaled)
};

} // namespace f1

#endif // F1_POLY_FOURSTEP_H
