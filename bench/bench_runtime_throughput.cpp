/**
 * @file
 * Serving-runtime throughput bench: a batch of independent encrypted
 * jobs from several logical tenants is executed (a) back-to-back
 * serially — the pre-runtime deployment model — and (b) through the
 * ServingEngine at increasing worker counts. Emits one JSON document
 * (BENCH_runtime.json in CI) with jobs/sec, p50/p95 turnaround
 * latency, queue latency, and cache hit rates per worker count.
 *
 * A second section compares the three ExecutionPolicy schedulers
 * (serial, wavefront, work stealing with compiler schedule hints) on
 * a deep imbalanced DAG built to starve the wavefront barrier, and
 * emits per-scheduler p50/p95 execute latency. These runs have
 * telemetry OFF — their numbers are the trajectory CI compares across
 * PRs to hold the "disabled telemetry costs <1%" contract.
 *
 * A third section re-runs the work-stealing config with full
 * telemetry (per-op trace + execution profile), writes the trace to
 * TRACE_scheduler.json (Perfetto-loadable; uploaded as a CI
 * artifact), validates it in-process (span count == executed ops,
 * exit 4 on mismatch), embeds the profile and a metrics-registry
 * snapshot in the JSON, and in full mode gates the telemetry-ON
 * overhead (exit 5 if p50 exceeds 1.5x the off p50 at >= 4 threads).
 *
 * Every run is checked bit-for-bit against the serial baseline: a
 * throughput number from diverging ciphertexts is a correctness
 * failure, not a perf data point (exit 1). In full mode on >= 4
 * hardware threads two gates are enforced: >= 2x jobs/sec at >= 4
 * workers (exit 2) and work-stealing p95 >= 10% below wavefront p95
 * on the imbalanced DAG (exit 3).
 *
 * Usage: bench_runtime_throughput [--smoke]
 *   --smoke  CI canary: small degree, few jobs, workers {1, 2},
 *            correctness checks only (no perf gates).
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/parallel.h"
#include "common/time_util.h"
#include "compiler/compiler.h"
#include "obs/metrics.h"
#include "runtime/op_graph_executor.h"
#include "runtime/serving.h"

namespace f1::bench {
namespace {

/** Rotate-accumulate over model weights, then a square: the op mix
 *  (plain mul, rotations, ct-ct mul, modswitch) of a small inference
 *  request. */
Program
inferenceProgram(uint32_t n)
{
    Program p(n, 3, "infer");
    int x = p.input();
    int w = p.inputPlain();
    int m = p.mulPlain(x, w);
    int r1 = p.rotate(m, 1);
    int s1 = p.add(m, r1);
    int r2 = p.rotate(s1, 2);
    int s2 = p.add(s1, r2);
    int ms = p.modSwitch(s2);
    p.output(p.mul(ms, ms));
    return p;
}

/** Two-operand aggregate: join-style request shape. */
Program
aggregateProgram(uint32_t n)
{
    Program p(n, 3, "aggregate");
    int x = p.input();
    int y = p.input();
    int t = p.mul(x, y);
    int u = p.rotate(t, 3);
    int v = p.add(t, u);
    p.output(p.modSwitch(v));
    return p;
}

/**
 * Deep imbalanced DAG — the wavefront scheduler's worst case.
 * `chains` independent accumulator chains of `steps` ops each,
 * phase-shifted so every lockstep round holds exactly one expensive
 * ct-ct multiply and chains-1 cheap adds: a wavefront round costs one
 * mul no matter how many threads attack it, so the whole program
 * costs steps x mul. Work stealing runs the chains independently and
 * spreads the muls across workers.
 */
Program
deepImbalancedDag(uint32_t n, int chains, int steps)
{
    Program p(n, 3, "deep-dag");
    std::vector<int> acc(chains);
    for (int c = 0; c < chains; ++c)
        acc[c] = p.input();
    for (int s = 0; s < steps; ++s)
        for (int c = 0; c < chains; ++c)
            acc[c] = s % chains == c ? p.mul(acc[c], acc[c])
                                     : p.add(acc[c], acc[c]);
    for (int c = 0; c < chains; ++c)
        p.output(acc[c]);
    return p;
}

uint64_t
outputsHash(const ExecutionResult &r)
{
    uint64_t h = hashMix(r.outputs.size());
    for (const auto &[handle, ct] : r.outputs) {
        h = hashCombine(h, static_cast<uint64_t>(handle));
        for (const auto &poly : ct.polys)
            for (uint32_t v : poly.raw())
                h = hashCombine(h, v);
        h = hashCombine(h, ct.ptCorrection);
    }
    return h;
}

double
percentile(std::vector<double> xs, double q)
{
    if (xs.empty())
        return 0;
    std::sort(xs.begin(), xs.end());
    const size_t idx = std::min(
        xs.size() - 1,
        static_cast<size_t>(q * static_cast<double>(xs.size())));
    return xs[idx];
}

struct SweepRow
{
    unsigned workers;
    double jobsPerSec;
    double speedup;
    double p50Ms, p95Ms, queueP95Ms;
    uint64_t encHits, encMisses;
    bool bitIdentical;
};

int
run(bool smoke)
{
    const uint32_t n = smoke ? 1024 : 2048;
    const size_t kJobs = smoke ? 8 : 32;
    const std::vector<std::string> tenants = {"alice", "bob", "carol",
                                              "dave"};
    std::vector<unsigned> workerCounts =
        smoke ? std::vector<unsigned>{1, 2}
              : std::vector<unsigned>{1, 2, 4};
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    if (!smoke && hw > 4)
        workerCounts.push_back(hw);

    FheParams params;
    params.n = n;
    params.maxLevel = 3;
    params.primeBits = 28;
    params.plainModulus = 65537;
    FheContext ctx(params);
    BgvScheme bgv(&ctx);

    Program infer = inferenceProgram(n);
    Program aggregate = aggregateProgram(n);
    std::vector<uint64_t> weights(n);
    for (size_t i = 0; i < n; ++i)
        weights[i] = (5 * i + 3) % 65537;

    auto makeRequest = [&](size_t i) {
        JobRequest req;
        req.program = i % 2 == 0 ? &infer : &aggregate;
        req.tenant = tenants[i % tenants.size()];
        req.inputs.seed = 1000 + i;
        if (i % 2 == 0)
            req.inputs.bind(1, weights); // shared model
        return req;
    };

    ExecutionPolicy serialPolicy;
    serialPolicy.scheduler = SchedulerKind::kSerial;

    // --- Untimed warm-up: one run per program shape generates every
    // key-switch hint, so neither the baseline nor the engine sweep
    // absorbs one-time key generation and the comparison measures
    // job-level parallelism plus encoding reuse, not cache warm-up.
    {
        InlineParallelScope inlineScope;
        for (size_t i = 0; i < 2 && i < kJobs; ++i) {
            JobRequest req = makeRequest(i);
            OpGraphExecutor exec(*req.program, &bgv);
            exec.execute(req.inputs, serialPolicy);
        }
    }

    // --- Serial baseline: one job at a time, fully single-threaded,
    // no encoding cache — back-to-back execution as a non-serving
    // deployment would run it.
    std::vector<uint64_t> baselineHash(kJobs);
    std::vector<double> baselineLat(kJobs);
    double baselineTotalMs = 0;
    {
        InlineParallelScope inlineScope;
        const double t0 = steadyNowMs();
        for (size_t i = 0; i < kJobs; ++i) {
            JobRequest req = makeRequest(i);
            OpGraphExecutor exec(*req.program, &bgv);
            const double j0 = steadyNowMs();
            auto res = exec.execute(req.inputs, serialPolicy);
            baselineLat[i] = steadyNowMs() - j0;
            baselineHash[i] = outputsHash(res);
        }
        baselineTotalMs = steadyNowMs() - t0;
    }
    const double baselineJps =
        1000.0 * static_cast<double>(kJobs) / baselineTotalMs;

    // --- Engine sweep.
    std::vector<SweepRow> rows;
    bool allIdentical = true;
    for (unsigned workers : workerCounts) {
        ServingConfig cfg;
        cfg.workers = workers;
        ServingEngine engine(&bgv, cfg);

        const double t0 = steadyNowMs();
        std::vector<std::future<JobResult>> futs;
        futs.reserve(kJobs);
        for (size_t i = 0; i < kJobs; ++i)
            futs.push_back(engine.submit(makeRequest(i)));

        std::vector<double> turnaround(kJobs), queueMs(kJobs);
        bool identical = true;
        for (size_t i = 0; i < kJobs; ++i) {
            JobResult r = futs[i].get();
            turnaround[i] = r.queueMs + r.serviceMs;
            queueMs[i] = r.queueMs;
            identical =
                identical && outputsHash(r.exec) == baselineHash[i];
        }
        const double totalMs = steadyNowMs() - t0;
        allIdentical = allIdentical && identical;

        const auto stats = engine.stats();
        const double jps =
            1000.0 * static_cast<double>(kJobs) / totalMs;
        rows.push_back({workers, jps, jps / baselineJps,
                        percentile(turnaround, 0.50),
                        percentile(turnaround, 0.95),
                        percentile(queueMs, 0.95),
                        stats.encodingCacheHits,
                        stats.encodingCacheMisses, identical});
    }

    // --- Scheduler latency: the same deep imbalanced DAG under all
    // three ExecutionPolicy schedulers, work stealing fed the
    // compiler's schedule hints. wallMs is the timed execute phase
    // (prepare excluded), so this isolates scheduling quality.
    const Program dag =
        deepImbalancedDag(n, 4, smoke ? 8 : 16);
    const ScheduleHints dagHints =
        compileProgram(dag, F1Config{}).hints;
    const int reps = smoke ? 3 : 7;

    struct SchedRow
    {
        const char *name;
        SchedulerKind kind;
        double p50Ms = 0, p95Ms = 0;
        uint64_t steals = 0;
        bool bitIdentical = true;
    };
    std::vector<SchedRow> sched = {
        {"serial", SchedulerKind::kSerial},
        {"wavefront", SchedulerKind::kWavefront},
        {"work_stealing", SchedulerKind::kWorkStealing},
    };
    // --- Telemetry: the work-stealing config again with full
    // telemetry on. The last rep's trace is exported for Perfetto and
    // validated in-process; bit-identity against the baseline proves
    // telemetry never perturbs results.
    double telemOnP50 = 0;
    size_t traceSpans = 0, traceOps = 0, traceLanes = 0;
    uint64_t traceDropped = 0;
    bool traceValid = true;
    std::string profileJson = "{}";
    {
        OpGraphExecutor exec(dag, &bgv);
        RuntimeInputs in;
        in.seed = 77;
        exec.execute(in, serialPolicy); // untimed hint warm-up
        const uint64_t want =
            outputsHash(exec.execute(in, serialPolicy));
        for (SchedRow &row : sched) {
            ExecutionPolicy pol;
            pol.scheduler = row.kind;
            pol.scheduleHints = &dagHints;
            std::vector<double> lat(reps);
            for (int r = 0; r < reps; ++r) {
                auto res = exec.execute(in, pol);
                lat[r] = res.wallMs;
                row.steals += res.steals;
                row.bitIdentical = row.bitIdentical &&
                                   outputsHash(res) == want;
            }
            row.p50Ms = percentile(lat, 0.50);
            row.p95Ms = percentile(lat, 0.95);
            allIdentical = allIdentical && row.bitIdentical;
        }

        ExecutionPolicy pol;
        pol.scheduler = SchedulerKind::kWorkStealing;
        pol.scheduleHints = &dagHints;
        pol.telemetry.profile = true;
        pol.telemetry.trace = true;
        pol.telemetry.label = "bench-scheduler";
        std::vector<double> lat(reps);
        ExecutionResult last;
        for (int r = 0; r < reps; ++r) {
            last = exec.execute(in, pol);
            lat[r] = last.wallMs;
            allIdentical =
                allIdentical && outputsHash(last) == want;
        }
        telemOnP50 = percentile(lat, 0.50);
        if (last.trace && last.profile) {
            traceSpans = last.trace->spanCount();
            traceOps = last.opsExecuted;
            traceLanes = last.trace->laneCount();
            traceDropped = last.trace->droppedEvents();
            traceValid =
                traceSpans == traceOps && traceDropped == 0;
            profileJson = last.profile->toJson();
            std::ofstream f("TRACE_scheduler.json");
            last.trace->writeJson(f);
        } else {
            traceValid = false;
        }
    }

    const auto hintStats = bgv.hintCacheStats();
    printf("{\n  \"bench\": \"runtime_throughput\",\n");
    printf("  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    printf("  \"hw_concurrency\": %u,\n", hw);
    printf("  \"n\": %u, \"levels\": 3, \"jobs\": %zu, \"tenants\": "
           "%zu,\n",
           n, kJobs, tenants.size());
    printf("  \"baseline\": {\"jobs_per_sec\": %.2f, \"p50_ms\": %.3f, "
           "\"p95_ms\": %.3f},\n",
           baselineJps, percentile(baselineLat, 0.50),
           percentile(baselineLat, 0.95));
    printf("  \"results\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const SweepRow &r = rows[i];
        printf("    {\"workers\": %u, \"jobs_per_sec\": %.2f, "
               "\"speedup_vs_serial\": %.3f, \"p50_ms\": %.3f, "
               "\"p95_ms\": %.3f, \"queue_p95_ms\": %.3f, "
               "\"enc_cache_hits\": %llu, \"enc_cache_misses\": %llu, "
               "\"bit_identical\": %s}%s\n",
               r.workers, r.jobsPerSec, r.speedup, r.p50Ms, r.p95Ms,
               r.queueP95Ms, (unsigned long long)r.encHits,
               (unsigned long long)r.encMisses,
               r.bitIdentical ? "true" : "false",
               i + 1 < rows.size() ? "," : "");
    }
    printf("  ],\n");
    printf("  \"scheduler_latency\": {\n");
    printf("    \"program\": \"deep-dag\", \"chains\": 4, \"reps\": "
           "%d, \"threads\": %u,\n",
           reps, hw);
    printf("    \"results\": [\n");
    for (size_t i = 0; i < sched.size(); ++i) {
        const SchedRow &r = sched[i];
        printf("      {\"scheduler\": \"%s\", \"p50_ms\": %.3f, "
               "\"p95_ms\": %.3f, \"steals\": %llu, "
               "\"bit_identical\": %s}%s\n",
               r.name, r.p50Ms, r.p95Ms,
               (unsigned long long)r.steals,
               r.bitIdentical ? "true" : "false",
               i + 1 < sched.size() ? "," : "");
    }
    printf("    ],\n");
    printf("    \"ws_vs_wavefront_p95\": %.3f\n  },\n",
           sched[1].p95Ms > 0 ? sched[2].p95Ms / sched[1].p95Ms : 0.0);
    printf("  \"telemetry\": {\n");
    printf("    \"scheduler\": \"work_stealing\", \"off_p50_ms\": "
           "%.3f, \"on_p50_ms\": %.3f, \"on_overhead\": %.3f,\n",
           sched[2].p50Ms, telemOnP50,
           sched[2].p50Ms > 0 ? telemOnP50 / sched[2].p50Ms : 0.0);
    printf("    \"trace_file\": \"TRACE_scheduler.json\", "
           "\"trace_spans\": %zu, \"ops_executed\": %zu, "
           "\"trace_lanes\": %zu, \"trace_dropped\": %llu, "
           "\"trace_valid\": %s,\n",
           traceSpans, traceOps, traceLanes,
           (unsigned long long)traceDropped,
           traceValid ? "true" : "false");
    printf("    \"profile\": %s\n  },\n", profileJson.c_str());
    printf("  \"hint_cache\": {\"hits\": %llu, \"misses\": %llu, "
           "\"evictions\": %llu},\n",
           (unsigned long long)hintStats.hits,
           (unsigned long long)hintStats.misses,
           (unsigned long long)hintStats.evictions);
    printf("  \"metrics\": %s\n}\n",
           obs::MetricsRegistry::global().snapshot().toJson().c_str());

    if (!allIdentical)
        return 1;
    // Trace integrity is a correctness gate in both modes: one span
    // per executed op, nothing dropped at this scale.
    if (!traceValid) {
        fprintf(stderr,
                "FAIL: trace invalid (%zu spans vs %zu ops, %llu "
                "dropped)\n",
                traceSpans, traceOps,
                (unsigned long long)traceDropped);
        return 4;
    }
    if (!smoke) {
        // Acceptance gate: >= 2x jobs/sec over back-to-back serial at
        // >= 4 workers on an independent-job batch.
        for (const SweepRow &r : rows) {
            if (r.workers >= 4 && hw >= 4 && r.speedup < 2.0) {
                fprintf(stderr,
                        "FAIL: %u workers reached only %.2fx\n",
                        r.workers, r.speedup);
                return 2;
            }
        }
        // Acceptance gate: on the deep imbalanced DAG at >= 4
        // threads, work stealing must beat the wavefront barrier by
        // >= 10% at p95. Below 4 hardware threads there is no
        // barrier idleness to reclaim, so the gate is moot.
        if (hw >= 4 &&
            sched[2].p95Ms > 0.90 * sched[1].p95Ms) {
            fprintf(stderr,
                    "FAIL: work-stealing p95 %.3f ms vs wavefront "
                    "%.3f ms (< 10%% improvement)\n",
                    sched[2].p95Ms, sched[1].p95Ms);
            return 3;
        }
        // Telemetry sanity gate: full tracing + profiling must stay
        // cheap (two clock reads and one ring store per op). The off
        // path is gated structurally (TLS null checks only) and by
        // the scheduler-latency trajectory above.
        if (hw >= 4 && sched[2].p50Ms > 0 &&
            telemOnP50 > 1.5 * sched[2].p50Ms) {
            fprintf(stderr,
                    "FAIL: telemetry-on p50 %.3f ms vs off %.3f ms "
                    "(> 1.5x)\n",
                    telemOnP50, sched[2].p50Ms);
            return 5;
        }
    }
    return 0;
}

} // namespace
} // namespace f1::bench

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;
    return f1::bench::run(smoke);
}
