/**
 * @file
 * Serving-runtime throughput bench: a batch of independent encrypted
 * jobs from several logical tenants is executed (a) back-to-back
 * serially — the pre-runtime deployment model — and (b) through the
 * ServingEngine at increasing worker counts. Emits one JSON document
 * (BENCH_runtime.json in CI) with jobs/sec, p50/p95 turnaround
 * latency, queue latency, and cache hit rates per worker count.
 *
 * Every engine run is checked bit-for-bit against the serial
 * baseline: a throughput number from diverging ciphertexts is a
 * correctness failure, not a perf data point (exit 1). In full mode
 * the ≥2x jobs/sec acceptance gate at >=4 workers is enforced
 * (exit 2 on miss).
 *
 * Usage: bench_runtime_throughput [--smoke]
 *   --smoke  CI canary: small degree, few jobs, workers {1, 2},
 *            correctness checks only (no speedup gate).
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/parallel.h"
#include "common/time_util.h"
#include "runtime/op_graph_executor.h"
#include "runtime/serving.h"

namespace f1::bench {
namespace {

/** Rotate-accumulate over model weights, then a square: the op mix
 *  (plain mul, rotations, ct-ct mul, modswitch) of a small inference
 *  request. */
Program
inferenceProgram(uint32_t n)
{
    Program p(n, 3, "infer");
    int x = p.input();
    int w = p.inputPlain();
    int m = p.mulPlain(x, w);
    int r1 = p.rotate(m, 1);
    int s1 = p.add(m, r1);
    int r2 = p.rotate(s1, 2);
    int s2 = p.add(s1, r2);
    int ms = p.modSwitch(s2);
    p.output(p.mul(ms, ms));
    return p;
}

/** Two-operand aggregate: join-style request shape. */
Program
aggregateProgram(uint32_t n)
{
    Program p(n, 3, "aggregate");
    int x = p.input();
    int y = p.input();
    int t = p.mul(x, y);
    int u = p.rotate(t, 3);
    int v = p.add(t, u);
    p.output(p.modSwitch(v));
    return p;
}

uint64_t
outputsHash(const ExecutionResult &r)
{
    uint64_t h = hashMix(r.outputs.size());
    for (const auto &[handle, ct] : r.outputs) {
        h = hashCombine(h, static_cast<uint64_t>(handle));
        for (const auto &poly : ct.polys)
            for (uint32_t v : poly.raw())
                h = hashCombine(h, v);
        h = hashCombine(h, ct.ptCorrection);
    }
    return h;
}

double
percentile(std::vector<double> xs, double q)
{
    if (xs.empty())
        return 0;
    std::sort(xs.begin(), xs.end());
    const size_t idx = std::min(
        xs.size() - 1,
        static_cast<size_t>(q * static_cast<double>(xs.size())));
    return xs[idx];
}

struct SweepRow
{
    unsigned workers;
    double jobsPerSec;
    double speedup;
    double p50Ms, p95Ms, queueP95Ms;
    uint64_t encHits, encMisses;
    bool bitIdentical;
};

int
run(bool smoke)
{
    const uint32_t n = smoke ? 1024 : 2048;
    const size_t kJobs = smoke ? 8 : 32;
    const std::vector<std::string> tenants = {"alice", "bob", "carol",
                                              "dave"};
    std::vector<unsigned> workerCounts =
        smoke ? std::vector<unsigned>{1, 2}
              : std::vector<unsigned>{1, 2, 4};
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    if (!smoke && hw > 4)
        workerCounts.push_back(hw);

    FheParams params;
    params.n = n;
    params.maxLevel = 3;
    params.primeBits = 28;
    params.plainModulus = 65537;
    FheContext ctx(params);
    BgvScheme bgv(&ctx);

    Program infer = inferenceProgram(n);
    Program aggregate = aggregateProgram(n);
    std::vector<uint64_t> weights(n);
    for (size_t i = 0; i < n; ++i)
        weights[i] = (5 * i + 3) % 65537;

    auto makeRequest = [&](size_t i) {
        JobRequest req;
        req.program = i % 2 == 0 ? &infer : &aggregate;
        req.tenant = tenants[i % tenants.size()];
        req.inputs.seed = 1000 + i;
        if (i % 2 == 0)
            req.inputs.bgvPlainSlots[1] = weights; // shared model
        return req;
    };

    // --- Untimed warm-up: one run per program shape generates every
    // key-switch hint, so neither the baseline nor the engine sweep
    // absorbs one-time key generation and the comparison measures
    // job-level parallelism plus encoding reuse, not cache warm-up.
    {
        InlineParallelScope inlineScope;
        for (size_t i = 0; i < 2 && i < kJobs; ++i) {
            JobRequest req = makeRequest(i);
            OpGraphExecutor exec(*req.program, &bgv);
            exec.setDispatchMode(DispatchMode::kSerial);
            exec.run(req.inputs);
        }
    }

    // --- Serial baseline: one job at a time, fully single-threaded,
    // no encoding cache — back-to-back execution as a non-serving
    // deployment would run it.
    std::vector<uint64_t> baselineHash(kJobs);
    std::vector<double> baselineLat(kJobs);
    double baselineTotalMs = 0;
    {
        InlineParallelScope inlineScope;
        const double t0 = steadyNowMs();
        for (size_t i = 0; i < kJobs; ++i) {
            JobRequest req = makeRequest(i);
            OpGraphExecutor exec(*req.program, &bgv);
            exec.setDispatchMode(DispatchMode::kSerial);
            const double j0 = steadyNowMs();
            auto res = exec.run(req.inputs);
            baselineLat[i] = steadyNowMs() - j0;
            baselineHash[i] = outputsHash(res);
        }
        baselineTotalMs = steadyNowMs() - t0;
    }
    const double baselineJps =
        1000.0 * static_cast<double>(kJobs) / baselineTotalMs;

    // --- Engine sweep.
    std::vector<SweepRow> rows;
    bool allIdentical = true;
    for (unsigned workers : workerCounts) {
        ServingConfig cfg;
        cfg.workers = workers;
        ServingEngine engine(&bgv, cfg);

        const double t0 = steadyNowMs();
        std::vector<std::future<JobResult>> futs;
        futs.reserve(kJobs);
        for (size_t i = 0; i < kJobs; ++i)
            futs.push_back(engine.submit(makeRequest(i)));

        std::vector<double> turnaround(kJobs), queueMs(kJobs);
        bool identical = true;
        for (size_t i = 0; i < kJobs; ++i) {
            JobResult r = futs[i].get();
            turnaround[i] = r.queueMs + r.serviceMs;
            queueMs[i] = r.queueMs;
            identical =
                identical && outputsHash(r.exec) == baselineHash[i];
        }
        const double totalMs = steadyNowMs() - t0;
        allIdentical = allIdentical && identical;

        const auto stats = engine.stats();
        const double jps =
            1000.0 * static_cast<double>(kJobs) / totalMs;
        rows.push_back({workers, jps, jps / baselineJps,
                        percentile(turnaround, 0.50),
                        percentile(turnaround, 0.95),
                        percentile(queueMs, 0.95),
                        stats.encodingCacheHits,
                        stats.encodingCacheMisses, identical});
    }

    const auto hintStats = bgv.hintCacheStats();
    printf("{\n  \"bench\": \"runtime_throughput\",\n");
    printf("  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    printf("  \"hw_concurrency\": %u,\n", hw);
    printf("  \"n\": %u, \"levels\": 3, \"jobs\": %zu, \"tenants\": "
           "%zu,\n",
           n, kJobs, tenants.size());
    printf("  \"baseline\": {\"jobs_per_sec\": %.2f, \"p50_ms\": %.3f, "
           "\"p95_ms\": %.3f},\n",
           baselineJps, percentile(baselineLat, 0.50),
           percentile(baselineLat, 0.95));
    printf("  \"results\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const SweepRow &r = rows[i];
        printf("    {\"workers\": %u, \"jobs_per_sec\": %.2f, "
               "\"speedup_vs_serial\": %.3f, \"p50_ms\": %.3f, "
               "\"p95_ms\": %.3f, \"queue_p95_ms\": %.3f, "
               "\"enc_cache_hits\": %llu, \"enc_cache_misses\": %llu, "
               "\"bit_identical\": %s}%s\n",
               r.workers, r.jobsPerSec, r.speedup, r.p50Ms, r.p95Ms,
               r.queueP95Ms, (unsigned long long)r.encHits,
               (unsigned long long)r.encMisses,
               r.bitIdentical ? "true" : "false",
               i + 1 < rows.size() ? "," : "");
    }
    printf("  ],\n");
    printf("  \"hint_cache\": {\"hits\": %llu, \"misses\": %llu, "
           "\"evictions\": %llu}\n}\n",
           (unsigned long long)hintStats.hits,
           (unsigned long long)hintStats.misses,
           (unsigned long long)hintStats.evictions);

    if (!allIdentical)
        return 1;
    if (!smoke) {
        // Acceptance gate: >= 2x jobs/sec over back-to-back serial at
        // >= 4 workers on an independent-job batch.
        for (const SweepRow &r : rows) {
            if (r.workers >= 4 && hw >= 4 && r.speedup < 2.0) {
                fprintf(stderr,
                        "FAIL: %u workers reached only %.2fx\n",
                        r.workers, r.speedup);
                return 2;
            }
        }
    }
    return 0;
}

} // namespace
} // namespace f1::bench

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;
    return f1::bench::run(smoke);
}
