/**
 * @file
 * Batched-serving bench: an identical-program workload (many clients
 * of one model — the serving case the coalescer exists for) is pushed
 * through the ServingEngine twice per worker count: once with
 * batching disabled (maxBatch = 1, the per-job pipeline) and once
 * with maxBatch = 8, under the deadline/priority scheduler with two
 * tenant classes (gold: priority 2, tight deadline; bulk: priority 0,
 * loose deadline). Emits one JSON document (BENCH_serving.json in CI)
 * with jobs/sec for both modes, the speedup, the realized batch-size
 * distribution, and per-tenant-class p50/p95 turnaround latency.
 *
 * The workload is deliberately cheap-op-heavy (a long add chain with
 * a few rotations at a small degree): batching amortizes per-job
 * fixed overhead — queue pop round-trips, executor construction, per
 * -op scheduling bookkeeping, hint-cache and metrics-registry lock
 * traffic — so its margin is largest where kernels are small. On one
 * core with compute-dominated jobs that margin is a few percent; the
 * amortized costs are the CONTENDED ones when several workers serve
 * per-job traffic, which is why the gate fires at >= 4 workers.
 * Jobs/sec is the best across reps (both modes equally), which
 * measures intrinsic cost rather than background-load noise.
 *
 * Every job in every mode is checked bit-for-bit against a solo
 * serial run of the same (program, inputs, seed): a throughput win
 * from diverging ciphertexts is a correctness failure, not a perf
 * data point (exit 1). In full mode on >= 4 hardware threads the
 * acceptance gate is enforced: batched jobs/sec must be strictly
 * above per-job jobs/sec at every worker count >= 4 (exit 2).
 *
 * Introspection riders (both modes):
 *  - the embedded exporter is started on an ephemeral port and
 *    self-scraped over real sockets: /healthz and /metrics must
 *    return 200 with a well-formed exposition, /snapshot.json and
 *    /events.json must lint as JSON (exit 3 on any failure);
 *  - an overload scenario (a tenant with an unmeetable deadline
 *    behind AdmissionLimits::maxBurnRate) emits an "slo" section with
 *    per-tenant attainment / deadline misses / burn rate and the shed
 *    count, and must shed at least one job ON the burn-rate metric
 *    (exit 4) — the admission loop closing end to end;
 *  - the flight recorder's ring is dumped to EVENTS_serving.json,
 *    uploaded next to BENCH_serving.json in CI;
 *  - a correlation phase (both modes) runs a multi-kind program with
 *    compiler hints under full telemetry and gates the trace-id
 *    plumbing end to end: every completed job's id must appear in the
 *    flight recorder, in at least one executor span, and in its
 *    ExecutionProfile; the merged Perfetto document (written to
 *    TRACE_serving.json, uploaded next to BENCH_serving.json) must
 *    lint and flow-link every job; the schedule-calibration
 *    observatory must report fits over >= 5 op kinds; and
 *    /calibration.json + /tracez?ms=N must scrape as valid JSON
 *    (exit 5 on any of these).
 * In full mode the telemetry tax is gated: the workload rerun with
 * per-op profiling + tracing on AND a scraper hammering /metrics must
 * stay within 1.5x of the telemetry-off turnaround (exit 4).
 *
 * Usage: bench_serving_batched [--smoke]
 *   --smoke  CI canary: fewer jobs, workers {1, 2}, bit-identity and
 *            correlation checks only (no perf/overhead gates).
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/parallel.h"
#include "common/time_util.h"
#include "compiler/compiler.h"
#include "json_lint.h"
#include "obs/calib.h"
#include "obs/eventlog.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/tracectx.h"
#include "runtime/op_graph_executor.h"
#include "runtime/serving.h"

namespace f1::bench {
namespace {

/**
 * One small "model": a plaintext multiply by shared weights, a few
 * rotations, and a long accumulation chain of cheap adds. Per-op
 * kernel cost is tiny, so per-job fixed overhead is a visible
 * fraction — the regime where coalescing pays.
 */
Program
modelProgram(uint32_t n, int addSteps)
{
    Program p(n, 3, "model");
    int x = p.input();
    int w = p.inputPlain();
    int m = p.mulPlain(x, w);
    int acc = p.add(m, p.rotate(m, 1));
    acc = p.add(acc, p.rotate(acc, 2));
    for (int i = 0; i < addSteps; ++i)
        acc = p.add(acc, m);
    p.output(acc);
    return p;
}

/**
 * The correlation phase's program: deliberately multi-kind (mul,
 * rotate, mul_plain, add, sub, mod_switch, output — 7 traced kinds)
 * so the schedule-calibration observatory has >= 5 op kinds to fit
 * and the correlated trace shows a non-trivial span mix.
 */
Program
correlationProgram(uint32_t n)
{
    Program p(n, 3, "correlation");
    int x = p.input();
    int y = p.input();
    int w = p.inputPlain();
    int a = p.mul(x, y);
    int b = p.rotate(x, 1);
    int c = p.mulPlain(y, w);
    int d = p.add(a, c);
    int e = p.sub(d, b);
    int f = p.modSwitch(e);
    p.output(f);
    p.output(b);
    return p;
}

uint64_t
outputsHash(const ExecutionResult &r)
{
    uint64_t h = hashMix(r.outputs.size());
    for (const auto &[handle, ct] : r.outputs) {
        h = hashCombine(h, static_cast<uint64_t>(handle));
        for (const auto &poly : ct.polys)
            for (uint32_t v : poly.raw())
                h = hashCombine(h, v);
        h = hashCombine(h, ct.ptCorrection);
    }
    return h;
}

double
percentile(std::vector<double> xs, double q)
{
    if (xs.empty())
        return 0;
    std::sort(xs.begin(), xs.end());
    const size_t idx = std::min(
        xs.size() - 1,
        static_cast<size_t>(q * static_cast<double>(xs.size())));
    return xs[idx];
}

struct ClassLatency
{
    std::vector<double> turnaroundMs;
};

struct ModeResult
{
    double jobsPerSec = 0; //!< best across reps
    std::map<std::string, ClassLatency> classes;
    std::map<size_t, size_t> batchSizes; //!< size -> jobs served at it
    bool bitIdentical = true;
};

struct SweepRow
{
    unsigned workers;
    ModeResult perJob;  //!< maxBatch = 1
    ModeResult batched; //!< maxBatch = 8
};

int
run(bool smoke)
{
    const uint32_t n = 256;
    const int addSteps = 96;
    const size_t kJobs = smoke ? 16 : 64;
    const int reps = smoke ? 2 : 5;
    const size_t kMaxBatch = 8;
    // Worker counts beyond the physical cores only measure scheduler
    // noise (several batch working sets interleaving through one
    // core's cache), so the sweep is clamped to hw; the >= 4 workers
    // acceptance gate therefore fires exactly on machines that can
    // actually run 4 workers in parallel.
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    std::vector<unsigned> workerCounts;
    for (unsigned w : smoke ? std::vector<unsigned>{1, 2}
                            : std::vector<unsigned>{1, 2, 4})
        if (w <= hw)
            workerCounts.push_back(w);
    if (!smoke && hw > 4)
        workerCounts.push_back(hw);
    if (workerCounts.empty())
        workerCounts.push_back(1);

    FheParams params;
    params.n = n;
    params.maxLevel = 3;
    params.primeBits = 28;
    params.plainModulus = 65537;
    FheContext ctx(params);
    BgvScheme bgv(&ctx);

    Program model = modelProgram(n, addSteps);
    std::vector<uint64_t> weights(n);
    for (size_t i = 0; i < n; ++i)
        weights[i] = (7 * i + 11) % 65537;

    const auto tenantOf = [](size_t i) {
        return i % 2 == 0 ? "gold" : "bulk";
    };
    auto makeRequest = [&](size_t i) {
        JobRequest req;
        req.program = &model;
        req.tenant = tenantOf(i);
        req.inputs.seed = 4000 + i;
        req.inputs.bind(1, weights); // shared model weights
        return req;
    };

    // --- Untimed warm-up + solo golden hashes: a serial inline run
    // per job seeds the hint cache and records the bit pattern every
    // engine run must reproduce.
    ExecutionPolicy serialPolicy;
    serialPolicy.scheduler = SchedulerKind::kSerial;
    std::vector<uint64_t> golden(kJobs);
    {
        InlineParallelScope inlineScope;
        OpGraphExecutor exec(model, &bgv);
        for (size_t i = 0; i < kJobs; ++i)
            golden[i] =
                outputsHash(exec.execute(makeRequest(i).inputs,
                                         serialPolicy));
    }

    auto runMode = [&](unsigned workers, size_t maxBatch,
                       bool telemetryOn = false) {
        ModeResult out;
        std::vector<double> jps(static_cast<size_t>(reps));
        for (int rep = 0; rep < reps; ++rep) {
            ServingConfig cfg;
            cfg.workers = workers;
            cfg.scheduling = SchedulingPolicy::kDeadline;
            cfg.maxBatch = maxBatch;
            cfg.tenantPolicies["gold"] = {2, 20.0, 0};
            cfg.tenantPolicies["bulk"] = {0, 500.0, 0};
            cfg.policy.telemetry.profile = telemetryOn;
            cfg.policy.telemetry.trace = telemetryOn;
            ServingEngine engine(&bgv, cfg);

            const double t0 = steadyNowMs();
            std::vector<std::future<JobResult>> futs;
            futs.reserve(kJobs);
            for (size_t i = 0; i < kJobs; ++i)
                futs.push_back(engine.submit(makeRequest(i)));
            for (size_t i = 0; i < kJobs; ++i) {
                JobResult r = futs[i].get();
                out.bitIdentical = out.bitIdentical &&
                                   outputsHash(r.exec) == golden[i];
                out.classes[tenantOf(i)].turnaroundMs.push_back(
                    r.queueMs + r.serviceMs);
                ++out.batchSizes[r.exec.batchSize];
            }
            jps[size_t(rep)] = 1000.0 * double(kJobs) /
                               (steadyNowMs() - t0);
        }
        out.jobsPerSec = *std::max_element(jps.begin(), jps.end());
        return out;
    };

    // The exporter serves the whole bench run: it is live while the
    // sweep and the overhead phase execute, exactly as a production
    // scraper would see the process.
    obs::MetricsExporter exporter;

    std::vector<SweepRow> rows;
    bool allIdentical = true;
    for (unsigned workers : workerCounts) {
        SweepRow row;
        row.workers = workers;
        row.perJob = runMode(workers, 1);
        row.batched = runMode(workers, kMaxBatch);
        allIdentical = allIdentical && row.perJob.bitIdentical &&
                       row.batched.bitIdentical;
        rows.push_back(std::move(row));
    }

    // --- SLO overload scenario: the "hot" tenant's deadline is
    // unmeetable, so every completion misses and its burn rate hits
    // the cap; admission must start shedding it ON that metric while
    // the well-behaved tenant keeps being served.
    struct SloRow
    {
        uint64_t served = 0;
        uint64_t misses = 0;
        double attainment = 1.0;
        double burnRate = 0.0;
    };
    std::map<std::string, SloRow> sloRows;
    uint64_t sloSheds = 0;
    {
        ServingConfig cfg;
        cfg.workers = 1;
        cfg.maxBatch = kMaxBatch;
        cfg.admission.maxBurnRate = 3.0;
        cfg.slo.windowSize = 16;
        cfg.tenantPolicies["hot"] = {0, 1e-6, 0};
        cfg.tenantPolicies["steady"] = {0, 60000.0, 0};
        cfg.eventDumpPath = "EVENTS_serving.json";
        ServingEngine engine(&bgv, cfg);

        const size_t overloadJobs = smoke ? 12 : 24;
        std::vector<std::future<JobResult>> futs;
        for (size_t i = 0; i < overloadJobs; ++i) {
            JobRequest req;
            req.program = &model;
            req.tenant = i % 2 == 0 ? "hot" : "steady";
            req.inputs.seed = 9000 + i;
            req.inputs.bind(1, weights);
            try {
                futs.push_back(engine.submit(std::move(req)));
            } catch (const AdmissionRejected &) {
                ++sloSheds;
            }
            // Let the first hot job complete (and miss) before the
            // next admission check so the burn-rate gauge has data.
            if (i == 0)
                futs.front().wait();
        }
        for (auto &f : futs)
            f.get();
        for (const auto &[tenant, s] : engine.slo().snapshot())
            sloRows[tenant] = {s.windowTotal, s.misses, s.attainment,
                               s.burnRate};
    }

    // --- Telemetry tax under live scraping (full mode): the same
    // workload with per-op profiling + tracing on, while a scraper
    // hammers /metrics, must stay within 1.5x of telemetry-off.
    double telemetryOffJps = 0;
    double telemetryOnJps = 0;
    if (!smoke) {
        const unsigned w = std::min(2u, hw);
        telemetryOffJps = runMode(w, kMaxBatch).jobsPerSec;
        std::atomic<bool> stopScraper{false};
        std::thread scraper([&] {
            // 100 Hz — three orders of magnitude hotter than a real
            // Prometheus interval, but not a busy loop that would
            // just measure core starvation on small machines.
            std::string body;
            while (!stopScraper.load(std::memory_order_relaxed)) {
                obs::httpGet(exporter.port(), "/metrics", &body);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
            }
        });
        telemetryOnJps = runMode(w, kMaxBatch, true).jobsPerSec;
        stopScraper.store(true, std::memory_order_relaxed);
        scraper.join();
    }

    // --- Correlation phase (both modes): full telemetry over a
    // multi-kind hinted program, then gate the trace-id plumbing,
    // the merged Perfetto document, the calibration fit, and the
    // live-introspection endpoints end to end (exit 5).
    std::string corrFailure;
    size_t corrJobs = 0;
    size_t corrLinked = 0;
    size_t corrCalibKinds = 0;
    {
        obs::ScheduleCalibration::global().reset();
        Program corr = correlationProgram(n);
        const ScheduleHints corrHints =
            compileProgram(corr, F1Config{}).hints;

        ServingConfig cfg;
        cfg.workers = std::min(2u, hw);
        cfg.scheduling = SchedulingPolicy::kDeadline;
        cfg.maxBatch = 4;
        cfg.policy.telemetry.profile = true;
        cfg.policy.telemetry.trace = true;
        ServingEngine engine(&bgv, cfg);

        corrJobs = smoke ? 8 : 16;
        std::vector<std::future<JobResult>> futs;
        for (size_t i = 0; i < corrJobs; ++i) {
            JobRequest req;
            req.program = &corr;
            req.tenant = i % 2 == 0 ? "corr_gold" : "corr_bulk";
            req.inputs.seed = 11000 + i;
            req.hints = &corrHints;
            futs.push_back(engine.submit(std::move(req)));
        }
        std::vector<JobResult> results;
        for (auto &f : futs)
            results.push_back(f.get());

        const std::vector<obs::ServingEvent> events =
            obs::FlightRecorder::global().dump();

        std::set<uint64_t> ids;
        std::vector<std::shared_ptr<const obs::Trace>> traces;
        for (const JobResult &r : results) {
            if (r.traceId == 0) {
                corrFailure = "completed job has no trace id";
                break;
            }
            ids.insert(r.traceId);
            bool inRecorder = false;
            for (const obs::ServingEvent &ev : events)
                inRecorder |= ev.traceId == r.traceId;
            if (!inRecorder) {
                corrFailure =
                    "trace id missing from the flight recorder";
                break;
            }
            bool inSpans = false;
            if (r.exec.trace != nullptr)
                for (const obs::TraceEvent &ev :
                     r.exec.trace->events())
                    inSpans |=
                        ev.kind == obs::TraceEventKind::kOpSpan &&
                        ev.traceId == r.traceId;
            if (!inSpans) {
                corrFailure = "trace id missing from executor spans";
                break;
            }
            bool inProfile = false;
            if (r.exec.profile != nullptr)
                for (uint64_t id : r.exec.profile->traceIds)
                    inProfile |= id == r.traceId;
            if (!inProfile) {
                corrFailure =
                    "trace id missing from the execution profile";
                break;
            }
            bool seen = false;
            for (const auto &t : traces)
                seen |= t == r.exec.trace;
            if (!seen)
                traces.push_back(r.exec.trace);
        }
        if (corrFailure.empty() && ids.size() != results.size())
            corrFailure = "trace ids are not pairwise distinct";

        // The merged Perfetto document: must lint, must carry flow
        // events, and must flow-link every job of this phase. Written
        // to TRACE_serving.json for CI upload either way.
        std::ostringstream doc;
        corrLinked = obs::writeCorrelatedTrace(doc, traces, events);
        const std::string docStr = doc.str();
        {
            std::ofstream out("TRACE_serving.json");
            out << docStr;
        }
        std::string why;
        if (corrFailure.empty()) {
            if (!f1::testing::isValidJson(docStr, &why))
                corrFailure = "TRACE_serving.json invalid: " + why;
            else if (docStr.find("\"ph\": \"s\"") ==
                         std::string::npos ||
                     docStr.find("\"ph\": \"f\"") ==
                         std::string::npos)
                corrFailure =
                    "correlated trace carries no flow events";
            else if (corrLinked < corrJobs)
                corrFailure = "correlated trace flow-linked " +
                              std::to_string(corrLinked) + " of " +
                              std::to_string(corrJobs) + " jobs";
        }

        // The observatory must have fitted the phase's op kinds.
        const auto fits = obs::ScheduleCalibration::global().snapshot();
        corrCalibKinds = fits.size();
        if (corrFailure.empty() && corrCalibKinds < 5)
            corrFailure = "calibration fitted only " +
                          std::to_string(corrCalibKinds) +
                          " op kinds (need >= 5)";

        // The live-introspection endpoints, over real sockets.
        std::string body;
        if (corrFailure.empty()) {
            if (obs::httpGet(exporter.port(), "/calibration.json",
                             &body) != 200 ||
                !f1::testing::isValidJson(body, &why))
                corrFailure = "/calibration.json invalid";
            else if (obs::httpGet(exporter.port(), "/tracez?ms=20",
                                  &body) != 200 ||
                     !f1::testing::isValidJson(body, &why))
                corrFailure = "/tracez invalid";
        }
    }

    // --- Self-scrape over real sockets: what CI's curl would see.
    std::string scrapeFailure;
    {
        std::string body;
        if (obs::httpGet(exporter.port(), "/healthz", &body) != 200)
            scrapeFailure = "/healthz not 200";
        else if (obs::httpGet(exporter.port(), "/metrics", &body) !=
                 200)
            scrapeFailure = "/metrics not 200";
        else if (body.find("# TYPE ") == std::string::npos ||
                 body.find("f1_serving_jobs_submitted") ==
                     std::string::npos)
            scrapeFailure = "/metrics exposition malformed";
        else if (obs::httpGet(exporter.port(), "/snapshot.json",
                              &body) != 200 ||
                 !f1::testing::isValidJson(body))
            scrapeFailure = "/snapshot.json invalid";
        else if (obs::httpGet(exporter.port(), "/events.json",
                              &body) != 200 ||
                 !f1::testing::isValidJson(body))
            scrapeFailure = "/events.json invalid";
    }

    // The post-mortem artifact CI uploads next to BENCH_serving.json.
    obs::FlightRecorder::global().dumpToFile("EVENTS_serving.json");

    const auto printMode = [](const char *key, const ModeResult &m,
                              const char *trail) {
        printf("     \"%s\": {\"jobs_per_sec\": %.2f, "
               "\"bit_identical\": %s,\n",
               key, m.jobsPerSec, m.bitIdentical ? "true" : "false");
        printf("       \"batch_sizes\": {");
        bool first = true;
        for (const auto &[size, count] : m.batchSizes) {
            printf("%s\"%zu\": %zu", first ? "" : ", ", size, count);
            first = false;
        }
        printf("},\n       \"classes\": {");
        first = true;
        for (const auto &[name, lat] : m.classes) {
            printf("%s\"%s\": {\"p50_ms\": %.3f, \"p95_ms\": %.3f}",
                   first ? "" : ", ", name.c_str(),
                   percentile(lat.turnaroundMs, 0.50),
                   percentile(lat.turnaroundMs, 0.95));
            first = false;
        }
        printf("}}%s\n", trail);
    };

    printf("{\n  \"bench\": \"serving_batched\",\n");
    printf("  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    printf("  \"hw_concurrency\": %u,\n", hw);
    printf("  \"n\": %u, \"levels\": 3, \"jobs\": %zu, "
           "\"max_batch\": %zu, \"reps\": %d,\n",
           n, kJobs, kMaxBatch, reps);
    printf("  \"results\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const SweepRow &r = rows[i];
        printf("    {\"workers\": %u,\n", r.workers);
        printMode("per_job", r.perJob, ",");
        printMode("batched", r.batched, ",");
        printf("     \"batched_speedup\": %.3f}%s\n",
               r.perJob.jobsPerSec > 0
                   ? r.batched.jobsPerSec / r.perJob.jobsPerSec
                   : 0.0,
               i + 1 < rows.size() ? "," : "");
    }
    printf("  ],\n");
    printf("  \"slo\": {\"max_burn_rate\": 3.0, \"window\": 16, "
           "\"burn_rate_sheds\": %llu,\n    \"tenants\": {",
           static_cast<unsigned long long>(sloSheds));
    {
        bool first = true;
        for (const auto &[tenant, s] : sloRows) {
            printf("%s\"%s\": {\"window_jobs\": %llu, "
                   "\"deadline_misses\": %llu, "
                   "\"attainment\": %.4f, \"burn_rate\": %.3f}",
                   first ? "" : ", ", tenant.c_str(),
                   static_cast<unsigned long long>(s.served),
                   static_cast<unsigned long long>(s.misses),
                   s.attainment, s.burnRate);
            first = false;
        }
    }
    printf("}},\n");
    printf("  \"exporter\": {\"port\": %u, \"scrape_ok\": %s%s%s},\n",
           exporter.port(), scrapeFailure.empty() ? "true" : "false",
           scrapeFailure.empty() ? "" : ", \"failure\": ",
           scrapeFailure.empty()
               ? ""
               : ("\"" + scrapeFailure + "\"").c_str());
    if (!smoke) {
        printf("  \"telemetry_overhead\": {\"off_jobs_per_sec\": "
               "%.2f, \"on_jobs_per_sec\": %.2f, \"ratio\": %.3f, "
               "\"limit\": 1.5},\n",
               telemetryOffJps, telemetryOnJps,
               telemetryOnJps > 0 ? telemetryOffJps / telemetryOnJps
                                  : 0.0);
    }
    printf("  \"correlation\": {\"jobs\": %zu, \"flow_linked\": %zu, "
           "\"calibration_kinds\": %zu, \"ok\": %s%s%s},\n",
           corrJobs, corrLinked, corrCalibKinds,
           corrFailure.empty() ? "true" : "false",
           corrFailure.empty() ? "" : ", \"failure\": ",
           corrFailure.empty()
               ? ""
               : ("\"" + corrFailure + "\"").c_str());
    printf("  \"metrics\": %s\n}\n",
           obs::MetricsRegistry::global().snapshot().toJson().c_str());

    if (!allIdentical) {
        fprintf(stderr, "FAIL: batched/per-job outputs diverged from "
                        "the solo serial baseline\n");
        return 1;
    }
    if (!smoke && hw >= 4) {
        // Acceptance gate: coalescing identical-program jobs must be
        // a strict throughput win over the per-job pipeline at every
        // worker count >= 4.
        for (const SweepRow &r : rows) {
            if (r.workers >= 4 &&
                r.batched.jobsPerSec <= r.perJob.jobsPerSec) {
                fprintf(stderr,
                        "FAIL: %u workers: batched %.2f jobs/s is "
                        "not above per-job %.2f jobs/s\n",
                        r.workers, r.batched.jobsPerSec,
                        r.perJob.jobsPerSec);
                return 2;
            }
        }
    }
    if (!scrapeFailure.empty()) {
        fprintf(stderr, "FAIL: exporter scrape: %s\n",
                scrapeFailure.c_str());
        return 3;
    }
    if (sloSheds == 0) {
        fprintf(stderr,
                "FAIL: overload scenario shed no jobs on the "
                "burn-rate metric\n");
        return 4;
    }
    if (!smoke && telemetryOnJps > 0 &&
        telemetryOffJps / telemetryOnJps > 1.5) {
        fprintf(stderr,
                "FAIL: telemetry-on throughput %.2f jobs/s is more "
                "than 1.5x below telemetry-off %.2f jobs/s\n",
                telemetryOnJps, telemetryOffJps);
        return 4;
    }
    if (!corrFailure.empty()) {
        fprintf(stderr, "FAIL: trace correlation: %s\n",
                corrFailure.c_str());
        return 5;
    }
    return 0;
}

} // namespace
} // namespace f1::bench

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;
    return f1::bench::run(smoke);
}
