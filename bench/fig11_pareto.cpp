/**
 * @file
 * Reproduces paper Fig. 11: performance vs. area across F1
 * configurations. Sweeps compute clusters, scratchpad banks, and HBM
 * PHYs, evaluates gmean performance over a reduced benchmark suite,
 * and prints the Pareto frontier (normalized to the paper's default
 * configuration).
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace f1;
using namespace f1::bench;

int
main()
{
    // Reduced suite: representative memory-bound and compute-bound
    // programs (full Table 3 programs but smaller scales).
    std::vector<Workload> suite;
    suite.push_back(makeLolaMnist(false, 0.5));
    suite.push_back(makeDbLookup(2));
    suite.push_back(makeLogReg(256, 0.5));

    F1Config ref; // paper default
    auto gmeanCycles = [&](const F1Config &cfg) {
        double acc = 0;
        for (auto &w : suite)
            acc += std::log((double)simulate(w, cfg).schedule.cycles);
        return std::exp(acc / suite.size());
    };
    const double ref_cycles = gmeanCycles(ref);
    const double ref_area = AreaModel(ref).area().total;

    struct Point
    {
        F1Config cfg;
        double area, perf;
    };
    std::vector<Point> points;
    for (uint32_t clusters : {4u, 8u, 12u, 16u, 20u}) {
        for (uint32_t banks : {8u, 16u}) {
            for (uint32_t phys : {1u, 2u}) {
                F1Config cfg;
                cfg.clusters = clusters;
                cfg.scratchBanks = banks;
                cfg.hbmPhys = phys;
                double area = AreaModel(cfg).area().total;
                double perf = ref_cycles / gmeanCycles(cfg);
                points.push_back({cfg, area, perf});
            }
        }
    }
    std::sort(points.begin(), points.end(),
              [](const Point &a, const Point &b) {
                  return a.area < b.area;
              });

    printf("=== Fig. 11: performance vs area across F1 "
           "configurations ===\n");
    printf("%-9s %-6s %-5s %12s %18s %7s\n", "clusters", "banks",
           "PHYs", "area [mm^2]", "gmean norm. perf", "Pareto");
    hr();
    double best = 0;
    for (const auto &p : points) {
        bool pareto = p.perf > best;
        best = std::max(best, p.perf);
        printf("%-9u %-6u %-5u %12.1f %18.3f %7s%s\n",
               p.cfg.clusters, p.cfg.scratchBanks, p.cfg.hbmPhys,
               p.area, p.perf, pareto ? "*" : "",
               p.cfg.clusters == 16 && p.cfg.scratchBanks == 16 &&
                       p.cfg.hbmPhys == 2
                   ? "  <- F1 configuration"
                   : "");
    }
    printf("\nPaper shape: performance grows about linearly with area "
           "through the\nswept range; the F1 configuration sits on the "
           "frontier (ref area %.1f mm^2).\n", ref_area);
    return 0;
}
