/**
 * @file
 * Reproduces paper Fig. 10: functional-unit and HBM utilization over
 * time for LoLa-MNIST with plaintext (unencrypted) weights. Prints a
 * time series (one row per bucket) plus an ASCII sparkline per
 * resource.
 */
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace f1;
using namespace f1::bench;

namespace {

void
sparkline(const char *name, const std::vector<double> &vals,
          double vmax)
{
    static const char *ramp[] = {" ", ".", ":", "-", "=", "+",
                                 "*", "#", "%", "@"};
    printf("%-14s |", name);
    for (double v : vals) {
        int idx = vmax > 0 ? (int)(9.0 * v / vmax) : 0;
        printf("%s", ramp[std::clamp(idx, 0, 9)]);
    }
    printf("|\n");
}

} // namespace

int
main()
{
    F1Config cfg;
    auto w = makeLolaMnist(/*encrypted_weights=*/false);
    auto res = simulate(w, cfg);
    const auto &tl = res.schedule.timeline;

    const size_t buckets =
        std::max(tl.fuActive.size(), tl.hbmBytes.size());
    const double bucket_us =
        tl.bucketCycles / (cfg.freqGHz * 1e3);

    // Aggregate to at most 64 display columns.
    const size_t cols = std::min<size_t>(64, buckets);
    const size_t per = (buckets + cols - 1) / cols;
    std::vector<double> ntt(cols, 0), aut(cols, 0), mul(cols, 0),
        add(cols, 0), hbm(cols, 0);
    for (size_t b = 0; b < buckets; ++b) {
        size_t c = b / per;
        if (b < tl.fuActive.size()) {
            ntt[c] += tl.fuActive[b][(size_t)FuType::kNtt];
            aut[c] += tl.fuActive[b][(size_t)FuType::kAut];
            mul[c] += tl.fuActive[b][(size_t)FuType::kMul];
            add[c] += tl.fuActive[b][(size_t)FuType::kAdd];
        }
        if (b < tl.hbmBytes.size())
            hbm[c] += (double)tl.hbmBytes[b];
    }
    // Normalize: FU series to unit count (average active FUs), HBM to
    // percent of peak bandwidth.
    const double window = (double)per * tl.bucketCycles;
    for (size_t c = 0; c < cols; ++c) {
        ntt[c] /= window;
        aut[c] /= window;
        mul[c] /= window;
        add[c] /= window;
        hbm[c] = 100.0 * hbm[c] / (window * cfg.hbmBytesPerCycle());
    }

    // Display normalization: each sparkline is scaled to its own peak
    // (printed alongside), like the paper's dual-axis figure.
    auto peak = [](const std::vector<double> &v) {
        double m = 0;
        for (double x : v)
            m = std::max(m, x);
        return m > 0 ? m : 1.0;
    };
    printf("=== Fig. 10: utilization over time, LoLa-MNIST "
           "(unencrypted weights) ===\n");
    printf("total runtime: %.1f us (%llu cycles); one column = %.2f "
           "us\n\n",
           res.schedule.timeMs(cfg) * 1e3,
           (unsigned long long)res.schedule.cycles, per * bucket_us);
    printf("(each row normalized to its own peak, shown at right)\n");
    sparkline("NTT units", ntt, peak(ntt));
    printf("%50speak %.2f of %u\n", "", peak(ntt), cfg.clusters);
    sparkline("Aut units", aut, peak(aut));
    sparkline("Multipliers", mul, peak(mul));
    sparkline("Adders", add, peak(add));
    sparkline("HBM %", hbm, peak(hbm));
    printf("%50speak HBM %.0f%%\n", "", peak(hbm));

    printf("\n%-10s %8s %8s %8s %8s %8s\n", "t [us]", "NTT", "Aut",
           "Mul", "Add", "HBM%");
    for (size_t c = 0; c < cols; c += 4) {
        printf("%-10.1f %8.2f %8.2f %8.2f %8.2f %8.1f\n",
               c * per * bucket_us, ntt[c], aut[c], mul[c], add[c],
               hbm[c]);
    }
    printf("\nPaper shape: memory-bound start (HBM high, FUs low), "
           "then compute-intense\nmiddle, decoupled fetch keeping FUs "
           "busy through the final layers.\n");
    return 0;
}
