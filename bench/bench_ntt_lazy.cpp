/**
 * @file
 * Lazy-vs-strict NTT microbench plus key-switch arena stats, emitting
 * one JSON document on stdout for the per-PR perf trajectory
 * (uploaded by CI as BENCH_ntt.json).
 *
 * Part 1 times a forward+inverse negacyclic NTT pair per modulus at
 * several N, single-threaded, on both the Harvey lazy path
 * (NttTables::forward/inverse) and the strict-reduction reference
 * (forwardStrict/inverseStrict), and cross-checks that the outputs
 * are bit-identical. Part 2 runs GHS and digit key-switching in
 * steady state and reports the scratch arena's checkout statistics:
 * heap allocations per apply() must be zero once warm.
 *
 * Usage: bench_ntt_lazy [--smoke]
 *   --smoke  fewer reps and only N = 4096, for the CI canary.
 *
 * Exits nonzero on any correctness failure (lazy/strict divergence or
 * a warm apply() that hits the heap); the speedup numbers themselves
 * are data points, not gates.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/scratch.h"
#include "fhe/fhe_context.h"
#include "fhe/keyswitch.h"
#include "modular/primes.h"
#include "poly/ntt.h"
#include "poly/rns_poly.h"

namespace f1::bench {
namespace {

double
nowMs()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double, std::milli>(
               clock::now().time_since_epoch())
        .count();
}

struct NttRow
{
    uint32_t n;
    uint32_t q;
    size_t reps;
    double lazyMs;   //!< per forward+inverse pair
    double strictMs;
    double speedup;
    bool identical;
};

NttRow
runNttPair(uint32_t n, size_t reps)
{
    const uint32_t q = generateNttPrimes(1, 28, n)[0];
    NttTables t(n, q);
    Rng rng(n);
    std::vector<uint32_t> a(n);
    for (auto &x : a)
        x = static_cast<uint32_t>(rng.uniform(q));

    // Cross-check first (also warms caches and twiddle tables).
    std::vector<uint32_t> lazy = a, strict = a;
    t.forward(lazy);
    t.forwardStrict(strict);
    bool identical = lazy == strict;
    t.inverse(lazy);
    t.inverseStrict(strict);
    identical = identical && lazy == strict && lazy == a;

    std::vector<uint32_t> work = a;
    const double t0 = nowMs();
    for (size_t r = 0; r < reps; ++r) {
        t.forward(work);
        t.inverse(work);
    }
    const double lazyMs = (nowMs() - t0) / reps;

    work = a;
    const double t1 = nowMs();
    for (size_t r = 0; r < reps; ++r) {
        t.forwardStrict(work);
        t.inverseStrict(work);
    }
    const double strictMs = (nowMs() - t1) / reps;

    return {n, q, reps, lazyMs, strictMs, strictMs / lazyMs, identical};
}

struct ArenaRow
{
    const char *variant;
    size_t applies;
    double checkoutsPerApply;
    uint64_t warmHeapAllocs; //!< must be 0
    double msPerApply;
};

ArenaRow
runKeySwitchArena(KeySwitchVariant variant, const char *name,
                  size_t applies)
{
    FheParams p;
    p.n = 1024;
    p.maxLevel = 4;
    p.auxCount = 4;
    p.primeBits = 28;
    p.plainModulus = 65537;
    FheContext ctx(p);
    KeySwitcher sw(&ctx);
    Rng rng(11);
    SecretKey sk = sw.keyGen(rng);
    auto w = sk.s.mul(sk.s);
    auto hint = sw.makeHint(w, sk, 4, p.plainModulus, variant, rng);
    auto x = RnsPoly::uniform(ctx.polyContext(), 4, rng);

    // Two warm applies populate every thread cache size class.
    auto u = sw.apply(x, hint, p.plainModulus);
    u = sw.apply(x, hint, p.plainModulus);

    ScratchArena::resetStats();
    const double t0 = nowMs();
    for (size_t r = 0; r < applies; ++r)
        u = sw.apply(x, hint, p.plainModulus);
    const double elapsed = nowMs() - t0;
    const auto st = ScratchArena::stats();
    return {name, applies,
            static_cast<double>(st.checkouts) / applies,
            st.heapAllocs, elapsed / applies};
}

int
run(bool smoke)
{
    // Single-threaded by design: this measures the butterfly kernel,
    // not the limb dispatch (bench_parallel_scaling covers that).
    setGlobalThreadCount(1);

    const std::vector<uint32_t> sizes =
        smoke ? std::vector<uint32_t>{4096}
              : std::vector<uint32_t>{1024, 4096, 16384};
    std::vector<NttRow> rows;
    for (uint32_t n : sizes) {
        const size_t reps =
            smoke ? 64 : std::max<size_t>(64, (1u << 22) / n);
        rows.push_back(runNttPair(n, reps));
    }

    const size_t applies = smoke ? 4 : 16;
    const ArenaRow arena[] = {
        runKeySwitchArena(KeySwitchVariant::kGhsExtension,
                          "keyswitch_ghs", applies),
        runKeySwitchArena(KeySwitchVariant::kDigitLxL,
                          "keyswitch_digit", applies),
    };
    setGlobalThreadCount(0);

    printf("{\n  \"bench\": \"ntt_lazy\",\n");
    printf("  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    printf("  \"threads\": 1,\n");
    printf("  \"ntt\": [\n");
    bool ok = true;
    for (size_t i = 0; i < rows.size(); ++i) {
        const NttRow &r = rows[i];
        ok = ok && r.identical;
        printf("    {\"n\": %u, \"q\": %u, \"reps\": %zu, "
               "\"lazy_ms_per_pair\": %.5f, "
               "\"strict_ms_per_pair\": %.5f, "
               "\"speedup_lazy_vs_strict\": %.3f, "
               "\"bit_identical\": %s}%s\n",
               r.n, r.q, r.reps, r.lazyMs, r.strictMs, r.speedup,
               r.identical ? "true" : "false",
               i + 1 < rows.size() ? "," : "");
    }
    printf("  ],\n");
    printf("  \"keyswitch_arena\": [\n");
    for (size_t i = 0; i < 2; ++i) {
        const ArenaRow &r = arena[i];
        ok = ok && r.warmHeapAllocs == 0;
        printf("    {\"variant\": \"%s\", \"applies\": %zu, "
               "\"arena_checkouts_per_apply\": %.1f, "
               "\"warm_heap_allocs\": %llu, "
               "\"ms_per_apply\": %.4f}%s\n",
               r.variant, r.applies, r.checkoutsPerApply,
               static_cast<unsigned long long>(r.warmHeapAllocs),
               r.msPerApply, i + 1 < 2 ? "," : "");
    }
    printf("  ]\n}\n");
    return ok ? 0 : 1;
}

} // namespace
} // namespace f1::bench

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else {
            fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
            return 2;
        }
    }
    return f1::bench::run(smoke);
}
