/**
 * @file
 * Reproduces paper Table 2: area and TDP of F1 and its breakdown by
 * component, evaluated from the calibrated area/power model at the
 * paper's configuration (16 clusters, 64 MB scratchpad, 3 crossbars,
 * 2 HBM2 PHYs).
 */
#include <cstdio>

#include "arch/area_power.h"

using namespace f1;

int
main()
{
    F1Config cfg; // paper defaults
    AreaModel model(cfg);
    auto a = model.area();
    auto t = model.tdp();

    printf("=== Table 2: F1 area and TDP breakdown ===\n");
    printf("%-44s %12s %10s\n", "Component", "Area [mm^2]", "TDP [W]");
    printf("%-44s %12.2f %10.2f\n", "NTT FU", a.nttFu, t.nttFu);
    printf("%-44s %12.2f %10.2f\n", "Automorphism FU", a.autFu,
           t.autFu);
    printf("%-44s %12.2f %10.2f\n", "Multiply FU", a.mulFu, t.mulFu);
    printf("%-44s %12.2f %10.2f\n", "Add FU", a.addFu, t.addFu);
    printf("%-44s %12.2f %10.2f\n", "Vector RegFile (512 KB)",
           a.regFile, t.regFile);
    printf("%-44s %12.2f %10.2f\n",
           "Compute cluster (NTT, Aut, 2xMul, 2xAdd, RF)", a.cluster,
           t.cluster);
    printf("%-44s %12.2f %10.2f\n", "Total compute (16 clusters)",
           a.totalCompute, t.totalCompute);
    printf("%-44s %12.2f %10.2f\n", "Scratchpad (16 x 4 MB banks)",
           a.scratchpad, t.scratchpad);
    printf("%-44s %12.2f %10.2f\n", "3x NoC (16x16 512 B bit-sliced)",
           a.noc, t.noc);
    printf("%-44s %12.2f %10.2f\n", "Memory interface (2x HBM2 PHY)",
           a.hbmPhys, t.hbmPhys);
    printf("%-44s %12.2f %10.2f\n", "Total memory system",
           a.totalMemory, t.totalMemory);
    printf("%-44s %12.2f %10.2f\n", "Total F1", a.total, t.total);
    printf("\nPaper reference: cluster 3.97 / 8.75, compute 63.52 / "
           "140.0,\nscratchpad 48.09 / 20.35, NoC 10.02 / 19.65, "
           "PHYs 29.80 / 0.45, total 151.4 / 180.4\n");
    return 0;
}
