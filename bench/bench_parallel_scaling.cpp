/**
 * @file
 * Limb-parallel scaling microbench: sweeps the global pool over
 * 1/2/4/8 threads and N ∈ {4096, 16384, 65536} for the three RNS hot
 * kernels (batched NTT over all limbs, CRT basis extension, GHS
 * key-switching) and emits one JSON document on stdout so successive
 * PRs accumulate a perf trajectory. Every threaded run is compared
 * byte-for-byte against the serial reference; `bit_identical` records
 * the outcome.
 *
 * Usage: bench_parallel_scaling [--smoke]
 *   --smoke  CI regression canary: N = 4096, threads {1, 2}, few reps.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "fhe/basis_extend.h"
#include "fhe/fhe_context.h"
#include "fhe/keyswitch.h"
#include "modular/primes.h"
#include "poly/rns_poly.h"

namespace f1::bench {
namespace {

constexpr size_t kLimbs = 8; //!< batched-NTT limb count per poly

double
nowMs()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double, std::milli>(
               clock::now().time_since_epoch())
        .count();
}

struct KernelResult
{
    std::vector<uint32_t> output; //!< compared across thread counts
    double msPerOp = 0;
};

/** Batched negacyclic NTT across all kLimbs limbs of one RnsPoly. */
KernelResult
runNttBatch(const PolyContext &ctx, size_t reps)
{
    Rng rng(1);
    RnsPoly p = RnsPoly::uniform(&ctx, kLimbs, rng, Domain::kCoeff);
    const double t0 = nowMs();
    for (size_t r = 0; r < reps; ++r) {
        p.toNtt();
        p.toCoeff();
    }
    const double elapsed = nowMs() - t0;
    p.toNtt();
    return {p.raw(), elapsed / (2.0 * reps)};
}

/** CRT basis extension kLimbs -> kLimbs/2 fresh primes. */
KernelResult
runBasisExtend(const PolyContext &ctx, size_t reps)
{
    const uint32_t n = ctx.n();
    std::vector<size_t> src(kLimbs), dst(kLimbs / 2);
    for (size_t i = 0; i < kLimbs; ++i)
        src[i] = i;
    for (size_t k = 0; k < kLimbs / 2; ++k)
        dst[k] = kLimbs + k;
    BasisExtender be(&ctx, src, dst);
    Rng rng(2);
    std::vector<uint32_t> in(kLimbs * n), out(kLimbs / 2 * n);
    for (size_t i = 0; i < kLimbs; ++i)
        for (uint32_t j = 0; j < n; ++j)
            in[i * n + j] =
                static_cast<uint32_t>(rng.uniform(ctx.modulus(i)));
    const double t0 = nowMs();
    for (size_t r = 0; r < reps; ++r)
        be.extend(in, n, out);
    return {out, (nowMs() - t0) / reps};
}

/** GHS key-switch apply at the top level of a small chain. */
KernelResult
runKeySwitch(const FheContext &fheCtx, const KeySwitchHint &hint,
             size_t reps)
{
    Rng rng(3);
    const size_t level = hint.level;
    KeySwitcher sw(&fheCtx);
    auto x = RnsPoly::uniform(fheCtx.polyContext(), level, rng);
    const double t0 = nowMs();
    std::pair<RnsPoly, RnsPoly> u{
        RnsPoly(fheCtx.polyContext(), 1),
        RnsPoly(fheCtx.polyContext(), 1)};
    for (size_t r = 0; r < reps; ++r)
        u = sw.apply(x, hint, fheCtx.plainModulus());
    const double elapsed = nowMs() - t0;
    std::vector<uint32_t> out = u.first.raw();
    out.insert(out.end(), u.second.raw().begin(), u.second.raw().end());
    return {std::move(out), elapsed / reps};
}

struct Row
{
    const char *kernel;
    uint32_t n;
    size_t limbs;
    unsigned threads;
    size_t reps;
    double msPerOp;
    double speedup;
    bool bitIdentical;
};

void
emitJson(const std::vector<Row> &rows, bool smoke)
{
    printf("{\n  \"bench\": \"parallel_scaling\",\n");
    printf("  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    printf("  \"hw_concurrency\": %u,\n",
           std::thread::hardware_concurrency());
    printf("  \"results\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        printf("    {\"kernel\": \"%s\", \"n\": %u, \"limbs\": %zu, "
               "\"threads\": %u, \"reps\": %zu, \"ms_per_op\": %.4f, "
               "\"speedup_vs_serial\": %.3f, \"bit_identical\": %s}%s\n",
               r.kernel, r.n, r.limbs, r.threads, r.reps, r.msPerOp,
               r.speedup, r.bitIdentical ? "true" : "false",
               i + 1 < rows.size() ? "," : "");
    }
    printf("  ]\n}\n");
}

int
run(bool smoke)
{
    const std::vector<uint32_t> sizes =
        smoke ? std::vector<uint32_t>{4096}
              : std::vector<uint32_t>{4096, 16384, 65536};
    const std::vector<unsigned> threadCounts =
        smoke ? std::vector<unsigned>{1, 2}
              : std::vector<unsigned>{1, 2, 4, 8};

    std::vector<Row> rows;
    bool allIdentical = true;
    for (uint32_t n : sizes) {
        // One shared prime chain: kLimbs working limbs plus kLimbs/2
        // extension primes for the basis-extension kernel.
        PolyContext ctx(n, generateNttPrimes(kLimbs + kLimbs / 2, 28, n));

        // A separate small FHE chain for the key-switching kernel.
        FheParams fp;
        fp.n = n;
        fp.maxLevel = 4;
        fp.auxCount = 4;
        fp.primeBits = 28;
        fp.plainModulus = 65537;
        FheContext fheCtx(fp);
        KeySwitcher sw(&fheCtx);
        Rng rng(4);
        SecretKey sk = sw.keyGen(rng);
        auto w = sk.s.mul(sk.s);
        auto hint = sw.makeHint(w, sk, 4, fp.plainModulus,
                                KeySwitchVariant::kGhsExtension, rng);

        const size_t nttReps =
            smoke ? 4 : std::max<size_t>(4, (1u << 19) / n);
        const size_t extReps = std::max<size_t>(2, nttReps / 4);
        const size_t ksReps = smoke ? 1 : 2;

        struct Kernel
        {
            const char *name;
            size_t reps;
            std::function<KernelResult(size_t)> fn;
        };
        const Kernel kernels[] = {
            {"ntt_batch", nttReps,
             [&](size_t reps) { return runNttBatch(ctx, reps); }},
            {"basis_extend", extReps,
             [&](size_t reps) { return runBasisExtend(ctx, reps); }},
            {"keyswitch_ghs", ksReps,
             [&](size_t reps) {
                 return runKeySwitch(fheCtx, hint, reps);
             }},
        };

        for (const Kernel &k : kernels) {
            setGlobalThreadCount(1);
            k.fn(1); // warm caches so the baseline isn't penalized
            const KernelResult serial = k.fn(k.reps);
            for (unsigned t : threadCounts) {
                setGlobalThreadCount(t);
                const KernelResult r = k.fn(k.reps);
                const bool same = r.output == serial.output;
                allIdentical = allIdentical && same;
                rows.push_back({k.name, n, kLimbs, t, k.reps,
                                r.msPerOp, serial.msPerOp / r.msPerOp,
                                same});
            }
        }
    }
    setGlobalThreadCount(0);
    emitJson(rows, smoke);
    // A threaded result that diverges from the serial reference is a
    // correctness failure, not a perf data point.
    return allIdentical ? 0 : 1;
}

} // namespace
} // namespace f1::bench

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else {
            fprintf(stderr,
                    "usage: %s [--smoke]\n", argv[0]);
            return 2;
        }
    }
    return f1::bench::run(smoke);
}
