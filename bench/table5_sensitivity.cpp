/**
 * @file
 * Reproduces paper Table 5: slowdowns of F1 variants — low-throughput
 * NTT FUs, low-throughput automorphism FUs (same aggregate throughput,
 * HEAX-style), and the CSR (register-pressure-aware) scheduler — over
 * the Table 3 suite. Compile/simulate only (no CPU runs).
 */
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace f1;
using namespace f1::bench;

int
main()
{
    printf("=== Table 5: slowdown of F1 variants (higher is worse) "
           "===\n");
    printf("%-22s %10s %10s %10s\n", "Benchmark", "LT NTT", "LT Aut",
           "CSR");
    hr();

    F1Config base;
    F1Config lt_ntt = base;
    lt_ntt.lowThroughputNttDivisor = 16;
    F1Config lt_aut = base;
    lt_aut.lowThroughputAutDivisor = 16;

    double gm[3] = {0, 0, 0};
    int count = 0;
    auto suite = makeTable3Suite(/*cifar_scale=*/0.1);
    for (auto &w : suite) {
        auto ref = simulate(w, base);
        double base_cycles = (double)ref.schedule.cycles;

        double slow[3];
        slow[0] = simulate(w, lt_ntt).schedule.cycles / base_cycles;
        slow[1] = simulate(w, lt_aut).schedule.cycles / base_cycles;
        CompileOptions csr;
        csr.memPolicy = MemPolicy::kCsr;
        slow[2] = simulate(w, base, csr).schedule.cycles / base_cycles;

        printf("%-22s %9.1fx %9.1fx %9.1fx\n",
               w.program.name().c_str(), slow[0], slow[1], slow[2]);
        for (int i = 0; i < 3; ++i)
            gm[i] += std::log(slow[i]);
        ++count;
    }
    hr();
    printf("%-22s %9.1fx %9.1fx %9.1fx\n", "gmean",
           std::exp(gm[0] / count), std::exp(gm[1] / count),
           std::exp(gm[2] / count));
    printf("\nPaper reference gmeans: LT NTT 2.5x, LT Aut 3.6x, "
           "CSR 4.2x (CSR intractable for two benchmarks).\n");
    return 0;
}
