/**
 * @file
 * Reproduces paper Fig. 9: (a) off-chip data movement breakdown by
 * category (key-switch hints compulsory/non-compulsory, inputs,
 * intermediate loads/stores) and (b) average power breakdown (HBM,
 * scratchpad, NoC, register files, FUs) for each benchmark.
 */
#include <cstdio>

#include "bench_util.h"

using namespace f1;
using namespace f1::bench;

int
main()
{
    F1Config cfg;
    printf("=== Fig. 9a: off-chip data movement breakdown ===\n");
    printf("%-22s %9s | %7s %7s %7s %7s %7s %7s\n", "Benchmark",
           "total", "KSH-C", "KSH-NC", "In-C", "In-NC", "Int-Ld",
           "Int-St");
    hr();

    auto suite = makeTable3Suite(/*cifar_scale=*/0.1);
    std::vector<CompileResult> results;
    for (auto &w : suite) {
        auto res = simulate(w, cfg);
        const auto &t = res.schedule.traffic;
        double total = (double)t.total();
        auto pct = [&](uint64_t x) { return 100.0 * x / total; };
        printf("%-22s %7.2fGB | %6.1f%% %6.1f%% %6.1f%% %6.1f%% "
               "%6.1f%% %6.1f%%\n",
               w.program.name().c_str(), total / 1e9,
               pct(t.kshCompulsory), pct(t.kshNonCompulsory),
               pct(t.inputCompulsory), pct(t.inputNonCompulsory),
               pct(t.intermLoad), pct(t.intermStore));
        results.push_back(std::move(res));
    }

    printf("\n=== Fig. 9b: average power breakdown [W] ===\n");
    printf("%-22s %8s | %7s %8s %7s %7s %7s\n", "Benchmark", "total",
           "HBM", "Scratch", "NoC", "RF", "FUs");
    hr();
    for (size_t i = 0; i < suite.size(); ++i) {
        auto p = results[i].schedule.averagePower(cfg);
        printf("%-22s %7.1fW | %7.1f %8.1f %7.1f %7.1f %7.1f\n",
               suite[i].program.name().c_str(), p.total, p.hbm,
               p.scratch, p.noc, p.regFiles, p.fus);
    }
    printf("\nPaper shape: KSH dominates traffic in deep workloads "
           "(up to 94%%);\nnon-compulsory traffic adds only 5-18%% "
           "except CIFAR; power dominated by data movement.\n");
    return 0;
}
