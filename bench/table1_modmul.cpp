/**
 * @file
 * Reproduces paper Table 1: area, power, and delay of the four modular
 * multiplier designs (Barrett, Montgomery, NTT-friendly, FHE-friendly),
 * plus a software-throughput measurement of the same algorithms
 * (google-benchmark) and the count of usable FHE-friendly primes.
 */
#include <benchmark/benchmark.h>

#include <cstdio>

#include "modular/multiplier.h"
#include "modular/primes.h"

using namespace f1;

namespace {

void
printModelTable()
{
    printf("\n=== Table 1: modular multipliers "
           "(model calibrated to 14/12nm synthesis) ===\n");
    printf("%-14s %12s %12s %12s\n", "Multiplier", "Area [um^2]",
           "Power [mW]", "Delay [ps]");
    const uint32_t q = generateNttPrimes(1, 28, 16384)[0];
    for (const auto &m : makeAllMultipliers(q)) {
        auto c = m->cost();
        printf("%-14s %12.0f %12.2f %12.0f\n", m->name(), c.areaUm2,
               c.powerMw, c.delayPs);
    }
    printf("\nFHE-friendly restriction (q ≡ 1 mod 2^16): %zu usable "
           "24-bit primes\n(paper: ~6,186 32-bit primes; density "
           "scales with range size)\n",
           countFheFriendlyPrimes(24));
}

template <typename M>
void
bmMul(benchmark::State &state)
{
    const uint32_t q = generateNttPrimes(1, 28, 16384)[0];
    M m(q);
    uint32_t a = 123456789 % q, b = 987654321 % q;
    for (auto _ : state) {
        a = m.mul(a, b);
        benchmark::DoNotOptimize(a);
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(bmMul<BarrettMultiplier>)->Name("sw/Barrett");
BENCHMARK(bmMul<MontgomeryMultiplier>)->Name("sw/Montgomery");
BENCHMARK(bmMul<NttFriendlyMultiplier>)->Name("sw/NTT-friendly");
BENCHMARK(bmMul<FheFriendlyMultiplier>)->Name("sw/FHE-friendly");

} // namespace

int
main(int argc, char **argv)
{
    printModelTable();
    printf("\n=== Software throughput of the same algorithms ===\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
