/**
 * @file
 * Reproduces paper Table 4: microbenchmarks (NTT, automorphism,
 * homomorphic multiply, homomorphic permutation) at the three
 * parameter sets (N=2^12/logQ=109, 2^13/218, 2^14/438).
 *
 * Columns: F1 reciprocal throughput (ns/ciphertext-op from the timing
 * model at full chip utilization), measured CPU time (this library's
 * software layer on this host), and the HEAX-sigma model.
 */
#include <chrono>
#include <cstdio>
#include <functional>

#include "arch/config.h"
#include "arch/heax_model.h"
#include "fhe/bgv.h"
#include "modular/primes.h"

using namespace f1;

namespace {

struct ParamSet
{
    uint32_t n;
    uint32_t logQ;
    uint32_t level; //!< logQ / 28-bit primes, as the paper's 32-bit words
};

double
measureNs(const std::function<void()> &fn, int iters)
{
    // Warm up once, then time.
    fn();
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           iters;
}

/** F1 reciprocal throughput for a full-ciphertext op (2L RVecs spread
 *  over all units of the relevant FU type). */
double
f1ReciprocalNs(const F1Config &cfg, FuType fu, uint32_t n,
               uint32_t rvecs)
{
    double per_rvec = cfg.occupancy(fu, n);
    double units = (double)cfg.clusters * cfg.fuCount(fu);
    return rvecs * per_rvec / units / cfg.freqGHz;
}

/** F1 reciprocal throughput of a homomorphic mul/perm: dominated by
 *  the key-switch NTTs plus multiplier/adder work, pipelined across
 *  the whole chip. */
double
f1HomomorphicNs(const F1Config &cfg, uint32_t n, uint32_t level,
                bool perm)
{
    double ntt_rvecs = (double)level * (level + 2) + 2; // lifts + div
    double mul_rvecs = 2.0 * level * (level + 1) + 2 * level +
                       (perm ? 0 : 4.0 * level);
    double add_rvecs = 2.0 * level * (level + 1) + 2 * level;
    double aut_rvecs = perm ? 2.0 * level : 0;
    double ntt = f1ReciprocalNs(cfg, FuType::kNtt, n, ntt_rvecs);
    double mul = f1ReciprocalNs(cfg, FuType::kMul, n, mul_rvecs);
    double add = f1ReciprocalNs(cfg, FuType::kAdd, n, add_rvecs);
    double aut = f1ReciprocalNs(cfg, FuType::kAut, n, aut_rvecs);
    // Throughput-limited by the busiest FU class.
    return std::max(std::max(ntt, mul), std::max(add, aut));
}

} // namespace

int
main()
{
    const ParamSet sets[] = {{4096, 109, 4}, {8192, 218, 8},
                             {16384, 438, 16}};
    F1Config cfg;
    HeaxModel heax;

    printf("=== Table 4: microbenchmarks (ns / ciphertext op) ===\n");
    printf("%-10s %-8s | %10s %12s %10s | %10s %10s\n", "op", "N",
           "F1 [ns]", "CPU [ns]", "HEAX_s[ns]", "vs CPU", "vs HEAX_s");

    for (const auto &ps : sets) {
        FheParams params;
        params.n = ps.n;
        params.maxLevel = ps.level;
        params.primeBits = 28;
        FheContext ctx(params);
        BgvScheme scheme(&ctx);
        Rng rng(1);

        // CPU measurements on full ciphertexts (2L residue polys).
        auto poly = RnsPoly::uniform(ctx.polyContext(), ps.level, rng,
                                     Domain::kCoeff);
        double cpu_ntt = measureNs(
            [&] {
                auto p = poly;
                p.toNtt();
            },
            5) * 2; // two polynomials per ciphertext
        auto ct = scheme.encryptSlots(
            rng.uniformVector(ps.n, 65537), ps.level);
        double cpu_aut = measureNs(
            [&] {
                auto r = ct.polys[0].automorphism(5);
                (void)r;
            },
            5) * 2;
        scheme.relinHint(ps.level); // exclude keygen from timing
        scheme.galoisHint(scheme.encoder().slotOrder().rotationGalois(1),
                          ps.level);
        double cpu_mul = measureNs([&] { auto r = scheme.mul(ct, ct);
                                         (void)r; }, 3);
        double cpu_perm = measureNs([&] { auto r = scheme.rotate(ct, 1);
                                          (void)r; }, 3);

        struct Row
        {
            const char *name;
            double f1, cpu, heax;
        } rows[] = {
            {"NTT",
             f1ReciprocalNs(cfg, FuType::kNtt, ps.n, 2 * ps.level),
             cpu_ntt, heax.ciphertextNttNs(ps.n, ps.level)},
            {"Automorph",
             f1ReciprocalNs(cfg, FuType::kAut, ps.n, 2 * ps.level),
             cpu_aut, heax.ciphertextAutNs(ps.n, ps.level)},
            {"HomMul", f1HomomorphicNs(cfg, ps.n, ps.level, false),
             cpu_mul, heax.homomorphicMulNs(ps.n, ps.level)},
            {"HomPerm", f1HomomorphicNs(cfg, ps.n, ps.level, true),
             cpu_perm, heax.homomorphicPermNs(ps.n, ps.level)},
        };
        for (const auto &r : rows) {
            printf("%-10s %-8u | %10.1f %12.0f %10.0f | %9.0fx "
                   "%9.0fx\n",
                   r.name, ps.n, r.f1, r.cpu, r.heax, r.cpu / r.f1,
                   r.heax / r.f1);
        }
    }
    printf("\nPaper reference (N=2^14): NTT 179.2 ns (8,838x CPU, "
           "1,866x HEAX_s);\nHomMul 2,000 ns (14,396x CPU, 190x "
           "HEAX_s). Shape target: F1 >> HEAX_s >> CPU.\n");
    return 0;
}
