/**
 * @file
 * Reproduces paper Table 3: full-program performance of F1 (simulated
 * cycles at 1 GHz) versus the CPU software baseline (the same
 * homomorphic-operation graph executed by the library's FHE layer on
 * this host). Absolute times differ from the paper's testbed; the
 * shape — three to four orders of magnitude, bootstrapping lowest —
 * is the reproduction target (EXPERIMENTS.md).
 *
 * Pass --fast to scale the workloads down (CI-friendly).
 */
#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench_util.h"

using namespace f1;
using namespace f1::bench;

int
main(int argc, char **argv)
{
    bool fast = argc > 1 && std::strcmp(argv[1], "--fast") == 0;
    const double cifar_scale = fast ? 0.05 : 0.25;

    printf("=== Table 3: full FHE benchmarks, F1 vs CPU ===\n");
    printf("(CPU = this library's software FHE layer on this host; "
           "paper columns for shape comparison)\n\n");
    printf("%-22s %12s %10s %10s | %12s %10s\n", "Benchmark",
           "CPU [ms]", "F1 [ms]", "Speedup", "paperCPU[ms]",
           "paperF1[ms]");
    hr();

    F1Config cfg;
    double log_speedup_sum = 0;
    int count = 0;
    auto suite = makeTable3Suite(cifar_scale);
    for (auto &w : suite) {
        auto res = simulate(w, cfg);
        double f1_ms = res.schedule.timeMs(cfg);
        double cpu_ms = cpuBaselineMs(w);
        double speedup = cpu_ms / f1_ms;
        log_speedup_sum += std::log(speedup);
        ++count;
        printf("%-22s %12.1f %10.3f %9.0fx | %12s %10s\n",
               w.program.name().c_str(), cpu_ms, f1_ms, speedup,
               w.paperCpuMs, w.paperF1Ms);
    }
    hr();
    printf("%-22s %*sgmean %7.0fx | (paper gmean: 5,432x vs "
           "4-core Xeon)\n", "", 28, "",
           std::exp(log_speedup_sum / count));
    if (fast)
        printf("\n[--fast: reduced scales; see EXPERIMENTS.md]\n");
    return 0;
}
