/**
 * @file
 * Shared helpers for the table/figure reproduction binaries: workload
 * compilation against an F1 configuration and CPU-baseline execution
 * through the reference executor.
 */
#ifndef F1_BENCH_BENCH_UTIL_H
#define F1_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <memory>
#include <string>

#include "common/parallel.h"
#include "compiler/compiler.h"
#include "sim/reference_executor.h"
#include "workloads/workloads.h"

namespace f1::bench {

/** Compiles and simulates a workload on `cfg`; returns the result. */
inline CompileResult
simulate(const Workload &w, const F1Config &cfg,
         const CompileOptions &opt = {})
{
    setGlobalThreadCount(cfg.hostThreads);
    return compileProgram(w.program, cfg, opt);
}

/** Runs the CPU software baseline; returns wall milliseconds. */
inline double
cpuBaselineMs(const Workload &w, const F1Config &cfg = {})
{
    setGlobalThreadCount(cfg.hostThreads);
    FheParams params;
    params.n = w.n;
    params.maxLevel = w.maxLevel;
    params.auxCount = w.auxCount;
    params.primeBits = 28;
    params.plainModulus = 65537;
    FheContext ctx(params);
    KeySwitchVariant variant = w.auxCount > 0
                                   ? KeySwitchVariant::kGhsExtension
                                   : KeySwitchVariant::kDigitLxL;
    if (w.scheme == WorkloadScheme::kBgv) {
        BgvScheme scheme(&ctx, 0, variant);
        ReferenceExecutor exec(w.program, &scheme);
        return exec.run().wallMs;
    }
    CkksScheme scheme(&ctx, variant);
    ReferenceExecutor exec(w.program, &scheme);
    return exec.run().wallMs;
}

inline void
hr(char c = '-')
{
    for (int i = 0; i < 78; ++i)
        putchar(c);
    putchar('\n');
}

} // namespace f1::bench

#endif // F1_BENCH_BENCH_UTIL_H
