/**
 * @file
 * Tests for the negacyclic NTT: round trips, agreement with the O(n^2)
 * reference transform, convolution semantics, linearity, and the
 * four-step hardware datapath (paper §5.2).
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "fhe/fhe_context.h"
#include "modular/modarith.h"
#include "modular/primes.h"
#include "poly/fourstep.h"
#include "poly/ntt.h"
#include "poly/transpose.h"

namespace f1 {
namespace {

std::vector<uint32_t>
randomPoly(uint32_t n, uint32_t q, Rng &rng)
{
    std::vector<uint32_t> a(n);
    for (auto &x : a)
        x = static_cast<uint32_t>(rng.uniform(q));
    return a;
}

/** O(len^2) cyclic DFT with root w of order len: out[k] = Σ a[j] w^jk. */
std::vector<uint32_t>
slowCyclicDft(std::span<const uint32_t> a, uint32_t q, uint32_t w)
{
    const size_t len = a.size();
    std::vector<uint32_t> out(len);
    for (size_t k = 0; k < len; ++k) {
        uint64_t acc = 0;
        const uint32_t wk = powMod(w, k, q);
        uint32_t x = 1;
        for (size_t j = 0; j < len; ++j) {
            acc = (acc + (uint64_t)a[j] * x) % q;
            x = mulMod(x, wk, q);
        }
        out[k] = static_cast<uint32_t>(acc);
    }
    return out;
}

class NttParamTest : public ::testing::TestWithParam<uint32_t>
{
  protected:
    uint32_t n() const { return GetParam(); }
    uint32_t q() const { return generateNttPrimes(1, 28, n())[0]; }
};

TEST_P(NttParamTest, RoundTrip)
{
    NttTables t(n(), q());
    Rng rng(n());
    auto a = randomPoly(n(), q(), rng);
    auto orig = a;
    t.forward(a);
    t.inverse(a);
    EXPECT_EQ(a, orig);
}

TEST_P(NttParamTest, MatchesSlowReference)
{
    if (n() > 512)
        GTEST_SKIP() << "O(n^2) reference too slow";
    NttTables t(n(), q());
    Rng rng(n() + 1);
    auto a = randomPoly(n(), q(), rng);
    auto ref = slowNegacyclicNtt(a, q(), t.psi());
    t.forward(a);
    EXPECT_EQ(a, ref);
}

TEST_P(NttParamTest, PointwiseMulIsNegacyclicConvolution)
{
    if (n() > 512)
        GTEST_SKIP() << "O(n^2) reference too slow";
    const uint32_t qq = q();
    NttTables t(n(), qq);
    Rng rng(n() + 2);
    auto a = randomPoly(n(), qq, rng);
    auto b = randomPoly(n(), qq, rng);
    auto ref = slowNegacyclicMul(a, b, qq);
    t.forward(a);
    t.forward(b);
    for (uint32_t i = 0; i < n(); ++i)
        a[i] = mulMod(a[i], b[i], qq);
    t.inverse(a);
    EXPECT_EQ(a, ref);
}

TEST_P(NttParamTest, Linearity)
{
    const uint32_t qq = q();
    NttTables t(n(), qq);
    Rng rng(n() + 3);
    auto a = randomPoly(n(), qq, rng);
    auto b = randomPoly(n(), qq, rng);
    std::vector<uint32_t> sum(n());
    for (uint32_t i = 0; i < n(); ++i)
        sum[i] = addMod(a[i], b[i], qq);
    t.forward(a);
    t.forward(b);
    t.forward(sum);
    for (uint32_t i = 0; i < n(); ++i)
        EXPECT_EQ(sum[i], addMod(a[i], b[i], qq));
}

TEST_P(NttParamTest, FourStepMatchesIterative)
{
    const uint32_t qq = q();
    NttTables t(n(), qq);
    // E = 128 as in F1; also test a small E to exercise G > 1 cases.
    for (uint32_t lanes : {128u, 64u}) {
        if (n() > (uint64_t)lanes * lanes)
            continue;
        FourStepNtt fs(t, lanes);
        Rng rng(n() + lanes);
        auto a = randomPoly(n(), qq, rng);
        auto b = a;
        t.forward(a);
        fs.forward(b);
        EXPECT_EQ(a, b) << "forward, lanes=" << lanes;
        t.inverse(a);
        fs.inverse(b);
        EXPECT_EQ(a, b) << "inverse, lanes=" << lanes;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NttParamTest,
                         ::testing::Values(128u, 256u, 512u, 1024u, 2048u,
                                           4096u, 8192u, 16384u));

TEST(Ntt, ImpulseTransformsToConstantOne)
{
    // NTT(1) = all-ones: the constant polynomial evaluates to 1 at
    // every root.
    const uint32_t n = 256;
    const uint32_t q = generateNttPrimes(1, 28, n)[0];
    NttTables t(n, q);
    std::vector<uint32_t> a(n, 0);
    a[0] = 1;
    t.forward(a);
    for (uint32_t i = 0; i < n; ++i)
        EXPECT_EQ(a[i], 1u);
}

TEST(Ntt, MonomialXHasPsiOddPowers)
{
    // NTT(x)[k] = psi^(2k+1).
    const uint32_t n = 256;
    const uint32_t q = generateNttPrimes(1, 28, n)[0];
    NttTables t(n, q);
    std::vector<uint32_t> a(n, 0);
    a[1] = 1;
    t.forward(a);
    for (uint32_t k = 0; k < n; ++k)
        EXPECT_EQ(a[k], powMod(t.psi(), 2 * k + 1, q));
}

TEST(Ntt, XToTheNIsMinusOne)
{
    // (x^(n/2))^2 = x^n = -1 mod (x^n + 1): squaring the monomial
    // x^(n/2) via the NTT must give the constant -1.
    const uint32_t n = 128;
    const uint32_t q = generateNttPrimes(1, 28, n)[0];
    NttTables t(n, q);
    std::vector<uint32_t> a(n, 0);
    a[n / 2] = 1;
    t.forward(a);
    for (uint32_t i = 0; i < n; ++i)
        a[i] = mulMod(a[i], a[i], q);
    t.inverse(a);
    EXPECT_EQ(a[0], q - 1);
    for (uint32_t i = 1; i < n; ++i)
        EXPECT_EQ(a[i], 0u);
}

TEST(Ntt, CyclicForwardInverseRoundTripSubLengths)
{
    const uint32_t n = 1024;
    const uint32_t q = generateNttPrimes(1, 28, n)[0];
    NttTables t(n, q);
    Rng rng(99);
    for (uint32_t len : {2u, 8u, 64u, 256u, 1024u}) {
        auto a = randomPoly(len, q, rng);
        auto orig = a;
        t.cyclicForward(a);
        t.cyclicInverse(a);
        EXPECT_EQ(a, orig) << "len=" << len;
    }
}

TEST(NttCyclicShort, ForwardMatchesSlowDftEveryShortLength)
{
    // Property check of the len < n cyclic path (the four-step unit's
    // inner transforms): the FFT must equal the direct DFT with root
    // ω_len = ω^(n/len) at every power-of-two sub-length.
    const uint32_t n = 1024;
    const uint32_t q = generateNttPrimes(1, 28, n)[0];
    NttTables t(n, q);
    Rng rng(1001);
    for (uint32_t len = 2; len <= 256; len <<= 1) {
        const uint32_t wlen = t.omegaPow(n / len);
        for (int draw = 0; draw < 3; ++draw) {
            auto a = randomPoly(len, q, rng);
            auto ref = slowCyclicDft(a, q, wlen);
            t.cyclicForward(a);
            EXPECT_EQ(a, ref) << "len=" << len << " draw=" << draw;
        }
    }
}

TEST(NttCyclicShort, InverseMatchesSlowDftEveryShortLength)
{
    // cyclicInverse = direct DFT with ω_len^-1, scaled by 1/len.
    const uint32_t n = 1024;
    const uint32_t q = generateNttPrimes(1, 28, n)[0];
    NttTables t(n, q);
    Rng rng(1002);
    for (uint32_t len = 2; len <= 256; len <<= 1) {
        const uint32_t wlenInv = invMod(t.omegaPow(n / len), q);
        const uint32_t lenInv = invMod(len, q);
        for (int draw = 0; draw < 3; ++draw) {
            auto a = randomPoly(len, q, rng);
            auto ref = slowCyclicDft(a, q, wlenInv);
            for (auto &x : ref)
                x = mulMod(x, lenInv, q);
            t.cyclicInverse(a);
            EXPECT_EQ(a, ref) << "len=" << len << " draw=" << draw;
        }
    }
}

TEST(NttCyclicShort, LinearityAndRoundTripProperty)
{
    const uint32_t n = 512;
    const uint32_t q = generateNttPrimes(1, 28, n)[0];
    NttTables t(n, q);
    Rng rng(1003);
    for (uint32_t len : {2u, 4u, 16u, 128u, 256u}) {
        for (int draw = 0; draw < 4; ++draw) {
            auto a = randomPoly(len, q, rng);
            auto b = randomPoly(len, q, rng);
            std::vector<uint32_t> sum(len);
            for (uint32_t i = 0; i < len; ++i)
                sum[i] = addMod(a[i], b[i], q);
            auto fa = a, fb = b, fsum = sum;
            t.cyclicForward(fa);
            t.cyclicForward(fb);
            t.cyclicForward(fsum);
            for (uint32_t i = 0; i < len; ++i)
                EXPECT_EQ(fsum[i], addMod(fa[i], fb[i], q))
                    << "len=" << len;
            t.cyclicInverse(fa);
            EXPECT_EQ(fa, a) << "round trip len=" << len;
        }
    }
}

class NttLazyStrict : public ::testing::Test
{
  protected:
    /** Lazy and strict paths must agree transform-by-transform. */
    static void
    expectEquivalent(const NttTables &t, Rng &rng)
    {
        const uint32_t n = t.n();
        const uint32_t q = t.q();
        auto a = randomPoly(n, q, rng);
        auto b = a;
        t.forward(a);
        t.forwardStrict(b);
        EXPECT_EQ(a, b) << "forward, q=" << q;
        t.inverse(a);
        t.inverseStrict(b);
        EXPECT_EQ(a, b) << "inverse, q=" << q;

        auto c = randomPoly(n, q, rng);
        auto d = c;
        t.cyclicForward(c);
        t.cyclicForwardStrict(d);
        EXPECT_EQ(c, d) << "cyclicForward, q=" << q;
        t.cyclicInverse(c);
        t.cyclicInverseStrict(d);
        EXPECT_EQ(c, d) << "cyclicInverse, q=" << q;
    }
};

TEST_F(NttLazyStrict, EquivalentOnEveryChainAndAuxPrime)
{
    // Full PolyContext layout: ciphertext chain + aux block + special
    // prime, exactly as key-switching sees it.
    FheParams p;
    p.n = 256;
    p.maxLevel = 4;
    p.auxCount = 3;
    p.primeBits = 28;
    p.plainModulus = 257;
    FheContext ctx(p);
    const PolyContext *pc = ctx.polyContext();
    Rng rng(2024);
    for (size_t i = 0; i < pc->chainLength(); ++i) {
        SCOPED_TRACE("modulus index " + std::to_string(i));
        expectEquivalent(pc->tables(i), rng);
    }
}

TEST_F(NttLazyStrict, EquivalentAtHeadroomBoundPrime)
{
    // The largest NTT-friendly q below the lazy bound 2^30: every
    // lazy intermediate sits within one bit of overflow here.
    for (uint32_t n : {128u, 4096u}) {
        const uint32_t q = generateNttPrimes(1, 30, n)[0];
        ASSERT_LT(q, 1u << 30);
        ASSERT_GT(q, 1u << 29);
        NttTables t(n, q);
        Rng rng(n);
        for (int draw = 0; draw < 4; ++draw)
            expectEquivalent(t, rng);
    }
}

TEST_F(NttLazyStrict, RejectsModulusWithoutLazyHeadroom)
{
    // A 31-bit NTT-friendly prime satisfies q ≡ 1 (mod 2n) but leaves
    // no room for [0, 4q) intermediates; construction must refuse it.
    const uint32_t q31 = generateNttPrimes(1, 31, 128)[0];
    ASSERT_GE(q31, 1u << 30);
    EXPECT_THROW(NttTables(128, q31), FatalError);
}

TEST(Ntt, RejectsNonNttFriendlyModulus)
{
    // 786433 = 3*2^18+1 supports N up to 2^17 but 65537 only N <= 2^15.
    EXPECT_THROW(NttTables(65536, 65537), FatalError);
}

TEST(Transpose, QuadrantSwapMatchesDirect)
{
    Rng rng(5);
    for (size_t dim : {2u, 4u, 8u, 16u, 32u, 128u}) {
        std::vector<uint32_t> m(dim * dim);
        for (auto &x : m)
            x = static_cast<uint32_t>(rng.next());
        std::vector<uint32_t> ref(dim * dim);
        transposeDirect<uint32_t>(m, ref, dim, dim);
        transposeQuadrantSwap<uint32_t>(m, dim);
        EXPECT_EQ(m, ref) << "dim=" << dim;
    }
}

TEST(Transpose, QuadrantSwapIsInvolution)
{
    Rng rng(6);
    std::vector<uint32_t> m(64 * 64);
    for (auto &x : m)
        x = static_cast<uint32_t>(rng.next());
    auto orig = m;
    transposeQuadrantSwap<uint32_t>(m, 64);
    transposeQuadrantSwap<uint32_t>(m, 64);
    EXPECT_EQ(m, orig);
}

} // namespace
} // namespace f1
