/**
 * @file
 * Tests for automorphisms: direct coefficient/NTT-domain maps, the
 * composition group law, commutation with the NTT, and the chunk-local
 * decomposed datapath of the F1 automorphism unit (paper §5.1).
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "modular/modarith.h"
#include "modular/primes.h"
#include "poly/automorphism.h"
#include "poly/ntt.h"

namespace f1 {
namespace {

std::vector<uint32_t>
randomPoly(uint32_t n, uint32_t q, Rng &rng)
{
    std::vector<uint32_t> a(n);
    for (auto &x : a)
        x = static_cast<uint32_t>(rng.uniform(q));
    return a;
}

/** Reference: apply sigma_g by scattering with signs (paper §2.2.1). */
std::vector<uint32_t>
sigmaReference(std::span<const uint32_t> a, uint64_t g, uint32_t q)
{
    const uint64_t n = a.size();
    std::vector<uint32_t> out(n);
    for (uint64_t i = 0; i < n; ++i) {
        uint64_t full = (i * g) % (2 * n);
        uint64_t pos = full % n;
        bool flip = full >= n;
        out[pos] = flip ? negMod(a[i], q) : a[i];
    }
    return out;
}

TEST(Automorphism, CoeffMatchesScatterReference)
{
    const uint32_t n = 256;
    const uint32_t q = generateNttPrimes(1, 28, n)[0];
    Rng rng(1);
    auto a = randomPoly(n, q, rng);
    for (uint64_t g = 1; g < 2 * n; g += 2) {
        auto ref = sigmaReference(a, g, q);
        std::vector<uint32_t> out(n);
        automorphismCoeff(a, out, g, q);
        ASSERT_EQ(out, ref) << "g=" << g;
    }
}

TEST(Automorphism, PaperFig5Example)
{
    // Fig. 5: sigma_3 on N=16 with identity-labeled values, E=4 chunks.
    const uint32_t n = 16, q = 1217; // any q; no sign flips checked here
    std::vector<uint32_t> a(n);
    for (uint32_t i = 0; i < n; ++i)
        a[i] = i;
    auto out = sigmaReference(a, 3, q);
    // Expected positions from the figure (values modulo sign).
    const uint32_t expect[16] = {0, 11, 6, 1, 12, 7, 2, 13,
                                 8, 3, 14, 9, 4, 15, 10, 5};
    for (uint32_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i] % q == expect[i] || out[i] == negMod(expect[i], q),
                  true)
            << i;
}

TEST(Automorphism, GroupLaw)
{
    // σ_j(σ_k(a)) = σ_(jk mod 2N)(a).
    const uint32_t n = 128;
    const uint32_t q = generateNttPrimes(1, 28, n)[0];
    Rng rng(2);
    auto a = randomPoly(n, q, rng);
    for (uint64_t j : {3ULL, 5ULL, 255ULL}) {
        for (uint64_t k : {7ULL, 9ULL, 129ULL}) {
            std::vector<uint32_t> t1(n), t2(n), direct(n);
            automorphismCoeff(a, t1, k, q);
            automorphismCoeff(t1, t2, j, q);
            automorphismCoeff(a, direct, (j * k) % (2 * n), q);
            EXPECT_EQ(t2, direct) << "j=" << j << " k=" << k;
        }
    }
}

TEST(Automorphism, IdentityAndInverse)
{
    const uint32_t n = 128;
    const uint32_t q = generateNttPrimes(1, 28, n)[0];
    Rng rng(3);
    auto a = randomPoly(n, q, rng);
    std::vector<uint32_t> out(n);
    automorphismCoeff(a, out, 1, q);
    EXPECT_EQ(out, a);
    // g * g^-1 = 1 (mod 2N) recovers the input.
    uint64_t g = 5;
    uint64_t ginv = invOddMod2k(g, 2 * n);
    std::vector<uint32_t> t(n);
    automorphismCoeff(a, t, g, q);
    automorphismCoeff(t, out, ginv, q);
    EXPECT_EQ(out, a);
}

TEST(Automorphism, CommutesWithNtt)
{
    // NTT(σ_g(a)) == σ_g^ntt(NTT(a)) (paper §2.3).
    const uint32_t n = 512;
    const uint32_t q = generateNttPrimes(1, 28, n)[0];
    NttTables tables(n, q);
    Rng rng(4);
    auto a = randomPoly(n, q, rng);
    for (uint64_t g : {3ULL, 5ULL, 2ULL * n - 1, 511ULL}) {
        std::vector<uint32_t> viaCoeff(n);
        automorphismCoeff(a, viaCoeff, g, q);
        tables.forward(viaCoeff);

        auto ntt = a;
        tables.forward(ntt);
        std::vector<uint32_t> viaNtt(n);
        automorphismNtt(ntt, viaNtt, g);
        EXPECT_EQ(viaCoeff, viaNtt) << "g=" << g;
    }
}

class AutDecompTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>>
{
};

TEST_P(AutDecompTest, DecomposedMatchesDirectAllG)
{
    const auto [n, lanes] = GetParam();
    const uint32_t q = generateNttPrimes(1, 28, n)[0];
    Rng rng(n ^ lanes);
    auto a = randomPoly(n, q, rng);
    // All odd g < 2N for small n; sampled g for large n.
    std::vector<uint64_t> gs;
    if (n <= 256) {
        for (uint64_t g = 1; g < 2 * n; g += 2)
            gs.push_back(g);
    } else {
        gs = {1, 3, 5, 2 * (uint64_t)n - 1, (uint64_t)n + 1, 12345 % n | 1};
    }
    std::vector<uint32_t> direct(n), decomposed(n);
    for (uint64_t g : gs) {
        automorphismCoeff(a, direct, g, q);
        automorphismCoeffDecomposed(a, decomposed, g, q, lanes);
        ASSERT_EQ(decomposed, direct) << "coeff g=" << g;
        automorphismNtt(a, direct, g);
        automorphismNttDecomposed(a, decomposed, g, lanes);
        ASSERT_EQ(decomposed, direct) << "ntt g=" << g;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AutDecompTest,
    ::testing::Values(std::make_tuple(16u, 4u),      // Fig. 5 shape
                      std::make_tuple(256u, 16u),
                      std::make_tuple(1024u, 128u),  // G < E
                      std::make_tuple(16384u, 128u), // F1 full size
                      std::make_tuple(4096u, 64u)));

TEST(Automorphism, NttDomainHasNoSignFlips)
{
    // In the NTT domain the permutation is sign-free: applying it to
    // the all-ones vector must return the all-ones vector.
    const uint32_t n = 128;
    std::vector<uint32_t> ones(n, 1), out(n);
    for (uint64_t g = 1; g < 2 * n; g += 2) {
        automorphismNtt(ones, out, g);
        EXPECT_EQ(out, ones) << g;
    }
}

} // namespace
} // namespace f1
