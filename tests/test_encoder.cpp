/** @file Tests for slot ordering and the BGV/CKKS encoders. */
#include <gtest/gtest.h>

#include "common/error.h"

#include "fhe/encoder.h"
#include "poly/automorphism.h"

namespace f1 {
namespace {

FheParams
smallParams()
{
    FheParams p;
    p.n = 256;
    p.maxLevel = 3;
    p.primeBits = 28;
    p.plainModulus = 65537; // ≡ 1 mod 2N for N <= 2^15
    return p;
}

TEST(SlotOrder, EvalIndicesAreAPermutation)
{
    SlotOrder order(256);
    std::set<uint32_t> seen;
    for (uint32_t row = 0; row < 2; ++row)
        for (uint32_t col = 0; col < 128; ++col)
            seen.insert(order.evalIndex(row, col));
    EXPECT_EQ(seen.size(), 256u);
}

TEST(SlotOrder, RotationGaloisIsPowerOfFive)
{
    SlotOrder order(64);
    EXPECT_EQ(order.rotationGalois(0), 1u);
    EXPECT_EQ(order.rotationGalois(1), 5u);
    EXPECT_EQ(order.rotationGalois(2), 25u);
    // Negative rotations wrap.
    EXPECT_EQ(order.rotationGalois(-1),
              order.rotationGalois(order.rowSize() - 1));
}

TEST(BgvEncoder, SlotsRoundTrip)
{
    FheContext ctx(smallParams());
    BgvEncoder enc(&ctx, 65537);
    ASSERT_TRUE(enc.supportsSlots());
    std::vector<uint64_t> slots(256);
    for (size_t i = 0; i < slots.size(); ++i)
        slots[i] = (i * 7919 + 13) % 65537;
    auto coeffs = enc.encodeSlots(slots);
    std::vector<uint64_t> back(coeffs.size());
    for (size_t i = 0; i < coeffs.size(); ++i)
        back[i] = coeffs[i] < 0 ? coeffs[i] + 65537 : coeffs[i];
    EXPECT_EQ(enc.decodeSlots(back), slots);
}

TEST(BgvEncoder, SlotwiseAddAndMultiplySemantics)
{
    // Products of encoded polynomials act slot-wise: the algebraic
    // basis of homomorphic SIMD (paper §2.1).
    FheContext ctx(smallParams());
    BgvEncoder enc(&ctx, 65537);
    const uint64_t t = 65537;
    std::vector<uint64_t> sa(256), sb(256);
    for (size_t i = 0; i < 256; ++i) {
        sa[i] = (i * 31 + 5) % t;
        sb[i] = (i * 17 + 3) % t;
    }
    auto pa = enc.toPoly(enc.encodeSlots(sa), 3);
    auto pb = enc.toPoly(enc.encodeSlots(sb), 3);
    auto prod = pa.mul(pb);
    prod.toCoeff();
    // Read back mod t via exact CRT.
    std::vector<uint64_t> coeffs(256);
    for (size_t i = 0; i < 256; ++i) {
        auto [mag, neg] = prod.coeffCentered(i);
        uint64_t v = mag.modSmall(t);
        coeffs[i] = neg && v != 0 ? t - v : v;
    }
    auto slots = enc.decodeSlots(coeffs);
    for (size_t i = 0; i < 256; ++i)
        EXPECT_EQ(slots[i], sa[i] * sb[i] % t) << i;
}

TEST(BgvEncoder, AutomorphismRotatesSlots)
{
    FheContext ctx(smallParams());
    BgvEncoder enc(&ctx, 65537);
    const uint32_t n = 256, half = 128;
    std::vector<uint64_t> slots(n);
    for (size_t i = 0; i < n; ++i)
        slots[i] = i + 1;
    auto coeffs = enc.encodeSlots(slots);
    // Apply sigma_g (g = 5^r) on the plaintext polynomial mod t.
    const int64_t r = 3;
    std::vector<uint32_t> poly(n), rotated(n);
    for (size_t i = 0; i < n; ++i)
        poly[i] = coeffs[i] < 0 ? coeffs[i] + 65537 : coeffs[i];
    automorphismCoeff(poly, rotated, enc.slotOrder().rotationGalois(r),
                      65537);
    std::vector<uint64_t> rot64(rotated.begin(), rotated.end());
    auto got = enc.decodeSlots(rot64);
    for (uint32_t col = 0; col < half; ++col) {
        EXPECT_EQ(got[col], slots[(col + r) % half]) << col;
        EXPECT_EQ(got[half + col], slots[half + (col + r) % half]);
    }
}

TEST(BgvEncoder, ConjugationSwapsRows)
{
    FheContext ctx(smallParams());
    BgvEncoder enc(&ctx, 65537);
    const uint32_t n = 256, half = 128;
    std::vector<uint64_t> slots(n);
    for (size_t i = 0; i < n; ++i)
        slots[i] = 2 * i + 3;
    auto coeffs = enc.encodeSlots(slots);
    std::vector<uint32_t> poly(n), swapped(n);
    for (size_t i = 0; i < n; ++i)
        poly[i] = coeffs[i] < 0 ? coeffs[i] + 65537 : coeffs[i];
    automorphismCoeff(poly, swapped,
                      enc.slotOrder().conjugationGalois(), 65537);
    std::vector<uint64_t> sw64(swapped.begin(), swapped.end());
    auto got = enc.decodeSlots(sw64);
    for (uint32_t col = 0; col < half; ++col) {
        EXPECT_EQ(got[col], slots[half + col]);
        EXPECT_EQ(got[half + col], slots[col]);
    }
}

TEST(BgvEncoder, NonSlotFriendlyModulusFallsBackToCoeffs)
{
    FheContext ctx(smallParams());
    BgvEncoder enc(&ctx, 2);
    EXPECT_FALSE(enc.supportsSlots());
    std::vector<uint64_t> vals{1, 0, 1, 1};
    auto coeffs = enc.encodeCoeffs(vals);
    EXPECT_EQ(coeffs[0], 1);
    EXPECT_EQ(coeffs[1], 0);
    EXPECT_EQ(coeffs[2], 1);
    EXPECT_THROW(enc.encodeSlots(vals), FatalError);
}

TEST(CkksEncoder, RoundTripPrecision)
{
    FheContext ctx(smallParams());
    CkksEncoder enc(&ctx);
    std::vector<std::complex<double>> slots(128);
    for (size_t i = 0; i < slots.size(); ++i)
        slots[i] = {std::sin(0.1 * i), std::cos(0.2 * i)};
    auto poly = enc.encode(slots, ctx.ckksScale(), 3);
    auto back = enc.decode(poly, ctx.ckksScale());
    for (size_t i = 0; i < slots.size(); ++i) {
        EXPECT_NEAR(back[i].real(), slots[i].real(), 1e-5) << i;
        EXPECT_NEAR(back[i].imag(), slots[i].imag(), 1e-5) << i;
    }
}

TEST(CkksEncoder, EncodedProductIsSlotwise)
{
    FheContext ctx(smallParams());
    CkksEncoder enc(&ctx);
    std::vector<std::complex<double>> sa(128), sb(128);
    for (size_t i = 0; i < 128; ++i) {
        sa[i] = {0.5 + 0.001 * i, -0.2};
        sb[i] = {1.0 - 0.002 * i, 0.1};
    }
    const double scale = ctx.ckksScale();
    auto pa = enc.encode(sa, scale, 3);
    auto pb = enc.encode(sb, scale, 3);
    auto prod = pa.mul(pb);
    auto got = enc.decode(prod, scale * scale);
    for (size_t i = 0; i < 128; ++i) {
        auto want = sa[i] * sb[i];
        EXPECT_NEAR(got[i].real(), want.real(), 1e-4) << i;
        EXPECT_NEAR(got[i].imag(), want.imag(), 1e-4) << i;
    }
}

TEST(CkksEncoder, ConstantEncodesToConstantSlots)
{
    FheContext ctx(smallParams());
    CkksEncoder enc(&ctx);
    auto poly = enc.encodeConstant(0.75, ctx.ckksScale(), 2);
    auto slots = enc.decode(poly, ctx.ckksScale());
    for (const auto &s : slots) {
        EXPECT_NEAR(s.real(), 0.75, 1e-6);
        EXPECT_NEAR(s.imag(), 0.0, 1e-6);
    }
}

} // namespace
} // namespace f1
