/** @file Unit tests for the BigInt CRT-support type. */
#include <gtest/gtest.h>

#include "common/bigint.h"
#include "common/rng.h"

namespace f1 {
namespace {

TEST(BigInt, SmallRoundTrip)
{
    BigInt a(12345);
    EXPECT_EQ(a.toU64(), 12345u);
    EXPECT_EQ(a.toHex(), "3039");
    EXPECT_FALSE(a.isZero());
    EXPECT_TRUE(BigInt(0).isZero());
}

TEST(BigInt, AddCarryPropagation)
{
    BigInt a(UINT64_MAX);
    a.addSmall(1);
    EXPECT_EQ(a.toHex(), "10000000000000000");
    EXPECT_EQ(a.bitLength(), 65u);
    EXPECT_EQ(a.modSmall(3), (BigInt(UINT64_MAX).modSmall(3) + 1) % 3);
}

TEST(BigInt, SubBorrowPropagation)
{
    BigInt a(UINT64_MAX);
    a.addSmall(5); // 2^64 + 4
    BigInt b(10);
    BigInt c = a - b;
    EXPECT_EQ(c.toHex(), "fffffffffffffffa");
}

TEST(BigInt, MulSmallChain)
{
    // 2^20 multiplications stay consistent with modSmall.
    BigInt a(1);
    uint64_t mod = 1000000007ULL;
    uint64_t ref = 1;
    for (uint64_t f : {3ULL, 65537ULL, 4294967291ULL, 97ULL, 1ULL << 40}) {
        a.mulSmall(f);
        ref = (unsigned __int128)ref * (f % mod) % mod;
    }
    EXPECT_EQ(a.modSmall(mod), ref);
}

TEST(BigInt, FullProductMatchesRepeatedAddition)
{
    BigInt a(0xdeadbeefcafebabeULL);
    a.mulSmall(0x123456789abcdefULL);
    BigInt b(3);
    BigInt prod = a * b;
    BigInt sum = a + a + a;
    EXPECT_EQ(prod, sum);
}

TEST(BigInt, CompareOrdering)
{
    BigInt small(42);
    BigInt big(UINT64_MAX);
    big.mulSmall(12345);
    EXPECT_LT(small, big);
    EXPECT_GT(big, small);
    EXPECT_LE(small, small);
    EXPECT_GE(big, big);
    EXPECT_NE(small, big);
}

TEST(BigInt, ReduceBySubtraction)
{
    BigInt q(1);
    q.mulSmall(0xffffffffULL);
    q.mulSmall(0xfffffffbULL); // ~64-bit modulus
    BigInt x = q.timesSmall(7);
    x.addSmall(123);
    x.reduceBySubtraction(q);
    EXPECT_EQ(x.toU64(), 123u);
}

TEST(BigInt, ToDoubleApproximation)
{
    BigInt a(1);
    a.mulSmall(1ULL << 62);
    a.mulSmall(1ULL << 62);
    double d = a.toDouble();
    EXPECT_NEAR(d, 0x1.0p124, 0x1.0p74);
}

TEST(BigInt, ModSmallRandomizedAgainstInt128)
{
    Rng rng(7);
    for (int it = 0; it < 200; ++it) {
        uint64_t lo = rng.next();
        uint64_t hi = rng.next() >> 32;
        uint64_t m = rng.uniform((1ULL << 40) - 2) + 2;
        BigInt a(hi);
        a.mulSmall(1ULL << 32);
        a.mulSmall(1ULL << 32);
        a += BigInt(lo);
        unsigned __int128 ref = ((unsigned __int128)hi << 64) | lo;
        EXPECT_EQ(a.modSmall(m), (uint64_t)(ref % m));
    }
}

TEST(BigInt, BitLengthEdgeCases)
{
    EXPECT_EQ(BigInt(0).bitLength(), 0u);
    EXPECT_EQ(BigInt(1).bitLength(), 1u);
    EXPECT_EQ(BigInt(2).bitLength(), 2u);
    EXPECT_EQ(BigInt(UINT64_MAX).bitLength(), 64u);
}

} // namespace
} // namespace f1
