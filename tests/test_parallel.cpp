/**
 * @file
 * Tests for the limb-parallel execution engine: pool semantics
 * (coverage, exceptions, nesting) and the bit-identical contract — the
 * threaded NTT, element-wise, basis-extension, and key-switching paths
 * must produce exactly the serial reference's output for any thread
 * count.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <thread>
#include <type_traits>

#include "common/error.h"
#include "common/parallel.h"
#include "fhe/basis_extend.h"
#include "fhe/bgv.h"
#include "fhe/keyswitch.h"
#include "modular/primes.h"
#include "poly/rns_poly.h"

namespace f1 {
namespace {

/** Runs fn under an explicit pool size, then restores the default. */
template <typename Fn>
auto
withThreads(unsigned threads, Fn &&fn)
{
    setGlobalThreadCount(threads);
    if constexpr (std::is_void_v<decltype(fn())>) {
        fn();
        setGlobalThreadCount(0);
    } else {
        auto out = fn();
        setGlobalThreadCount(0);
        return out;
    }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    withThreads(4, [] {
        std::vector<int> hits(1000, 0);
        parallelFor(0, hits.size(), [&](size_t i) { hits[i] += 1; });
        EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
        EXPECT_EQ(*std::min_element(hits.begin(), hits.end()), 1);
        EXPECT_EQ(*std::max_element(hits.begin(), hits.end()), 1);
    });
}

TEST(ParallelFor, EmptyAndSingletonRanges)
{
    withThreads(4, [] {
        int calls = 0;
        parallelFor(5, 5, [&](size_t) { ++calls; });
        EXPECT_EQ(calls, 0);
        parallelFor(7, 8, [&](size_t i) {
            EXPECT_EQ(i, 7u);
            ++calls;
        });
        EXPECT_EQ(calls, 1);
    });
}

TEST(ParallelFor, PropagatesBodyExceptions)
{
    withThreads(4, [] {
        EXPECT_THROW(parallelFor(0, 64,
                                 [&](size_t i) {
                                     if (i == 13)
                                         F1_FATAL("boom at " << i);
                                 }),
                     FatalError);
    });
}

TEST(ParallelFor, NestedCallsRunInline)
{
    withThreads(4, [] {
        std::vector<int> grid(8 * 8, 0);
        parallelFor(0, 8, [&](size_t i) {
            parallelFor(0, 8,
                        [&](size_t j) { grid[i * 8 + j] += 1; });
        });
        EXPECT_EQ(std::accumulate(grid.begin(), grid.end(), 0), 64);
    });
}

TEST(ParallelFor, PoolUsableAfterBodyThrow)
{
    // Regression for the st.body lifetime bug: after a batch whose
    // body throws, the pool's shared state must not retain a pointer
    // into the dead run() frame — follow-up batches (with different
    // bodies and stack layouts) must execute normally.
    withThreads(4, [] {
        for (int round = 0; round < 8; ++round) {
            EXPECT_THROW(parallelFor(0, 64,
                                     [&](size_t i) {
                                         if (i % 7 == 3)
                                             F1_FATAL("boom " << i);
                                     }),
                         FatalError);
            std::atomic<int> calls{0};
            parallelFor(0, 64, [&](size_t) { ++calls; });
            EXPECT_EQ(calls.load(), 64);
        }
    });
}

TEST(ParallelFor, PoolReplacementWithInFlightBatches)
{
    // Stress for the setGlobalThreadCount() use-after-free: caller
    // threads hammer parallelFor while the main thread keeps swapping
    // the global pool. Each batch runs to completion on the pool it
    // snapshotted; under ASan the old code's destroyed-pool window
    // faults here.
    std::atomic<bool> stop{false};
    constexpr uint64_t kExpected = 64 * 63 / 2;
    std::vector<std::thread> callers;
    for (int t = 0; t < 3; ++t) {
        callers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                std::atomic<uint64_t> sum{0};
                parallelFor(0, 64, [&](size_t i) {
                    sum.fetch_add(i, std::memory_order_relaxed);
                });
                EXPECT_EQ(sum.load(), kExpected);
            }
        });
    }
    for (int round = 0; round < 40; ++round)
        setGlobalThreadCount(1 + round % 4);
    stop = true;
    for (auto &c : callers)
        c.join();
    setGlobalThreadCount(0);
}

TEST(ThreadCount, ParserAcceptsPositiveDecimals)
{
    EXPECT_EQ(parseThreadCountEnv("1"), 1u);
    EXPECT_EQ(parseThreadCountEnv("8"), 8u);
    EXPECT_EQ(parseThreadCountEnv("128"), 128u);
    EXPECT_EQ(parseThreadCountEnv(" 16"), 16u);
    EXPECT_EQ(parseThreadCountEnv("+4"), 4u);
}

TEST(ThreadCount, ParserRejectsMalformedValues)
{
    EXPECT_THROW(parseThreadCountEnv(""), FatalError);
    EXPECT_THROW(parseThreadCountEnv("0"), FatalError);
    EXPECT_THROW(parseThreadCountEnv("-3"), FatalError);
    EXPECT_THROW(parseThreadCountEnv("8x"), FatalError);
    EXPECT_THROW(parseThreadCountEnv("2 4"), FatalError);
    EXPECT_THROW(parseThreadCountEnv("threads"), FatalError);
    EXPECT_THROW(parseThreadCountEnv("0x8"), FatalError);
    EXPECT_THROW(parseThreadCountEnv("8."), FatalError);
    EXPECT_THROW(parseThreadCountEnv("99999999999999999999"),
                 FatalError);
}

TEST(ThreadCount, EnvOverrideIsValidatedNotMasked)
{
    setenv("F1_THREADS", "3", 1);
    EXPECT_EQ(configuredThreadCount(), 3u);
    setenv("F1_THREADS", "8x", 1);
    EXPECT_THROW(configuredThreadCount(), FatalError);
    setenv("F1_THREADS", "0", 1);
    EXPECT_THROW(configuredThreadCount(), FatalError);
    unsetenv("F1_THREADS");
    EXPECT_GE(configuredThreadCount(), 1u);
}

TEST(ParallelFor, GlobalThreadCountControl)
{
    setGlobalThreadCount(3);
    EXPECT_EQ(globalThreadCount(), 3u);
    setGlobalThreadCount(1); // serial fallback
    EXPECT_EQ(globalThreadCount(), 1u);
    int calls = 0;
    parallelFor(0, 16, [&](size_t) { ++calls; }); // inline, no races
    EXPECT_EQ(calls, 16);
    setGlobalThreadCount(0); // back to configured default
    EXPECT_GE(globalThreadCount(), 1u);
}

/** Serial vs threaded runs of `fn` must agree byte-for-byte. */
template <typename Fn>
void
expectBitIdentical(Fn &&fn)
{
    const auto serial = withThreads(1, fn);
    const auto threaded = withThreads(4, fn);
    EXPECT_EQ(serial, threaded);
}

class ParallelEquivalenceTest : public ::testing::Test
{
  protected:
    ParallelEquivalenceTest()
        : moduli(generateNttPrimes(6, 28, 256)), ctx(256, moduli)
    {
    }

    std::vector<uint32_t> moduli;
    PolyContext ctx;
};

TEST_F(ParallelEquivalenceTest, NttRoundTrip)
{
    expectBitIdentical([&] {
        Rng rng(42);
        RnsPoly p = RnsPoly::uniform(&ctx, 6, rng, Domain::kCoeff);
        p.toNtt();
        std::vector<uint32_t> ntt = p.raw();
        p.toCoeff();
        std::vector<uint32_t> coeff = p.raw();
        ntt.insert(ntt.end(), coeff.begin(), coeff.end());
        return ntt;
    });
}

TEST_F(ParallelEquivalenceTest, ElementwiseOps)
{
    expectBitIdentical([&] {
        Rng rng(43);
        RnsPoly a = RnsPoly::uniform(&ctx, 6, rng);
        RnsPoly b = RnsPoly::uniform(&ctx, 6, rng);
        RnsPoly sum = a + b;
        RnsPoly prod = a.mul(b);
        RnsPoly rot = a.automorphism(5);
        RnsPoly neg = b;
        neg.negate();
        neg.mulScalar(12345);
        std::vector<uint32_t> out = sum.raw();
        for (const auto *p : {&prod, &rot, &neg})
            out.insert(out.end(), p->raw().begin(), p->raw().end());
        return out;
    });
}

TEST_F(ParallelEquivalenceTest, BasisExtension)
{
    expectBitIdentical([&] {
        Rng rng(44);
        const uint32_t n = ctx.n();
        BasisExtender be(&ctx, {0, 1, 2, 3}, {4, 5});
        std::vector<uint32_t> in(4 * n), out(2 * n);
        for (size_t i = 0; i < 4; ++i)
            for (uint32_t j = 0; j < n; ++j)
                in[i * n + j] =
                    static_cast<uint32_t>(rng.uniform(ctx.modulus(i)));
        be.extend(in, n, out);
        return out;
    });
}

class ParallelKeySwitchTest : public ::testing::Test
{
  protected:
    static FheParams
    params()
    {
        FheParams p;
        p.n = 128;
        p.maxLevel = 4;
        p.auxCount = 4;
        p.primeBits = 28;
        p.plainModulus = 257;
        return p;
    }

    ParallelKeySwitchTest() : ctx(params()), sw(&ctx) {}

    std::vector<uint32_t>
    switchOnce(KeySwitchVariant variant)
    {
        Rng rng(123);
        SecretKey sk = sw.keyGen(rng);
        auto w = sk.s.mul(sk.s);
        auto hint = sw.makeHint(w, sk, 4, 257, variant, rng);
        auto x = RnsPoly::uniform(ctx.polyContext(), 4, rng);
        auto [u0, u1] = sw.apply(x, hint, 257);
        std::vector<uint32_t> out = u0.raw();
        out.insert(out.end(), u1.raw().begin(), u1.raw().end());
        return out;
    }

    FheContext ctx;
    KeySwitcher sw;
};

TEST_F(ParallelKeySwitchTest, DigitVariantBitIdentical)
{
    expectBitIdentical(
        [&] { return switchOnce(KeySwitchVariant::kDigitLxL); });
}

TEST_F(ParallelKeySwitchTest, GhsVariantBitIdentical)
{
    expectBitIdentical(
        [&] { return switchOnce(KeySwitchVariant::kGhsExtension); });
}

TEST(ParallelFullStack, BgvMultiplyDepthBitIdentical)
{
    // End-to-end cross-validation through the functional layer: fresh
    // context, encrypt, square twice with relinearization and modulus
    // switching, decrypt. Every draw of scheme randomness is serial,
    // so the entire trace must be bit-identical for any pool size.
    auto run = [] {
        FheParams p;
        p.n = 256;
        p.maxLevel = 5;
        p.primeBits = 28;
        p.plainModulus = 65537; // ≡ 1 mod 2N: slot packing at N=256
        FheContext ctx(p);
        BgvScheme scheme(&ctx, 0, KeySwitchVariant::kDigitLxL, 7);
        std::vector<uint64_t> slots(scheme.encoder().slotCount());
        for (size_t i = 0; i < slots.size(); ++i)
            slots[i] = (3 * i + 1) % 65537;
        auto ct = scheme.encryptSlots(slots, 5);
        ct = scheme.modSwitch(scheme.mul(ct, ct));
        ct = scheme.modSwitch(scheme.mul(ct, ct));
        std::vector<uint32_t> out;
        for (const auto &poly : ct.polys)
            out.insert(out.end(), poly.raw().begin(),
                       poly.raw().end());
        auto slotsOut = scheme.decryptSlots(ct);
        out.insert(out.end(), slotsOut.begin(), slotsOut.end());
        return out;
    };
    const auto serial = withThreads(1, run);
    const auto threaded = withThreads(4, run);
    EXPECT_EQ(serial, threaded);
}

} // namespace
} // namespace f1
