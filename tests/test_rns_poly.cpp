/**
 * @file
 * Tests for RnsPoly and PolyContext: CRT consistency, domain tracking,
 * arithmetic semantics, and level manipulation.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "modular/modarith.h"
#include "modular/primes.h"
#include "poly/rns_poly.h"

namespace f1 {
namespace {

class RnsPolyTest : public ::testing::Test
{
  protected:
    RnsPolyTest()
        : moduli(generateNttPrimes(4, 28, 256)), ctx(256, moduli),
          rng(42)
    {
    }

    std::vector<uint32_t> moduli;
    PolyContext ctx;
    Rng rng;
};

TEST_F(RnsPolyTest, FromSignedRoundTripsThroughCrt)
{
    std::vector<int64_t> coeffs(ctx.n());
    for (auto &c : coeffs)
        c = static_cast<int64_t>(rng.uniform(2000001)) - 1000000;
    auto p = RnsPoly::fromSigned(&ctx, 4, coeffs, Domain::kCoeff);
    for (size_t j = 0; j < ctx.n(); j += 17) {
        auto [mag, neg] = p.coeffCentered(j);
        int64_t v = static_cast<int64_t>(mag.toU64()) * (neg ? -1 : 1);
        EXPECT_EQ(v, coeffs[j]) << j;
    }
}

TEST_F(RnsPolyTest, AddSubNegateSemantics)
{
    auto a = RnsPoly::uniform(&ctx, 4, rng);
    auto b = RnsPoly::uniform(&ctx, 4, rng);
    auto sum = a + b;
    auto diff = sum - b;
    for (size_t i = 0; i < 4; ++i)
        EXPECT_TRUE(std::equal(diff.residue(i).begin(),
                               diff.residue(i).end(),
                               a.residue(i).begin()));
    auto neg = a;
    neg.negate();
    auto zero = a + neg;
    for (size_t i = 0; i < 4; ++i)
        for (uint32_t x : zero.residue(i))
            EXPECT_EQ(x, 0u);
}

TEST_F(RnsPolyTest, NttDomainMulMatchesCoeffConvolution)
{
    // (a*b) computed in NTT domain equals schoolbook negacyclic
    // convolution on each residue.
    std::vector<int64_t> ca(ctx.n(), 0), cb(ctx.n(), 0);
    ca[0] = 3;
    ca[1] = -2;
    cb[0] = 5;
    cb[2] = 7;
    auto a = RnsPoly::fromSigned(&ctx, 4, ca);
    auto b = RnsPoly::fromSigned(&ctx, 4, cb);
    auto prod = a.mul(b);
    prod.toCoeff();
    // (3 - 2x)(5 + 7x^2) = 15 - 10x + 21x^2 - 14x^3
    auto check = [&](size_t idx, int64_t want) {
        auto [mag, isNeg] = prod.coeffCentered(idx);
        int64_t v = static_cast<int64_t>(mag.toU64()) * (isNeg ? -1 : 1);
        EXPECT_EQ(v, want) << "coeff " << idx;
    };
    check(0, 15);
    check(1, -10);
    check(2, 21);
    check(3, -14);
    for (size_t j = 4; j < ctx.n(); ++j)
        check(j, 0);
}

TEST_F(RnsPolyTest, MulRequiresNttDomain)
{
    auto a = RnsPoly::uniform(&ctx, 4, rng, Domain::kCoeff);
    auto b = RnsPoly::uniform(&ctx, 4, rng, Domain::kCoeff);
    EXPECT_THROW(a.mulEq(b), PanicError);
}

TEST_F(RnsPolyTest, DomainConversionsAreInverse)
{
    auto a = RnsPoly::uniform(&ctx, 4, rng, Domain::kCoeff);
    auto orig = a.raw();
    a.toNtt();
    EXPECT_EQ(a.domain(), Domain::kNtt);
    a.toCoeff();
    EXPECT_EQ(a.raw(), orig);
}

TEST_F(RnsPolyTest, AutomorphismConsistentAcrossDomains)
{
    auto a = RnsPoly::uniform(&ctx, 4, rng, Domain::kCoeff);
    auto viaCoeff = a.automorphism(5);
    viaCoeff.toNtt();
    auto b = a;
    b.toNtt();
    auto viaNtt = b.automorphism(5);
    EXPECT_EQ(viaCoeff.raw(), viaNtt.raw());
}

TEST_F(RnsPolyTest, DropLastResidueShrinks)
{
    auto a = RnsPoly::uniform(&ctx, 4, rng);
    auto r0 = std::vector<uint32_t>(a.residue(0).begin(),
                                    a.residue(0).end());
    a.dropLastResidue();
    EXPECT_EQ(a.levels(), 3u);
    EXPECT_TRUE(std::equal(a.residue(0).begin(), a.residue(0).end(),
                           r0.begin()));
    a.appendZeroResidues(1);
    EXPECT_EQ(a.levels(), 4u);
    for (uint32_t x : a.residue(3))
        EXPECT_EQ(x, 0u);
}

TEST_F(RnsPolyTest, MulScalarMatchesPerResidue)
{
    auto a = RnsPoly::uniform(&ctx, 4, rng);
    auto b = a;
    a.mulScalar(12345);
    std::vector<uint32_t> scalars;
    for (size_t i = 0; i < 4; ++i)
        scalars.push_back(12345 % ctx.modulus(i));
    b.mulScalarPerResidue(scalars);
    EXPECT_EQ(a.raw(), b.raw());
}

TEST_F(RnsPolyTest, ModulusProductMatchesBigIntMultiply)
{
    BigInt expect(1);
    for (size_t i = 0; i < 3; ++i)
        expect.mulSmall(moduli[i]);
    EXPECT_EQ(ctx.modulusProduct(3), expect);
}

TEST_F(RnsPolyTest, UniformValuesAreReduced)
{
    auto a = RnsPoly::uniform(&ctx, 4, rng);
    for (size_t i = 0; i < 4; ++i)
        for (uint32_t x : a.residue(i))
            EXPECT_LT(x, ctx.modulus(i));
}

} // namespace
} // namespace f1
