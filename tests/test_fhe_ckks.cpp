/**
 * @file
 * CKKS tests: approximate round trips, homomorphic arithmetic with
 * rescaling, rotations, and scale bookkeeping.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "fhe/ckks.h"

namespace f1 {
namespace {

FheParams
ckksParams(uint32_t aux = 0)
{
    FheParams p;
    p.n = 512;
    p.maxLevel = 6;
    p.auxCount = aux;
    p.primeBits = 28;
    return p;
}

std::vector<std::complex<double>>
testSlots(uint32_t count, double mag = 1.0, uint64_t salt = 0)
{
    std::vector<std::complex<double>> s(count);
    for (uint32_t i = 0; i < count; ++i)
        s[i] = {mag * std::sin(0.37 * i + salt),
                mag * std::cos(0.11 * i + 2.0 * salt)};
    return s;
}

class CkksVariantTest : public ::testing::TestWithParam<KeySwitchVariant>
{
  protected:
    CkksVariantTest()
        : ctx(ckksParams(GetParam() == KeySwitchVariant::kGhsExtension
                             ? 6
                             : 0)),
          scheme(&ctx, GetParam())
    {
    }

    FheContext ctx;
    CkksScheme scheme;
};

TEST_P(CkksVariantTest, EncryptDecryptRoundTrip)
{
    auto slots = testSlots(256);
    auto ct = scheme.encrypt(slots, 6);
    auto got = scheme.decrypt(ct);
    for (size_t i = 0; i < slots.size(); ++i) {
        EXPECT_NEAR(got[i].real(), slots[i].real(), 1e-4) << i;
        EXPECT_NEAR(got[i].imag(), slots[i].imag(), 1e-4) << i;
    }
}

TEST_P(CkksVariantTest, MultiplyRescaleChain)
{
    auto sa = testSlots(256, 0.9, 1);
    auto sb = testSlots(256, 0.8, 2);
    auto ca = scheme.encrypt(sa, 6);
    auto cb = scheme.encrypt(sb, 6);
    auto prod = scheme.rescale(scheme.mul(ca, cb));
    EXPECT_EQ(prod.level(), 5u);
    auto got = scheme.decrypt(prod);
    for (size_t i = 0; i < sa.size(); ++i) {
        auto want = sa[i] * sb[i];
        EXPECT_NEAR(got[i].real(), want.real(), 1e-3) << i;
        EXPECT_NEAR(got[i].imag(), want.imag(), 1e-3) << i;
    }
}

TEST_P(CkksVariantTest, Rotation)
{
    auto slots = testSlots(256, 1.0, 3);
    auto ct = scheme.encrypt(slots, 6);
    for (int64_t r : {1, 7, 100}) {
        auto got = scheme.decrypt(scheme.rotate(ct, r));
        for (size_t i = 0; i < slots.size(); ++i) {
            auto want = slots[(i + r) % slots.size()];
            EXPECT_NEAR(got[i].real(), want.real(), 1e-3)
                << "r=" << r << " i=" << i;
            EXPECT_NEAR(got[i].imag(), want.imag(), 1e-3);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Variants, CkksVariantTest,
                         ::testing::Values(KeySwitchVariant::kDigitLxL,
                                           KeySwitchVariant::kGhsExtension));

class CkksTest : public ::testing::Test
{
  protected:
    CkksTest() : ctx(ckksParams()), scheme(&ctx) {}
    FheContext ctx;
    CkksScheme scheme;
};

TEST_F(CkksTest, AddSubSemantics)
{
    auto sa = testSlots(256, 1.0, 4);
    auto sb = testSlots(256, 1.0, 5);
    auto ca = scheme.encrypt(sa, 4);
    auto cb = scheme.encrypt(sb, 4);
    auto sum = scheme.decrypt(scheme.add(ca, cb));
    auto diff = scheme.decrypt(scheme.sub(ca, cb));
    for (size_t i = 0; i < sa.size(); ++i) {
        EXPECT_NEAR(sum[i].real(), sa[i].real() + sb[i].real(), 1e-4);
        EXPECT_NEAR(diff[i].real(), sa[i].real() - sb[i].real(), 1e-4);
    }
}

TEST_F(CkksTest, MulPlainAndConst)
{
    auto sa = testSlots(256, 1.0, 6);
    auto sb = testSlots(256, 1.0, 7);
    auto ct = scheme.encrypt(sa, 4);
    auto viaPlain =
        scheme.decrypt(scheme.rescale(scheme.mulPlain(ct, sb)));
    for (size_t i = 0; i < sa.size(); ++i) {
        auto want = sa[i] * sb[i];
        EXPECT_NEAR(viaPlain[i].real(), want.real(), 1e-3) << i;
        EXPECT_NEAR(viaPlain[i].imag(), want.imag(), 1e-3);
    }
    auto viaConst =
        scheme.decrypt(scheme.rescale(scheme.mulConst(ct, 2.5)));
    for (size_t i = 0; i < sa.size(); ++i)
        EXPECT_NEAR(viaConst[i].real(), sa[i].real() * 2.5, 1e-3);
}

TEST_F(CkksTest, AddConst)
{
    auto sa = testSlots(256, 1.0, 8);
    auto ct = scheme.encrypt(sa, 3);
    auto got = scheme.decrypt(scheme.addConst(ct, -1.25));
    for (size_t i = 0; i < sa.size(); ++i)
        EXPECT_NEAR(got[i].real(), sa[i].real() - 1.25, 1e-4);
}

TEST_F(CkksTest, ConjugateConjugatesSlots)
{
    auto sa = testSlots(256, 1.0, 9);
    auto ct = scheme.encrypt(sa, 4);
    auto got = scheme.decrypt(scheme.conjugate(ct));
    for (size_t i = 0; i < sa.size(); ++i) {
        EXPECT_NEAR(got[i].real(), sa[i].real(), 1e-3);
        EXPECT_NEAR(got[i].imag(), -sa[i].imag(), 1e-3);
    }
}

TEST_F(CkksTest, ScaleTracksThroughOps)
{
    auto sa = testSlots(256, 1.0, 10);
    auto ct = scheme.encrypt(sa, 5);
    EXPECT_DOUBLE_EQ(ct.scale, scheme.defaultScale());
    auto prod = scheme.mul(ct, ct);
    EXPECT_DOUBLE_EQ(prod.scale, ct.scale * ct.scale);
    auto rs = scheme.rescale(prod);
    EXPECT_NEAR(rs.scale, ct.scale,
                0.02 * ct.scale); // prime ≈ scale
}

TEST_F(CkksTest, DeepEvaluationPolynomial)
{
    // Evaluate f(x) = (x^2 + x)^2 * x via mul/rescale chains: exercises
    // level alignment with modDownTo.
    auto sa = testSlots(256, 0.5, 11);
    auto x = scheme.encrypt(sa, 6);
    auto x2 = scheme.rescale(scheme.mul(x, x));
    auto inner = scheme.add(x2, scheme.modDownTo(x, x2.level()));
    auto sq = scheme.rescale(scheme.mul(inner, inner));
    auto result =
        scheme.rescale(scheme.mul(sq, scheme.modDownTo(x, sq.level())));
    auto got = scheme.decrypt(result);
    // Tolerance reflects the ~1% systematic scale drift from treating
    // near-equal primes as exactly the scale (documented in DESIGN.md).
    for (size_t i = 0; i < sa.size(); ++i) {
        auto xx = sa[i];
        auto want = (xx * xx + xx) * (xx * xx + xx) * xx;
        EXPECT_NEAR(got[i].real(), want.real(), 2e-2) << i;
        EXPECT_NEAR(got[i].imag(), want.imag(), 2e-2) << i;
    }
}

TEST_F(CkksTest, EncryptRealConvenience)
{
    std::vector<double> vals(256);
    for (size_t i = 0; i < vals.size(); ++i)
        vals[i] = 0.01 * i - 1.0;
    auto ct = scheme.encryptReal(vals, 3);
    auto got = scheme.decrypt(ct);
    for (size_t i = 0; i < vals.size(); ++i)
        EXPECT_NEAR(got[i].real(), vals[i], 1e-4);
}

} // namespace
} // namespace f1
