/**
 * @file
 * End-to-end BGV tests: encryption round trips, homomorphic add /
 * multiply / rotate semantics on slots, modulus switching, noise
 * tracking conservativeness, and both key-switching variants.
 */
#include <gtest/gtest.h>

#include "fhe/bgv.h"

namespace f1 {
namespace {

FheParams
bgvParams(uint32_t aux = 0)
{
    FheParams p;
    p.n = 256;
    p.maxLevel = 8;
    p.auxCount = aux;
    p.primeBits = 28;
    p.plainModulus = 65537;
    return p;
}

std::vector<uint64_t>
testSlots(uint32_t n, uint64_t t, uint64_t salt = 0)
{
    std::vector<uint64_t> s(n);
    for (uint32_t i = 0; i < n; ++i)
        s[i] = (i * 7919 + salt * 104729 + 17) % t;
    return s;
}

class BgvVariantTest : public ::testing::TestWithParam<KeySwitchVariant>
{
  protected:
    BgvVariantTest()
        : ctx(bgvParams(GetParam() == KeySwitchVariant::kGhsExtension
                            ? 8
                            : 0)),
          scheme(&ctx, 0, GetParam())
    {
    }

    FheContext ctx;
    BgvScheme scheme;
};

TEST_P(BgvVariantTest, EncryptDecryptRoundTrip)
{
    auto slots = testSlots(256, 65537);
    auto ct = scheme.encryptSlots(slots, 5);
    EXPECT_EQ(scheme.decryptSlots(ct), slots);
    EXPECT_GT(scheme.noiseBudgetBits(ct), 0);
}

TEST_P(BgvVariantTest, HomomorphicAdd)
{
    auto sa = testSlots(256, 65537, 1);
    auto sb = testSlots(256, 65537, 2);
    auto ca = scheme.encryptSlots(sa, 5);
    auto cb = scheme.encryptSlots(sb, 5);
    auto sum = scheme.decryptSlots(scheme.add(ca, cb));
    for (size_t i = 0; i < sa.size(); ++i)
        EXPECT_EQ(sum[i], (sa[i] + sb[i]) % 65537);
}

TEST_P(BgvVariantTest, HomomorphicMultiply)
{
    auto sa = testSlots(256, 65537, 3);
    auto sb = testSlots(256, 65537, 4);
    auto ca = scheme.encryptSlots(sa, 5);
    auto cb = scheme.encryptSlots(sb, 5);
    auto prod = scheme.decryptSlots(scheme.mul(ca, cb));
    for (size_t i = 0; i < sa.size(); ++i)
        EXPECT_EQ(prod[i], sa[i] * sb[i] % 65537) << i;
}

TEST_P(BgvVariantTest, HomomorphicRotation)
{
    auto slots = testSlots(256, 65537, 5);
    auto ct = scheme.encryptSlots(slots, 5);
    for (int64_t r : {1, 3, 60}) {
        auto rot = scheme.decryptSlots(scheme.rotate(ct, r));
        for (uint32_t col = 0; col < 128; ++col) {
            EXPECT_EQ(rot[col], slots[(col + r) % 128])
                << "r=" << r << " col=" << col;
            EXPECT_EQ(rot[128 + col], slots[128 + (col + r) % 128]);
        }
    }
}

TEST_P(BgvVariantTest, MultiplyThenModSwitch)
{
    auto sa = testSlots(256, 65537, 6);
    auto sb = testSlots(256, 65537, 7);
    auto ca = scheme.encryptSlots(sa, 5);
    auto cb = scheme.encryptSlots(sb, 5);
    auto prod = scheme.modSwitch(scheme.mul(ca, cb));
    EXPECT_EQ(prod.level(), 4u);
    auto got = scheme.decryptSlots(prod);
    for (size_t i = 0; i < sa.size(); ++i)
        EXPECT_EQ(got[i], sa[i] * sb[i] % 65537) << i;
}

TEST_P(BgvVariantTest, MultiplicativeDepthChain)
{
    // Depth-3 chain with modulus switching before each multiply
    // (paper §2.2.2 usage pattern). Starts three levels above the
    // final budget so the conservative tracker stays positive.
    const uint64_t t = 65537;
    std::vector<uint64_t> s(256, 3);
    auto ct = scheme.encryptSlots(s, 8);
    uint64_t expect = 3;
    for (int depth = 0; depth < 3; ++depth) {
        ct = scheme.modSwitch(ct);
        ct = scheme.mul(ct, ct);
        expect = expect * expect % t;
        ASSERT_GT(scheme.noiseBudgetBits(ct), 0) << "depth " << depth;
    }
    auto got = scheme.decryptSlots(ct);
    for (auto v : got)
        EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(Variants, BgvVariantTest,
                         ::testing::Values(KeySwitchVariant::kDigitLxL,
                                           KeySwitchVariant::kGhsExtension));

class BgvTest : public ::testing::Test
{
  protected:
    BgvTest() : ctx(bgvParams()), scheme(&ctx) {}
    FheContext ctx;
    BgvScheme scheme;
};

TEST_F(BgvTest, AddAndMulPlain)
{
    auto sa = testSlots(256, 65537, 8);
    auto sb = testSlots(256, 65537, 9);
    auto ct = scheme.encryptSlots(sa, 4);
    auto coeffs = scheme.encoder().encodeSlots(sb);
    auto sum = scheme.decryptSlots(scheme.addPlain(ct, coeffs));
    auto prod = scheme.decryptSlots(scheme.mulPlain(ct, coeffs));
    for (size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sum[i], (sa[i] + sb[i]) % 65537);
        EXPECT_EQ(prod[i], sa[i] * sb[i] % 65537);
    }
}

TEST_F(BgvTest, ConjugateSwapsRows)
{
    auto slots = testSlots(256, 65537, 10);
    auto ct = scheme.encryptSlots(slots, 4);
    auto got = scheme.decryptSlots(scheme.conjugate(ct));
    for (uint32_t col = 0; col < 128; ++col) {
        EXPECT_EQ(got[col], slots[128 + col]);
        EXPECT_EQ(got[128 + col], slots[col]);
    }
}

TEST_F(BgvTest, InnerSumViaRotations)
{
    // The running example of the paper (Listing 2): log2(slots)
    // rotate+add steps replicate the sum across all slots.
    const uint64_t t = 65537;
    std::vector<uint64_t> slots(256, 0);
    uint64_t expect = 0;
    for (uint32_t i = 0; i < 128; ++i) {
        slots[i] = i + 1;
        slots[128 + i] = i + 1; // both rows identical
        expect = (expect + i + 1) % t;
    }
    auto ct = scheme.encryptSlots(slots, 5);
    for (uint32_t step = 1; step < 128; step <<= 1)
        ct = scheme.add(ct, scheme.rotate(ct, step));
    auto got = scheme.decryptSlots(ct);
    for (auto v : got)
        EXPECT_EQ(v, expect);
}

TEST_F(BgvTest, NoiseTrackerIsConservative)
{
    auto slots = testSlots(256, 65537, 11);
    auto ct = scheme.encryptSlots(slots, 5);
    EXPECT_GE(ct.noiseBits, scheme.measuredNoiseBits(ct));
    auto prod = scheme.mul(ct, ct);
    EXPECT_GE(prod.noiseBits, scheme.measuredNoiseBits(prod));
    auto ms = scheme.modSwitch(prod);
    EXPECT_GE(ms.noiseBits, scheme.measuredNoiseBits(ms));
    auto rot = scheme.rotate(ms, 2);
    EXPECT_GE(rot.noiseBits, scheme.measuredNoiseBits(rot));
}

TEST_F(BgvTest, ModSwitchReducesMeasuredNoiseRatio)
{
    // Modulus switching keeps noise/Q roughly constant in absolute
    // bits but removes a full prime from the modulus; the budget
    // should shrink by at most ~the prime size while the *absolute*
    // noise drops by about the prime size.
    auto slots = testSlots(256, 65537, 12);
    auto ct = scheme.encryptSlots(slots, 5);
    auto prod = scheme.mul(ct, ct);
    double before = scheme.measuredNoiseBits(prod);
    auto ms = scheme.modSwitch(prod);
    double after = scheme.measuredNoiseBits(ms);
    EXPECT_LT(after, before - 20); // dropped ~28-bit prime
    EXPECT_EQ(scheme.decryptSlots(ms), scheme.decryptSlots(prod));
}

TEST_F(BgvTest, MulAfterDeepChainFailsPredictably)
{
    // Without modulus switching, repeated squaring must eventually
    // exhaust the budget, and the tracker must flag it before
    // decryption actually breaks.
    std::vector<uint64_t> s(256, 2);
    auto ct = scheme.encryptSlots(s, 2); // only 2 primes: tiny budget
    uint64_t expect = 2;
    bool tracker_flagged = false;
    for (int i = 0; i < 4; ++i) {
        ct = scheme.mul(ct, ct);
        expect = expect * expect % 65537;
        if (scheme.noiseBudgetBits(ct) <= 0) {
            tracker_flagged = true;
            break;
        }
        ASSERT_EQ(scheme.decryptSlots(ct)[0], expect)
            << "tracker approved a broken ciphertext";
    }
    EXPECT_TRUE(tracker_flagged);
}

TEST_F(BgvTest, CoefficientEncryptionWithT2)
{
    BgvScheme binary(&ctx, 2);
    std::vector<uint64_t> bits(256);
    for (size_t i = 0; i < bits.size(); ++i)
        bits[i] = (i * i + 3 * i) % 2;
    auto ct = binary.encryptCoeffs(bits, 4);
    EXPECT_EQ(binary.decryptCoeffs(ct), bits);
    // XOR = addition mod 2.
    auto both = binary.add(ct, ct);
    for (auto v : binary.decryptCoeffs(both))
        EXPECT_EQ(v, 0u);
}

TEST_F(BgvTest, EncryptAtLowerLevel)
{
    auto slots = testSlots(256, 65537, 13);
    auto ct = scheme.encryptSlots(slots, 2);
    EXPECT_EQ(ct.level(), 2u);
    EXPECT_EQ(scheme.decryptSlots(ct), slots);
}

} // namespace
} // namespace f1
