/**
 * @file
 * Tests for GSW (external products, CMux) and for BGV/CKKS
 * bootstrapping (paper §7 "Bootstrapping" benchmarks, §8.5 functional
 * simulator scope).
 */
#include <gtest/gtest.h>

#include "common/error.h"

#include <cmath>

#include "fhe/bootstrap.h"
#include "fhe/gsw.h"

namespace f1 {
namespace {

TEST(Gsw, ExternalProductMultipliesPlaintexts)
{
    FheParams p;
    p.n = 256;
    p.maxLevel = 4;
    p.primeBits = 28;
    p.plainModulus = 65537;
    FheContext ctx(p);
    BgvScheme bgv(&ctx);
    GswScheme gsw(&bgv);

    std::vector<uint64_t> slots(256);
    for (size_t i = 0; i < slots.size(); ++i)
        slots[i] = (3 * i + 1) % 65537;
    auto rlwe = bgv.encryptSlots(slots, 4);
    for (uint64_t m : {0ULL, 1ULL, 2ULL}) {
        auto rgsw = gsw.encryptScalar(m, 4);
        auto prod = gsw.externalProduct(rlwe, rgsw);
        auto got = bgv.decryptSlots(prod);
        for (size_t i = 0; i < slots.size(); ++i)
            EXPECT_EQ(got[i], slots[i] * m % 65537) << "m=" << m;
    }
}

TEST(Gsw, ExternalProductNoiseIsAsymmetric)
{
    // Chaining external products against fresh GSW bits keeps RLWE
    // noise bounded (additive growth), unlike BGV mul (multiplicative):
    // the defining GSW property (paper §2.5).
    FheParams p;
    p.n = 256;
    p.maxLevel = 4;
    p.primeBits = 28;
    p.plainModulus = 65537;
    FheContext ctx(p);
    BgvScheme bgv(&ctx);
    GswScheme gsw(&bgv);

    std::vector<uint64_t> slots(256, 7);
    auto rlwe = bgv.encryptSlots(slots, 4);
    auto one = gsw.encryptScalar(1, 4);
    double prev = bgv.measuredNoiseBits(rlwe);
    for (int hop = 0; hop < 4; ++hop) {
        rlwe = gsw.externalProduct(rlwe, one);
        double cur = bgv.measuredNoiseBits(rlwe);
        // Additive: noise gains at most ~a constant per hop.
        EXPECT_LT(cur, prev + 55);
        prev = cur;
    }
    for (auto v : bgv.decryptSlots(rlwe))
        EXPECT_EQ(v, 7u);
}

TEST(Gsw, CmuxSelects)
{
    FheParams p;
    p.n = 256;
    p.maxLevel = 4;
    p.primeBits = 28;
    p.plainModulus = 65537;
    FheContext ctx(p);
    BgvScheme bgv(&ctx);
    GswScheme gsw(&bgv);

    std::vector<uint64_t> sa(256, 111), sb(256, 222);
    auto c0 = bgv.encryptSlots(sa, 4);
    auto c1 = bgv.encryptSlots(sb, 4);
    auto bit0 = gsw.encryptScalar(0, 4);
    auto bit1 = gsw.encryptScalar(1, 4);
    EXPECT_EQ(bgv.decryptSlots(gsw.cmux(bit0, c0, c1))[0], 111u);
    EXPECT_EQ(bgv.decryptSlots(gsw.cmux(bit1, c0, c1))[0], 222u);
}

TEST(BgvBootstrap, RecryptsExhaustedCiphertext)
{
    FheParams p;
    p.n = 256;
    p.maxLevel = 12;
    p.primeBits = 28;
    p.plainModulus = 2;
    FheContext ctx(p);
    BgvScheme bgv(&ctx, 2);
    BgvBootstrapper boot(&bgv, /*digits=*/6);

    // Non-packed: the payload is the single bit in coefficient 0
    // (the homomorphic trace zeroes the other coefficients).
    for (uint64_t bit : {0ULL, 1ULL}) {
        std::vector<uint64_t> bits(256, 0);
        bits[0] = bit;
        // Exhausted input: encrypted directly at level 1.
        auto ct = bgv.encryptCoeffs(bits, 1);
        auto fresh = boot.bootstrap(ct);
        EXPECT_EQ(fresh.level(), boot.outputLevel());
        EXPECT_GT(fresh.level(), 4u);
        auto got = bgv.decryptCoeffs(fresh);
        EXPECT_EQ(got[0], bit);
        for (size_t i = 1; i < got.size(); ++i)
            ASSERT_EQ(got[i], 0u) << i;
    }
}

TEST(BgvBootstrap, RefreshedCiphertextSupportsMoreOps)
{
    FheParams p;
    p.n = 256;
    p.maxLevel = 12;
    p.primeBits = 28;
    p.plainModulus = 2;
    FheContext ctx(p);
    BgvScheme bgv(&ctx, 2);
    BgvBootstrapper boot(&bgv, 6);

    std::vector<uint64_t> bits(256, 0);
    bits[0] = 1;
    auto ct = bgv.encryptCoeffs(bits, 1);
    auto fresh = boot.bootstrap(ct);
    // AND of the bit with itself via multiplication (t=2).
    auto sq = bgv.mul(fresh, fresh);
    EXPECT_EQ(bgv.decryptCoeffs(sq)[0], 1u);
}

TEST(BgvBootstrap, RejectsWrongPlaintextModulus)
{
    FheParams p;
    p.n = 256;
    p.maxLevel = 12;
    p.primeBits = 28;
    p.plainModulus = 65537;
    FheContext ctx(p);
    BgvScheme bgv(&ctx); // t = 65537
    EXPECT_THROW(BgvBootstrapper(&bgv, 6), FatalError);
}

TEST(CkksBootstrap, RecoversSmallPlaintexts)
{
    FheParams p;
    p.n = 256;
    p.maxLevel = 24; // the paper's bootstrapping L_max
    p.primeBits = 28;
    p.secretHammingWeight = 32; // sparse key bounds the wrap term
    FheContext ctx(p);
    CkksScheme ckks(&ctx);
    CkksBootstrapper boot(&ckks, /*taylorDeg=*/7);

    // Non-packed: one value, encoded as a constant (all slots equal),
    // small relative to q0 (the sparse regime HEAAN requires).
    for (double v : {2e-4, -7e-4}) {
        std::vector<std::complex<double>> slots(128, {v, 0.0});
        auto ct = ckks.encrypt(slots, 1);
        auto fresh = boot.bootstrap(ct);
        EXPECT_GT(fresh.level(), 1u);
        auto got = ckks.decrypt(fresh);
        for (size_t i = 0; i < slots.size(); ++i)
            EXPECT_NEAR(got[i].real(), v, 1e-4) << i;
    }
}

} // namespace
} // namespace f1
