/**
 * @file
 * Minimal recursive-descent JSON validator for tests.
 *
 * The observability tests must assert that exported artifacts (metric
 * snapshots, execution profiles, Chrome trace-event files) are valid
 * JSON — the trace contract is "loads in ui.perfetto.dev", and a
 * malformed escape or trailing comma breaks that silently. The repo
 * deliberately carries no JSON dependency, so this header implements
 * just enough of RFC 8259 to lint: it validates syntax (and counts
 * nodes) without building a DOM.
 */
#ifndef F1_TESTS_JSON_LINT_H
#define F1_TESTS_JSON_LINT_H

#include <cctype>
#include <string>
#include <string_view>

namespace f1::testing {

class JsonLint
{
  public:
    /** Validates `text` as one complete JSON value (plus trailing
     *  whitespace). On failure, error() describes the first problem
     *  and its byte offset. */
    bool
    validate(std::string_view text)
    {
        s_ = text;
        pos_ = 0;
        error_.clear();
        if (!value())
            return false;
        skipWs();
        if (pos_ != s_.size())
            return fail("trailing characters after JSON value");
        return true;
    }

    const std::string &error() const { return error_; }

  private:
    bool
    fail(const std::string &what)
    {
        if (error_.empty())
            error_ = what + " at byte " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(std::string_view lit)
    {
        if (s_.compare(pos_, lit.size(), lit) != 0)
            return fail("bad literal");
        pos_ += lit.size();
        return true;
    }

    bool
    string()
    {
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return fail("dangling escape");
                const char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos_ + i >= s_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                s_[pos_ + i])))
                            return fail("bad \\u escape");
                    }
                    pos_ += 4;
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return fail("bad escape character");
                }
            }
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        const size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        if (pos_ >= s_.size() ||
            !std::isdigit(static_cast<unsigned char>(s_[pos_])))
            return fail("bad number");
        if (s_[pos_] == '0') {
            ++pos_; // no leading zeros
        } else {
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_])))
                ++pos_;
        }
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            if (pos_ >= s_.size() ||
                !std::isdigit(static_cast<unsigned char>(s_[pos_])))
                return fail("bad fraction");
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_])))
                ++pos_;
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() &&
                (s_[pos_] == '+' || s_[pos_] == '-'))
                ++pos_;
            if (pos_ >= s_.size() ||
                !std::isdigit(static_cast<unsigned char>(s_[pos_])))
                return fail("bad exponent");
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_])))
                ++pos_;
        }
        return pos_ > start;
    }

    bool
    value()
    {
        skipWs();
        if (pos_ >= s_.size())
            return fail("unexpected end of input");
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default:  return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return fail("expected ':' in object");
            ++pos_;
            if (!value())
                return false;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < s_.size() && s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            if (!value())
                return false;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < s_.size() && s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    std::string_view s_;
    size_t pos_ = 0;
    std::string error_;
};

/** One-shot convenience: true iff `text` is valid JSON. */
inline bool
isValidJson(std::string_view text, std::string *why = nullptr)
{
    JsonLint lint;
    const bool ok = lint.validate(text);
    if (!ok && why != nullptr)
        *why = lint.error();
    return ok;
}

} // namespace f1::testing

#endif // F1_TESTS_JSON_LINT_H
