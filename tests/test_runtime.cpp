/**
 * @file
 * Serving-runtime tests: the LRU cache, the DAG executor under all
 * three ExecutionPolicy schedulers (bit-identity of work-stealing
 * against serial and wavefront order across thread counts and with
 * compiler schedule hints, liveness-based release, cycle rejection,
 * deprecated-shim compatibility), and the multi-tenant serving engine
 * (bit-identity against isolated execution, run-to-run determinism
 * with concurrent jobs in flight, cache hit accounting, round-robin
 * fairness bookkeeping).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/lru_cache.h"
#include "common/parallel.h"
#include "runtime/op_graph_executor.h"
#include "runtime/serving.h"
#include "sim/reference_executor.h"

namespace f1 {
namespace {

//
// LruCache
//

TEST(LruCacheTest, PutGetAndEvictionOrder)
{
    LruCache<int, int> cache(2);
    cache.put(1, 10);
    cache.put(2, 20);
    ASSERT_NE(cache.get(1), nullptr); // 1 is now most recent
    cache.put(3, 30);                 // evicts 2
    EXPECT_EQ(cache.get(2), nullptr);
    ASSERT_NE(cache.get(1), nullptr);
    EXPECT_EQ(*cache.get(1), 10);
    ASSERT_NE(cache.get(3), nullptr);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruCacheTest, GetOrCreateComputesOnce)
{
    LruCache<int, int> cache;
    int calls = 0;
    auto make = [&] {
        ++calls;
        return 42;
    };
    EXPECT_EQ(*cache.getOrCreate(7, make), 42);
    EXPECT_EQ(*cache.getOrCreate(7, make), 42);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(LruCacheTest, PinnedValueSurvivesEviction)
{
    LruCache<int, std::vector<int>> cache(1);
    auto pinned = cache.put(1, std::vector<int>{1, 2, 3});
    cache.put(2, std::vector<int>{4}); // evicts key 1
    EXPECT_EQ(cache.get(1), nullptr);
    ASSERT_EQ(pinned->size(), 3u); // still alive through our pin
    EXPECT_EQ((*pinned)[2], 3);
}

TEST(LruCacheTest, SetCapacityEvictsDown)
{
    LruCache<int, int> cache;
    for (int i = 0; i < 8; ++i)
        cache.put(i, i);
    cache.setCapacity(3);
    EXPECT_EQ(cache.size(), 3u);
    // The three most recently inserted survive.
    EXPECT_NE(cache.get(7), nullptr);
    EXPECT_NE(cache.get(6), nullptr);
    EXPECT_NE(cache.get(5), nullptr);
    EXPECT_EQ(cache.get(4), nullptr);
}

TEST(InlineParallelScopeTest, ForcesInlineExecution)
{
    setGlobalThreadCount(4);
    std::set<std::thread::id> ids;
    std::mutex m;
    {
        InlineParallelScope guard;
        parallelFor(0, 64, [&](size_t) {
            std::lock_guard<std::mutex> lock(m);
            ids.insert(std::this_thread::get_id());
        });
    }
    EXPECT_EQ(ids.size(), 1u);
    EXPECT_TRUE(ids.count(std::this_thread::get_id()));
    setGlobalThreadCount(0);
}

//
// Executor fixtures
//

FheParams
smallParams()
{
    FheParams p;
    p.n = 256;
    p.maxLevel = 8;
    p.primeBits = 28;
    p.plainModulus = 65537;
    return p;
}

/** Two inputs, one plain, parallel branches, one dead op. */
Program
diamondProgram()
{
    Program p(256, 8, "diamond");
    int x = p.input();
    int y = p.input();
    int w = p.inputPlain();
    int a = p.mul(x, y);
    int b = p.rotate(x, 1);
    int c = p.mulPlain(y, w);
    int d = p.add(a, c);
    int e = p.sub(d, b);
    int f = p.modSwitch(e);
    int g = p.conjugate(f);
    p.mul(x, x); // dead: never consumed, must be released not leaked
    p.output(g);
    p.output(b);
    return p;
}

/** Serial accumulation chain: x added into an accumulator 12 times. */
Program
chainProgram()
{
    Program p(256, 8, "chain");
    int x = p.input();
    int acc = x;
    for (int i = 0; i < 12; ++i)
        acc = p.add(acc, x);
    p.output(acc);
    return p;
}

std::vector<uint32_t>
ctBits(const Ciphertext &ct)
{
    std::vector<uint32_t> out;
    for (const auto &poly : ct.polys)
        out.insert(out.end(), poly.raw().begin(), poly.raw().end());
    return out;
}

void
expectIdenticalOutputs(const ExecutionResult &a,
                       const ExecutionResult &b)
{
    ASSERT_EQ(a.outputs.size(), b.outputs.size());
    for (const auto &[h, ct] : a.outputs) {
        auto it = b.outputs.find(h);
        ASSERT_NE(it, b.outputs.end()) << "missing output " << h;
        EXPECT_EQ(ctBits(ct), ctBits(it->second))
            << "output " << h << " diverged";
        EXPECT_EQ(ct.noiseBits, it->second.noiseBits);
        EXPECT_EQ(ct.scale, it->second.scale);
        EXPECT_EQ(ct.ptCorrection, it->second.ptCorrection);
    }
}

TEST(OpGraphExecutorTest, WavefrontMatchesSerialBgv)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();

    OpGraphExecutor serial(p, &bgv);
    serial.setDispatchMode(DispatchMode::kSerial);
    OpGraphExecutor wave(p, &bgv);

    RuntimeInputs in;
    in.seed = 11;
    auto rs = serial.run(in);
    auto rw = wave.run(in);
    expectIdenticalOutputs(rs, rw);
    EXPECT_GT(rw.maxWavefrontWidth, 1u); // branches actually overlap
    EXPECT_LT(rw.wavefronts, p.ops().size());
}

TEST(OpGraphExecutorTest, WavefrontMatchesSerialCkks)
{
    FheContext ctx(smallParams());
    CkksScheme ckks(&ctx);
    Program p(256, 8, "ckks-diamond");
    int x = p.input();
    int y = p.input();
    int a = p.mul(x, y);
    int r = p.modSwitch(a); // rescale
    int b = p.rotate(r, 1);
    int c = p.add(b, r);
    p.output(c);
    p.output(b);

    OpGraphExecutor serial(p, &ckks);
    serial.setDispatchMode(DispatchMode::kSerial);
    OpGraphExecutor wave(p, &ckks);

    RuntimeInputs in;
    in.seed = 13;
    expectIdenticalOutputs(serial.run(in), wave.run(in));
}

TEST(OpGraphExecutorTest, BitIdenticalAcrossThreadCounts)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    OpGraphExecutor exec(p, &bgv);
    RuntimeInputs in;
    in.seed = 17;

    setGlobalThreadCount(1);
    auto serial = exec.run(in);
    for (unsigned threads : {2u, 4u}) {
        setGlobalThreadCount(threads);
        auto threaded = exec.run(in);
        expectIdenticalOutputs(serial, threaded);
    }
    setGlobalThreadCount(0);
}

TEST(OpGraphExecutorTest, RepeatedRunsAreIdentical)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    OpGraphExecutor exec(p, &bgv);
    RuntimeInputs in;
    in.seed = 19;
    auto first = exec.run(in);
    auto second = exec.run(in);
    expectIdenticalOutputs(first, second);
}

TEST(OpGraphExecutorTest, LivenessReleasesDeadCiphertexts)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = chainProgram();
    OpGraphExecutor exec(p, &bgv);

    RuntimeInputs in;
    in.bind(0, std::vector<uint64_t>(256, 1));
    auto res = exec.run(in);

    // Chain: input + current accumulator + freshly produced op. The
    // pre-liveness executor held all 13 intermediates to the end.
    EXPECT_LE(res.peakResidentCiphertexts, 4u);
    EXPECT_GE(res.peakResidentCiphertexts, 2u);

    auto slots = bgv.decryptSlots(res.outputs.begin()->second);
    EXPECT_EQ(slots[0], 13u); // 1 + 12 additions of 1
}

TEST(OpGraphExecutorTest, ReferenceExecutorWrapper)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    ReferenceExecutor ref(p, &bgv);
    auto res = ref.run();
    EXPECT_EQ(res.outputs.size(), 2u);
    EXPECT_GT(res.peakResidentCiphertexts, 0u);
    // The default policy is work-stealing, which has no rounds.
    EXPECT_EQ(res.wavefronts, 0u);

    ReferenceExecutor wave(p, &bgv);
    wave.setDispatchMode(DispatchMode::kWavefront);
    auto rw = wave.run();
    EXPECT_GT(rw.wavefronts, 0u);
    expectIdenticalOutputs(res, rw);
}

TEST(OpGraphExecutorTest, HintCacheHitsOnRepeatedPrograms)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    OpGraphExecutor exec(p, &bgv);
    exec.run();
    const auto cold = bgv.hintCacheStats();
    exec.run();
    const auto warm = bgv.hintCacheStats();
    EXPECT_GT(warm.hits, cold.hits);
    EXPECT_EQ(warm.misses, cold.misses); // nothing regenerated
}

TEST(OpGraphExecutorTest, CappedHintCacheStaysCorrect)
{
    FheContext ctx(smallParams());
    BgvScheme reference(&ctx);
    BgvScheme capped(&ctx);
    capped.setHintCacheCapacity(1); // every key-switch evicts
    Program p = diamondProgram();

    RuntimeInputs in;
    in.seed = 23;
    auto a = OpGraphExecutor(p, &reference).run(in);
    auto b = OpGraphExecutor(p, &capped).run(in);
    expectIdenticalOutputs(a, b);
    EXPECT_GT(capped.hintCacheStats().evictions, 0u);
}

//
// ExecutionPolicy / work-stealing scheduler
//

ExecutionPolicy
policyFor(SchedulerKind k, const ScheduleHints *hints = nullptr)
{
    ExecutionPolicy pol;
    pol.scheduler = k;
    pol.scheduleHints = hints;
    return pol;
}

TEST(OpGraphExecutorTest, WorkStealingMatchesSerialAndWavefrontBgv)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    OpGraphExecutor exec(p, &bgv);
    const ScheduleHints hints = compileProgram(p, F1Config{}).hints;
    ASSERT_EQ(hints.size(), p.ops().size());

    RuntimeInputs in;
    in.seed = 29;
    const auto serial =
        exec.execute(in, policyFor(SchedulerKind::kSerial));
    for (unsigned threads : {1u, 2u, 8u}) {
        setGlobalThreadCount(threads);
        expectIdenticalOutputs(
            serial, exec.execute(in, policyFor(SchedulerKind::kWavefront,
                                               &hints)));
        expectIdenticalOutputs(
            serial,
            exec.execute(in, policyFor(SchedulerKind::kWorkStealing)));
        expectIdenticalOutputs(
            serial,
            exec.execute(in, policyFor(SchedulerKind::kWorkStealing,
                                       &hints)));
    }
    setGlobalThreadCount(0);
}

TEST(OpGraphExecutorTest, WorkStealingMatchesSerialCkks)
{
    FheContext ctx(smallParams());
    CkksScheme ckks(&ctx);
    Program p(256, 8, "ckks-ws");
    int x = p.input();
    int y = p.input();
    int a = p.mul(x, y);
    int r = p.modSwitch(a);
    int b = p.rotate(r, 1);
    p.output(p.add(b, r));

    OpGraphExecutor exec(p, &ckks);
    RuntimeInputs in;
    in.seed = 31;
    const auto serial =
        exec.execute(in, policyFor(SchedulerKind::kSerial));
    for (unsigned threads : {1u, 2u, 8u}) {
        setGlobalThreadCount(threads);
        expectIdenticalOutputs(
            serial,
            exec.execute(in, policyFor(SchedulerKind::kWorkStealing)));
    }
    setGlobalThreadCount(0);
}

TEST(OpGraphExecutorTest, HintedPriorityIsDeterministic)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    OpGraphExecutor exec(p, &bgv);
    const ScheduleHints hints = compileProgram(p, F1Config{}).hints;

    RuntimeInputs in;
    in.seed = 37;
    // Hints reorder the ready set (many ops tie at startCycle 0 in a
    // shallow graph, so releaseRank and handle break the ties); the
    // pop order must still be a deterministic total order, and the
    // outputs must not depend on the hint-driven order at all.
    const auto pol = policyFor(SchedulerKind::kWorkStealing, &hints);
    const auto first = exec.execute(in, pol);
    expectIdenticalOutputs(first, exec.execute(in, pol));
    expectIdenticalOutputs(
        first,
        exec.execute(in, policyFor(SchedulerKind::kWorkStealing)));
}

TEST(OpGraphExecutorTest, ThreadBudgetCapsWorkersBitIdentically)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    OpGraphExecutor exec(p, &bgv);
    RuntimeInputs in;
    in.seed = 41;

    setGlobalThreadCount(4);
    ExecutionPolicy wide = policyFor(SchedulerKind::kWorkStealing);
    ExecutionPolicy narrow = wide;
    narrow.threadBudget = 1;
    expectIdenticalOutputs(exec.execute(in, wide),
                           exec.execute(in, narrow));
    setGlobalThreadCount(0);
}

TEST(OpGraphExecutorTest, RejectsCyclicProgram)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p(256, 8, "cyclic");
    p.pushRaw({HeOpKind::kInput, -1, -1, 0, 8});
    // 1 and 2 feed each other: no topological order exists.
    p.pushRaw({HeOpKind::kAdd, 0, 2, 0, 8});
    p.pushRaw({HeOpKind::kAdd, 0, 1, 0, 8});
    p.pushRaw({HeOpKind::kOutput, 2, -1, 0, 8});
    try {
        OpGraphExecutor exec(p, &bgv);
        FAIL() << "cycle not rejected";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("cycle"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("1"), std::string::npos);
    }
}

TEST(OpGraphExecutorTest, RejectsSelfReferenceAndBadHandle)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program self(256, 8, "self");
    self.pushRaw({HeOpKind::kAdd, 0, 0, 0, 8});
    EXPECT_THROW(OpGraphExecutor(self, &bgv), FatalError);

    Program oob(256, 8, "oob");
    oob.pushRaw({HeOpKind::kInput, -1, -1, 0, 8});
    oob.pushRaw({HeOpKind::kRotate, 7, -1, 1, 8});
    EXPECT_THROW(OpGraphExecutor(oob, &bgv), FatalError);
}

TEST(OpGraphExecutorTest, ForwardReferencesExecuteInTopoOrder)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);

    // pushRaw program with a forward reference: the output names an
    // op appended after it. Equivalent builder program for reference.
    Program fwd(256, 8, "fwd");
    fwd.pushRaw({HeOpKind::kInput, -1, -1, 0, 8});
    fwd.pushRaw({HeOpKind::kOutput, 2, -1, 0, 8});
    fwd.pushRaw({HeOpKind::kAdd, 0, 0, 0, 8});

    Program ref(256, 8, "ref");
    int x = ref.input();
    ref.output(ref.add(x, x));

    RuntimeInputs in;
    in.bind(0, std::vector<uint64_t>(256, 21));
    in.seed = 43;
    auto rf = OpGraphExecutor(fwd, &bgv).execute(
        in, policyFor(SchedulerKind::kSerial));
    auto rr = OpGraphExecutor(ref, &bgv).execute(
        in, policyFor(SchedulerKind::kSerial));
    ASSERT_EQ(rf.outputs.size(), 1u);
    EXPECT_EQ(bgv.decryptSlots(rf.outputs.begin()->second)[0], 42u);
    EXPECT_EQ(ctBits(rf.outputs.begin()->second),
              ctBits(rr.outputs.begin()->second));
}

TEST(OpGraphExecutorTest, DeprecatedShimsMatchPolicyEntryPoint)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    RuntimeInputs in;
    in.seed = 47;

    // Default shim policy is the historical wavefront dispatch.
    OpGraphExecutor viaShim(p, &bgv);
    EXPECT_EQ(viaShim.dispatchMode(), SchedulerKind::kWavefront);
    OpGraphExecutor viaPolicy(p, &bgv);
    expectIdenticalOutputs(
        viaShim.run(in),
        viaPolicy.execute(in, policyFor(SchedulerKind::kWavefront)));

    viaShim.setDispatchMode(DispatchMode::kSerial);
    expectIdenticalOutputs(
        viaShim.run(in),
        viaPolicy.execute(in, policyFor(SchedulerKind::kSerial)));
}

TEST(OpGraphExecutorTest, MismatchedBindingSchemeThrows)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = chainProgram();
    OpGraphExecutor exec(p, &bgv);
    RuntimeInputs in;
    in.bind(0, std::vector<std::complex<double>>(128));
    EXPECT_THROW(exec.execute(in), FatalError);
}

TEST(OpGraphExecutorTest, HintSizeMismatchThrows)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    OpGraphExecutor exec(p, &bgv);
    ScheduleHints wrong;
    wrong.startCycle.assign(3, 0);
    wrong.releaseRank.assign(3, 0);
    EXPECT_THROW(
        exec.execute({}, policyFor(SchedulerKind::kWorkStealing,
                                   &wrong)),
        FatalError);
}

//
// Serving engine
//

TEST(ServingEngineTest, JobsMatchIsolatedExecutionAndRepeat)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program diamond = diamondProgram();
    Program chain = chainProgram();

    const std::vector<std::string> tenants = {"alice", "bob", "carol"};
    std::vector<uint64_t> sharedWeights(256);
    for (size_t i = 0; i < sharedWeights.size(); ++i)
        sharedWeights[i] = (3 * i + 1) % 65537;

    auto makeRequest = [&](size_t i) {
        JobRequest req;
        req.program = i % 2 == 0 ? &diamond : &chain;
        req.tenant = tenants[i % tenants.size()];
        req.inputs.seed = 100 + i;
        if (i % 2 == 0) // the diamond's model weights, shared by all
            req.inputs.bind(2, sharedWeights);
        return req;
    };
    const size_t kJobs = 12;

    // Isolated reference execution, one job at a time, no caches.
    std::vector<ExecutionResult> isolated;
    for (size_t i = 0; i < kJobs; ++i) {
        JobRequest req = makeRequest(i);
        OpGraphExecutor exec(*req.program, &bgv);
        isolated.push_back(exec.run(req.inputs));
    }

    for (int round = 0; round < 2; ++round) {
        ServingConfig cfg;
        cfg.workers = 4;
        ServingEngine engine(&bgv, cfg);
        std::vector<std::future<JobResult>> futs;
        for (size_t i = 0; i < kJobs; ++i)
            futs.push_back(engine.submit(makeRequest(i)));
        for (size_t i = 0; i < kJobs; ++i) {
            JobResult r = futs[i].get();
            EXPECT_EQ(r.tenant, tenants[i % tenants.size()]);
            EXPECT_GE(r.serviceMs, 0.0);
            expectIdenticalOutputs(isolated[i], r.exec);
        }

        auto stats = engine.stats();
        EXPECT_EQ(stats.submitted, kJobs);
        EXPECT_EQ(stats.completed, kJobs);
        EXPECT_EQ(stats.failed, 0u);
        for (const auto &t : tenants)
            EXPECT_EQ(stats.completedPerTenant.at(t), kJobs / 3);
        // 6 diamond jobs share one weight vector: 1 miss, 5 hits.
        EXPECT_GT(stats.encodingCacheHits, 0u);
        EXPECT_GE(stats.encodingCacheMisses, 1u);
    }
}

TEST(ServingEngineTest, CkksJobsAndDrain)
{
    FheContext ctx(smallParams());
    CkksScheme ckks(&ctx);
    Program p(256, 8, "ckks-serve");
    int x = p.input();
    int a = p.mul(x, x);
    p.output(p.modSwitch(a));

    ServingConfig cfg;
    cfg.workers = 2;
    ServingEngine engine(&ckks, cfg);
    std::vector<std::future<JobResult>> futs;
    for (size_t i = 0; i < 6; ++i) {
        JobRequest req;
        req.program = &p;
        req.tenant = i % 2 ? "even" : "odd";
        req.inputs.seed = 40 + i;
        futs.push_back(engine.submit(std::move(req)));
    }
    engine.drain();
    EXPECT_EQ(engine.stats().completed, 6u);

    // Determinism with concurrency in flight: same seed, same bits.
    auto r0 = futs[0].get();
    JobRequest again;
    again.program = &p;
    again.inputs.seed = 40;
    auto r = engine.submit(std::move(again)).get();
    expectIdenticalOutputs(r0.exec, r.exec);
}

TEST(ServingEngineTest, WorkStealingPolicyWithPerJobHints)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    const ScheduleHints hints = compileProgram(p, F1Config{}).hints;

    // Isolated serial reference.
    RuntimeInputs in;
    in.seed = 53;
    OpGraphExecutor ref(p, &bgv);
    ExecutionPolicy serial;
    serial.scheduler = SchedulerKind::kSerial;
    const auto isolated = ref.execute(in, serial);

    ServingConfig cfg;
    cfg.workers = 2;
    cfg.policy.scheduler = SchedulerKind::kWorkStealing;
    ServingEngine engine(&bgv, cfg);
    std::vector<std::future<JobResult>> futs;
    for (int i = 0; i < 4; ++i) {
        JobRequest req;
        req.program = &p;
        req.inputs.seed = 53;
        req.hints = &hints; // per-job hints for this program shape
        futs.push_back(engine.submit(std::move(req)));
    }
    for (auto &f : futs)
        expectIdenticalOutputs(isolated, f.get().exec);
}

TEST(ServingEngineTest, RejectsJobWithoutProgram)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    ServingConfig cfg;
    cfg.workers = 1;
    ServingEngine engine(&bgv, cfg);
    EXPECT_THROW(engine.submit(JobRequest{}), FatalError);
}

} // namespace
} // namespace f1
