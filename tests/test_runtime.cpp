/**
 * @file
 * Serving-runtime tests: the LRU cache, the DAG executor under all
 * three ExecutionPolicy schedulers (bit-identity of work-stealing
 * against serial and wavefront order across thread counts and with
 * compiler schedule hints, liveness-based release, cycle rejection,
 * deprecated-shim compatibility), batched execution (executeBatch
 * bit-identity against solo runs for BGV and CKKS, shared encoding
 * cache accounting), and the multi-tenant serving pipeline (admission
 * control driven by the metrics registry, coalesced batches matching
 * isolated execution under both scheduling policies and across worker
 * counts, queue-depth gauges, shutdown under load).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/lru_cache.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "runtime/op_graph_executor.h"
#include "runtime/serving.h"
#include "sim/reference_executor.h"

namespace f1 {
namespace {

//
// LruCache
//

TEST(LruCacheTest, PutGetAndEvictionOrder)
{
    LruCache<int, int> cache(2);
    cache.put(1, 10);
    cache.put(2, 20);
    ASSERT_NE(cache.get(1), nullptr); // 1 is now most recent
    cache.put(3, 30);                 // evicts 2
    EXPECT_EQ(cache.get(2), nullptr);
    ASSERT_NE(cache.get(1), nullptr);
    EXPECT_EQ(*cache.get(1), 10);
    ASSERT_NE(cache.get(3), nullptr);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruCacheTest, GetOrCreateComputesOnce)
{
    LruCache<int, int> cache;
    int calls = 0;
    auto make = [&] {
        ++calls;
        return 42;
    };
    EXPECT_EQ(*cache.getOrCreate(7, make), 42);
    EXPECT_EQ(*cache.getOrCreate(7, make), 42);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(LruCacheTest, PinnedValueSurvivesEviction)
{
    LruCache<int, std::vector<int>> cache(1);
    auto pinned = cache.put(1, std::vector<int>{1, 2, 3});
    cache.put(2, std::vector<int>{4}); // evicts key 1
    EXPECT_EQ(cache.get(1), nullptr);
    ASSERT_EQ(pinned->size(), 3u); // still alive through our pin
    EXPECT_EQ((*pinned)[2], 3);
}

TEST(LruCacheTest, SetCapacityEvictsDown)
{
    LruCache<int, int> cache;
    for (int i = 0; i < 8; ++i)
        cache.put(i, i);
    cache.setCapacity(3);
    EXPECT_EQ(cache.size(), 3u);
    // The three most recently inserted survive.
    EXPECT_NE(cache.get(7), nullptr);
    EXPECT_NE(cache.get(6), nullptr);
    EXPECT_NE(cache.get(5), nullptr);
    EXPECT_EQ(cache.get(4), nullptr);
}

TEST(InlineParallelScopeTest, ForcesInlineExecution)
{
    setGlobalThreadCount(4);
    std::set<std::thread::id> ids;
    std::mutex m;
    {
        InlineParallelScope guard;
        parallelFor(0, 64, [&](size_t) {
            std::lock_guard<std::mutex> lock(m);
            ids.insert(std::this_thread::get_id());
        });
    }
    EXPECT_EQ(ids.size(), 1u);
    EXPECT_TRUE(ids.count(std::this_thread::get_id()));
    setGlobalThreadCount(0);
}

//
// Executor fixtures
//

FheParams
smallParams()
{
    FheParams p;
    p.n = 256;
    p.maxLevel = 8;
    p.primeBits = 28;
    p.plainModulus = 65537;
    return p;
}

/** Two inputs, one plain, parallel branches, one dead op. */
Program
diamondProgram()
{
    Program p(256, 8, "diamond");
    int x = p.input();
    int y = p.input();
    int w = p.inputPlain();
    int a = p.mul(x, y);
    int b = p.rotate(x, 1);
    int c = p.mulPlain(y, w);
    int d = p.add(a, c);
    int e = p.sub(d, b);
    int f = p.modSwitch(e);
    int g = p.conjugate(f);
    p.mul(x, x); // dead: never consumed, must be released not leaked
    p.output(g);
    p.output(b);
    return p;
}

/** Serial accumulation chain: x added into an accumulator 12 times. */
Program
chainProgram()
{
    Program p(256, 8, "chain");
    int x = p.input();
    int acc = x;
    for (int i = 0; i < 12; ++i)
        acc = p.add(acc, x);
    p.output(acc);
    return p;
}

std::vector<uint32_t>
ctBits(const Ciphertext &ct)
{
    std::vector<uint32_t> out;
    for (const auto &poly : ct.polys)
        out.insert(out.end(), poly.raw().begin(), poly.raw().end());
    return out;
}

void
expectIdenticalOutputs(const ExecutionResult &a,
                       const ExecutionResult &b)
{
    ASSERT_EQ(a.outputs.size(), b.outputs.size());
    for (const auto &[h, ct] : a.outputs) {
        auto it = b.outputs.find(h);
        ASSERT_NE(it, b.outputs.end()) << "missing output " << h;
        EXPECT_EQ(ctBits(ct), ctBits(it->second))
            << "output " << h << " diverged";
        EXPECT_EQ(ct.noiseBits, it->second.noiseBits);
        EXPECT_EQ(ct.scale, it->second.scale);
        EXPECT_EQ(ct.ptCorrection, it->second.ptCorrection);
    }
}

TEST(OpGraphExecutorTest, WavefrontMatchesSerialBgv)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();

    OpGraphExecutor serial(p, &bgv);
    serial.setDispatchMode(DispatchMode::kSerial);
    OpGraphExecutor wave(p, &bgv);

    RuntimeInputs in;
    in.seed = 11;
    auto rs = serial.run(in);
    auto rw = wave.run(in);
    expectIdenticalOutputs(rs, rw);
    EXPECT_GT(rw.maxWavefrontWidth, 1u); // branches actually overlap
    EXPECT_LT(rw.wavefronts, p.ops().size());
}

TEST(OpGraphExecutorTest, WavefrontMatchesSerialCkks)
{
    FheContext ctx(smallParams());
    CkksScheme ckks(&ctx);
    Program p(256, 8, "ckks-diamond");
    int x = p.input();
    int y = p.input();
    int a = p.mul(x, y);
    int r = p.modSwitch(a); // rescale
    int b = p.rotate(r, 1);
    int c = p.add(b, r);
    p.output(c);
    p.output(b);

    OpGraphExecutor serial(p, &ckks);
    serial.setDispatchMode(DispatchMode::kSerial);
    OpGraphExecutor wave(p, &ckks);

    RuntimeInputs in;
    in.seed = 13;
    expectIdenticalOutputs(serial.run(in), wave.run(in));
}

TEST(OpGraphExecutorTest, BitIdenticalAcrossThreadCounts)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    OpGraphExecutor exec(p, &bgv);
    RuntimeInputs in;
    in.seed = 17;

    setGlobalThreadCount(1);
    auto serial = exec.run(in);
    for (unsigned threads : {2u, 4u}) {
        setGlobalThreadCount(threads);
        auto threaded = exec.run(in);
        expectIdenticalOutputs(serial, threaded);
    }
    setGlobalThreadCount(0);
}

TEST(OpGraphExecutorTest, RepeatedRunsAreIdentical)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    OpGraphExecutor exec(p, &bgv);
    RuntimeInputs in;
    in.seed = 19;
    auto first = exec.run(in);
    auto second = exec.run(in);
    expectIdenticalOutputs(first, second);
}

TEST(OpGraphExecutorTest, LivenessReleasesDeadCiphertexts)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = chainProgram();
    OpGraphExecutor exec(p, &bgv);

    RuntimeInputs in;
    in.bind(0, std::vector<uint64_t>(256, 1));
    auto res = exec.run(in);

    // Chain: input + current accumulator + freshly produced op. The
    // pre-liveness executor held all 13 intermediates to the end.
    EXPECT_LE(res.peakResidentCiphertexts, 4u);
    EXPECT_GE(res.peakResidentCiphertexts, 2u);

    auto slots = bgv.decryptSlots(res.outputs.begin()->second);
    EXPECT_EQ(slots[0], 13u); // 1 + 12 additions of 1
}

TEST(OpGraphExecutorTest, ReferenceExecutorWrapper)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    ReferenceExecutor ref(p, &bgv);
    auto res = ref.run();
    EXPECT_EQ(res.outputs.size(), 2u);
    EXPECT_GT(res.peakResidentCiphertexts, 0u);
    // The default policy is work-stealing, which has no rounds.
    EXPECT_EQ(res.wavefronts, 0u);

    ReferenceExecutor wave(p, &bgv);
    wave.setDispatchMode(DispatchMode::kWavefront);
    auto rw = wave.run();
    EXPECT_GT(rw.wavefronts, 0u);
    expectIdenticalOutputs(res, rw);
}

TEST(OpGraphExecutorTest, HintCacheHitsOnRepeatedPrograms)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    OpGraphExecutor exec(p, &bgv);
    exec.run();
    const auto cold = bgv.hintCacheStats();
    exec.run();
    const auto warm = bgv.hintCacheStats();
    EXPECT_GT(warm.hits, cold.hits);
    EXPECT_EQ(warm.misses, cold.misses); // nothing regenerated
}

TEST(OpGraphExecutorTest, CappedHintCacheStaysCorrect)
{
    FheContext ctx(smallParams());
    BgvScheme reference(&ctx);
    BgvScheme capped(&ctx);
    capped.setHintCacheCapacity(1); // every key-switch evicts
    Program p = diamondProgram();

    RuntimeInputs in;
    in.seed = 23;
    auto a = OpGraphExecutor(p, &reference).run(in);
    auto b = OpGraphExecutor(p, &capped).run(in);
    expectIdenticalOutputs(a, b);
    EXPECT_GT(capped.hintCacheStats().evictions, 0u);
}

//
// ExecutionPolicy / work-stealing scheduler
//

ExecutionPolicy
policyFor(SchedulerKind k, const ScheduleHints *hints = nullptr)
{
    ExecutionPolicy pol;
    pol.scheduler = k;
    pol.scheduleHints = hints;
    return pol;
}

TEST(OpGraphExecutorTest, WorkStealingMatchesSerialAndWavefrontBgv)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    OpGraphExecutor exec(p, &bgv);
    const ScheduleHints hints = compileProgram(p, F1Config{}).hints;
    ASSERT_EQ(hints.size(), p.ops().size());

    RuntimeInputs in;
    in.seed = 29;
    const auto serial =
        exec.execute(in, policyFor(SchedulerKind::kSerial));
    for (unsigned threads : {1u, 2u, 8u}) {
        setGlobalThreadCount(threads);
        expectIdenticalOutputs(
            serial, exec.execute(in, policyFor(SchedulerKind::kWavefront,
                                               &hints)));
        expectIdenticalOutputs(
            serial,
            exec.execute(in, policyFor(SchedulerKind::kWorkStealing)));
        expectIdenticalOutputs(
            serial,
            exec.execute(in, policyFor(SchedulerKind::kWorkStealing,
                                       &hints)));
    }
    setGlobalThreadCount(0);
}

TEST(OpGraphExecutorTest, WorkStealingMatchesSerialCkks)
{
    FheContext ctx(smallParams());
    CkksScheme ckks(&ctx);
    Program p(256, 8, "ckks-ws");
    int x = p.input();
    int y = p.input();
    int a = p.mul(x, y);
    int r = p.modSwitch(a);
    int b = p.rotate(r, 1);
    p.output(p.add(b, r));

    OpGraphExecutor exec(p, &ckks);
    RuntimeInputs in;
    in.seed = 31;
    const auto serial =
        exec.execute(in, policyFor(SchedulerKind::kSerial));
    for (unsigned threads : {1u, 2u, 8u}) {
        setGlobalThreadCount(threads);
        expectIdenticalOutputs(
            serial,
            exec.execute(in, policyFor(SchedulerKind::kWorkStealing)));
    }
    setGlobalThreadCount(0);
}

TEST(OpGraphExecutorTest, HintedPriorityIsDeterministic)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    OpGraphExecutor exec(p, &bgv);
    const ScheduleHints hints = compileProgram(p, F1Config{}).hints;

    RuntimeInputs in;
    in.seed = 37;
    // Hints reorder the ready set (many ops tie at startCycle 0 in a
    // shallow graph, so releaseRank and handle break the ties); the
    // pop order must still be a deterministic total order, and the
    // outputs must not depend on the hint-driven order at all.
    const auto pol = policyFor(SchedulerKind::kWorkStealing, &hints);
    const auto first = exec.execute(in, pol);
    expectIdenticalOutputs(first, exec.execute(in, pol));
    expectIdenticalOutputs(
        first,
        exec.execute(in, policyFor(SchedulerKind::kWorkStealing)));
}

TEST(OpGraphExecutorTest, ThreadBudgetCapsWorkersBitIdentically)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    OpGraphExecutor exec(p, &bgv);
    RuntimeInputs in;
    in.seed = 41;

    setGlobalThreadCount(4);
    ExecutionPolicy wide = policyFor(SchedulerKind::kWorkStealing);
    ExecutionPolicy narrow = wide;
    narrow.threadBudget = 1;
    expectIdenticalOutputs(exec.execute(in, wide),
                           exec.execute(in, narrow));
    setGlobalThreadCount(0);
}

TEST(OpGraphExecutorTest, RejectsCyclicProgram)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p(256, 8, "cyclic");
    p.pushRaw({HeOpKind::kInput, -1, -1, 0, 8});
    // 1 and 2 feed each other: no topological order exists.
    p.pushRaw({HeOpKind::kAdd, 0, 2, 0, 8});
    p.pushRaw({HeOpKind::kAdd, 0, 1, 0, 8});
    p.pushRaw({HeOpKind::kOutput, 2, -1, 0, 8});
    try {
        OpGraphExecutor exec(p, &bgv);
        FAIL() << "cycle not rejected";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("cycle"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("1"), std::string::npos);
    }
}

TEST(OpGraphExecutorTest, RejectsSelfReferenceAndBadHandle)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program self(256, 8, "self");
    self.pushRaw({HeOpKind::kAdd, 0, 0, 0, 8});
    EXPECT_THROW(OpGraphExecutor(self, &bgv), FatalError);

    Program oob(256, 8, "oob");
    oob.pushRaw({HeOpKind::kInput, -1, -1, 0, 8});
    oob.pushRaw({HeOpKind::kRotate, 7, -1, 1, 8});
    EXPECT_THROW(OpGraphExecutor(oob, &bgv), FatalError);
}

TEST(OpGraphExecutorTest, ForwardReferencesExecuteInTopoOrder)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);

    // pushRaw program with a forward reference: the output names an
    // op appended after it. Equivalent builder program for reference.
    Program fwd(256, 8, "fwd");
    fwd.pushRaw({HeOpKind::kInput, -1, -1, 0, 8});
    fwd.pushRaw({HeOpKind::kOutput, 2, -1, 0, 8});
    fwd.pushRaw({HeOpKind::kAdd, 0, 0, 0, 8});

    Program ref(256, 8, "ref");
    int x = ref.input();
    ref.output(ref.add(x, x));

    RuntimeInputs in;
    in.bind(0, std::vector<uint64_t>(256, 21));
    in.seed = 43;
    auto rf = OpGraphExecutor(fwd, &bgv).execute(
        in, policyFor(SchedulerKind::kSerial));
    auto rr = OpGraphExecutor(ref, &bgv).execute(
        in, policyFor(SchedulerKind::kSerial));
    ASSERT_EQ(rf.outputs.size(), 1u);
    EXPECT_EQ(bgv.decryptSlots(rf.outputs.begin()->second)[0], 42u);
    EXPECT_EQ(ctBits(rf.outputs.begin()->second),
              ctBits(rr.outputs.begin()->second));
}

TEST(OpGraphExecutorTest, DeprecatedShimsMatchPolicyEntryPoint)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    RuntimeInputs in;
    in.seed = 47;

    // Default shim policy is the historical wavefront dispatch.
    OpGraphExecutor viaShim(p, &bgv);
    EXPECT_EQ(viaShim.dispatchMode(), SchedulerKind::kWavefront);
    OpGraphExecutor viaPolicy(p, &bgv);
    expectIdenticalOutputs(
        viaShim.run(in),
        viaPolicy.execute(in, policyFor(SchedulerKind::kWavefront)));

    viaShim.setDispatchMode(DispatchMode::kSerial);
    expectIdenticalOutputs(
        viaShim.run(in),
        viaPolicy.execute(in, policyFor(SchedulerKind::kSerial)));
}

TEST(OpGraphExecutorTest, MismatchedBindingSchemeThrows)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = chainProgram();
    OpGraphExecutor exec(p, &bgv);
    RuntimeInputs in;
    in.bind(0, std::vector<std::complex<double>>(128));
    EXPECT_THROW(exec.execute(in), FatalError);
}

TEST(OpGraphExecutorTest, HintSizeMismatchThrows)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    OpGraphExecutor exec(p, &bgv);
    ScheduleHints wrong;
    wrong.startCycle.assign(3, 0);
    wrong.releaseRank.assign(3, 0);
    EXPECT_THROW(
        exec.execute({}, policyFor(SchedulerKind::kWorkStealing,
                                   &wrong)),
        FatalError);
}

//
// Serving engine
//

TEST(ServingEngineTest, JobsMatchIsolatedExecutionAndRepeat)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program diamond = diamondProgram();
    Program chain = chainProgram();

    const std::vector<std::string> tenants = {"alice", "bob", "carol"};
    std::vector<uint64_t> sharedWeights(256);
    for (size_t i = 0; i < sharedWeights.size(); ++i)
        sharedWeights[i] = (3 * i + 1) % 65537;

    auto makeRequest = [&](size_t i) {
        JobRequest req;
        req.program = i % 2 == 0 ? &diamond : &chain;
        req.tenant = tenants[i % tenants.size()];
        req.inputs.seed = 100 + i;
        if (i % 2 == 0) // the diamond's model weights, shared by all
            req.inputs.bind(2, sharedWeights);
        return req;
    };
    const size_t kJobs = 12;

    // Isolated reference execution, one job at a time, no caches.
    std::vector<ExecutionResult> isolated;
    for (size_t i = 0; i < kJobs; ++i) {
        JobRequest req = makeRequest(i);
        OpGraphExecutor exec(*req.program, &bgv);
        isolated.push_back(exec.run(req.inputs));
    }

    for (int round = 0; round < 2; ++round) {
        ServingConfig cfg;
        cfg.workers = 4;
        ServingEngine engine(&bgv, cfg);
        std::vector<std::future<JobResult>> futs;
        for (size_t i = 0; i < kJobs; ++i)
            futs.push_back(engine.submit(makeRequest(i)));
        for (size_t i = 0; i < kJobs; ++i) {
            JobResult r = futs[i].get();
            EXPECT_EQ(r.tenant, tenants[i % tenants.size()]);
            EXPECT_GE(r.serviceMs, 0.0);
            expectIdenticalOutputs(isolated[i], r.exec);
        }

        auto stats = engine.stats();
        EXPECT_EQ(stats.submitted, kJobs);
        EXPECT_EQ(stats.completed, kJobs);
        EXPECT_EQ(stats.failed, 0u);
        for (const auto &t : tenants)
            EXPECT_EQ(stats.completedPerTenant.at(t), kJobs / 3);
        // 6 diamond jobs share one weight vector: 1 miss, 5 hits.
        EXPECT_GT(stats.encodingCacheHits, 0u);
        EXPECT_GE(stats.encodingCacheMisses, 1u);
    }
}

TEST(ServingEngineTest, CkksJobsAndDrain)
{
    FheContext ctx(smallParams());
    CkksScheme ckks(&ctx);
    Program p(256, 8, "ckks-serve");
    int x = p.input();
    int a = p.mul(x, x);
    p.output(p.modSwitch(a));

    ServingConfig cfg;
    cfg.workers = 2;
    ServingEngine engine(&ckks, cfg);
    std::vector<std::future<JobResult>> futs;
    for (size_t i = 0; i < 6; ++i) {
        JobRequest req;
        req.program = &p;
        req.tenant = i % 2 ? "even" : "odd";
        req.inputs.seed = 40 + i;
        futs.push_back(engine.submit(std::move(req)));
    }
    engine.drain();
    EXPECT_EQ(engine.stats().completed, 6u);

    // Determinism with concurrency in flight: same seed, same bits.
    auto r0 = futs[0].get();
    JobRequest again;
    again.program = &p;
    again.inputs.seed = 40;
    auto r = engine.submit(std::move(again)).get();
    expectIdenticalOutputs(r0.exec, r.exec);
}

TEST(ServingEngineTest, WorkStealingPolicyWithPerJobHints)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    const ScheduleHints hints = compileProgram(p, F1Config{}).hints;

    // Isolated serial reference.
    RuntimeInputs in;
    in.seed = 53;
    OpGraphExecutor ref(p, &bgv);
    ExecutionPolicy serial;
    serial.scheduler = SchedulerKind::kSerial;
    const auto isolated = ref.execute(in, serial);

    ServingConfig cfg;
    cfg.workers = 2;
    cfg.policy.scheduler = SchedulerKind::kWorkStealing;
    ServingEngine engine(&bgv, cfg);
    std::vector<std::future<JobResult>> futs;
    for (int i = 0; i < 4; ++i) {
        JobRequest req;
        req.program = &p;
        req.inputs.seed = 53;
        req.hints = &hints; // per-job hints for this program shape
        futs.push_back(engine.submit(std::move(req)));
    }
    for (auto &f : futs)
        expectIdenticalOutputs(isolated, f.get().exec);
}

TEST(ServingEngineTest, RejectsJobWithoutProgram)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    ServingConfig cfg;
    cfg.workers = 1;
    ServingEngine engine(&bgv, cfg);
    EXPECT_THROW(engine.submit(JobRequest{}), FatalError);
}

//
// Program fingerprinting (the coalescer's batching key)
//

TEST(ProgramFingerprintTest, ContentAddressedNameIndependent)
{
    Program a(256, 8, "alice");
    a.output(a.rotate(a.input(), 1));
    Program b(256, 8, "bob");
    b.output(b.rotate(b.input(), 1));
    // Identical structure, different names and addresses: same key.
    EXPECT_EQ(a.fingerprint(), b.fingerprint());

    Program c(256, 8, "alice");
    c.output(c.rotate(c.input(), 2)); // only the rotation differs
    EXPECT_NE(a.fingerprint(), c.fingerprint());

    EXPECT_NE(diamondProgram().fingerprint(),
              chainProgram().fingerprint());
    EXPECT_EQ(diamondProgram().fingerprint(),
              diamondProgram().fingerprint());
}

//
// Batched execution (executeBatch)
//

TEST(OpGraphExecutorTest, ExecuteBatchMatchesSoloBgv)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    OpGraphExecutor exec(p, &bgv);

    constexpr size_t kBatch = 5;
    std::vector<RuntimeInputs> ins(kBatch);
    for (size_t i = 0; i < kBatch; ++i)
        ins[i].seed = 300 + i;

    for (SchedulerKind s :
         {SchedulerKind::kSerial, SchedulerKind::kWavefront,
          SchedulerKind::kWorkStealing}) {
        ExecutionPolicy pol;
        pol.scheduler = s;
        auto batch = exec.executeBatch(ins, pol);
        ASSERT_EQ(batch.size(), kBatch);
        for (size_t i = 0; i < kBatch; ++i) {
            auto solo = exec.execute(ins[i], pol);
            expectIdenticalOutputs(solo, batch[i]);
            EXPECT_EQ(batch[i].batchSize, kBatch);
            EXPECT_EQ(solo.batchSize, 1u);
            EXPECT_EQ(batch[i].opsExecuted, solo.opsExecuted);
            // Resident-ciphertext accounting is per member, so the
            // deterministic scheduler reports exactly the solo peak.
            if (s == SchedulerKind::kSerial)
                EXPECT_EQ(batch[i].peakResidentCiphertexts,
                          solo.peakResidentCiphertexts);
        }
    }
}

TEST(OpGraphExecutorTest, ExecuteBatchMatchesSoloCkks)
{
    FheContext ctx(smallParams());
    CkksScheme ckks(&ctx);
    Program p(256, 8, "ckks-batch");
    int x = p.input();
    int w = p.inputPlain();
    int v = p.inputPlain();
    int a = p.mulPlain(x, w);
    int r = p.modSwitch(a); // rescale
    int s = p.addPlain(r, v);
    int b = p.rotate(s, 1);
    p.output(p.add(b, s));
    OpGraphExecutor exec(p, &ckks);

    constexpr size_t kBatch = 4;
    std::vector<RuntimeInputs> ins(kBatch);
    for (size_t i = 0; i < kBatch; ++i)
        ins[i].seed = 700 + i;

    for (SchedulerKind sched :
         {SchedulerKind::kSerial, SchedulerKind::kWorkStealing}) {
        ExecutionPolicy pol;
        pol.scheduler = sched;
        auto batch = exec.executeBatch(ins, pol);
        ASSERT_EQ(batch.size(), kBatch);
        for (size_t i = 0; i < kBatch; ++i)
            expectIdenticalOutputs(exec.execute(ins[i], pol),
                                   batch[i]);
    }
}

TEST(OpGraphExecutorTest, ExecuteBatchSharesCkksEncodingCache)
{
    FheContext ctx(smallParams());
    CkksScheme ckks(&ctx);
    Program p(256, 8, "ckks-weights");
    int x = p.input();
    int w = p.inputPlain();
    int v = p.inputPlain();
    int a = p.mulPlain(x, w); // encodes w at (defaultScale, L)
    int r = p.modSwitch(a);
    p.output(p.addPlain(r, v)); // encodes v at (r.scale, L-1)
    OpGraphExecutor exec(p, &ckks);

    // All members bind the SAME weights (the shared-model serving
    // case) but encrypt different inputs.
    std::vector<std::complex<double>> weights(128), bias(128);
    for (size_t i = 0; i < 128; ++i) {
        weights[i] = {0.25 + 0.001 * double(i), 0.0};
        bias[i] = {-0.5 + 0.002 * double(i), 0.0};
    }
    constexpr size_t kBatch = 4;
    std::vector<RuntimeInputs> ins(kBatch);
    for (size_t i = 0; i < kBatch; ++i) {
        ins[i].seed = 900 + i;
        ins[i].bind(w, weights);
        ins[i].bind(v, bias);
    }

    EncodingCache cache(64, "");
    ExecutionPolicy pol;
    pol.scheduler = SchedulerKind::kSerial; // deterministic hit order
    pol.encodingCache = &cache;
    auto batch = exec.executeBatch(ins, pol);

    // Two distinct (data, scale, level) keys; member 0 misses both,
    // every later member hits both.
    EXPECT_EQ(batch[0].encodingCacheMisses, 2u);
    EXPECT_EQ(batch[0].encodingCacheHits, 0u);
    for (size_t i = 1; i < kBatch; ++i) {
        EXPECT_EQ(batch[i].encodingCacheMisses, 0u);
        EXPECT_EQ(batch[i].encodingCacheHits, 2u);
    }

    // Cached encodings are bit-identical to uncached solo runs.
    ExecutionPolicy noCache;
    noCache.scheduler = SchedulerKind::kSerial;
    for (size_t i = 0; i < kBatch; ++i)
        expectIdenticalOutputs(exec.execute(ins[i], noCache),
                               batch[i]);
}

//
// Admission control (consumes the metrics registry, not private state)
//

TEST(AdmissionControllerTest, DecidesFromRegistrySnapshot)
{
    auto &reg = obs::MetricsRegistry::global();
    reg.reset();
    AdmissionLimits lim;
    lim.maxBacklog = 10;
    AdmissionController ctl(lim);
    TenantPolicy tp;

    // Stage registry state below the cap: admit.
    reg.counter("serving.jobs_submitted").inc(9);
    EXPECT_TRUE(ctl.decide(tp, 0).admit);

    // Stage a backlog exactly at the cap: shed, naming the counters.
    reg.counter("serving.jobs_submitted").inc(21); // 30 submitted
    reg.counter("serving.jobs_completed").inc(15);
    reg.counter("serving.jobs_failed").inc(5); // backlog = 10
    auto d = ctl.decide(tp, 0);
    EXPECT_FALSE(d.admit);
    EXPECT_NE(d.reason.find("backlog"), std::string::npos);

    // Completions observed through the registry re-open admission —
    // the controller tracks the registry, not its own counters.
    reg.counter("serving.jobs_completed").inc(1); // backlog = 9
    EXPECT_TRUE(ctl.decide(tp, 0).admit);

    // Latency shedding reads the serving.queue_ms histogram's p95.
    AdmissionLimits lat;
    lat.maxQueueP95Ms = 5;
    AdmissionController latCtl(lat);
    EXPECT_TRUE(latCtl.decide(tp, 0).admit); // no observations yet
    for (int i = 0; i < 100; ++i)
        reg.histogram("serving.queue_ms").observe(50.0);
    auto dl = latCtl.decide(tp, 0);
    EXPECT_FALSE(dl.admit);
    EXPECT_NE(dl.reason.find("p95"), std::string::npos);

    // Per-tenant depth cap, from an explicit (empty) snapshot.
    TenantPolicy capped;
    capped.maxQueueDepth = 2;
    EXPECT_TRUE(ctl.decide(obs::MetricsSnapshot{}, capped, 1).admit);
    EXPECT_FALSE(ctl.decide(obs::MetricsSnapshot{}, capped, 2).admit);
    reg.reset();
}

TEST(ServingEngineTest, ShedsWhenRegistryBacklogOverLimit)
{
    auto &reg = obs::MetricsRegistry::global();
    reg.reset();
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    ServingConfig cfg;
    cfg.workers = 1;
    cfg.admission.maxBacklog = 5;
    ServingEngine engine(&bgv, cfg);

    // Stage a fleet backlog in the registry, as if sibling engines
    // held 50 queued jobs; this engine must shed without enqueuing.
    reg.counter("serving.jobs_submitted").inc(50);
    JobRequest req;
    req.program = &p;
    EXPECT_THROW(engine.submit(std::move(req)), AdmissionRejected);
    auto snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("serving.shed_jobs"), 1u);
    EXPECT_EQ(engine.stats().shed, 1u);
    EXPECT_EQ(engine.stats().submitted, 0u);

    // Completions drain the staged backlog: the engine admits again.
    reg.counter("serving.jobs_completed").inc(50);
    JobRequest ok;
    ok.program = &p;
    ok.inputs.seed = 3;
    engine.submit(std::move(ok)).get();
    EXPECT_EQ(engine.stats().completed, 1u);
    reg.reset();
}

TEST(ServingEngineTest, QueueDepthGaugesInRegistry)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    ServingConfig cfg;
    cfg.workers = 2;
    ServingEngine engine(&bgv, cfg);

    std::vector<std::future<JobResult>> futs;
    for (uint64_t i = 0; i < 6; ++i) {
        JobRequest req;
        req.program = &p;
        req.inputs.seed = i;
        futs.push_back(engine.submit(std::move(req)));
    }
    engine.drain();

    auto snap = obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(snap.counters.at("serving.queue_depth"), 0u);
    EXPECT_GE(snap.counters.at("serving.queue_depth_peak"), 1u);
    EXPECT_EQ(snap.counters.at("serving.queue_depth_peak"),
              engine.stats().peakQueueDepth);
    for (auto &f : futs)
        f.get();
}

//
// Batched serving pipeline
//

/** Long mul chain: keeps a worker busy long enough for submits to
 *  queue up behind it (deterministic-output, timing-only helper). */
Program
heavyProgram(int muls)
{
    Program p(256, 8, "heavy");
    int x = p.input();
    int acc = p.mul(x, x);
    for (int i = 1; i < muls; ++i)
        acc = p.mul(acc, x);
    p.output(acc);
    return p;
}

TEST(ServingEngineTest, BatchedMatchesSoloAcrossPoliciesBgv)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();

    constexpr size_t kJobs = 10;
    std::vector<ExecutionResult> isolated;
    for (size_t i = 0; i < kJobs; ++i) {
        RuntimeInputs in;
        in.seed = 1000 + i;
        OpGraphExecutor exec(p, &bgv);
        isolated.push_back(exec.execute(in));
    }

    for (SchedulingPolicy policy :
         {SchedulingPolicy::kRoundRobin, SchedulingPolicy::kDeadline})
        for (unsigned workers : {1u, 4u}) {
            ServingConfig cfg;
            cfg.workers = workers;
            cfg.scheduling = policy;
            cfg.maxBatch = 8;
            cfg.tenantPolicies["gold"] = {2, 20.0, 0};
            cfg.tenantPolicies["bulk"] = {0, 500.0, 0};
            ServingEngine engine(&bgv, cfg);
            std::vector<std::future<JobResult>> futs;
            for (size_t i = 0; i < kJobs; ++i) {
                JobRequest req;
                req.program = &p;
                req.tenant = i % 2 ? "gold" : "bulk";
                req.inputs.seed = 1000 + i;
                futs.push_back(engine.submit(std::move(req)));
            }
            for (size_t i = 0; i < kJobs; ++i) {
                JobResult r = futs[i].get();
                expectIdenticalOutputs(isolated[i], r.exec);
                EXPECT_GE(r.exec.batchSize, 1u);
                EXPECT_LE(r.exec.batchSize, 8u);
            }
        }
}

TEST(ServingEngineTest, BatchedMatchesSoloAcrossPoliciesCkks)
{
    FheContext ctx(smallParams());
    CkksScheme ckks(&ctx);
    Program p(256, 8, "ckks-pipeline");
    int x = p.input();
    int w = p.inputPlain();
    int a = p.mulPlain(x, w);
    int r = p.modSwitch(a);
    p.output(p.add(p.rotate(r, 1), r));

    std::vector<std::complex<double>> weights(128);
    for (size_t i = 0; i < 128; ++i)
        weights[i] = {0.125 * double(i % 7), 0.0};

    constexpr size_t kJobs = 8;
    std::vector<ExecutionResult> isolated;
    for (size_t i = 0; i < kJobs; ++i) {
        RuntimeInputs in;
        in.seed = 2000 + i;
        in.bind(w, weights);
        OpGraphExecutor exec(p, &ckks);
        isolated.push_back(exec.execute(in));
    }

    for (SchedulingPolicy policy :
         {SchedulingPolicy::kRoundRobin, SchedulingPolicy::kDeadline})
        for (unsigned workers : {1u, 4u}) {
            ServingConfig cfg;
            cfg.workers = workers;
            cfg.scheduling = policy;
            ServingEngine engine(&ckks, cfg);
            std::vector<std::future<JobResult>> futs;
            for (size_t i = 0; i < kJobs; ++i) {
                JobRequest req;
                req.program = &p;
                req.tenant = i % 2 ? "even" : "odd";
                req.inputs.seed = 2000 + i;
                req.inputs.bind(w, weights);
                futs.push_back(engine.submit(std::move(req)));
            }
            for (size_t i = 0; i < kJobs; ++i)
                expectIdenticalOutputs(isolated[i],
                                       futs[i].get().exec);
        }
}

TEST(ServingEngineTest, DrainWithSlowBatchedJobInFlight)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program lead = heavyProgram(60);
    Program light = diamondProgram();

    ServingConfig cfg;
    cfg.workers = 1; // one worker: the lead job serializes pickup
    cfg.maxBatch = 8;
    ServingEngine engine(&bgv, cfg);

    JobRequest first;
    first.program = &lead;
    auto leadFut = engine.submit(std::move(first));

    // These queue up while the worker grinds the lead job, so the
    // coalescer sees them together and fuses them into one batch.
    std::vector<std::future<JobResult>> futs;
    for (uint64_t i = 0; i < 6; ++i) {
        JobRequest req;
        req.program = &light;
        req.inputs.seed = 3000 + i;
        futs.push_back(engine.submit(std::move(req)));
    }

    engine.drain(); // must cover the slow batched execution

    using namespace std::chrono_literals;
    ASSERT_EQ(leadFut.wait_for(0s), std::future_status::ready);
    size_t maxBatch = 0;
    for (size_t i = 0; i < futs.size(); ++i) {
        ASSERT_EQ(futs[i].wait_for(0s), std::future_status::ready)
            << "drain() returned with job " << i << " unfinished";
        JobResult r = futs[i].get();
        maxBatch = std::max(maxBatch, r.exec.batchSize);
        RuntimeInputs in;
        in.seed = 3000 + i;
        OpGraphExecutor exec(light, &bgv);
        expectIdenticalOutputs(exec.execute(in), r.exec);
    }
    // All six were queued behind the lead, so they fused.
    EXPECT_GE(maxBatch, 2u);
    auto snap = obs::MetricsRegistry::global().snapshot();
    ASSERT_TRUE(snap.histograms.count("serving.batch_size"));
    EXPECT_GE(snap.histograms.at("serving.batch_size").count, 1u);
}

TEST(ServingEngineTest, SubmitWhileDestructingIsRejected)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program slow = heavyProgram(40);

    ServingConfig cfg;
    cfg.workers = 1;
    cfg.maxBatch = 1; // no fusing: the backlog drains one by one
    auto *engine = new ServingEngine(&bgv, cfg);

    // A deep backlog of slow jobs keeps the destructor inside
    // drain() for a long window after it closes admission.
    std::vector<std::future<JobResult>> backlog;
    for (uint64_t i = 0; i < 12; ++i) {
        JobRequest req;
        req.program = &slow;
        req.inputs.seed = i;
        backlog.push_back(engine->submit(std::move(req)));
    }

    std::thread destroyer([&] { delete engine; });
    // Poll submit until the destructor flips accepting_; everything
    // accepted in the window must still resolve before teardown.
    std::vector<std::future<JobResult>> accepted;
    bool rejected = false;
    while (!rejected) {
        JobRequest req;
        req.program = &slow;
        req.inputs.seed = 100 + accepted.size();
        try {
            accepted.push_back(engine->submit(std::move(req)));
        } catch (const FatalError &) {
            rejected = true;
        }
    }
    destroyer.join();
    EXPECT_TRUE(rejected);

    using namespace std::chrono_literals;
    for (auto &f : backlog) {
        ASSERT_EQ(f.wait_for(0s), std::future_status::ready);
        f.get();
    }
    for (auto &f : accepted) {
        ASSERT_EQ(f.wait_for(0s), std::future_status::ready)
            << "an accepted job was not drained before teardown";
        f.get();
    }
}

TEST(ServingEngineTest, TenantQueueDepthCapSheds)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program slow = heavyProgram(40);

    ServingConfig cfg;
    cfg.workers = 1;
    cfg.maxBatch = 1;
    cfg.tenantPolicies["capped"] = {0, 1000.0, /*maxQueueDepth=*/2};
    ServingEngine engine(&bgv, cfg);

    // Flood the capped tenant. The worker can hold at most one job in
    // flight, so by the pigeonhole principle the tenant's queue is at
    // its cap well before the last submit: some submit must shed.
    std::vector<std::future<JobResult>> futs;
    size_t shed = 0;
    for (uint64_t i = 0; i < 16; ++i) {
        JobRequest req;
        req.program = &slow;
        req.tenant = "capped";
        req.inputs.seed = i;
        try {
            futs.push_back(engine.submit(std::move(req)));
        } catch (const AdmissionRejected &) {
            ++shed;
        }
    }
    EXPECT_GT(shed, 0u);
    EXPECT_EQ(engine.stats().shed, shed);
    for (auto &f : futs)
        f.get();
    EXPECT_LE(engine.stats().peakQueueDepth, 3u); // cap 2 + pickup race
}

} // namespace
} // namespace f1
