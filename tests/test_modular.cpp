/**
 * @file
 * Tests for scalar modular arithmetic, the four Table-1 multiplier
 * designs, Shoup multiplication, and prime generation.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "modular/modarith.h"
#include "modular/multiplier.h"
#include "modular/primes.h"

namespace f1 {
namespace {

uint32_t
refMul(uint32_t a, uint32_t b, uint32_t q)
{
    return static_cast<uint32_t>((unsigned __int128)a * b % q);
}

class MultiplierTest : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(MultiplierTest, AllDesignsMatchReference)
{
    const uint32_t q = GetParam();
    auto muls = makeAllMultipliers(q);
    ASSERT_EQ(muls.size(), 4u);
    Rng rng(q);
    for (int it = 0; it < 2000; ++it) {
        uint32_t a = static_cast<uint32_t>(rng.uniform(q));
        uint32_t b = static_cast<uint32_t>(rng.uniform(q));
        uint32_t ref = refMul(a, b, q);
        for (const auto &m : muls) {
            EXPECT_EQ(m->mul(a, b), ref)
                << m->name() << " a=" << a << " b=" << b << " q=" << q;
        }
    }
}

TEST_P(MultiplierTest, CornerCases)
{
    const uint32_t q = GetParam();
    auto muls = makeAllMultipliers(q);
    const uint32_t cases[] = {0u, 1u, 2u, q - 1, q - 2, q / 2, q / 2 + 1};
    for (const auto &m : muls)
        for (uint32_t a : cases)
            for (uint32_t b : cases)
                EXPECT_EQ(m->mul(a, b), refMul(a, b, q)) << m->name();
}

// Primes of several widths, all ≡ 1 (mod 2^16) so the FHE-friendly
// design applies (the library-wide modulus constraint).
INSTANTIATE_TEST_SUITE_P(
    Widths, MultiplierTest,
    ::testing::ValuesIn([] {
        std::vector<uint32_t> qs;
        for (uint32_t bits : {24u, 26u, 28u, 30u, 31u}) {
            auto p = generateNttPrimes(2, bits, 1024);
            qs.insert(qs.end(), p.begin(), p.end());
        }
        return qs;
    }()));

TEST(Multiplier, CostTableMatchesPaperTable1)
{
    auto muls = makeAllMultipliers(generateNttPrimes(1, 28, 1024)[0]);
    // Paper Table 1 (14/12nm synthesis).
    EXPECT_DOUBLE_EQ(muls[0]->cost().areaUm2, 5271.0);
    EXPECT_DOUBLE_EQ(muls[1]->cost().areaUm2, 2916.0);
    EXPECT_DOUBLE_EQ(muls[2]->cost().areaUm2, 2165.0);
    EXPECT_DOUBLE_EQ(muls[3]->cost().areaUm2, 1817.0);
    // FHE-friendly strictly dominates NTT-friendly in area and power.
    EXPECT_LT(muls[3]->cost().areaUm2, muls[2]->cost().areaUm2);
    EXPECT_LT(muls[3]->cost().powerMw, muls[2]->cost().powerMw);
}

TEST(ModArith, AddSubNeg)
{
    const uint32_t q = 65537;
    EXPECT_EQ(addMod(65536, 1, q), 0u);
    EXPECT_EQ(addMod(65536, 65536, q), 65535u);
    EXPECT_EQ(subMod(0, 1, q), 65536u);
    EXPECT_EQ(negMod(0, q), 0u);
    EXPECT_EQ(negMod(1, q), 65536u);
}

TEST(ModArith, PowAndInverse)
{
    const uint32_t q = generateNttPrimes(1, 28, 4096)[0];
    Rng rng(3);
    for (int it = 0; it < 100; ++it) {
        uint32_t a = static_cast<uint32_t>(rng.uniform(q - 1)) + 1;
        uint32_t inv = invMod(a, q);
        EXPECT_EQ(mulMod(a, inv, q), 1u);
        EXPECT_EQ(powMod(a, q - 1, q), 1u); // Fermat
    }
}

TEST(ModArith, ShoupMatchesReference)
{
    const uint32_t q = generateNttPrimes(1, 30, 8192)[0];
    Rng rng(11);
    for (int it = 0; it < 2000; ++it) {
        uint32_t a = static_cast<uint32_t>(rng.uniform(q));
        uint32_t w = static_cast<uint32_t>(rng.uniform(q));
        uint32_t pre = shoupPrecompute(w, q);
        EXPECT_EQ(mulModShoup(a, w, pre, q), refMul(a, w, q));
    }
}

TEST(Primes, MillerRabinKnownValues)
{
    EXPECT_TRUE(isPrime(2));
    EXPECT_TRUE(isPrime(3));
    EXPECT_TRUE(isPrime(65537));
    EXPECT_TRUE(isPrime(2147483647ULL)); // 2^31 - 1
    EXPECT_TRUE(isPrime(0xffffffff00000001ULL)); // Goldilocks
    EXPECT_FALSE(isPrime(1));
    EXPECT_FALSE(isPrime(0));
    EXPECT_FALSE(isPrime(65536));
    EXPECT_FALSE(isPrime(3215031751ULL)); // strong pseudoprime to 2,3,5,7
    EXPECT_FALSE(isPrime((uint64_t)2147483647 * 2147483629));
}

TEST(Primes, GeneratedPrimesSatisfyCongruences)
{
    for (uint32_t n : {1024u, 4096u, 16384u}) {
        auto primes = generateNttPrimes(8, 28, n);
        ASSERT_EQ(primes.size(), 8u);
        for (uint32_t q : primes) {
            EXPECT_TRUE(isPrime(q));
            EXPECT_EQ((q - 1) % (2 * n), 0u) << q;
            EXPECT_EQ(q % (1u << 16), 1u) << q; // FHE-friendly
            EXPECT_GE(q, 1u << 27);
            EXPECT_LT(q, 1u << 28);
        }
        // Distinct.
        std::set<uint32_t> s(primes.begin(), primes.end());
        EXPECT_EQ(s.size(), primes.size());
    }
}

TEST(Primes, AvoidListRespected)
{
    auto first = generateNttPrimes(4, 28, 2048);
    auto second = generateNttPrimes(4, 28, 2048, first);
    for (uint32_t q : second)
        EXPECT_EQ(std::count(first.begin(), first.end(), q), 0);
}

TEST(Primes, PrimitiveRootHasExactOrder)
{
    const uint32_t n = 4096;
    const uint32_t q = generateNttPrimes(1, 28, n)[0];
    uint32_t root = primitiveRootOfUnity(2 * n, q);
    EXPECT_EQ(powMod(root, 2 * n, q), 1u);
    EXPECT_EQ(powMod(root, n, q), q - 1); // ψ^N = -1 (negacyclic)
}

TEST(Primes, FheFriendlyPrimeCountIsLarge)
{
    // Paper §5.3: ~6,186 32-bit primes satisfy the restriction. We
    // count 24-bit primes (fast) and check density is as expected.
    size_t count = countFheFriendlyPrimes(24);
    EXPECT_GT(count, 5u);
}

} // namespace
} // namespace f1
