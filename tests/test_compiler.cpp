/**
 * @file
 * Compiler pipeline tests: translation op counts match the paper's
 * analysis (§2.4), hint-reuse ordering, memory-scheduler capacity
 * invariants, cycle-scheduler structural validity (via the checker),
 * and sensitivity knobs.
 */
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "sim/checker.h"

namespace f1 {
namespace {

/** Listing-2-style matrix-vector multiply program. */
Program
matvecProgram(uint32_t n, uint32_t level, uint32_t rows,
              uint32_t rot_steps)
{
    Program p(n, level, "matvec");
    int v = p.input();
    for (uint32_t r = 0; r < rows; ++r) {
        int m = p.inputPlain();
        int prod = p.mulPlain(v, m);
        for (uint32_t s = 0; s < rot_steps; ++s)
            prod = p.add(prod, p.rotate(prod, 1u << s));
        p.output(prod);
    }
    return p;
}

TEST(Translate, KeySwitchOpCountsMatchPaperAnalysis)
{
    // One homomorphic multiply at level L: L^2-ish NTTs dominated by
    // key-switching (paper §2.4: "a single key-switch requires L^2
    // NTTs, 2L^2 multiplications, and 2L^2 additions").
    const uint32_t level = 8;
    Program p(4096, level, "single-mul");
    int a = p.input();
    int b = p.input();
    p.output(p.mul(a, b));

    auto tr = translateProgram(p);
    auto h = tr.dfg.opHistogram();
    size_t ntts = h[(size_t)Opcode::kNtt] + h[(size_t)Opcode::kIntt];
    // Digit key-switch: L INTT + L*L lift NTTs + hybrid division
    // (2 INTT + 2L NTT); tensor adds none.
    EXPECT_GE(ntts, level * level);
    EXPECT_LE(ntts, level * level + 4 * level + 4);
    // 2L^2-ish multiplies beyond the 4L tensor products.
    EXPECT_GE(h[(size_t)Opcode::kMul], 2 * level * level);
}

TEST(Translate, HintClusteringGroupsSameRotation)
{
    // Listing 2's pattern: 4 products each rotated by the same
    // amounts; phase 1 must group same-hint rotations (paper §4.2).
    Program p = matvecProgram(4096, 4, 4, 3);
    auto tr = translateProgram(p);
    // Count hint-group switches along the HE-op order.
    const auto &ops = p.ops();
    int switches = 0, last = -2;
    for (int idx : tr.opOrder) {
        int h = ops[idx].hintId;
        if (h >= 0 && h != last) {
            ++switches;
            last = h;
        }
    }
    // 3 rotation hints: each should be visited close to once. Allow
    // slack for dependence-forced revisits.
    EXPECT_LE(switches, 6);
}

TEST(Translate, GhsVariantShrinksHints)
{
    Program p1(4096, 16, "digit");
    {
        int a = p1.input();
        p1.output(p1.mul(a, a));
    }
    TranslateOptions digit;
    digit.ks = TranslateOptions::Ks::kDigit;
    auto trd = translateProgram(p1, digit);

    Program p2(4096, 16, "ghs");
    p2.setAuxCount(16);
    {
        int a = p2.input();
        p2.output(p2.mul(a, a));
    }
    TranslateOptions ghs;
    ghs.ks = TranslateOptions::Ks::kGhs;
    auto trg = translateProgram(p2, ghs);

    // O(L^2) vs O(L) hints (paper §2.4).
    EXPECT_EQ(trd.hintRVecs, 2u * 16 * 17);
    EXPECT_EQ(trg.hintRVecs, 2u * (16 + 16));
    // ...but GHS needs more element-wise compute.
    auto hd = trd.dfg.opHistogram();
    auto hg = trg.dfg.opHistogram();
    EXPECT_LT(hg[(size_t)Opcode::kNtt], hd[(size_t)Opcode::kNtt]);
    EXPECT_GT(hg[(size_t)Opcode::kMul] + hg[(size_t)Opcode::kAdd],
              2u * 16 * 16);
}

TEST(MemScheduler, CapacityRespectedAndTrafficCategorized)
{
    Program p = matvecProgram(16384, 8, 4, 4);
    auto tr = translateProgram(p);
    F1Config cfg;
    auto mem = scheduleMemory(tr.dfg, cfg);
    EXPECT_LE(mem.peakResidentRVecs, cfg.scratchSlots(16384));
    EXPECT_GT(mem.traffic.kshCompulsory, 0u);
    EXPECT_GT(mem.traffic.inputCompulsory, 0u);
    // Working set fits: hint reloads should be zero here.
    EXPECT_EQ(mem.traffic.kshNonCompulsory, 0u);
}

TEST(MemScheduler, SmallScratchpadForcesReloads)
{
    Program p = matvecProgram(16384, 8, 4, 4);
    auto tr = translateProgram(p);
    F1Config tiny;
    tiny.scratchBanks = 2;
    tiny.bankMB = 1; // 2 MB: far below the hint working set
    auto mem = scheduleMemory(tr.dfg, tiny);
    EXPECT_GT(mem.traffic.kshNonCompulsory +
                  mem.traffic.inputNonCompulsory +
                  mem.traffic.intermLoad,
              0u);
}

TEST(CycleScheduler, ScheduleIsStructurallyValid)
{
    Program p = matvecProgram(4096, 4, 2, 3);
    F1Config cfg;
    CompileOptions opt;
    opt.recordEvents = true;
    auto res = compileProgram(p, cfg, opt);
    EXPECT_GT(res.schedule.cycles, 0u);
    auto report = checkSchedule(res.schedule, cfg);
    EXPECT_TRUE(report.ok) << report.firstViolation;
    EXPECT_GT(report.eventsChecked, 1000u);
}

TEST(CycleScheduler, ScheduleHintsFollowDataflow)
{
    // A pure dependency chain: the static schedule must start each op
    // strictly after its operand, so the derived runtime hints are
    // strictly increasing along the chain.
    Program p(4096, 8, "hint-chain");
    int x = p.input();
    int acc = p.mul(x, x);
    acc = p.rotate(acc, 1);
    acc = p.mul(acc, acc);
    p.output(acc);

    F1Config cfg;
    auto res = compileProgram(p, cfg);
    const ScheduleHints &h = res.hints;
    ASSERT_EQ(h.size(), p.ops().size());
    ASSERT_EQ(h.releaseRank.size(), p.ops().size());

    // Inputs emit no instructions and carry the 0/0 default.
    EXPECT_EQ(h.startCycle[0], 0u);
    EXPECT_EQ(h.releaseRank[0], 0u);
    for (size_t op = 2; op + 1 < p.ops().size(); ++op) {
        EXPECT_GT(h.startCycle[op], h.startCycle[op - 1])
            << "chain op " << op << " not after its operand";
        EXPECT_GT(h.releaseRank[op], h.releaseRank[op - 1]);
    }

    // Deterministic: recompiling yields the same hints.
    auto again = compileProgram(p, cfg);
    EXPECT_EQ(again.hints.startCycle, h.startCycle);
    EXPECT_EQ(again.hints.releaseRank, h.releaseRank);
}

TEST(CycleScheduler, MoreClustersNeverSlower)
{
    Program p = matvecProgram(4096, 6, 4, 4);
    F1Config small;
    small.clusters = 4;
    F1Config big;
    big.clusters = 16;
    auto rs = compileProgram(p, small);
    auto rb = compileProgram(p, big);
    EXPECT_LE(rb.schedule.cycles, rs.schedule.cycles);
}

TEST(CycleScheduler, LowThroughputNttSlower)
{
    // Paper §8.3/Table 5: low-throughput NTT FUs with equal aggregate
    // throughput lose performance.
    Program p = matvecProgram(4096, 6, 4, 4);
    F1Config base;
    F1Config lt;
    lt.lowThroughputNttDivisor = 16;
    auto rb = compileProgram(p, base);
    auto rl = compileProgram(p, lt);
    EXPECT_GT(rl.schedule.cycles, rb.schedule.cycles);
}

TEST(CycleScheduler, CsrPolicyProducesValidSchedules)
{
    // The CSR ordering (Goodman) is an alternative phase 2; its
    // performance impact is benchmark-dependent (Table 5 evaluates it
    // at full scale). Here we pin structural validity and that both
    // policies respect capacity.
    Program p = matvecProgram(8192, 8, 4, 4);
    F1Config cfg;
    cfg.scratchBanks = 4;
    cfg.bankMB = 2; // pressure makes scheduling policy matter
    CompileOptions good;
    good.recordEvents = true;
    CompileOptions csr;
    csr.memPolicy = MemPolicy::kCsr;
    csr.recordEvents = true;
    auto rg = compileProgram(p, cfg, good);
    auto rc = compileProgram(p, cfg, csr);
    EXPECT_TRUE(checkSchedule(rc.schedule, cfg).ok);
    EXPECT_LE(rc.memory.peakResidentRVecs, cfg.scratchSlots(8192));
    // Sanity envelope: same program, same machine.
    EXPECT_GE(rc.schedule.cycles * 10, rg.schedule.cycles);
    EXPECT_LE(rc.schedule.cycles, rg.schedule.cycles * 50);
}

TEST(CycleScheduler, MemoryBoundProgramTracksBandwidth)
{
    // A program with no reuse is bound by compulsory traffic / BW.
    Program p(16384, 16, "stream");
    int acc = p.input();
    for (int i = 0; i < 8; ++i) {
        int x = p.input();
        acc = p.add(acc, x);
    }
    p.output(acc);
    F1Config cfg;
    auto res = compileProgram(p, cfg);
    double min_cycles = res.memory.traffic.total() /
                        cfg.hbmBytesPerCycle();
    EXPECT_GE(res.schedule.cycles, (uint64_t)(0.9 * min_cycles));
    EXPECT_LE(res.schedule.cycles, (uint64_t)(3.0 * min_cycles));
}

TEST(AreaModel, MatchesPaperTable2)
{
    F1Config cfg;
    AreaModel model(cfg);
    auto a = model.area();
    EXPECT_NEAR(a.cluster, 3.97, 0.05);
    EXPECT_NEAR(a.totalCompute, 63.52, 0.6);
    EXPECT_NEAR(a.scratchpad, 48.09, 0.1);
    EXPECT_NEAR(a.total, 151.4, 1.5);
    auto t = model.tdp();
    EXPECT_NEAR(t.totalCompute, 140.0, 1.5);
    EXPECT_NEAR(t.total, 180.4, 2.0);
}

TEST(Program, LevelBookkeepingEnforced)
{
    Program p(1024, 4);
    int a = p.input();
    int b = p.modSwitch(a);
    EXPECT_THROW(p.add(a, b), FatalError); // level mismatch
}

} // namespace
} // namespace f1
