/**
 * @file
 * Tests for the pooled scratch arena: checkout/reuse semantics, RAII
 * release, move handling, worker-thread caches, and the steady-state
 * contract on the key-switching hot path — after warm-up, apply()
 * performs zero heap allocations.
 */
#include <gtest/gtest.h>

#include <utility>

#include "common/parallel.h"
#include "common/scratch.h"
#include "fhe/fhe_context.h"
#include "fhe/keyswitch.h"
#include "poly/rns_poly.h"

namespace f1 {
namespace {

TEST(Scratch, CheckoutReleasesAndReusesBlocks)
{
    ScratchArena::releaseThreadCache();
    ScratchArena::resetStats();
    {
        auto h = ScratchArena::u32(1000);
        for (size_t i = 0; i < h.size(); ++i)
            h[i] = static_cast<uint32_t>(i);
        EXPECT_EQ(ScratchArena::stats().live, 1u);
    }
    EXPECT_EQ(ScratchArena::stats().live, 0u);
    const uint64_t coldAllocs = ScratchArena::stats().heapAllocs;
    EXPECT_GE(coldAllocs, 1u);

    // Same-size re-checkout must come from the cache, not the heap.
    for (int i = 0; i < 100; ++i) {
        auto h = ScratchArena::u32(1000);
        h[0] = 1;
    }
    EXPECT_EQ(ScratchArena::stats().heapAllocs, coldAllocs);
    EXPECT_EQ(ScratchArena::stats().checkouts, 101u);
}

TEST(Scratch, ZeroedCheckoutClearsPreviousContents)
{
    ScratchArena::releaseThreadCache();
    {
        auto h = ScratchArena::u32(64);
        for (auto &x : h.span())
            x = 0xdeadbeef;
    }
    auto h = ScratchArena::u32(64, /*zeroed=*/true);
    for (uint32_t x : h.span())
        EXPECT_EQ(x, 0u);
    auto g = ScratchArena::i64(64, /*zeroed=*/true);
    for (int64_t x : g.span())
        EXPECT_EQ(x, 0);
}

TEST(Scratch, ConcurrentHandlesGetDistinctBuffers)
{
    auto a = ScratchArena::u32(256);
    auto b = ScratchArena::u32(256);
    EXPECT_NE(a.data(), b.data());
    for (size_t i = 0; i < 256; ++i) {
        a[i] = 1;
        b[i] = 2;
    }
    for (size_t i = 0; i < 256; ++i) {
        EXPECT_EQ(a[i], 1u);
        EXPECT_EQ(b[i], 2u);
    }
}

TEST(Scratch, MoveTransfersOwnership)
{
    ScratchArena::releaseThreadCache();
    ScratchArena::resetStats();
    auto a = ScratchArena::u32(128);
    uint32_t *p = a.data();
    ScratchArena::Handle<uint32_t> b = std::move(a);
    EXPECT_EQ(b.data(), p);
    EXPECT_EQ(b.size(), 128u);
    EXPECT_EQ(ScratchArena::stats().live, 1u);
    b.reset();
    EXPECT_EQ(ScratchArena::stats().live, 0u);
    b.reset(); // idempotent
    EXPECT_EQ(ScratchArena::stats().live, 0u);
}

TEST(Scratch, BestFitPrefersSmallestSufficientBlock)
{
    ScratchArena::releaseThreadCache();
    {
        // Hold the big block while the small one is first allocated,
        // so the cache ends up with two distinct size classes.
        auto big = ScratchArena::u32(1 << 14);
        auto small = ScratchArena::u32(64);
        (void)big;
        (void)small;
    }
    ScratchArena::resetStats();
    // A small request must not pin the big block.
    auto s = ScratchArena::u32(60);
    auto b = ScratchArena::u32(1 << 14);
    EXPECT_EQ(ScratchArena::stats().heapAllocs, 0u)
        << "both requests should have been served from the cache";
    (void)s;
    (void)b;
}

TEST(Scratch, WorkerThreadsKeepTheirOwnCaches)
{
    setGlobalThreadCount(4);
    // Warm every worker's cache, then verify the second sweep is
    // allocation-free: each worker reuses its own resident block.
    auto sweep = [] {
        parallelFor(0, 64, [&](size_t) {
            auto h = ScratchArena::u32(512);
            h[0] = 1;
        });
    };
    // Each thread cold-allocates at most one block for this size
    // class, ever — so 20 sweeps x 64 checkouts may hit the heap at
    // most threads() times, no matter how iterations are claimed.
    ScratchArena::resetStats();
    constexpr int kSweeps = 20;
    for (int i = 0; i < kSweeps; ++i)
        sweep();
    const auto st = ScratchArena::stats();
    EXPECT_EQ(st.checkouts, uint64_t{kSweeps} * 64);
    EXPECT_LE(st.heapAllocs, uint64_t{globalThreadCount()});
    EXPECT_EQ(st.live, 0u);
    setGlobalThreadCount(0);
}

class ScratchKeySwitchTest : public ::testing::Test
{
  protected:
    static FheParams
    params()
    {
        FheParams p;
        p.n = 128;
        p.maxLevel = 4;
        p.auxCount = 4;
        p.primeBits = 28;
        p.plainModulus = 257;
        return p;
    }

    ScratchKeySwitchTest() : ctx(params()), sw(&ctx) {}

    FheContext ctx;
    KeySwitcher sw;
};

TEST_F(ScratchKeySwitchTest, ApplyIsAllocationFreeOnceWarm)
{
    // The acceptance bar of this PR: steady-state key-switching
    // checks out every temporary from the arena — heap allocations
    // per apply() drop to zero after warm-up, for both variants.
    setGlobalThreadCount(1); // one thread == one deterministic cache
    for (auto variant : {KeySwitchVariant::kDigitLxL,
                         KeySwitchVariant::kGhsExtension}) {
        Rng rng(7);
        SecretKey sk = sw.keyGen(rng);
        auto w = sk.s.mul(sk.s);
        auto hint = sw.makeHint(w, sk, 4, 257, variant, rng);
        auto x = RnsPoly::uniform(ctx.polyContext(), 4, rng);

        auto warm = sw.apply(x, hint, 257);
        auto warm2 = sw.apply(x, hint, 257);
        ScratchArena::resetStats();
        constexpr int kApplies = 4;
        for (int i = 0; i < kApplies; ++i) {
            auto out = sw.apply(x, hint, 257);
            EXPECT_EQ(out.first.raw(), warm.first.raw());
            EXPECT_EQ(out.second.raw(), warm.second.raw());
        }
        const auto st = ScratchArena::stats();
        EXPECT_EQ(st.heapAllocs, 0u)
            << "steady-state apply() hit the heap";
        EXPECT_EQ(st.live, 0u);
        EXPECT_GT(st.checkouts, 0u);
        (void)warm2;
    }
    setGlobalThreadCount(0);
}

} // namespace
} // namespace f1

