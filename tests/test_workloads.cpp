/**
 * @file
 * Workload-builder tests: every Table 3 program builds, translates,
 * and schedules; op mixes match the algorithms they model.
 */
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "workloads/workloads.h"

namespace f1 {
namespace {

TEST(Workloads, AllTable3ProgramsCompileAndSchedule)
{
    F1Config cfg;
    for (auto &w : makeTable3Suite(/*cifar_scale=*/0.05)) {
        SCOPED_TRACE(w.program.name());
        auto res = compileProgram(w.program, cfg);
        EXPECT_GT(res.schedule.cycles, 0u);
        EXPECT_GT(res.schedule.traffic.kshCompulsory, 0u);
        EXPECT_LE(res.memory.peakResidentRVecs,
                  cfg.scratchSlots(w.program.n()));
    }
}

TEST(Workloads, DbLookupDepthMatchesFermatTest)
{
    // 16 squarings (t-1 = 2^16) from L=17 must land at L=1.
    auto w = makeDbLookup(1);
    uint32_t min_level = UINT32_MAX;
    for (const auto &op : w.program.ops())
        min_level = std::min(min_level, op.level);
    EXPECT_EQ(min_level, 1u);
    EXPECT_EQ(w.program.startLevel(), 17u);
}

TEST(Workloads, BootstrapProgramsUseGhsChoice)
{
    // At L_max = 24 the translator's algorithmic choice must pick the
    // GHS variant (paper §4.2 / §7 "exercises the scheduler's
    // algorithmic choice component").
    auto w = makeBgvBootstrap();
    auto tr = translateProgram(w.program);
    // GHS hints are O(L): far below the digit variant's 2*L*(L+1).
    EXPECT_LT(tr.hintRVecs / w.program.hintCount(),
              2u * 24 * 25 / 2);
}

TEST(Workloads, MnistEncryptedWeightsCostsMore)
{
    F1Config cfg;
    auto uw = compileProgram(makeLolaMnist(false).program, cfg);
    auto ew = compileProgram(makeLolaMnist(true).program, cfg);
    EXPECT_GT(ew.schedule.cycles, uw.schedule.cycles);
}

TEST(Workloads, KshTrafficDominatesDeepPrograms)
{
    // Fig. 9a's headline: key-switch hints dominate off-chip traffic
    // in deep workloads.
    F1Config cfg;
    auto res = compileProgram(makeDbLookup(2).program, cfg);
    const auto &t = res.schedule.traffic;
    EXPECT_GT(t.kshCompulsory + t.kshNonCompulsory,
              t.total() / 2);
}

} // namespace
} // namespace f1
