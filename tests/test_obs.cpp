/**
 * @file
 * Observability tests: metrics registry semantics (counters,
 * histograms, summed gauges, JSON export), bit-stable counting across
 * thread counts, the scratch/cache shims over the registry, per-op
 * trace export (valid JSON, span count == executed ops, per-lane
 * nesting, predicted-vs-actual start cycles), per-job execution
 * profiles, the telemetry-off contract (no artifacts produced),
 * end-to-end trace-id correlation (serving lifecycle -> executor
 * spans -> profile, with Perfetto flow events), the schedule-
 * calibration accumulator, the dropped-telemetry metrics, and a
 * concurrent scrape-under-load stress.
 *
 * This suite runs under TSan in CI alongside test_parallel and
 * test_runtime: the registry, collector, tracer, live-capture ring,
 * and exporter read paths are all concurrent by design.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/scratch.h"
#include "compiler/compiler.h"
#include "json_lint.h"
#include "obs/calib.h"
#include "obs/eventlog.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "obs/tracectx.h"
#include "runtime/op_graph_executor.h"
#include "runtime/serving.h"

namespace f1 {
namespace {

using testing::isValidJson;

//
// Metrics registry
//

TEST(MetricsRegistryTest, CountersAccumulateAndSnapshot)
{
    auto &reg = obs::MetricsRegistry::global();
    obs::Counter &c = reg.counter("obs_test.counter_a");
    const uint64_t before = c.value();
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), before + 42);
    // Same name resolves to the same counter.
    EXPECT_EQ(&reg.counter("obs_test.counter_a"), &c);

    auto snap = reg.snapshot();
    ASSERT_TRUE(snap.counters.count("obs_test.counter_a"));
    EXPECT_EQ(snap.counters["obs_test.counter_a"], c.value());
}

TEST(MetricsRegistryTest, HistogramBucketsAndQuantiles)
{
    auto &reg = obs::MetricsRegistry::global();
    const double bounds[] = {1.0, 10.0, 100.0};
    obs::Histogram &h = reg.histogram("obs_test.hist", bounds);
    h.reset();
    for (int i = 0; i < 90; ++i)
        h.observe(0.5); // first bucket
    for (int i = 0; i < 9; ++i)
        h.observe(5.0); // second bucket
    h.observe(1000.0);  // overflow bucket

    auto s = h.snapshot();
    EXPECT_EQ(s.count, 100u);
    ASSERT_EQ(s.counts.size(), 4u);
    EXPECT_EQ(s.counts[0], 90u);
    EXPECT_EQ(s.counts[1], 9u);
    EXPECT_EQ(s.counts[2], 0u);
    EXPECT_EQ(s.counts[3], 1u);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.95), 10.0);
    EXPECT_NEAR(s.sum, 90 * 0.5 + 9 * 5.0 + 1000.0, 1e-3);
}

TEST(MetricsRegistryTest, SameNameGaugesAreSummed)
{
    auto &reg = obs::MetricsRegistry::global();
    uint64_t a = 3, b = 4;
    auto ga = reg.gauge("obs_test.gauge", [&] { return a; });
    auto gb = reg.gauge("obs_test.gauge", [&] { return b; });
    auto snap = reg.snapshot();
    ASSERT_TRUE(snap.counters.count("obs_test.gauge"));
    EXPECT_EQ(snap.counters["obs_test.gauge"], 7u);
}

TEST(MetricsRegistryTest, GaugeUnregistersOnHandleDestruction)
{
    auto &reg = obs::MetricsRegistry::global();
    {
        uint64_t v = 9;
        auto g = reg.gauge("obs_test.transient_gauge",
                           [&] { return v; });
        EXPECT_EQ(reg.snapshot().counters.count(
                      "obs_test.transient_gauge"),
                  1u);
    }
    EXPECT_EQ(
        reg.snapshot().counters.count("obs_test.transient_gauge"),
        0u);
}

TEST(MetricsRegistryTest, SnapshotExportsValidJson)
{
    auto &reg = obs::MetricsRegistry::global();
    reg.counter("obs_test.json \"quoted\"\\name").inc();
    reg.histogram("obs_test.json_hist").observe(0.42);
    std::string why;
    const std::string json = reg.snapshot().toJson();
    EXPECT_TRUE(isValidJson(json, &why)) << why << "\n" << json;
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistryTest, CountersBitStableAcrossThreadCounts)
{
    auto &reg = obs::MetricsRegistry::global();
    for (unsigned threads : {1u, 2u, 8u}) {
        obs::Counter &c = reg.counter(
            "obs_test.stable_" + std::to_string(threads));
        std::vector<std::thread> ts;
        for (unsigned t = 0; t < threads; ++t) {
            ts.emplace_back([&c] {
                for (int i = 0; i < 10000; ++i)
                    c.inc();
            });
        }
        for (auto &t : ts)
            t.join();
        // Relaxed atomics lose no increments: the total is exact, not
        // approximate, whatever the interleaving.
        EXPECT_EQ(c.value(), threads * 10000u);
    }
}

//
// Shims over the registry
//

TEST(ObsShimTest, ScratchStatsReadTheRegistry)
{
    ScratchArena::resetStats();
    const auto snap0 = obs::MetricsRegistry::global().snapshot();
    {
        auto h = ScratchArena::u32(512);
        h[0] = 1;
    }
    const auto stats = ScratchArena::stats();
    EXPECT_GE(stats.checkouts, 1u);
    const auto snap = obs::MetricsRegistry::global().snapshot();
    ASSERT_TRUE(snap.counters.count("scratch.checkouts"));
    EXPECT_EQ(snap.counters.at("scratch.checkouts"),
              stats.checkouts);
    EXPECT_EQ(snap.counters.at("scratch.heap_allocs"),
              stats.heapAllocs);
    EXPECT_GT(snap.counters.at("scratch.checkouts"),
              snap0.counters.at("scratch.checkouts"));
}

TEST(ObsShimTest, NamedCacheRegistersGauges)
{
    auto snapCount = [](const std::string &key) {
        auto s = obs::MetricsRegistry::global().snapshot();
        auto it = s.counters.find(key);
        return it == s.counters.end() ? uint64_t(0) : it->second;
    };
    {
        LruCache<int, int> cache(8, "obs_test_cache");
        cache.put(1, 10);
        (void)cache.get(1); // hit
        (void)cache.get(2); // miss
        EXPECT_EQ(snapCount("cache.obs_test_cache.hits"), 1u);
        EXPECT_EQ(snapCount("cache.obs_test_cache.misses"), 1u);
        EXPECT_EQ(snapCount("cache.obs_test_cache.size"), 1u);
        // The per-instance shim agrees with the gauges.
        EXPECT_EQ(cache.stats().hits, 1u);
        EXPECT_EQ(cache.stats().misses, 1u);
    }
    // Gauges unregister with the cache.
    auto s = obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(s.counters.count("cache.obs_test_cache.hits"), 0u);
}

//
// Execution profiles and traces
//

FheParams
smallParams()
{
    FheParams p;
    p.n = 256;
    p.maxLevel = 8;
    p.primeBits = 28;
    p.plainModulus = 65537;
    return p;
}

Program
diamondProgram()
{
    Program p(256, 8, "obs-diamond");
    int x = p.input();
    int y = p.input();
    int w = p.inputPlain();
    int a = p.mul(x, y);
    int b = p.rotate(x, 1);
    int c = p.mulPlain(y, w);
    int d = p.add(a, c);
    int e = p.sub(d, b);
    int f = p.modSwitch(e);
    p.output(f);
    p.output(b);
    return p;
}

size_t
nonSourceOps(const Program &p)
{
    size_t n = 0;
    for (const HeOp &op : p.ops())
        if (op.kind != HeOpKind::kInput &&
            op.kind != HeOpKind::kInputPlain)
            ++n;
    return n;
}

TEST(TelemetryTest, OffByDefaultProducesNoArtifacts)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    OpGraphExecutor exec(p, &bgv);

    auto res = exec.execute({}, {});
    EXPECT_EQ(res.profile, nullptr);
    EXPECT_EQ(res.trace, nullptr);
    EXPECT_EQ(res.opsExecuted, nonSourceOps(p));
}

TEST(TelemetryTest, StatsConsistentAcrossSchedulers)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    OpGraphExecutor exec(p, &bgv);
    RuntimeInputs in;
    in.seed = 23;

    for (auto kind :
         {SchedulerKind::kSerial, SchedulerKind::kWavefront,
          SchedulerKind::kWorkStealing}) {
        ExecutionPolicy pol;
        pol.scheduler = kind;
        auto res = exec.execute(in, pol);
        EXPECT_EQ(res.opsExecuted, nonSourceOps(p));
        EXPECT_GE(res.maxWavefrontWidth, 1u);
        EXPECT_GT(res.peakResidentCiphertexts, 0u);
        if (kind == SchedulerKind::kSerial) {
            EXPECT_EQ(res.wavefronts, res.opsExecuted);
            EXPECT_EQ(res.maxWavefrontWidth, 1u);
            EXPECT_EQ(res.steals, 0u);
        } else if (kind == SchedulerKind::kWavefront) {
            EXPECT_GT(res.wavefronts, 0u);
            EXPECT_LT(res.wavefronts, res.opsExecuted);
            EXPECT_EQ(res.steals, 0u);
        } else {
            EXPECT_EQ(res.wavefronts, 0u); // WS has no rounds
        }
    }
}

TEST(TelemetryTest, ProfileCountsHotPathWork)
{
    // GHS key-switching exercises the basis-extension hot path; it
    // needs auxiliary extension primes covering the hint level.
    FheParams params = smallParams();
    params.auxCount = params.maxLevel;
    FheContext ctx(params);
    BgvScheme bgv(&ctx, 0, KeySwitchVariant::kGhsExtension);
    Program p = diamondProgram();
    OpGraphExecutor exec(p, &bgv);
    RuntimeInputs in;
    in.seed = 29;

    ExecutionPolicy pol;
    pol.telemetry.profile = true;
    pol.telemetry.label = "unit";
    auto res = exec.execute(in, pol);

    ASSERT_NE(res.profile, nullptr);
    const obs::ExecutionProfile &prof = *res.profile;
    EXPECT_EQ(prof.label, "unit");
    // The diamond has a mul and a rotate: both key-switch, which
    // basis-extends and runs NTTs.
    EXPECT_GT(prof.keySwitchApplies, 0u);
    EXPECT_GT(prof.basisExtends, 0u);
    EXPECT_GT(prof.nttForward, 0u);
    EXPECT_GT(prof.nttInverse, 0u);
    EXPECT_GT(prof.scratchPeakWords, 0);
    EXPECT_GT(prof.executeMs, 0.0);

    // Every executed op kind shows up with the right multiplicity.
    std::map<std::string, uint64_t> expected;
    for (const HeOp &op : p.ops()) {
        switch (op.kind) {
          case HeOpKind::kInput:
          case HeOpKind::kInputPlain:
            break;
          case HeOpKind::kMul: ++expected["mul"]; break;
          case HeOpKind::kRotate: ++expected["rotate"]; break;
          case HeOpKind::kMulPlain: ++expected["mul_plain"]; break;
          case HeOpKind::kAdd: ++expected["add"]; break;
          case HeOpKind::kSub: ++expected["sub"]; break;
          case HeOpKind::kModSwitch: ++expected["mod_switch"]; break;
          case HeOpKind::kOutput: ++expected["output"]; break;
          default: break;
        }
    }
    uint64_t total = 0;
    for (const auto &[name, want] : expected) {
        auto it = prof.opKinds.find(name);
        ASSERT_NE(it, prof.opKinds.end()) << name;
        EXPECT_EQ(it->second.count, want) << name;
        total += it->second.count;
    }
    EXPECT_EQ(total, res.opsExecuted);

    std::string why;
    EXPECT_TRUE(isValidJson(prof.toJson(), &why)) << why;
}

TEST(TelemetryTest, ProfileCountersBitStableAcrossSchedulers)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    OpGraphExecutor exec(p, &bgv);
    RuntimeInputs in;
    in.seed = 31;

    // Warm the hint cache so every profiled run sees the same cache
    // state (hint generation itself runs NTTs).
    exec.execute(in, {});

    auto profiled = [&](SchedulerKind kind, unsigned threads) {
        setGlobalThreadCount(threads);
        ExecutionPolicy pol;
        pol.scheduler = kind;
        pol.telemetry.profile = true;
        auto res = exec.execute(in, pol);
        setGlobalThreadCount(0);
        return res.profile;
    };

    auto ref = profiled(SchedulerKind::kSerial, 1);
    ASSERT_NE(ref, nullptr);
    for (auto kind :
         {SchedulerKind::kSerial, SchedulerKind::kWavefront,
          SchedulerKind::kWorkStealing}) {
        for (unsigned threads : {1u, 4u}) {
            auto prof = profiled(kind, threads);
            ASSERT_NE(prof, nullptr);
            // Hot-path work is a function of the program alone —
            // identical counts for every scheduler x thread count.
            EXPECT_EQ(prof->nttForward, ref->nttForward);
            EXPECT_EQ(prof->nttInverse, ref->nttInverse);
            EXPECT_EQ(prof->keySwitchApplies,
                      ref->keySwitchApplies);
            EXPECT_EQ(prof->basisExtends, ref->basisExtends);
            for (const auto &[name, slice] : ref->opKinds) {
                auto it = prof->opKinds.find(name);
                ASSERT_NE(it, prof->opKinds.end()) << name;
                EXPECT_EQ(it->second.count, slice.count) << name;
            }
        }
    }
}

TEST(TelemetryTest, TraceExportsPerfettoJson)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    const ScheduleHints hints = compileProgram(p, F1Config{}).hints;
    OpGraphExecutor exec(p, &bgv);
    RuntimeInputs in;
    in.seed = 37;

    setGlobalThreadCount(4);
    ExecutionPolicy pol;
    pol.scheduler = SchedulerKind::kWorkStealing;
    pol.scheduleHints = &hints;
    pol.telemetry.trace = true;
    pol.telemetry.label = "trace-test";
    auto res = exec.execute(in, pol);
    setGlobalThreadCount(0);

    ASSERT_NE(res.trace, nullptr);
    const obs::Trace &trace = *res.trace;

    // One span per executed op, nothing dropped at this scale.
    EXPECT_EQ(trace.spanCount(), res.opsExecuted);
    EXPECT_EQ(trace.droppedEvents(), 0u);
    EXPECT_GE(trace.laneCount(), 1u);
    EXPECT_EQ(trace.label(), "trace-test");

    // Spans are well-nested per lane: a worker runs ops sequentially,
    // so spans in one lane never overlap.
    std::map<uint16_t, int64_t> laneEnd;
    for (const obs::TraceEvent &ev : trace.events()) {
        if (ev.kind != obs::TraceEventKind::kOpSpan)
            continue;
        auto [it, fresh] = laneEnd.try_emplace(ev.lane, 0);
        if (!fresh)
            EXPECT_GE(ev.tsNs, it->second)
                << "overlapping spans in lane " << ev.lane;
        it->second = ev.tsNs + ev.durNs;
        // Hinted runs stamp the compiler's predicted start cycle.
        EXPECT_GE(ev.predictedCycle, 0);
        EXPECT_EQ(ev.predictedCycle,
                  int64_t(hints.startCycle[size_t(ev.handle)]));
    }

    const std::string json = trace.json();
    std::string why;
    EXPECT_TRUE(isValidJson(json, &why)) << why;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"predicted_start_cycle\""),
              std::string::npos);
}

TEST(TelemetryTest, TraceRingDropsOldestAndReportsCount)
{
    // 16 is the tracer's minimum lane capacity.
    obs::Tracer tracer(/*laneCapacity=*/16, "tiny");
    for (int i = 0; i < 20; ++i)
        tracer.span("op", i, i * 100, 50, -1);
    obs::Trace trace = tracer.finish();
    EXPECT_EQ(trace.spanCount(), 16u);
    EXPECT_EQ(trace.droppedEvents(), 4u);
    // The survivors are the NEWEST events, in time order.
    ASSERT_EQ(trace.events().size(), 16u);
    EXPECT_EQ(trace.events().front().handle, 4);
    EXPECT_EQ(trace.events().back().handle, 19);
    std::string why;
    EXPECT_TRUE(isValidJson(trace.json(), &why)) << why;
}

TEST(TelemetryTest, ServingAttachesTenantLabeledProfiles)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();

    ServingConfig cfg;
    cfg.workers = 2;
    cfg.policy.telemetry.profile = true;
    ServingEngine engine(&bgv, cfg);

    JobRequest req;
    req.program = &p;
    req.tenant = "tenant-a";
    auto fut = engine.submit(std::move(req));
    JobResult res = fut.get();

    ASSERT_NE(res.exec.profile, nullptr);
    EXPECT_EQ(res.exec.profile->label, "tenant-a");
    EXPECT_GT(res.exec.profile->keySwitchApplies, 0u);
    // Serving totals also land in the registry.
    auto snap = obs::MetricsRegistry::global().snapshot();
    EXPECT_GE(snap.counters.at("serving.jobs_completed"), 1u);
    ASSERT_TRUE(snap.histograms.count("serving.service_ms"));
    EXPECT_GE(snap.histograms.at("serving.service_ms").count, 1u);
}

//
// Correlated tracing (trace ids, flow events, live capture).
//

TEST(TraceIdTest, AllocationsAreUniqueAndNonZero)
{
    constexpr int kThreads = 4;
    constexpr int kPerThread = 2000;
    std::vector<std::vector<uint64_t>> got(kThreads);
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&got, t] {
            got[size_t(t)].reserve(kPerThread);
            for (int i = 0; i < kPerThread; ++i)
                got[size_t(t)].push_back(obs::allocateTraceId());
        });
    }
    for (auto &t : ts)
        t.join();
    std::set<uint64_t> all;
    for (const auto &v : got) {
        for (uint64_t id : v) {
            EXPECT_NE(id, 0u);
            all.insert(id);
        }
    }
    // Mixed-counter ids: no collisions even across threads.
    EXPECT_EQ(all.size(), size_t(kThreads) * kPerThread);
}

TEST(TraceIdTest, SpanCarriesTraceIdIntoJson)
{
    obs::Tracer tracer(/*laneCapacity=*/16, "tid");
    tracer.span("mul", 3, 100, 50, 7, 0x00c0ffee12345678ULL);
    tracer.span("add", 4, 200, 10, -1); // default arg: untraced
    obs::Trace trace = tracer.finish();
    ASSERT_EQ(trace.events().size(), 2u);
    EXPECT_EQ(trace.events()[0].traceId, 0x00c0ffee12345678ULL);
    EXPECT_EQ(trace.events()[1].traceId, 0u);

    const std::string json = trace.json();
    std::string why;
    EXPECT_TRUE(isValidJson(json, &why)) << why;
    // Hex-string ids survive JSON round-trips at full 64-bit width.
    EXPECT_NE(json.find("\"trace_id\": \"0x00c0ffee12345678\""),
              std::string::npos);
}

TEST(CorrelationTest, ServingCorrelationEndToEnd)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    const ScheduleHints hints = compileProgram(p, F1Config{}).hints;

    ServingConfig cfg;
    cfg.workers = 2;
    cfg.maxBatch = 4;
    cfg.policy.telemetry.profile = true;
    cfg.policy.telemetry.trace = true;
    ServingEngine engine(&bgv, cfg);

    std::vector<std::future<JobResult>> futs;
    for (int i = 0; i < 6; ++i) {
        JobRequest req;
        req.program = &p;
        req.tenant = i % 2 ? "corr-a" : "corr-b";
        req.inputs.seed = 100 + uint64_t(i);
        req.hints = &hints;
        futs.push_back(engine.submit(std::move(req)));
    }
    std::vector<JobResult> results;
    for (auto &f : futs)
        results.push_back(f.get());

    const std::vector<obs::ServingEvent> events =
        obs::FlightRecorder::global().dump();

    // Every completed job's trace id threads through all three
    // telemetry systems (the PR's acceptance bar).
    std::vector<std::shared_ptr<const obs::Trace>> traces;
    std::set<uint64_t> ids;
    for (const JobResult &r : results) {
        ASSERT_NE(r.traceId, 0u);
        ids.insert(r.traceId);

        size_t lifecycle = 0;
        for (const obs::ServingEvent &ev : events)
            if (ev.traceId == r.traceId)
                ++lifecycle;
        // At minimum submit, admit, and complete.
        EXPECT_GE(lifecycle, 3u) << "job " << r.jobId;

        ASSERT_NE(r.exec.trace, nullptr);
        size_t spans = 0;
        for (const obs::TraceEvent &ev : r.exec.trace->events())
            if (ev.kind == obs::TraceEventKind::kOpSpan &&
                ev.traceId == r.traceId)
                ++spans;
        EXPECT_GT(spans, 0u) << "job " << r.jobId;

        ASSERT_NE(r.exec.profile, nullptr);
        bool inProfile = false;
        for (uint64_t id : r.exec.profile->traceIds)
            inProfile |= id == r.traceId;
        EXPECT_TRUE(inProfile) << "job " << r.jobId;

        // Coalesced members share one trace; dedupe by identity.
        bool seen = false;
        for (const auto &t : traces)
            seen |= t == r.exec.trace;
        if (!seen)
            traces.push_back(r.exec.trace);
    }
    EXPECT_EQ(ids.size(), results.size()); // pairwise distinct

    // The correlated document links every one of this test's jobs
    // from its lifecycle chain into its first executor span.
    std::ostringstream os;
    EXPECT_EQ(obs::writeCorrelatedTrace(os, traces, events),
              ids.size());
    const std::string json = os.str();
    std::string why;
    ASSERT_TRUE(isValidJson(json, &why)) << why;
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
    EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
    EXPECT_EQ(json, obs::correlatedTraceJson(traces, events));
}

TEST(CorrelationTest, LiveCaptureRecordsWhileArmed)
{
    obs::LiveTraceCapture cap(/*capacity=*/64);
    EXPECT_FALSE(cap.armed());
    cap.record(100, 10, "mul", 1, 7, -1); // disarmed: executor
                                          // wouldn't call, but the
                                          // ring still accepts
    cap.arm();
    ASSERT_TRUE(cap.armed());
    const int64_t t0 = 1000;
    for (int i = 0; i < 8; ++i)
        cap.record(t0 + i * 10, 5, "add", i, uint64_t(i + 1), i);
    cap.disarm();
    EXPECT_FALSE(cap.armed());

    auto spans = cap.spansSince(t0);
    ASSERT_EQ(spans.size(), 8u);
    for (size_t i = 0; i < spans.size(); ++i) {
        EXPECT_EQ(spans[i].tsNs, t0 + int64_t(i) * 10);
        EXPECT_EQ(spans[i].handle, int32_t(i));
        EXPECT_EQ(spans[i].traceId, uint64_t(i + 1));
        EXPECT_EQ(spans[i].predictedCycle, int64_t(i));
        EXPECT_STREQ(spans[i].name, "add");
    }
    // The pre-window record is filtered by timestamp.
    EXPECT_EQ(cap.spansSince(0).size(), 9u);
}

//
// Schedule calibration.
//

TEST(CalibrationTest, RecoversSyntheticLinearFit)
{
    obs::ScheduleCalibration calib;
    // y = 3x + 500, exactly.
    for (int i = 0; i < 200; ++i)
        calib.record(2, "unit_kind", uint64_t(i),
                     int64_t(3 * i + 500));

    auto fits = calib.snapshot();
    ASSERT_EQ(fits.size(), 1u);
    EXPECT_EQ(fits[0].name, "unit_kind");
    EXPECT_EQ(fits[0].samples, 200u);
    EXPECT_NEAR(fits[0].slopeNsPerCycle, 3.0, 1e-6);
    EXPECT_NEAR(fits[0].interceptNs, 500.0, 1e-6);
    EXPECT_NEAR(fits[0].maeNs, 0.0, 1e-6);
    EXPECT_EQ(fits[0].retained, 200u);

    // The gauge mirrors publish into the registry (slope in milli).
    auto snap = obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(snap.counters.at("calib.unit_kind.samples"), 200u);
    EXPECT_EQ(snap.counters.at("calib.unit_kind.slope_milli"), 3000u);
    EXPECT_EQ(snap.counters.at("calib.unit_kind.intercept_ns"), 500u);

    // Out-of-range kinds and null names are ignored, never fatal.
    calib.record(obs::ScheduleCalibration::kMaxKinds, "over", 1, 1);
    calib.record(3, nullptr, 1, 1);
    EXPECT_EQ(calib.snapshot().size(), 1u);

    std::string why;
    const std::string json = calib.toJson();
    EXPECT_TRUE(isValidJson(json, &why)) << why;
    EXPECT_NE(json.find("\"slope_ns_per_cycle\""), std::string::npos);

    calib.reset();
    EXPECT_TRUE(calib.snapshot().empty());
}

TEST(CalibrationTest, ExecutorFeedsGlobalAccumulator)
{
    obs::ScheduleCalibration::global().reset();

    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    const ScheduleHints hints = compileProgram(p, F1Config{}).hints;
    OpGraphExecutor exec(p, &bgv);
    RuntimeInputs in;
    in.seed = 41;

    ExecutionPolicy pol;
    pol.scheduleHints = &hints;
    pol.telemetry.trace = true;
    for (int i = 0; i < 3; ++i)
        exec.execute(in, pol);

    // The diamond exercises 7 traced op kinds (mul, rotate,
    // mul_plain, add, sub, mod_switch, output) — over the >= 5 the
    // observatory is specified to fit.
    auto fits = obs::ScheduleCalibration::global().snapshot();
    EXPECT_EQ(fits.size(), 7u);
    EXPECT_GE(fits.size(), 5u);
    std::set<std::string> names;
    uint64_t total = 0;
    for (const auto &f : fits) {
        names.insert(f.name);
        total += f.samples;
        EXPECT_EQ(f.retained,
                  std::min<size_t>(
                      f.samples, obs::ScheduleCalibration::kRingCap));
    }
    EXPECT_EQ(names.size(), fits.size());
    // Solo runs: every executed op records one pair.
    EXPECT_EQ(total, 3 * nonSourceOps(p));

    std::string why;
    EXPECT_TRUE(isValidJson(
        obs::ScheduleCalibration::global().toJson(), &why))
        << why;
}

//
// Dropped-telemetry metrics (the observability of the observability).
//

TEST(DroppedMetricsTest, TraceRingDropCountsReachTheRegistry)
{
    obs::Counter &c =
        obs::MetricsRegistry::global().counter("trace.dropped_events");
    const uint64_t before = c.value();
    obs::Tracer tracer(/*laneCapacity=*/16, "drops");
    for (int i = 0; i < 20; ++i)
        tracer.span("op", i, i * 100, 50, -1);
    obs::Trace trace = tracer.finish();
    EXPECT_EQ(trace.droppedEvents(), 4u);
    EXPECT_EQ(c.value(), before + 4);
}

TEST(DroppedMetricsTest, EventlogDroppedGaugeCountsWraparound)
{
    auto gaugeVal = [] {
        auto s = obs::MetricsRegistry::global().snapshot();
        auto it = s.counters.find("eventlog.dropped");
        return it == s.counters.end() ? uint64_t(0) : it->second;
    };
    obs::FlightRecorder rec(/*capacity=*/8);
    const uint64_t before = gaugeVal();
    for (int i = 0; i < 13; ++i)
        rec.record(obs::ServingEventKind::kSubmit, uint64_t(i + 1),
                   "t");
    // 13 events into 8 slots: the 5 oldest are overwritten, and the
    // recorder's gauge (summed with the global recorder's) says so.
    EXPECT_EQ(gaugeVal(), before + 5);
    auto evs = rec.dump();
    ASSERT_EQ(evs.size(), 8u);
    EXPECT_EQ(evs.front().seq, 6u);
}

//
// Concurrent scrape-under-load stress (TSan target): exporter reads
// hammering /metrics, /tracez, and /calibration.json while batched
// serving runs — and job outputs stay bit-identical to solo runs.
//

std::vector<uint32_t>
ctWords(const Ciphertext &ct)
{
    std::vector<uint32_t> out;
    for (const auto &poly : ct.polys)
        out.insert(out.end(), poly.raw().begin(), poly.raw().end());
    return out;
}

TEST(CorrelationTest, ConcurrentScrapeStress)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = diamondProgram();
    const ScheduleHints hints = compileProgram(p, F1Config{}).hints;

    // Reference bits from an isolated, exporter-free execution.
    OpGraphExecutor ref(p, &bgv);
    RuntimeInputs in;
    in.seed = 77;
    const ExecutionResult refRes = ref.execute(in, {});

    ServingConfig cfg;
    cfg.workers = 2;
    cfg.maxBatch = 4;
    cfg.policy.telemetry.trace = true;
    cfg.policy.scheduleHints = &hints;
    ServingEngine engine(&bgv, cfg);

    obs::MetricsExporter exporter; // default sources, ephemeral port

    std::atomic<bool> stop{false};
    std::atomic<int> bad{0};
    auto scraper = [&](const char *path, bool wantJson) {
        while (!stop.load(std::memory_order_relaxed)) {
            auto resp = exporter.handle(path);
            if (resp.status != 200) {
                bad.fetch_add(1);
                continue;
            }
            if (wantJson && !isValidJson(resp.body))
                bad.fetch_add(1);
        }
    };
    std::vector<std::thread> scrapers;
    scrapers.emplace_back(scraper, "/metrics", false);
    scrapers.emplace_back(scraper, "/tracez?ms=5", true);
    scrapers.emplace_back(scraper, "/calibration.json", true);

    std::vector<std::future<JobResult>> futs;
    for (int i = 0; i < 12; ++i) {
        JobRequest req;
        req.program = &p;
        req.tenant = "stress";
        req.inputs.seed = 77;
        req.hints = &hints;
        futs.push_back(engine.submit(std::move(req)));
    }
    for (auto &f : futs) {
        JobResult r = f.get();
        // Live capture and concurrent scrapes never perturb outputs.
        ASSERT_EQ(r.exec.outputs.size(), refRes.outputs.size());
        for (const auto &[h, ct] : refRes.outputs) {
            auto it = r.exec.outputs.find(h);
            ASSERT_NE(it, r.exec.outputs.end());
            EXPECT_EQ(ctWords(ct), ctWords(it->second))
                << "output " << h << " diverged under scrape load";
        }
    }
    stop.store(true);
    for (auto &t : scrapers)
        t.join();
    EXPECT_EQ(bad.load(), 0);
    exporter.stop();
}

//
// JSON lint self-checks (the validator must not pass garbage).
//

TEST(JsonLintTest, AcceptsAndRejects)
{
    EXPECT_TRUE(isValidJson("{\"a\": [1, 2.5e-3, \"x\\n\", null]}"));
    EXPECT_TRUE(isValidJson("  [true, false] "));
    EXPECT_FALSE(isValidJson("{\"a\": }"));
    EXPECT_FALSE(isValidJson("[1,]"));
    EXPECT_FALSE(isValidJson("{\"a\": 01}"));
    EXPECT_FALSE(isValidJson("\"unterminated"));
    EXPECT_FALSE(isValidJson("{} trailing"));
    EXPECT_FALSE(isValidJson("{\"bad\\q\": 1}"));
}

} // namespace
} // namespace f1
