/**
 * @file
 * Live-introspection tests: Prometheus text exposition (name
 * sanitization, per-tenant/per-cache label extraction, cumulative
 * _bucket/_sum/_count series, +Inf overflow markers on quantile
 * estimates), histogram overflow accounting, configurable quantile
 * sets, the embedded HTTP exporter end-to-end over real sockets,
 * per-tenant SLO window math and its registry gauges, burn-rate-driven
 * admission shedding (standalone and through a live ServingEngine),
 * burn-rate dispatch penalties (the scheduling tier below shedding),
 * the flight recorder's causal post-mortem of a failed job and its
 * trace-id round-trip, and the /calibration.json + /tracez?ms=N
 * live-introspection endpoints.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fhe/bgv.h"
#include "json_lint.h"
#include "obs/eventlog.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "runtime/serving.h"

namespace f1 {
namespace {

using testing::isValidJson;

FheParams
smallParams()
{
    FheParams p;
    p.n = 256;
    p.maxLevel = 8;
    p.primeBits = 28;
    p.plainModulus = 65537;
    return p;
}

Program
chainProgram()
{
    Program p(256, 8, "exporter_chain");
    int x = p.input();
    int acc = x;
    for (int i = 0; i < 6; ++i)
        acc = p.add(acc, x);
    p.output(acc);
    return p;
}

bool
contains(const std::string &hay, const std::string &needle)
{
    return hay.find(needle) != std::string::npos;
}

//
// Prometheus rendering (the pure core).
//

TEST(PrometheusRenderTest, SanitizesMetricNames)
{
    EXPECT_EQ(obs::sanitizeMetricName("serving.queue_ms"),
              "serving_queue_ms");
    EXPECT_EQ(obs::sanitizeMetricName("a-b c!"), "a_b_c_");
    EXPECT_EQ(obs::sanitizeMetricName("9lives"), "_9lives");
    EXPECT_EQ(obs::sanitizeMetricName("ns::x"), "ns::x");
}

TEST(PrometheusRenderTest, EscapesLabelValues)
{
    EXPECT_EQ(obs::escapeLabelValue("plain"), "plain");
    EXPECT_EQ(obs::escapeLabelValue("a\"b"), "a\\\"b");
    EXPECT_EQ(obs::escapeLabelValue("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::escapeLabelValue("a\nb"), "a\\nb");
}

TEST(PrometheusRenderTest, ScalarsHistogramsAndLabels)
{
    obs::MetricsSnapshot snap;
    snap.counters["serving.jobs_submitted"] = 5;
    snap.counters["slo.alice.burn_rate"] = 1500;
    snap.counters["slo.team.a.burn_rate"] = 700; // dotted tenant id
    snap.counters["cache.enc.hits"] = 2;

    obs::HistogramSnapshot h;
    h.bounds = {1.0, 2.0};
    h.counts = {1, 1, 1}; // one observation in the overflow bucket
    h.count = 3;
    h.sum = 103.5;
    h.quantiles = {0.5, 0.99};
    snap.histograms["serving.queue_ms"] = h;

    const std::string text = obs::renderPrometheus(snap);

    // Scalars render as gauges under the f1_ prefix.
    EXPECT_TRUE(
        contains(text, "# TYPE f1_serving_jobs_submitted gauge"));
    EXPECT_TRUE(contains(text, "f1_serving_jobs_submitted 5"));

    // slo.<tenant>.<leaf> aggregates under one family with a tenant
    // label — including tenant ids that themselves contain dots.
    EXPECT_TRUE(
        contains(text, "f1_slo_burn_rate{tenant=\"alice\"} 1500"));
    EXPECT_TRUE(
        contains(text, "f1_slo_burn_rate{tenant=\"team.a\"} 700"));
    EXPECT_FALSE(contains(text, "f1_slo_alice"));
    EXPECT_TRUE(contains(text, "f1_cache_hits{cache=\"enc\"} 2"));

    // The histogram is cumulative, closed by the +Inf bucket.
    EXPECT_TRUE(contains(text, "# TYPE f1_serving_queue_ms histogram"));
    EXPECT_TRUE(
        contains(text, "f1_serving_queue_ms_bucket{le=\"1\"} 1"));
    EXPECT_TRUE(
        contains(text, "f1_serving_queue_ms_bucket{le=\"2\"} 2"));
    EXPECT_TRUE(
        contains(text, "f1_serving_queue_ms_bucket{le=\"+Inf\"} 3"));
    EXPECT_TRUE(contains(text, "f1_serving_queue_ms_sum 103.5"));
    EXPECT_TRUE(contains(text, "f1_serving_queue_ms_count 3"));

    // Quantile estimates are a separate gauge family; an estimate in
    // the overflow bucket reads +Inf, never the last finite edge.
    EXPECT_TRUE(contains(
        text, "f1_serving_queue_ms_quantile{quantile=\"0.5\"}"));
    EXPECT_TRUE(contains(
        text,
        "f1_serving_queue_ms_quantile{quantile=\"0.99\"} +Inf"));

    // One # TYPE line per family, preceding all its samples.
    EXPECT_EQ(text.find("# TYPE f1_slo_burn_rate gauge"),
              text.rfind("# TYPE f1_slo_burn_rate gauge"));
}

//
// Histogram overflow accounting (satellite: top-bucket clamping fix).
//

TEST(HistogramOverflowTest, OverflowIsExplicitNotClamped)
{
    const double bounds[] = {1.0, 2.0};
    obs::Histogram h{std::span<const double>(bounds)};
    h.observe(0.5);
    h.observe(1.5);
    h.observe(100.0);

    obs::HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, 3u);
    EXPECT_EQ(s.overflowCount(), 1u);

    // The median sits in a finite bucket; the p99 observation is the
    // 100.0 in the overflow bucket — flagged, not clamped to 2.0.
    EXPECT_FALSE(s.quantileAt(0.5).overflow);
    const obs::HistogramSnapshot::Quantile p99 = s.quantileAt(0.99);
    EXPECT_TRUE(p99.overflow);
    EXPECT_EQ(p99.value, 2.0); // last finite edge, as documented
}

TEST(HistogramOverflowTest, SnapshotJsonSurfacesOverflow)
{
    auto &reg = obs::MetricsRegistry::global();
    const double bounds[] = {1.0};
    obs::Histogram &h = reg.histogram("exporter_test.ovf", bounds);
    h.observe(50.0);

    const std::string json = reg.snapshot().toJson();
    std::string why;
    EXPECT_TRUE(isValidJson(json, &why)) << why;
    EXPECT_TRUE(contains(json, "\"overflow\""));
}

//
// Configurable quantile sets (satellite).
//

TEST(QuantileConfigTest, PerHistogramQuantilesExtendSnapshotJson)
{
    auto &reg = obs::MetricsRegistry::global();
    const double bounds[] = {1.0, 10.0, 100.0};
    const double qs[] = {0.50, 0.95, 0.99};
    obs::Histogram &h =
        reg.histogram("exporter_test.q99", bounds, qs);
    for (int i = 0; i < 100; ++i)
        h.observe(double(i));

    obs::HistogramSnapshot s = h.snapshot();
    ASSERT_EQ(s.quantiles.size(), 3u);
    EXPECT_DOUBLE_EQ(s.quantiles[2], 0.99);

    // The default p50/p95 keys survive unchanged; p99 is additive.
    const std::string json = reg.snapshot().toJson();
    std::string why;
    EXPECT_TRUE(isValidJson(json, &why)) << why;
    EXPECT_TRUE(contains(json, "\"p50_ms\""));
    EXPECT_TRUE(contains(json, "\"p95_ms\""));
    EXPECT_TRUE(contains(json, "\"p99_ms\""));
}

TEST(QuantileConfigTest, ReRegistrationUpgradesQuantileSet)
{
    auto &reg = obs::MetricsRegistry::global();
    obs::Histogram &h = reg.histogram("exporter_test.upgrade");
    EXPECT_EQ(h.quantiles().size(),
              obs::defaultQuantiles().size());

    const double qs[] = {0.50, 0.95, 0.999};
    obs::Histogram &same =
        reg.histogram("exporter_test.upgrade", {}, qs);
    EXPECT_EQ(&same, &h); // same histogram, upgraded in place
    ASSERT_EQ(h.quantiles().size(), 3u);
    EXPECT_DOUBLE_EQ(h.quantiles()[2], 0.999);
}

//
// SLO tracker window math and registry publication.
//

TEST(SloTrackerTest, WindowAttainmentAndBurnRate)
{
    obs::SloConfig cfg;
    cfg.windowSize = 4;
    cfg.targetAttainment = 0.9; // 10% error budget
    obs::SloTracker slo(cfg);

    // Two hits, two misses against a 10ms deadline.
    slo.recordJob("slo_t_win", 5.0, 10.0);
    slo.recordJob("slo_t_win", 5.0, 10.0);
    slo.recordJob("slo_t_win", 20.0, 10.0);
    slo.recordJob("slo_t_win", 20.0, 10.0);

    auto snap = slo.snapshot();
    ASSERT_TRUE(snap.count("slo_t_win"));
    const auto &s = snap.at("slo_t_win");
    EXPECT_EQ(s.total, 4u);
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.windowMisses, 2u);
    EXPECT_DOUBLE_EQ(s.attainment, 0.5);
    EXPECT_DOUBLE_EQ(s.burnRate, 5.0); // 0.5 missed / 0.1 budget

    // Four hits push the misses out of the window: the burn rate
    // recovers on its own (unlike cumulative-histogram admission).
    for (int i = 0; i < 4; ++i)
        slo.recordJob("slo_t_win", 1.0, 10.0);
    const auto after = slo.snapshot().at("slo_t_win");
    EXPECT_EQ(after.total, 8u);
    EXPECT_EQ(after.misses, 2u); // lifetime counter keeps history
    EXPECT_EQ(after.windowMisses, 0u);
    EXPECT_DOUBLE_EQ(after.attainment, 1.0);
    EXPECT_DOUBLE_EQ(after.burnRate, 0.0);

    // No deadline (<= 0) means every job counts as met.
    slo.recordJob("slo_t_nodeadline", 1e9, 0.0);
    EXPECT_DOUBLE_EQ(
        slo.snapshot().at("slo_t_nodeadline").attainment, 1.0);

    std::string why;
    EXPECT_TRUE(isValidJson(slo.toJson(), &why)) << why;
}

TEST(SloTrackerTest, PublishesScaledRegistryGauges)
{
    obs::SloConfig cfg;
    cfg.windowSize = 4;
    cfg.targetAttainment = 0.99;
    obs::SloTracker slo(cfg);
    slo.recordJob("slo_t_gauge", 5.0, 10.0);
    slo.recordJob("slo_t_gauge", 50.0, 10.0);

    auto snap = obs::MetricsRegistry::global().snapshot();
    // Attainment in basis points, burn rate in milli-units.
    EXPECT_EQ(snap.counters.at("slo.slo_t_gauge.attainment"), 5000u);
    EXPECT_EQ(snap.counters.at("slo.slo_t_gauge.burn_rate"), 50000u);
    EXPECT_EQ(snap.counters.at("slo.slo_t_gauge.deadline_misses"),
              1u);
}

//
// Burn-rate admission (standalone controller).
//

TEST(AdmissionBurnRateTest, ShedsOnSloBurnRateMetric)
{
    AdmissionLimits lim;
    lim.maxBurnRate = 2.0;
    AdmissionController ctl(lim);
    TenantPolicy tp;

    obs::MetricsSnapshot snap;
    snap.counters["slo.bob.burn_rate"] = 5000; // 5.0x budget burn

    auto hot = ctl.decide(snap, "bob", tp, 0);
    EXPECT_FALSE(hot.admit);
    EXPECT_TRUE(contains(hot.reason, "burn"));
    EXPECT_TRUE(contains(hot.reason, "slo.bob.burn_rate"));

    // Below threshold, an unknown tenant, or a name-free decision
    // (compat overload) all admit.
    snap.counters["slo.bob.burn_rate"] = 1500;
    EXPECT_TRUE(ctl.decide(snap, "bob", tp, 0).admit);
    EXPECT_TRUE(ctl.decide(snap, "carol", tp, 0).admit);
    snap.counters["slo.bob.burn_rate"] = 5000;
    EXPECT_TRUE(ctl.decide(snap, tp, 0).admit);
}

//
// Acceptance: SLO metrics drive a live engine's shed decision.
//

TEST(ServingEngineSloTest, BurnRateFromMissedDeadlinesShedsTenant)
{
    auto &reg = obs::MetricsRegistry::global();
    reg.reset();
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = chainProgram();

    ServingConfig cfg;
    cfg.workers = 1;
    cfg.admission.maxBurnRate = 2.0;
    cfg.slo.windowSize = 8;
    cfg.slo.targetAttainment = 0.99;
    // A deadline no real execution can meet: every completed job is
    // a deadline miss, so the tenant burns its error budget at 100x.
    TenantPolicy impossible;
    impossible.deadlineMs = 1e-6;
    cfg.tenantPolicies["slo_hot"] = impossible;
    ServingEngine engine(&bgv, cfg);

    auto makeReq = [&](uint64_t seed) {
        JobRequest req;
        req.program = &p;
        req.tenant = "slo_hot";
        req.inputs.seed = seed;
        return req;
    };

    // First job completes (admission sees no SLO history yet) and
    // records a miss, driving slo.slo_hot.burn_rate to the cap.
    engine.submit(makeReq(1)).get();
    auto snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("slo.slo_hot.deadline_misses"), 1u);
    EXPECT_GE(snap.counters.at("slo.slo_hot.burn_rate"), 2000u);

    // The next submit is shed BY the SLO metric, not by backlog.
    EXPECT_THROW(engine.submit(makeReq(2)), AdmissionRejected);
    EXPECT_EQ(engine.stats().shed, 1u);
    EXPECT_EQ(reg.snapshot().counters.at("serving.shed_jobs"), 1u);

    // Other tenants are untouched: burn rates are per tenant.
    JobRequest ok;
    ok.program = &p;
    ok.tenant = "slo_cold";
    ok.inputs.seed = 3;
    engine.submit(std::move(ok)).get();
    EXPECT_EQ(engine.stats().completed, 2u);
    reg.reset();
}

//
// Flight recorder.
//

TEST(FlightRecorderTest, OrderingWraparoundAndTruncation)
{
    obs::FlightRecorder rec(8);
    for (uint64_t i = 1; i <= 20; ++i)
        rec.record(obs::ServingEventKind::kSubmit, i, "tenant", i, 1);

    EXPECT_EQ(rec.capacity(), 8u);
    EXPECT_EQ(rec.recorded(), 20u);
    auto events = rec.dump();
    ASSERT_EQ(events.size(), 8u);
    // The newest 8 survive, in causal order; seq is 1-based.
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].seq, 13 + i);
        EXPECT_EQ(events[i].jobId, 13 + i);
        EXPECT_EQ(events[i].fingerprint, 13 + i);
        EXPECT_EQ(events[i].tenant, "tenant");
    }

    // Tenant ids longer than the slot budget are truncated, never
    // spilled into neighboring fields.
    rec.record(obs::ServingEventKind::kShed, 99,
               "a_tenant_name_well_past_twentyfour_bytes", 7, 2);
    auto last = rec.dump().back();
    EXPECT_EQ(last.tenant.size(), obs::FlightRecorder::kTenantBytes);
    EXPECT_EQ(last.tenant,
              std::string("a_tenant_name_well_past_twentyfour_bytes")
                  .substr(0, obs::FlightRecorder::kTenantBytes));
    EXPECT_EQ(last.jobId, 99u);
    EXPECT_EQ(last.batchSize, 2u);
    EXPECT_EQ(last.kind, obs::ServingEventKind::kShed);

    std::string why;
    const std::string json = rec.dumpJson();
    EXPECT_TRUE(isValidJson(json, &why)) << why;
    EXPECT_TRUE(contains(json, "\"dropped\": 13"));
}

TEST(FlightRecorderTest, FailedJobLeavesCausalSequence)
{
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = chainProgram();
    const uint64_t fp = p.fingerprint();

    const std::string dumpPath = "EVENTS_test_exporter.json";
    std::remove(dumpPath.c_str());

    ServingConfig cfg;
    cfg.workers = 1;
    cfg.eventDumpPath = dumpPath;
    ServingEngine engine(&bgv, cfg);

    // Complex-slot inputs under a BGV engine throw in prepare: the
    // job is admitted, dispatched, and dies inside the executor.
    JobRequest req;
    req.program = &p;
    req.tenant = "doomed_tenant";
    req.inputs.bind(0, std::vector<std::complex<double>>(128));
    auto fut = engine.submit(std::move(req));
    EXPECT_THROW(fut.get(), FatalError);
    EXPECT_EQ(engine.stats().failed, 1u);

    // The global recorder holds the job's full lifecycle, in causal
    // order: submit -> admit -> (executor) dispatch+fail -> job fail.
    auto events = obs::FlightRecorder::global().dump();
    std::vector<obs::ServingEventKind> kinds;
    uint64_t jobId = 0;
    for (const auto &e : events) {
        if (e.tenant == "doomed_tenant") {
            kinds.push_back(e.kind);
            if (e.jobId != 0)
                jobId = e.jobId;
            EXPECT_EQ(e.fingerprint, fp);
        }
    }
    ASSERT_EQ(kinds.size(), 3u);
    EXPECT_EQ(kinds[0], obs::ServingEventKind::kSubmit);
    EXPECT_EQ(kinds[1], obs::ServingEventKind::kAdmit);
    EXPECT_EQ(kinds[2], obs::ServingEventKind::kFail);
    EXPECT_NE(jobId, 0u);

    // The executor's batch-level dispatch/fail events carry the same
    // program fingerprint and slot between admit and the job's fail.
    bool sawDispatch = false;
    bool sawBatchFail = false;
    for (const auto &e : events) {
        if (e.fingerprint != fp || e.jobId != 0 ||
            e.tenant == "doomed_tenant")
            continue;
        if (e.kind == obs::ServingEventKind::kDispatch)
            sawDispatch = true;
        if (e.kind == obs::ServingEventKind::kFail)
            sawBatchFail = sawDispatch;
    }
    EXPECT_TRUE(sawDispatch);
    EXPECT_TRUE(sawBatchFail);

    // The failure wrote the post-mortem artifact, and it is JSON.
    std::ifstream in(dumpPath);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    std::string why;
    EXPECT_TRUE(isValidJson(buf.str(), &why)) << why;
    EXPECT_TRUE(contains(buf.str(), "doomed_tenant"));
    std::remove(dumpPath.c_str());
}

//
// HTTP exporter end-to-end (real sockets, ephemeral port).
//

TEST(MetricsExporterTest, ServesAllEndpoints)
{
    auto &reg = obs::MetricsRegistry::global();
    reg.counter("exporter_test.http_hits").inc(3);

    obs::SloConfig scfg;
    scfg.windowSize = 4;
    obs::SloTracker slo(scfg);
    slo.recordJob("slo_t_http", 5.0, 10.0);

    obs::ExporterConfig cfg;
    cfg.slo = &slo;
    obs::MetricsExporter exporter(cfg);
    ASSERT_NE(exporter.port(), 0);

    std::string body;
    EXPECT_EQ(obs::httpGet(exporter.port(), "/healthz", &body), 200);
    EXPECT_EQ(body, "ok\n");

    EXPECT_EQ(obs::httpGet(exporter.port(), "/metrics", &body), 200);
    EXPECT_TRUE(contains(body, "# TYPE "));
    EXPECT_TRUE(contains(body, "f1_exporter_test_http_hits 3"));
    EXPECT_TRUE(
        contains(body, "f1_slo_attainment{tenant=\"slo_t_http\"}"));

    std::string why;
    EXPECT_EQ(obs::httpGet(exporter.port(), "/snapshot.json", &body),
              200);
    EXPECT_TRUE(isValidJson(body, &why)) << why;

    EXPECT_EQ(obs::httpGet(exporter.port(), "/tenants.json", &body),
              200);
    EXPECT_TRUE(isValidJson(body, &why)) << why;
    EXPECT_TRUE(contains(body, "slo_t_http"));

    EXPECT_EQ(obs::httpGet(exporter.port(), "/events.json", &body),
              200);
    EXPECT_TRUE(isValidJson(body, &why)) << why;

    // Query strings are routed by path; unknown paths are 404.
    EXPECT_EQ(obs::httpGet(exporter.port(), "/healthz?x=1", &body),
              200);
    EXPECT_EQ(obs::httpGet(exporter.port(), "/nope", &body), 404);

    exporter.stop();
    exporter.stop(); // idempotent
    EXPECT_EQ(obs::httpGet(exporter.port(), "/healthz", &body), 0);
}

TEST(MetricsExporterTest, HandleRoutesWithoutSockets)
{
    obs::ExporterConfig cfg;
    cfg.snapshot = [] {
        obs::MetricsSnapshot s;
        s.counters["handle_test.value"] = 7;
        return s;
    };
    obs::MetricsExporter exporter(cfg);
    auto r = exporter.handle("/metrics");
    EXPECT_EQ(r.status, 200);
    EXPECT_TRUE(contains(r.body, "f1_handle_test_value 7"));
    EXPECT_TRUE(contains(r.contentType, "0.0.4"));
    EXPECT_EQ(exporter.handle("/tenants.json").body, "{}");
    EXPECT_EQ(exporter.handle("/missing").status, 404);
}

//
// Calibration + live-capture endpoints (the observatory surface).
//

TEST(MetricsExporterTest, ServesCalibrationAndTracez)
{
    obs::ScheduleCalibration::global().reset();
    obs::ScheduleCalibration::global().record(1, "endpoint_kind", 10,
                                              30);
    obs::ScheduleCalibration::global().record(1, "endpoint_kind", 20,
                                              60);

    obs::MetricsExporter exporter;
    ASSERT_NE(exporter.port(), 0);

    std::string body;
    std::string why;
    EXPECT_EQ(
        obs::httpGet(exporter.port(), "/calibration.json", &body),
        200);
    EXPECT_TRUE(isValidJson(body, &why)) << why;
    EXPECT_TRUE(contains(body, "\"endpoint_kind\""));
    EXPECT_TRUE(contains(body, "\"slope_ns_per_cycle\""));
    EXPECT_TRUE(contains(body, "\"mae_ns\""));

    // The same fit reaches Prometheus under a per-op label.
    EXPECT_EQ(obs::httpGet(exporter.port(), "/metrics", &body), 200);
    EXPECT_TRUE(contains(
        body, "f1_calib_samples{op=\"endpoint_kind\"} 2"));

    // /tracez over a real socket: a short live-capture window.
    EXPECT_EQ(obs::httpGet(exporter.port(), "/tracez?ms=2", &body),
              200);
    EXPECT_TRUE(isValidJson(body, &why)) << why;
    EXPECT_TRUE(contains(body, "\"window_ms\": 2"));
    EXPECT_TRUE(contains(body, "\"traceEvents\""));

    // Query routing via the socket-free core: an unparsable ms falls
    // back to the 50ms default rather than erroring, and oversized
    // windows clamp to 2000ms — /tracez is a debugging tool, not an
    // API.
    auto r = exporter.handle("/tracez?ms=abc");
    EXPECT_EQ(r.status, 200);
    EXPECT_TRUE(contains(r.body, "\"window_ms\": 50"));
    EXPECT_TRUE(contains(exporter.handle("/tracez?ms=3000").body,
                         "\"window_ms\": 2000"));
    exporter.stop();
    obs::ScheduleCalibration::global().reset();
}

TEST(FlightRecorderTest, TraceIdRoundTripsThroughDumpAndJson)
{
    obs::FlightRecorder rec(8);
    rec.record(obs::ServingEventKind::kAdmit, 5, "tid_tenant", 9, 1,
               0xabcdef0012345678ULL);
    auto evs = rec.dump();
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_EQ(evs[0].traceId, 0xabcdef0012345678ULL);
    EXPECT_EQ(evs[0].jobId, 5u);
    EXPECT_EQ(evs[0].tenant, "tid_tenant");

    std::string why;
    const std::string json = rec.dumpJson();
    EXPECT_TRUE(isValidJson(json, &why)) << why;
    EXPECT_TRUE(
        contains(json, "\"trace_id\": \"0xabcdef0012345678\""));

    // Pre-correlation callers (default argument) stay untraced.
    rec.record(obs::ServingEventKind::kSubmit, 6, "t");
    EXPECT_EQ(rec.dump().back().traceId, 0u);
}

//
// Burn-rate dispatch penalty: a tenant deep into its error budget
// loses the dispatch head to clean tenants BEFORE admission sheds it.
//

TEST(ServingEngineSloTest, BurnRatePenaltyDeprioritizesDispatch)
{
    auto &reg = obs::MetricsRegistry::global();
    reg.reset();
    FheContext ctx(smallParams());
    BgvScheme bgv(&ctx);
    Program p = chainProgram();

    ServingConfig cfg;
    cfg.workers = 1;
    cfg.maxBatch = 1; // no coalescing: dispatch order is visible
    // Penalty starts at half the shed threshold. An always-missed
    // deadline burns at 1/(1-0.99) = 100x, so with the threshold at
    // 150 the tenant is penalized (>= 75) but never shed (< 150).
    cfg.admission.maxBurnRate = 150.0;
    cfg.slo.windowSize = 8;
    cfg.slo.targetAttainment = 0.99;
    TenantPolicy hot;
    hot.priority = 10; // outranks everyone -- except via its burn
    hot.deadlineMs = 1e-6;
    cfg.tenantPolicies["pen_hot"] = hot;
    ServingEngine engine(&bgv, cfg);

    auto makeReq = [&](const std::string &tenant, uint64_t seed) {
        JobRequest req;
        req.program = &p;
        req.tenant = tenant;
        req.inputs.seed = seed;
        return req;
    };

    // Prime the hot tenant's burn rate with one guaranteed miss.
    engine.submit(makeReq("pen_hot", 1)).get();
    EXPECT_GE(reg.snapshot().counters.at("slo.pen_hot.burn_rate"),
              75000u); // milli-units

    // Occupy the single worker, then queue cold and hot jobs behind
    // it so dispatch has to choose between the two tenants.
    auto blocker = engine.submit(makeReq("pen_block", 2));
    std::vector<std::future<JobResult>> futs;
    for (uint64_t i = 0; i < 3; ++i)
        futs.push_back(engine.submit(makeReq("pen_cold", 10 + i)));
    for (uint64_t i = 0; i < 3; ++i)
        futs.push_back(engine.submit(makeReq("pen_hot", 20 + i)));
    blocker.get();
    for (auto &f : futs)
        f.get(); // penalty deprioritizes; it never starves

    // The first post-blocker completion is a COLD job despite the hot
    // tenant's higher class priority, and the penalty counter says
    // why.
    auto events = obs::FlightRecorder::global().dump();
    uint64_t blockerDone = 0;
    for (const auto &e : events)
        if (e.kind == obs::ServingEventKind::kComplete &&
            e.tenant == "pen_block")
            blockerDone = e.seq;
    ASSERT_NE(blockerDone, 0u);
    std::string firstTenant;
    uint64_t firstSeq = ~0ULL;
    for (const auto &e : events) {
        if (e.kind != obs::ServingEventKind::kComplete ||
            e.seq <= blockerDone)
            continue;
        if ((e.tenant == "pen_hot" || e.tenant == "pen_cold") &&
            e.seq < firstSeq) {
            firstSeq = e.seq;
            firstTenant = e.tenant;
        }
    }
    EXPECT_EQ(firstTenant, "pen_cold");
    EXPECT_GE(
        reg.snapshot().counters.at("serving.dispatch_penalties"), 1u);
    EXPECT_EQ(engine.stats().shed, 0u); // penalized, never shed
    reg.reset();
}

} // namespace
} // namespace f1
