/**
 * @file
 * Direct tests of the key-switching core (paper §2.4, Listing 1):
 * digit decomposition invariants, hint sizes, agreement between the
 * two variants, and the modulus-switching primitive.
 */
#include <gtest/gtest.h>

#include "fhe/basis_extend.h"
#include "fhe/keyswitch.h"
#include "modular/modarith.h"

namespace f1 {
namespace {

FheParams
params()
{
    FheParams p;
    p.n = 128;
    p.maxLevel = 4;
    p.auxCount = 4;
    p.primeBits = 28;
    p.plainModulus = 257; // 257 ≡ 1 mod 256 = 2N: slot-friendly at N=128
    return p;
}

class KeySwitchTest : public ::testing::Test
{
  protected:
    KeySwitchTest()
        : ctx(params()), sw(&ctx), rng(123), sk(sw.keyGen(rng))
    {
    }

    /** Noise of (u0 + u1*s) - x*w, max |coefficient| in bits. */
    double
    switchError(const RnsPoly &x, const RnsPoly &w,
                const std::pair<RnsPoly, RnsPoly> &u)
    {
        const size_t level = x.levels();
        RnsPoly got = u.first;
        got += u.second.mul(sk.s.restricted(level));
        RnsPoly want = x.mul(w.restricted(level));
        got -= want;
        got.toCoeff();
        size_t bits = 0;
        for (uint32_t i = 0; i < ctx.n(); ++i) {
            auto [mag, neg] = got.coeffCentered(i);
            bits = std::max(bits, mag.bitLength());
        }
        return static_cast<double>(bits);
    }

    FheContext ctx;
    KeySwitcher sw;
    Rng rng;
    SecretKey sk;
};

TEST_F(KeySwitchTest, DigitDecompositionReconstructs)
{
    // sum_i x~_i * P_i ≡ x (mod every q_j): check residue-wise using
    // the selector identity P_i ≡ δ_ij.
    auto x = RnsPoly::uniform(ctx.polyContext(), 3, rng);
    auto digits = digitDecomposeLift(x);
    ASSERT_EQ(digits.size(), 3u);
    // Residue j of the reconstruction = digit j's residue j.
    for (size_t j = 0; j < 3; ++j) {
        EXPECT_TRUE(std::equal(digits[j].residue(j).begin(),
                               digits[j].residue(j).end(),
                               x.residue(j).begin()));
    }
    // Each digit is small: its coefficient-form residues agree across
    // moduli (they lift a single small integer).
    auto d0 = digits[0];
    d0.toCoeff();
    const uint32_t q0 = ctx.polyContext()->modulus(0);
    const uint32_t q1 = ctx.polyContext()->modulus(1);
    for (uint32_t i = 0; i < ctx.n(); ++i) {
        int64_t v0 = d0.residue(0)[i] > q0 / 2
                         ? (int64_t)d0.residue(0)[i] - q0
                         : d0.residue(0)[i];
        int64_t v1 = d0.residue(1)[i] > q1 / 2
                         ? (int64_t)d0.residue(1)[i] - q1
                         : d0.residue(1)[i];
        EXPECT_EQ(v0, v1) << i;
    }
}

TEST_F(KeySwitchTest, DigitVariantSwitchesCorrectly)
{
    const size_t level = 4;
    auto w = sk.s.automorphism(5); // a realistic source key
    auto hint = sw.makeHint(w, sk, level, 257, KeySwitchVariant::kDigitLxL,
                            rng);
    auto x = RnsPoly::uniform(ctx.polyContext(), level, rng);
    auto u = sw.apply(x, hint, 257);
    // Error must be far below Q (112 bits here).
    EXPECT_LT(switchError(x, w, u), ctx.logQ(level) - 20);
}

TEST_F(KeySwitchTest, GhsVariantSwitchesCorrectly)
{
    const size_t level = 4;
    auto w = sk.s.mul(sk.s);
    auto hint = sw.makeHint(w, sk, level, 257,
                            KeySwitchVariant::kGhsExtension, rng);
    auto x = RnsPoly::uniform(ctx.polyContext(), level, rng);
    auto u = sw.apply(x, hint, 257);
    EXPECT_LT(switchError(x, w, u), ctx.logQ(level) - 20);
}

TEST_F(KeySwitchTest, GhsNoiseLowerThanDigit)
{
    // GHS divides the hint noise by P ≈ Q, so its additive error is
    // materially smaller than the digit variant's.
    const size_t level = 4;
    auto w = sk.s.mul(sk.s);
    auto x = RnsPoly::uniform(ctx.polyContext(), level, rng);
    auto hintA = sw.makeHint(w, sk, level, 257,
                             KeySwitchVariant::kDigitLxL, rng);
    auto hintB = sw.makeHint(w, sk, level, 257,
                             KeySwitchVariant::kGhsExtension, rng);
    double errA = switchError(x, w, sw.apply(x, hintA, 257));
    double errB = switchError(x, w, sw.apply(x, hintB, 257));
    EXPECT_LT(errB, errA);
}

TEST_F(KeySwitchTest, HintSizesMatchPaperScaling)
{
    // Variant A (hybrid): 2 * L * (L+1) residue vectors, the paper's
    // O(L^2); variant B: 2 * (L + K), the paper's O(L).
    auto w = sk.s.mul(sk.s);
    for (size_t level : {2u, 3u, 4u}) {
        auto ha = sw.makeHint(w, sk, level, 257,
                              KeySwitchVariant::kDigitLxL, rng);
        EXPECT_EQ(ha.sizeRVecs(), 2 * level * (level + 1));
        auto hb = sw.makeHint(w, sk, level, 257,
                              KeySwitchVariant::kGhsExtension, rng);
        EXPECT_EQ(hb.sizeRVecs(), 2 * (level + ctx.auxCount()));
    }
    // At L = 16, N = 16K the paper reports 32 MB per hint set
    // (2 * 16 * 16 RVecs of 64 KB); the hybrid adds one special
    // residue per digit (34 MB).
    EXPECT_EQ(2 * 16 * 16 * 16384 * 4, 32u << 20);
}

TEST_F(KeySwitchTest, BasisExtensionExact)
{
    // Extended residues must equal the centered value's residues.
    const size_t level = 3;
    std::vector<int64_t> coeffs(ctx.n());
    Rng r2(5);
    for (auto &c : coeffs)
        c = static_cast<int64_t>(r2.uniform(1000001)) - 500000;
    auto x = RnsPoly::fromSigned(ctx.polyContext(), level, coeffs,
                                 Domain::kCoeff);
    std::vector<size_t> src{0, 1, 2}, dst{4, 5}; // aux primes
    BasisExtender be(ctx.polyContext(), src, dst);
    std::vector<uint32_t> in(level * ctx.n());
    for (size_t i = 0; i < level; ++i)
        std::copy(x.residue(i).begin(), x.residue(i).end(),
                  in.begin() + i * ctx.n());
    std::vector<uint32_t> out(2 * ctx.n());
    be.extend(in, ctx.n(), out);
    for (size_t k = 0; k < 2; ++k) {
        const uint32_t p = ctx.polyContext()->modulus(dst[k]);
        for (uint32_t i = 0; i < ctx.n(); ++i) {
            int64_t v = coeffs[i] % (int64_t)p;
            if (v < 0)
                v += p;
            EXPECT_EQ(out[k * ctx.n() + i], (uint32_t)v)
                << "k=" << k << " i=" << i;
        }
    }
}

TEST_F(KeySwitchTest, DropLastModulusPreservesValueScaled)
{
    // For a polynomial with small coefficients v, (v*q_last - delta)/
    // q_last must give back v exactly (delta ≡ 0 when divisible).
    const size_t level = 3;
    std::vector<int64_t> coeffs(ctx.n());
    for (uint32_t i = 0; i < ctx.n(); ++i)
        coeffs[i] = (int64_t)(i % 97) - 48;
    const uint32_t q_last = ctx.polyContext()->modulus(level - 1);
    std::vector<int64_t> scaled(ctx.n());
    for (uint32_t i = 0; i < ctx.n(); ++i)
        scaled[i] = coeffs[i] * (int64_t)q_last;
    auto p = RnsPoly::fromSigned(ctx.polyContext(), level, scaled);
    dropLastModulusRounded(p, 1);
    EXPECT_EQ(p.levels(), level - 1);
    p.toCoeff();
    for (uint32_t i = 0; i < ctx.n(); ++i) {
        auto [mag, neg] = p.coeffCentered(i);
        int64_t v = (int64_t)mag.toU64() * (neg ? -1 : 1);
        EXPECT_EQ(v, coeffs[i]) << i;
    }
}

TEST_F(KeySwitchTest, HintLevelMismatchRejected)
{
    auto w = sk.s.mul(sk.s);
    auto hint = sw.makeHint(w, sk, 3, 257, KeySwitchVariant::kDigitLxL,
                            rng);
    auto x = RnsPoly::uniform(ctx.polyContext(), 4, rng);
    EXPECT_THROW(sw.apply(x, hint, 257), PanicError);
}

} // namespace
} // namespace f1
